"""E4 — Lemma 6.3: the gap extends beyond pure LW queries.

Paper claim: for any query satisfying the lemma's syntactic condition
(a subset ``U`` of attributes plus edges ``F`` forming an LW pattern on
``U``, no ``U``-troublesome attribute), instances exist where every
join-tree strategy needs ``Omega(N^2/|U|^2)`` while Algorithm 2 runs within
the ``O(N^{1+1/(|U|-1)})`` cover bound.

Reproduced shape: on the lifted triangle (``U = {A,B,C}``, shared padded
attribute ``D``), every binary plan's peak intermediate grows
quadratically; NPRR's work grows linearly; the fractional cover
``x_e = 1/2`` on F bounds the output by ``N^{3/2}``.
"""

from __future__ import annotations

import math

from repro.baselines.plans import best_binary_plan
from repro.core.nprr import NPRRJoin
from repro.hypergraph.agm import agm_log_bound, optimal_fractional_cover
from repro.utils.tables import format_table
from repro.utils.timing import timed
from repro.workloads import instances

from benchmarks.conftest import record_table


def test_e4_gap_table(benchmark):
    rows = []
    series = {}
    for size in (100, 200, 400):
        query = instances.beyond_lw_instance(size)
        realized = query.sizes()["R"]

        executor = NPRRJoin(query)
        nprr_time = timed(executor.execute).seconds
        nprr_work = executor.stats.comparisons + executor.stats.tuples_emitted

        plan_run = timed(lambda q=query: best_binary_plan(q))
        _plan, _result, stats = plan_run.result

        cover = optimal_fractional_cover(query.hypergraph, query.sizes())
        bound = math.exp(
            agm_log_bound(query.hypergraph, query.sizes(), cover)
        )
        series[size] = (nprr_work, stats.max_intermediate)
        rows.append(
            (
                size,
                realized,
                f"{bound:.0f}",
                f"{nprr_time:.4f}",
                nprr_work,
                f"{plan_run.seconds:.4f}",
                stats.max_intermediate,
            )
        )
    record_table(
        format_table(
            (
                "N req",
                "N realized",
                "AGM bound",
                "nprr s",
                "nprr work",
                "best-plan s",
                "plan peak interm",
            ),
            rows,
            title=(
                "E4 (Lemma 6.3): lifted LW query - binary plans quadratic, "
                "Algorithm 2 within the N^{3/2} cover bound"
            ),
        )
    )

    nprr_small, plan_small = series[100]
    nprr_large, plan_large = series[400]
    assert plan_large / plan_small > 8   # ~quadratic over a 4x size step
    assert nprr_large / max(1, nprr_small) < 8  # ~linear

    benchmark.pedantic(
        lambda: NPRRJoin(instances.beyond_lw_instance(400)).execute(),
        rounds=3,
        iterations=1,
    )
