"""Aggregate benchmark: count-vs-enumerate work, sampling cost, parity.

Emits ``benchmarks/BENCH_aggregate.json`` measuring what the fold
protocol buys over enumeration on two workloads — ``zipf`` (a dense
skewed triangle, where nothing can be pruned and the win is pure
delivery cost) and ``chain`` (a four-attribute path, where the fold's
factorized pruning and leaf counting skip whole subtrees):

* ``probes``  — **deterministic** counts of ``__getitem__`` accesses to
  the sorted backend's row array during one full enumeration versus one
  ``count()`` fold, plus the number of ``add`` state updates the fold
  performs.  The work model charges enumeration ``probes + rows x
  levels`` (every output row materializes ``levels`` values and bubbles
  up through the generator stack) and the fold ``probes + adds``; the
  chain workload's generic-join work ratio is gated — pruning must keep
  it at least :data:`CHAIN_WORK_FLOOR`.
* ``wall``    — best-of wall seconds for full enumeration versus
  ``Q(...).count()`` per algorithm.  The zipf triangle's generic-join
  ``count_speedup`` is the headline acceptance number: the fold must be
  at least :data:`COUNT_SPEEDUP_FLOOR` times faster than enumerating
  the same rows.  Speedups are same-host ratios (like the stats and
  engine benches), so they survive host changes; raw seconds are
  context only.
* ``sample``  — wall cost of ``sample(5)`` against a full enumeration:
  the AGM-weighted sampler must not pay anywhere near the full join to
  draw a handful of rows.  Reported, never gated.
* ``parity``  — ``count()`` must equal the enumerated row count across
  algorithms, backends, sharded/grouped execution; samples must be
  distinct result rows.

Run standalone (``PYTHONPATH=src python benchmarks/bench_aggregate.py``)
or with ``--smoke`` for the CI-sized instance.  Exits non-zero when a
floor is missed or any parity flag is false.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import random
import sys

from bench_compact import _instrument

from repro.aggregate.fold import Folder
from repro.aggregate.specs import Count
from repro.core.generic_join import GenericJoin
from repro.core.leapfrog import LeapfrogTriejoin
from repro.core.query import JoinQuery
from repro.query.builder import Q
from repro.relations.relation import Relation
from repro.utils.timing import best_of
from repro.workloads import generators, queries

RESULT_PATH = pathlib.Path(__file__).parent / "BENCH_aggregate.json"

#: Acceptance floors.  ``count()`` on the dense zipf triangle must beat
#: enumeration by at least this wall factor (generic join — the fold
#: replaces per-row tuple construction, generator bubbling, and consumer
#: iteration with leaf counting)...
COUNT_SPEEDUP_FLOOR = 2.0
#: ...and on the chain the *deterministic* work ratio (probes + values
#: delivered vs probes + state updates) must show factorized pruning
#: skipping at least half the work.
CHAIN_WORK_FLOOR = 2.0

LEVELS = 3  # attributes per workload query (both are ternary outputs)


class CountingFolder(Folder):
    """A Folder that counts its ``add`` calls (fold-side state updates)."""

    __slots__ = ("adds",)

    def __init__(self, spec, order) -> None:
        super().__init__(spec, order)
        self.adds = 0

    def add(self, prefix, multiplicity) -> None:
        self.adds += 1
        super().add(prefix, multiplicity)


def _chain(scale: int, seed: int = 5) -> JoinQuery:
    """R(A,B) |x| S(B,C) |x| T(C,D): single-participant deep levels, so
    the fold's pruning actually fires (a triangle never prunes)."""
    rng = random.Random(seed)
    n, domain = 500 * scale, 15 * scale

    def rows():
        return sorted(
            {
                (rng.randrange(domain), rng.randrange(domain))
                for _ in range(n)
            }
        )

    return JoinQuery(
        [
            Relation("R", ("A", "B"), rows()),
            Relation("S", ("B", "C"), rows()),
            Relation("T", ("C", "D"), rows()),
        ]
    )


def _workloads(scale: int) -> list[tuple[str, JoinQuery]]:
    # The zipf triangle is deliberately *dense* (many draws over a small
    # skewed domain): wide per-prefix intersections are where delivery
    # cost dominates probe cost, i.e. where counting should shine.
    domain = 30 * max(1, round(scale**0.5))
    return [
        (
            "zipf",
            generators.random_instance(
                queries.triangle(), 8000 * scale, domain, seed=18,
                skew=1.1,
            ),
        ),
        ("chain", _chain(scale)),
    ]


def bench_probes(query) -> dict:
    """Deterministic enumeration-vs-fold work, sorted backend only."""
    order = query.attributes
    levels = len(order)
    out: dict = {}
    for algorithm, cls in (
        ("generic", GenericJoin),
        ("leapfrog", LeapfrogTriejoin),
    ):
        executor = cls(query, order, backend="sorted")
        counter = _instrument(executor)
        rows = sum(1 for _ in executor.iter_join())
        enumerate_probes = counter[0]

        executor = cls(query, order, backend="sorted")
        counter = _instrument(executor)
        folder = CountingFolder(Count(), order)
        executor.fold(folder)
        fold_probes = counter[0]

        enumerate_work = enumerate_probes + rows * levels
        fold_work = fold_probes + folder.adds
        out[algorithm] = {
            "rows": rows,
            "enumerate": enumerate_probes,
            "fold": fold_probes,
            "fold_adds": folder.adds,
            "work_ratio": enumerate_work / fold_work if fold_work else None,
            "rows_match": folder.result() == rows,
        }
    return out


def bench_wall(query, repeats: int) -> dict:
    """Best-of wall seconds: full enumeration vs ``count()`` per
    algorithm.  The speedup is a same-host ratio — the gated signal."""
    relations = list(query.relations.values())
    out: dict = {}
    for algorithm in ("generic", "leapfrog"):
        builder = Q(*relations).using(algorithm=algorithm)
        enumerate_run = best_of(
            lambda: sum(1 for _ in builder.stream()), repeats
        )
        count_run = best_of(builder.count, repeats)
        out[algorithm] = {
            "enumerate_seconds": enumerate_run.seconds,
            "count_seconds": count_run.seconds,
            "count_speedup": (
                enumerate_run.seconds / count_run.seconds
                if count_run.seconds
                else None
            ),
        }
    return out


def bench_sample(query, repeats: int, k: int = 5) -> dict:
    """Wall cost of drawing ``k`` uniform rows vs enumerating them all."""
    relations = list(query.relations.values())
    builder = Q(*relations)
    rows = set(builder.stream())
    sample_run = best_of(lambda: builder.sample(k, seed=7), repeats)
    full_run = best_of(lambda: list(builder.stream()), repeats)
    sample = builder.sample(k, seed=7)
    return {
        "k": k,
        "sample_seconds": sample_run.seconds,
        "enumerate_seconds": full_run.seconds,
        "speedup": (
            full_run.seconds / sample_run.seconds
            if sample_run.seconds
            else None
        ),
        "valid": (
            len(sample) == min(k, len(rows))
            and len(set(sample)) == len(sample)
            and set(sample) <= rows
        ),
    }


def bench_parity(query) -> dict:
    """count()/group_by() agreement with enumeration across layers."""
    relations = list(query.relations.values())
    reference = list(Q(*relations).stream())
    expected = len(reference)
    first = query.attributes[0]
    position = 0
    grouped_expected: dict = {}
    for row in reference:
        key = (row[position],)
        grouped_expected[key] = grouped_expected.get(key, 0) + 1

    checks = {
        "generic_trie": Q(*relations).using(
            algorithm="generic", backend="trie"
        ).count(),
        "generic_compact": Q(*relations).using(
            algorithm="generic", backend="compact"
        ).count(),
        "leapfrog_sorted": Q(*relations).using(
            algorithm="leapfrog", backend="sorted"
        ).count(),
        "nprr": Q(*relations).using(algorithm="nprr").count(),
        "sharded": Q(*relations).using(shards=3, mode="serial").count(),
    }
    flags = {name: value == expected for name, value in checks.items()}
    flags["grouped"] = (
        Q(*relations).group_by(first).count() == grouped_expected
    )
    flags["rows"] = expected
    return flags


def run(scale: int, repeats: int) -> dict:
    results: dict = {
        "scale": scale,
        "count_speedup_floor": COUNT_SPEEDUP_FLOOR,
        "chain_work_floor": CHAIN_WORK_FLOOR,
        "workloads": {},
    }
    for name, query in _workloads(scale):
        results["workloads"][name] = {
            "sizes": query.sizes(),
            "probes": bench_probes(query),
            "wall": bench_wall(query, repeats),
            "sample": bench_sample(query, repeats),
            "parity": bench_parity(query),
        }
    results["count_speedup"] = results["workloads"]["zipf"]["wall"][
        "generic"
    ]["count_speedup"]
    results["chain_work_ratio"] = results["workloads"]["chain"]["probes"][
        "generic"
    ]["work_ratio"]
    return results


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true", help="tiny CI-sized instances"
    )
    parser.add_argument(
        "-o", "--output", default=str(RESULT_PATH), help="result JSON path"
    )
    args = parser.parse_args(argv)
    scale = 1 if args.smoke else 4
    repeats = 5 if args.smoke else 3
    results = run(scale, repeats)
    path = pathlib.Path(args.output)
    path.write_text(json.dumps(results, indent=2) + "\n")
    print(f"aggregate benchmark -> {path}")
    failures = 0
    for name, data in results["workloads"].items():
        probes = data["probes"]
        wall = data["wall"]
        print(
            f"  {name}: count speedup {wall['generic']['count_speedup']:.2f}x"
            f" wall, work ratio {probes['generic']['work_ratio']:.2f}x,"
            f" sample speedup {data['sample']['speedup']:.1f}x"
        )
        for algorithm in ("generic", "leapfrog"):
            if not probes[algorithm]["rows_match"]:
                print(f"  FAIL: {name} {algorithm} fold count diverged")
                failures += 1
        if data["sample"]["valid"] is not True:
            print(f"  FAIL: {name} sample invalid")
            failures += 1
        for flag, value in data["parity"].items():
            if flag != "rows" and value is not True:
                print(f"  FAIL: {name} parity {flag}")
                failures += 1
    speedup = results["count_speedup"]
    if speedup is None or speedup < COUNT_SPEEDUP_FLOOR:
        print(
            f"  FAIL: zipf count speedup {speedup} below floor "
            f"{COUNT_SPEEDUP_FLOOR}"
        )
        failures += 1
    ratio = results["chain_work_ratio"]
    if ratio is None or ratio < CHAIN_WORK_FLOOR:
        print(
            f"  FAIL: chain work ratio {ratio} below floor "
            f"{CHAIN_WORK_FLOOR}"
        )
        failures += 1
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
