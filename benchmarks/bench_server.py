"""Server benchmark: prepared-cache wins, admission cost, throughput.

Emits ``benchmarks/BENCH_server.json`` measuring the three claims the
query service makes, over a real ``JoinServer`` on a loopback socket:

* ``cache``      — per-request wall for *cold* submissions (each a
  distinct normalized text, so every one pays parse + compile + plan)
  versus *warm* repeats of one statement (prepared-cache hits that
  replay the frozen plan).  ``hit_speedup`` (cold / warm, a same-host
  ratio) is the headline number; ``zero_index_builds_on_hit`` asserts
  the catalog's index-cache miss counter stayed flat across every hit.
* ``admission``  — per-request wall for rejecting an over-budget
  enumeration query (parse + LP solve, nothing else) versus actually
  executing it on an unrestricted server.  ``rejection_speedup``
  (execute / reject) is the paper's admission-control argument in one
  ratio, and ``rejected_without_index_builds`` pins that rejection
  happened before any index was built.
* ``throughput`` — total requests/second with ``CLIENTS`` concurrent
  client threads versus the same request count down one connection.
  ``concurrent_vs_serial`` shows the event loop multiplexing rather
  than collapsing under concurrency; ``parity`` checks every
  concurrent client saw exactly the builder's rows.

Speedups are same-host ratios (like the engine and stats benches) so
they survive host changes; raw seconds are context only.  Run
standalone (``PYTHONPATH=src python benchmarks/bench_server.py``) or
with ``--smoke`` for the CI-sized instance.  The schema is pinned by
``tools/check_bench_server.py``; the ratio metrics are gated against
the committed baseline by ``tools/check_bench_regression.py``.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import pathlib
import sys
import threading
import time

from repro.query.builder import Q
from repro.relations.database import Database
from repro.server import AdmissionController, JoinServer, ServerClient
from repro.version import __version__
from repro.workloads import generators, queries

RESULT_PATH = pathlib.Path(__file__).parent / "BENCH_server.json"

CLIENTS = 4  # concurrent client threads in the throughput section


def _cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:
        return os.cpu_count() or 1


class ServerHarness:
    """A ``JoinServer`` on a background event-loop thread."""

    def __init__(self, server: JoinServer) -> None:
        self.server = server
        self.loop = asyncio.new_event_loop()
        started = threading.Event()

        def runner() -> None:
            asyncio.set_event_loop(self.loop)
            self.loop.run_until_complete(server.start())
            started.set()
            self.loop.run_forever()

        self.thread = threading.Thread(target=runner, daemon=True)
        self.thread.start()
        started.wait(timeout=30)
        self.host, self.port = server.address

    def close(self) -> None:
        future = asyncio.run_coroutine_threadsafe(
            self.server.stop(drain=False), self.loop
        )
        future.result(timeout=30)
        self.loop.call_soon_threadsafe(self.loop.stop)
        self.thread.join(timeout=30)
        self.loop.close()


def _database(scale: int) -> Database:
    query = generators.random_instance(
        queries.triangle(), 600 * scale, 40 * scale, seed=11, skew=1.1
    )
    return Database(list(query.relations.values()))


def _domain_values(database: Database) -> list[int]:
    relation = database["R"]
    position = relation.attributes.index("A")
    return sorted({row[position] for row in relation.tuples})


def bench_cache(scale: int, requests: int) -> dict:
    """Cold parse+compile+plan per request vs prepared-cache hits.

    Deliberately a *small* catalog: execution cost is near zero, so the
    per-request wall is dominated by exactly what the cache removes —
    parse + compile + plan + prepare.  (On execution-heavy queries the
    cache's absolute win is the same; it just stops being the
    bottleneck.)
    """
    query = generators.random_instance(
        queries.triangle(), 120, 12, seed=11
    )
    database = Database(list(query.relations.values()))
    anchor = _domain_values(database)[0]

    def statement(i: int) -> str:
        # A distinct unused literal makes each normalized text unique
        # (a guaranteed cache miss) without changing the result; the
        # single live value keeps execution cheap, so the request cost
        # is dominated by what the cache removes: parse + plan.
        return (
            f"select count(*) from R, S, T "
            f"where A in ({anchor}, {10_000_000 + i});"
        )

    harness = ServerHarness(JoinServer(database))
    try:
        with ServerClient(harness.host, harness.port) as client:
            cold_walls = []
            answers = set()
            for i in range(requests):
                start = time.perf_counter()
                outcome = client.query(statement(i))
                cold_walls.append(time.perf_counter() - start)
                assert outcome.cached is False
                answers.add(outcome.rows[0][0])

            warm_text = statement(0)
            client.query(warm_text)  # ensure it is resident
            misses_before = database.cache_info().misses
            warm_walls = []
            for _ in range(requests):
                start = time.perf_counter()
                outcome = client.query(warm_text)
                warm_walls.append(time.perf_counter() - start)
                assert outcome.cached is True
                answers.add(outcome.rows[0][0])
            misses_after = database.cache_info().misses
            stats = client.stats()
    finally:
        harness.close()

    cold = sum(cold_walls) / len(cold_walls)
    warm = sum(warm_walls) / len(warm_walls)
    return {
        "requests": requests,
        "cold_seconds_per_request": cold,
        "warm_seconds_per_request": warm,
        "hit_speedup": cold / warm if warm else None,
        "zero_index_builds_on_hit": misses_after == misses_before,
        "one_answer": len(answers) == 1,
        "cache_hits": stats["prepared_cache"]["hits"],
    }


def bench_admission(scale: int, requests: int) -> dict:
    """Rejection cost (parse + LP solve) vs actually running the query."""
    enumeration = "select * from R, S, T;"

    # Unrestricted server: what the query costs when admitted.
    database = _database(scale)
    harness = ServerHarness(JoinServer(database))
    try:
        with ServerClient(harness.host, harness.port) as client:
            start = time.perf_counter()
            outcome = client.query(enumeration, batch=4096)
            execute_seconds = time.perf_counter() - start
            rows = len(outcome.rows)
            bound = outcome.bound
    finally:
        harness.close()

    # Guarded server, fresh catalog: every submission is rejected from
    # the AGM bound alone, before any index exists.
    database = _database(scale)
    harness = ServerHarness(
        JoinServer(database, admission=AdmissionController(row_budget=1.0))
    )
    try:
        with ServerClient(harness.host, harness.port) as client:
            reject_walls = []
            rejections = 0
            for _ in range(requests):
                start = time.perf_counter()
                try:
                    client.query(enumeration)
                except Exception:
                    rejections += 1
                reject_walls.append(time.perf_counter() - start)
        index_misses = database.cache_info().misses
    finally:
        harness.close()

    reject = sum(reject_walls) / len(reject_walls)
    return {
        "requests": requests,
        "rows": rows,
        "bound": bound,
        "execute_seconds": execute_seconds,
        "reject_seconds_per_request": reject,
        "rejection_speedup": execute_seconds / reject if reject else None,
        "all_rejected": rejections == requests,
        "rejected_without_index_builds": index_misses == 0,
    }


def bench_throughput(scale: int, per_client: int) -> dict:
    """Concurrent-client multiplexing vs the same load down one socket."""
    database = _database(scale)
    relations = [database[name] for name in ("R", "S", "T")]
    expected = sorted(Q(*relations).on(database).stream())
    enumeration = "select * from R, S, T;"
    total = CLIENTS * per_client

    harness = ServerHarness(JoinServer(database))
    try:
        # Warm the prepared cache and the indexes once: the section
        # measures request multiplexing, not first-plan latency.
        with ServerClient(harness.host, harness.port) as client:
            client.query(enumeration)

        with ServerClient(harness.host, harness.port) as client:
            start = time.perf_counter()
            for _ in range(total):
                client.query(enumeration, batch=4096)
            serial_seconds = time.perf_counter() - start

        matched = []

        def worker() -> None:
            with ServerClient(harness.host, harness.port) as client:
                ok = True
                for _ in range(per_client):
                    outcome = client.query(enumeration, batch=4096)
                    ok = ok and sorted(outcome.rows) == expected
                matched.append(ok)

        threads = [
            threading.Thread(target=worker) for _ in range(CLIENTS)
        ]
        start = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        concurrent_seconds = time.perf_counter() - start
    finally:
        harness.close()

    serial_qps = total / serial_seconds
    concurrent_qps = total / concurrent_seconds
    return {
        "clients": CLIENTS,
        "requests_per_client": per_client,
        "rows_per_request": len(expected),
        "serial_qps": serial_qps,
        "concurrent_qps": concurrent_qps,
        "concurrent_vs_serial": concurrent_qps / serial_qps,
        "parity": len(matched) == CLIENTS and all(matched),
    }


def run(scale: int, requests: int, per_client: int) -> dict:
    return {
        "host": {"cpus": _cpus()},
        "version": __version__,
        "definitions": {
            "hit_speedup": "mean cold request wall (unique normalized "
            "text: parse + compile + plan + prepare) / mean warm "
            "request wall (prepared-cache hit replaying the frozen "
            "plan) — same host, same statement shape",
            "rejection_speedup": "wall to execute the enumeration "
            "query once, admitted / mean wall to reject it from the "
            "AGM bound (parse + LP solve, no index builds)",
            "concurrent_vs_serial": "requests per second with "
            "concurrent client threads / requests per second down a "
            "single pipelined connection, same warm statement",
        },
        "scale": scale,
        "workloads": {
            "cache": bench_cache(scale, requests),
            "admission": bench_admission(scale, requests),
            "throughput": bench_throughput(scale, per_client),
        },
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true", help="tiny CI-sized instances"
    )
    parser.add_argument(
        "-o", "--output", default=str(RESULT_PATH), help="result JSON path"
    )
    args = parser.parse_args(argv)
    scale = 1 if args.smoke else 3
    requests = 20 if args.smoke else 50
    per_client = 5 if args.smoke else 20
    results = run(scale, requests, per_client)
    path = pathlib.Path(args.output)
    path.write_text(json.dumps(results, indent=2) + "\n")
    print(f"server benchmark -> {path}")

    workloads = results["workloads"]
    cache = workloads["cache"]
    admission = workloads["admission"]
    throughput = workloads["throughput"]
    print(
        f"  cache: hit speedup {cache['hit_speedup']:.1f}x "
        f"({cache['cold_seconds_per_request'] * 1e3:.2f} ms cold vs "
        f"{cache['warm_seconds_per_request'] * 1e3:.2f} ms warm)"
    )
    print(
        f"  admission: rejection speedup "
        f"{admission['rejection_speedup']:.1f}x "
        f"({admission['reject_seconds_per_request'] * 1e3:.2f} ms to "
        f"refuse a {admission['bound']:.0f}-row bound)"
    )
    print(
        f"  throughput: {throughput['concurrent_qps']:.0f} rps with "
        f"{CLIENTS} clients vs {throughput['serial_qps']:.0f} rps "
        f"serial ({throughput['concurrent_vs_serial']:.2f}x)"
    )

    failures = 0
    for name, flag in (
        ("cache.zero_index_builds_on_hit",
         cache["zero_index_builds_on_hit"]),
        ("cache.one_answer", cache["one_answer"]),
        ("admission.all_rejected", admission["all_rejected"]),
        ("admission.rejected_without_index_builds",
         admission["rejected_without_index_builds"]),
        ("throughput.parity", throughput["parity"]),
    ):
        if flag is not True:
            print(f"  FAIL: {name}")
            failures += 1
    if cache["hit_speedup"] is None or cache["hit_speedup"] < 1.0:
        print(
            f"  FAIL: cache hit speedup {cache['hit_speedup']} — the "
            "prepared cache must not lose to cold planning"
        )
        failures += 1
    if (
        admission["rejection_speedup"] is None
        or admission["rejection_speedup"] < 1.0
    ):
        print(
            f"  FAIL: rejection speedup {admission['rejection_speedup']}"
            " — refusing must be cheaper than executing"
        )
        failures += 1
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
