"""E1 — Example 2.2 / Section 1: the motivating Omega(N^2) vs O(N) gap.

Paper claim: on the instance family ``I_N`` (triangle query,
``R = S = T = {(0,j)} cup {(j,0)}``), every binary-join plan and AGM's
join-project algorithm take ``Omega(N^2)`` time, while the AGM bound is
``N^{3/2}`` and Algorithms 1 / 2 run in ``O(N)`` (Lemma 6.2's analysis
gives ``O(n^2 N)``).

Reproduced shape: the baselines' *materialized work* (intermediate tuple
counts — deterministic, machine-independent) grows quadratically with N
while the WCOJ executors' work counters grow linearly; wall-clock times
show the same split.
"""

from __future__ import annotations

import pytest

from repro.baselines.hash_join import chain_hash_join
from repro.baselines.join_project import agm_join_project
from repro.core.generic_join import generic_join
from repro.core.leapfrog import leapfrog_join
from repro.core.lw import LWJoin, lw_join
from repro.core.nprr import NPRRJoin
from repro.utils.tables import format_table
from repro.utils.timing import timed
from repro.workloads import instances

from benchmarks.conftest import record_table

SWEEP = (400, 800, 1600)


def test_e1_shape_table(benchmark):
    rows = []
    work = {}
    for n in SWEEP:
        query = instances.triangle_hard_instance(n)

        executor = NPRRJoin(query)
        t_nprr = timed(executor.execute).seconds
        nprr_work = (
            executor.stats.comparisons + executor.stats.tuples_emitted
        )

        t_lw = timed(lambda q=query: lw_join(q)).seconds
        t_gj = timed(lambda q=query: generic_join(q)).seconds
        t_lf = timed(lambda q=query: leapfrog_join(q)).seconds

        hash_result = timed(lambda q=query: chain_hash_join(q))
        _out, hash_stats = hash_result.result
        jp_result = timed(lambda q=query: agm_join_project(q))
        _out2, jp_stats = jp_result.result

        bound = n**1.5
        work[n] = (nprr_work, hash_stats.max_intermediate)
        rows.append(
            (
                n,
                f"{bound:.0f}",
                f"{t_nprr:.4f}",
                f"{t_lw:.4f}",
                f"{t_gj:.4f}",
                f"{t_lf:.4f}",
                f"{hash_result.seconds:.4f}",
                f"{jp_result.seconds:.4f}",
                nprr_work,
                hash_stats.max_intermediate,
                jp_stats.max_intermediate,
            )
        )
    record_table(
        format_table(
            (
                "N",
                "AGM bound",
                "nprr s",
                "lw s",
                "generic s",
                "leapfrog s",
                "hash s",
                "joinproj s",
                "nprr work",
                "hash interm",
                "jp interm",
            ),
            rows,
            title=(
                "E1 (Example 2.2): triangle hard instance - WCOJ linear vs "
                "binary/join-project quadratic"
            ),
        )
    )

    # Deterministic shape assertions: quadratic vs linear work growth.
    n_small, n_large = SWEEP[0], SWEEP[-1]
    factor = n_large // n_small
    nprr_small, hash_small = work[n_small]
    nprr_large, hash_large = work[n_large]
    assert hash_small == n_small**2 // 4 + n_small // 2
    assert hash_large == n_large**2 // 4 + n_large // 2
    assert hash_large / hash_small > factor**1.8  # quadratic growth
    assert nprr_large / max(1, nprr_small) < factor * 2  # linear growth

    benchmark.pedantic(
        lambda: NPRRJoin(instances.triangle_hard_instance(SWEEP[-1])).execute(),
        rounds=3,
        iterations=1,
    )


@pytest.mark.parametrize(
    "name,runner",
    [
        ("nprr", lambda q: NPRRJoin(q).execute()),
        ("lw", lw_join),
        ("generic", generic_join),
        ("leapfrog", leapfrog_join),
        ("hash", lambda q: chain_hash_join(q)[0]),
        ("join_project", lambda q: agm_join_project(q)[0]),
    ],
)
def test_e1_algorithms(benchmark, name, runner):
    query = instances.triangle_hard_instance(800)
    result = benchmark.pedantic(lambda: runner(query), rounds=3, iterations=1)
    assert result.is_empty()
