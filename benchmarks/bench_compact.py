"""Compact backend benchmark: probe counts, memory, and wall ratios.

Emits ``benchmarks/BENCH_compact.json`` comparing the packed flat-array
``"compact"`` backend against the ``"sorted"`` tuple array and the hash
trie on four triangle workloads — ``dense`` (consecutive-integer
domains, the radix fast path's home turf), ``zipf`` (mild skew),
``trap`` (the statistics benchmark's decoy shape), and ``hub`` (one
extreme heavy hitter):

* ``probes``  — **deterministic** counts of ``__getitem__`` accesses to
  each index's internal value storage (the sorted backend's row array,
  the compact backend's per-level arrays) during one full join, for
  Generic Join and Leapfrog.  The compact/sorted ratio is the gated
  number: galloping from per-level hints plus radix/interpolated starts
  must touch the arrays strictly less than plain binary search — at
  least 1.5x less on the dense workload.
* ``memory``  — measured ``nbytes()`` per backend and the
  compact-vs-trie / compact-vs-sorted ratios (packed ``array('q')``
  levels vs per-node dicts vs per-row tuples).
* ``pickle``  — serialized sizes of the flat backends (what process-mode
  sharding actually ships).
* ``wall``    — best-of wall seconds per backend, reported for context
  only and **never gated** (CI hosts differ; the ratio metrics above
  are the host-independent signal).
* ``parity``  — every algorithm and execution mode over compact indexes
  must produce exactly the rows of the trie-backed reference run.

Run standalone (``PYTHONPATH=src python benchmarks/bench_compact.py``)
or with ``--smoke`` for the CI-sized instance.  Exits non-zero when the
dense-workload probe ratio drops below :data:`DENSE_PROBE_FLOOR` or any
parity flag is false.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import pathlib
import pickle
import sys

from repro.api import aiter_join, iter_join, join_batched, shard_join
from repro.core.generic_join import GenericJoin
from repro.core.leapfrog import LeapfrogTriejoin
from repro.engine.compact import CompactArrayIndex
from repro.relations.sorted_index import SortedArrayIndex
from repro.relations.trie import TrieIndex
from repro.utils.timing import best_of
from repro.workloads import generators, queries

RESULT_PATH = pathlib.Path(__file__).parent / "BENCH_compact.json"

#: The acceptance floor: on the dense workload the compact backend must
#: touch its value arrays at least this factor less than the sorted
#: backend touches its row array (Generic Join, same order, same rows).
DENSE_PROBE_FLOOR = 1.5


class CountingSeq:
    """A sequence proxy counting every ``__getitem__`` (one "probe").

    Wrapped around an index's internal value storage *after*
    construction, it observes exactly the accesses the join's seeks and
    enumerations perform — a deterministic, host-independent work
    measure (unlike wall time).
    """

    __slots__ = ("_seq", "_counter")

    def __init__(self, seq, counter: list) -> None:
        self._seq = seq
        self._counter = counter

    def __getitem__(self, position):
        self._counter[0] += 1
        return self._seq[position]

    def __len__(self) -> int:
        return len(self._seq)

    def __iter__(self):
        return iter(self._seq)


def _instrument(executor) -> list:
    """Wrap every index's value storage in place; returns the counter."""
    counter = [0]
    for index in executor._indexes:
        if isinstance(index, SortedArrayIndex):
            index.rows = CountingSeq(index.rows, counter)
        elif isinstance(index, CompactArrayIndex):
            index._levels = tuple(
                CountingSeq(level, counter) for level in index._levels
            )
        else:  # pragma: no cover - only flat backends are instrumented
            raise TypeError(f"cannot instrument {type(index).__name__}")
    return counter


def _workloads(scale: int) -> list[tuple[str, object]]:
    return [
        ("dense", generators.dense_triangle(400 * scale, 4, seed=17)),
        (
            "zipf",
            generators.random_instance(
                queries.triangle(), 1000 * scale, 50 * scale, seed=18,
                skew=1.2,
            ),
        ),
        (
            "trap",
            generators.zipf_trap_triangle(
                300 * scale, 900 * scale, seed=19
            ),
        ),
        (
            "hub",
            generators.hub_triangle(
                light_domain=60 * scale,
                b_domain=100 * scale,
                c_domain=2400 * scale,
                r_size=600 * scale,
                s_size=1600 * scale,
                t_size=4800 * scale,
                seed=20,
            ),
        ),
    ]


def bench_probes(query, order) -> dict:
    """Deterministic value-storage probe counts, flat backends only."""
    out: dict = {}
    for algorithm, factory in (
        (
            "generic",
            lambda kind: GenericJoin(query, order, backend=kind),
        ),
        (
            "leapfrog",
            lambda kind: LeapfrogTriejoin(query, order, backend=kind),
        ),
    ):
        counts = {}
        rows = {}
        for kind in ("sorted", "compact"):
            executor = factory(kind)
            counter = _instrument(executor)
            rows[kind] = sorted(executor.iter_join())
            counts[kind] = counter[0]
        out[algorithm] = {
            "sorted": counts["sorted"],
            "compact": counts["compact"],
            "ratio": (
                counts["sorted"] / counts["compact"]
                if counts["compact"]
                else None
            ),
            "rows_match": rows["sorted"] == rows["compact"],
        }
    return out


def bench_memory(query, order) -> dict:
    """Measured index bytes per backend, summed over the relations."""
    sizes = {"trie": 0, "sorted": 0, "compact": 0}
    pickled = {"sorted": 0, "compact": 0}
    rank = {a: i for i, a in enumerate(order)}
    for relation in query.relations.values():
        index_order = tuple(
            sorted(relation.attributes, key=rank.__getitem__)
        )
        for kind, cls in (
            ("trie", TrieIndex),
            ("sorted", SortedArrayIndex),
            ("compact", CompactArrayIndex),
        ):
            index = cls(relation, index_order)
            sizes[kind] += index.nbytes()
            if kind in pickled:
                pickled[kind] += len(pickle.dumps(index))
    return {
        "nbytes": sizes,
        "compact_vs_trie": sizes["trie"] / sizes["compact"],
        "compact_vs_sorted": sizes["sorted"] / sizes["compact"],
        "pickle_bytes": pickled,
    }


def bench_wall(query, order, repeats: int) -> dict:
    """Best-of wall seconds per backend — context only, never gated."""
    out: dict = {"generic": {}, "leapfrog": {}}
    for kind in ("trie", "sorted", "compact"):
        run = best_of(
            lambda kind=kind: GenericJoin(
                query, order, backend=kind
            ).execute(),
            repeats,
        )
        out["generic"][f"{kind}_seconds"] = run.seconds
    for kind in ("sorted", "compact"):
        run = best_of(
            lambda kind=kind: LeapfrogTriejoin(
                query, order, backend=kind
            ).execute(),
            repeats,
        )
        out["leapfrog"][f"{kind}_seconds"] = run.seconds
    generic = out["generic"]
    generic["compact_vs_trie"] = (
        generic["trie_seconds"] / generic["compact_seconds"]
        if generic["compact_seconds"]
        else None
    )
    return out


def bench_parity(query) -> dict:
    """Row parity of every algorithm / mode against the trie reference."""
    reference = set(iter_join(query, algorithm="generic", backend="trie"))

    async def _collect_async():
        stream = aiter_join(query, algorithm="generic", backend="compact")
        return {row async for row in stream}

    checks = {
        "generic_compact": set(
            iter_join(query, algorithm="generic", backend="compact")
        ),
        "leapfrog_compact": set(
            iter_join(query, algorithm="leapfrog", backend="compact")
        ),
        "leapfrog_sorted": set(
            iter_join(query, algorithm="leapfrog", backend="sorted")
        ),
        "nprr": set(iter_join(query, algorithm="nprr")),
        "lw": set(iter_join(query, algorithm="lw")),
        "arity2": set(iter_join(query, algorithm="arity2")),
        "sharded_compact": set(
            shard_join(
                query,
                shards=3,
                algorithm="generic",
                backend="compact",
                mode="serial",
            )
        ),
        "batched_compact": {
            row
            for batch in join_batched(
                query,
                algorithm="generic",
                backend="compact",
                batch_size=512,
            )
            for row in batch
        },
        "async_compact": asyncio.run(_collect_async()),
    }
    flags = {name: rows == reference for name, rows in checks.items()}
    flags["rows"] = len(reference)
    return flags


def run(scale: int, repeats: int) -> dict:
    results: dict = {
        "scale": scale,
        "dense_probe_floor": DENSE_PROBE_FLOOR,
        "workloads": {},
    }
    for name, query in _workloads(scale):
        order = query.attributes
        results["workloads"][name] = {
            "sizes": query.sizes(),
            "probes": bench_probes(query, order),
            "memory": bench_memory(query, order),
            "wall": bench_wall(query, order, repeats),
            "parity": bench_parity(query),
        }
    dense = results["workloads"]["dense"]["probes"]["generic"]["ratio"]
    results["dense_probe_ratio"] = dense
    return results


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true", help="tiny CI-sized instances"
    )
    parser.add_argument(
        "-o", "--output", default=str(RESULT_PATH), help="result JSON path"
    )
    args = parser.parse_args(argv)
    scale = 1 if args.smoke else 4
    repeats = 1 if args.smoke else 3
    results = run(scale, repeats)
    path = pathlib.Path(args.output)
    path.write_text(json.dumps(results, indent=2) + "\n")
    print(f"compact benchmark -> {path}")
    failures = 0
    for name, data in results["workloads"].items():
        probes = data["probes"]
        print(
            f"  {name}: generic probe ratio "
            f"{probes['generic']['ratio']:.2f}x, leapfrog "
            f"{probes['leapfrog']['ratio']:.2f}x, memory vs trie "
            f"{data['memory']['compact_vs_trie']:.2f}x"
        )
        for algorithm in ("generic", "leapfrog"):
            if not probes[algorithm]["rows_match"]:
                print(f"  FAIL: {name} {algorithm} rows diverged")
                failures += 1
        for flag, value in data["parity"].items():
            if flag != "rows" and value is not True:
                print(f"  FAIL: {name} parity {flag}")
                failures += 1
    ratio = results["dense_probe_ratio"]
    if ratio is None or ratio < DENSE_PROBE_FLOOR:
        print(
            f"  FAIL: dense probe ratio {ratio} below floor "
            f"{DENSE_PROBE_FLOOR}"
        )
        failures += 1
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
