"""Statistics benchmark: heuristic vs stats-driven plans.

Emits ``benchmarks/BENCH_stats.json`` comparing, per workload, two ways
of planning the same generic-join query:

* **heuristic** — the pre-statistics planner: attribute order by
  ascending min-distinct count (``StatsConfig(sample_size=0)``), shard
  count by the legacy size-and-CPU rule (1 below the auto-shard
  threshold, else one per CPU capped at 8);
* **stats** — the statistics-driven planner: order by sampled
  selectivity descent, ``shards="auto"`` sized from heavy-hitter mass
  (each hot value of the first attribute gets its own shard).

Both plans execute through ``plan_shards`` + ``iter_shard_rows`` with
each shard timed *one at a time* (no pool contention), so the reported
``critical_path_seconds = max(shard_seconds)`` is the wall time of a
pool with one core per shard — the honest number on CI hosts that may
expose a single core (see ``host.cpus``).  A 1-shard plan's critical
path is simply its serial run time.  ``speedup`` is
``heuristic.critical_path_seconds / stats.critical_path_seconds``; the
harness exits non-zero if the stats plan fails to beat the heuristic
plan on the skewed Zipf triangle (the ISSUE 3 acceptance gate) or if
any configuration loses row-set parity.

Workloads:

* ``zipf_triangle`` — the skewed triangle of ``BENCH_parallel``: every
  attribute Zipf-distributed, heavy hub values.  The stats win comes
  from heavy-aware sharding (the "Skew Strikes Back" split).
* ``trap_triangle`` — ``generators.zipf_trap_triangle``: a decoy
  attribute with few distinct values but no pruning power, and a payoff
  attribute whose cross-relation selectivity is ~5%.  Shows the order
  mechanism: min-distinct starts at the decoy, sampling starts at the
  payoff.  (Generic Join's smallest-first intersection makes triangle
  orders nearly cost-equivalent, so the serial gap is small; the JSON
  records both orders and both serial times.)
* ``clique`` — a uniform 4-clique control: no skew, no trap; the two
  planners should roughly tie.

Run standalone (``PYTHONPATH=src python benchmarks/bench_stats.py``) or
with ``--smoke`` for the CI-sized instance.  The JSON schema is pinned
by ``tools/check_bench_stats.py``.
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import sys

from repro.engine.parallel import iter_shard_rows, plan_shards
from repro.engine.planner import (
    AUTO_SHARD_MIN_TUPLES,
    MAX_AUTO_SHARDS,
    plan_join,
)
from repro.stats import StatsConfig, StatsProvider
from repro.utils.timing import timed
from repro.workloads import generators, queries

RESULT_PATH = pathlib.Path(__file__).parent / "BENCH_stats.json"

ALGORITHM = "generic"


def _cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:
        return os.cpu_count() or 1


def _workloads(scale: int) -> list[tuple[str, object]]:
    zipf = generators.random_instance(
        queries.triangle(), 9000 * scale, 150 * scale, seed=23, skew=1.1
    )
    trap = generators.zipf_trap_triangle(
        400 * scale, 6000 * scale, seed=7
    )
    clique = generators.random_instance(
        queries.clique_query(4), 1200 * scale, 40 * scale, seed=24
    )
    return [
        ("zipf_triangle", zipf),
        ("trap_triangle", trap),
        ("clique", clique),
    ]


def _legacy_shards(query) -> int:
    """The pre-statistics ``shards="auto"`` rule (size and CPUs only)."""
    if query.total_input_size() < AUTO_SHARD_MIN_TUPLES:
        return 1
    return max(1, min(MAX_AUTO_SHARDS, _cpus()))


def _run_plan(query, plan, shard_count: int) -> dict:
    """Execute a plan shard-at-a-time; report per-shard and serial times."""
    serial = timed(lambda: set(plan.iter_rows()))
    specs = plan_shards(query, shard_count, plan.attribute_order[0])
    shard_seconds: list[float] = []
    rows: set = set()
    for spec in specs:
        run = timed(
            lambda spec=spec: list(
                iter_shard_rows(
                    query,
                    spec,
                    ALGORITHM,
                    attribute_order=plan.attribute_order,
                )
            )
        )
        rows.update(run.result)
        shard_seconds.append(run.seconds)
    if not specs:  # degenerate: no candidate values at all
        shard_seconds = [serial.seconds]
    return {
        "order": list(plan.attribute_order),
        "shards": shard_count,
        "shards_planned": len(specs),
        "serial_seconds": serial.seconds,
        "shard_seconds": shard_seconds,
        "critical_path_seconds": max(shard_seconds),
        "rows": len(rows),
        "parity_with_serial": rows == serial.result,
        "reasons": list(plan.reasons),
    }


def bench_workload(query) -> dict:
    heuristic_plan = plan_join(
        query,
        ALGORITHM,
        stats=StatsProvider(config=StatsConfig(sample_size=0)),
    )
    stats_plan = plan_join(query, ALGORITHM, shards="auto")
    heuristic = _run_plan(query, heuristic_plan, _legacy_shards(query))
    stats = _run_plan(query, stats_plan, stats_plan.shards)
    stats["statistics"] = {
        "source": stats_plan.statistics.source,
        "heavy_hitters": [
            list(entry) for entry in stats_plan.statistics.heavy_hitters
        ],
        "order_estimates": [
            [attr, est] for attr, est in stats_plan.statistics.order_estimates
        ],
        "shard_heavy_mass": stats_plan.statistics.shard_heavy_mass,
    }
    parity = (
        heuristic["parity_with_serial"]
        and stats["parity_with_serial"]
        and heuristic["rows"] == stats["rows"]
    )
    return {
        "sizes": query.sizes(),
        "heuristic": heuristic,
        "stats": stats,
        "speedup": (
            heuristic["critical_path_seconds"]
            / stats["critical_path_seconds"]
        ),
        "parity": parity,
    }


def run(scale: int) -> dict:
    results: dict = {
        "host": {"cpus": _cpus()},
        "definitions": {
            "heuristic": "min-distinct attribute order (sampling "
            "disabled) + legacy size/CPU shard rule — the planner "
            "before the statistics subsystem",
            "stats": "sampled-selectivity order + shards='auto' sized "
            "from heavy-hitter mass, so hot first-attribute values get "
            "their own shard",
            "critical_path_seconds": "max over shards of the shard's "
            "standalone run time (shards share nothing, so this is the "
            "wall time with one core per shard; shards are timed one "
            "at a time to avoid contention on small hosts)",
            "speedup": "heuristic.critical_path_seconds / "
            "stats.critical_path_seconds",
        },
        "scale": scale,
        "workloads": {},
    }
    for name, query in _workloads(scale):
        results["workloads"][name] = bench_workload(query)
    return results


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true", help="tiny CI-sized instances"
    )
    parser.add_argument(
        "-o", "--output", default=str(RESULT_PATH), help="result JSON path"
    )
    args = parser.parse_args(argv)
    scale = 1 if args.smoke else 2
    results = run(scale)
    path = pathlib.Path(args.output)
    path.write_text(json.dumps(results, indent=2) + "\n")
    print(f"stats benchmark -> {path}")
    failed = False
    for name, data in results["workloads"].items():
        print(
            f"  {name}: heuristic {data['heuristic']['order']} "
            f"critical {data['heuristic']['critical_path_seconds']:.3f}s "
            f"({data['heuristic']['shards']} shard(s)) vs stats "
            f"{data['stats']['order']} critical "
            f"{data['stats']['critical_path_seconds']:.3f}s "
            f"({data['stats']['shards']} shard(s)) -> "
            f"speedup {data['speedup']:.2f}x"
        )
        if not data["parity"]:
            print(f"  PARITY FAILURE on {name}")
            failed = True
    zipf = results["workloads"]["zipf_triangle"]
    if zipf["speedup"] <= 1.0:
        print(
            "  FAILURE: stats plan does not beat the min-distinct plan "
            "on the skewed zipf triangle"
        )
        failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
