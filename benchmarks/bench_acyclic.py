"""E10 — the acyclic boundary (related work [29, 35]).

The paper positions worst-case optimal joins against the classical result
that *acyclic* queries already admit output-optimal evaluation
(Yannakakis).  This benchmark maps that boundary:

* on acyclic chains, Yannakakis and Algorithm 2 are both output-linear
  while an unreduced binary chain can blow up on dangling tuples;
* on the cyclic families (triangle, LW), Yannakakis is inapplicable —
  exactly the gap Algorithms 1-2 close.
"""

from __future__ import annotations

import pytest

from repro.baselines.hash_join import chain_hash_join
from repro.baselines.yannakakis import is_acyclic, yannakakis_join
from repro.core.nprr import nprr_join
from repro.core.query import JoinQuery
from repro.errors import QueryError
from repro.relations.relation import Relation
from repro.utils.tables import format_table
from repro.utils.timing import timed
from repro.workloads import instances, queries

from benchmarks.conftest import record_table


def dangling_chain_instance(n: int) -> JoinQuery:
    """A 3-hop chain where almost every tuple is dangling: R x S is
    Theta(N^2) but the full join has a single tuple."""
    r_rows = [(i, 0) for i in range(n)]
    s_rows = [(0, j) for j in range(n)]
    u_rows = [(0, 0)]
    return JoinQuery(
        [
            Relation("R", ("A", "B"), r_rows),
            Relation("S", ("B", "C"), s_rows),
            Relation("U", ("C", "D"), u_rows),
        ]
    )


def test_e10_dangling_chain(benchmark):
    rows = []
    for n in (200, 400, 800):
        query = dangling_chain_instance(n)
        yan = timed(lambda q=query: yannakakis_join(q))
        nprr = timed(lambda q=query: nprr_join(q))
        hash_run = timed(lambda q=query: chain_hash_join(q, order=("R", "S", "U")))
        _out, stats = hash_run.result
        assert yan.result.equivalent(nprr.result)
        assert len(yan.result) == n  # (i, 0, 0, 0) for every i
        rows.append(
            (
                n,
                len(yan.result),
                f"{yan.seconds:.4f}",
                f"{nprr.seconds:.4f}",
                f"{hash_run.seconds:.4f}",
                stats.max_intermediate,
            )
        )
    record_table(
        format_table(
            (
                "N",
                "|J|",
                "yannakakis s",
                "nprr s",
                "hash R-S-U s",
                "hash peak interm",
            ),
            rows,
            title=(
                "E10: dangling chain - semijoin reduction and Algorithm 2 "
                "dodge the N^2 wedge a bad binary order materializes"
            ),
        )
    )
    # The bad order materializes N^2 tuples; both optimal algorithms don't.
    assert rows[-1][-1] == 800 * 800

    benchmark.pedantic(
        lambda: yannakakis_join(dangling_chain_instance(800)),
        rounds=3,
        iterations=1,
    )


def test_e10_cyclic_boundary(benchmark):
    rows = []
    for label, query in (
        ("triangle (Ex 2.2)", instances.triangle_hard_instance(100)),
        ("LW n=4", instances.lw_hard_instance(4, 100)),
        ("path k=3", dangling_chain_instance(100)),
    ):
        acyclic = is_acyclic(query.hypergraph)
        if acyclic:
            status = "Yannakakis applies"
            yannakakis_join(query)
        else:
            status = "cyclic: WCOJ territory"
            with pytest.raises(QueryError):
                yannakakis_join(query)
        rows.append((label, acyclic, status))
    record_table(
        format_table(
            ("query", "alpha-acyclic", "status"),
            rows,
            title="E10: the acyclicity boundary (GYO reduction)",
        )
    )
    benchmark.pedantic(
        lambda: is_acyclic(queries.lw_query(5)), rounds=5, iterations=1
    )
