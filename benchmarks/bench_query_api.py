"""Query-layer benchmark: pushdown vs post-filter, prepared vs cold.

Emits ``benchmarks/BENCH_query_api.json`` with two experiments:

**pushdown** — on a skewed (Zipf) triangle, answer
``sigma_{A=v}(R join S join T)`` two ways:

* *pushdown*: ``Q(...).where(A=v)`` — the relations are sectioned at
  plan time, the bound attribute's level disappears, and the engine
  joins the residual query;
* *post-filter*: materialize the full join, then ``select_equals``.

Measured for a *heavy* value of ``A`` (the Zipf head — many matching
rows) and a *light* value (the tail — few rows).  Pushdown wins by
skipping the part of the search the selection would discard; the light
value shows the dramatic case (almost the entire join is discarded),
the heavy value the conservative one.  Row-set parity against the
post-filter reference is asserted on every configuration.

**prepared** — the same catalogued query executed ``repeats`` times:

* *cold*: a fresh ``Database`` per run (every run pays planning and
  index builds);
* *prepared*: ``db.prepare(q)`` once, then repeated ``run()`` calls.

``index_builds_during_runs`` is read off ``Database.cache_info()`` and
must be **zero** for the prepared path — the cross-query warmup
contract (schema-checked in CI by ``tools/check_bench_query_api.py``).

Run standalone (``PYTHONPATH=src python benchmarks/bench_query_api.py``)
or with ``--smoke`` for the CI-sized instance.
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
from collections import Counter

from repro.api import join
from repro.query.builder import Q
from repro.relations.database import Database
from repro.utils.timing import timed
from repro.workloads import generators, queries

RESULT_PATH = pathlib.Path(__file__).parent / "BENCH_query_api.json"

ALGORITHM = "generic"


def _cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:
        return os.cpu_count() or 1


def _zipf_triangle(scale: int):
    return generators.random_instance(
        queries.triangle(), 6000 * scale, 120 * scale, seed=17, skew=1.1
    )


def _heavy_and_light(query, attribute: str):
    """The most and least frequent candidate values of ``attribute``
    (restricted to the candidate intersection, so both join to rows)."""
    counts = None
    candidates = None
    for relation in query.relations.values():
        if attribute not in relation.attribute_set:
            continue
        position = relation.position(attribute)
        local = Counter(row[position] for row in relation.tuples)
        candidates = (
            set(local) if candidates is None else candidates & set(local)
        )
        counts = local if counts is None else counts + local
    ranked = sorted(candidates, key=lambda v: (-counts[v], repr(v)))
    return ranked[0], ranked[-1]


def bench_pushdown(query, value) -> dict:
    pushdown = timed(
        lambda: sorted(
            Q(query).using(algorithm=ALGORITHM).where(A=value).stream()
        )
    )
    post = timed(
        lambda: sorted(
            join(query, algorithm=ALGORITHM).select_equals("A", value).tuples
        )
    )
    return {
        "value": value,
        "rows": len(pushdown.result),
        "pushdown_seconds": pushdown.seconds,
        "postfilter_seconds": post.seconds,
        "speedup": post.seconds / max(pushdown.seconds, 1e-9),
        "parity": pushdown.result == post.result,
    }


def bench_prepared(query, repeats: int) -> dict:
    relations = list(query.relations.values())

    def cold_run():
        db = Database(relations)
        return sorted(
            Q(*(db[rel.name] for rel in relations))
            .using(algorithm=ALGORITHM)
            .on(db)
            .stream()
        )

    cold = timed(lambda: [cold_run() for _ in range(repeats)])

    db = Database(relations)
    builder = (
        Q(*(db[rel.name] for rel in relations))
        .using(algorithm=ALGORITHM)
        .on(db)
    )
    prepare = timed(lambda: db.prepare(builder))
    prepared = prepare.result
    before = db.cache_info()
    warm = timed(lambda: [sorted(prepared.stream()) for _ in range(repeats)])
    after = db.cache_info()
    parity = all(rows == cold.result[0] for rows in warm.result)
    return {
        "repeats": repeats,
        "cold_seconds_total": cold.seconds,
        "cold_seconds_per_run": cold.seconds / repeats,
        "prepare_seconds": prepare.seconds,
        "warm_seconds_total": warm.seconds,
        "warm_seconds_per_run": warm.seconds / repeats,
        "amortized_speedup": cold.seconds
        / max(prepare.seconds + warm.seconds, 1e-9),
        "index_builds_during_runs": after.misses - before.misses,
        "cache_hits_during_runs": after.hits - before.hits,
        "parity": parity,
    }


def run(scale: int, repeats: int) -> dict:
    query = _zipf_triangle(scale)
    heavy, light = _heavy_and_light(query, "A")
    return {
        "host": {"cpus": _cpus()},
        "definitions": {
            "pushdown": "Q(...).where(A=v): relations sectioned at plan "
            "time, the bound attribute's level eliminated from the "
            "search (Remark 5.2's ahead-of-time evaluation)",
            "postfilter": "materialize the full join, then "
            "select_equals('A', v) — the naive sigma placement",
            "heavy/light": "most/least frequent candidate value of A "
            "on the Zipf-skewed triangle (head vs tail)",
            "prepared": "db.prepare(q) once, then repeated run(): zero "
            "planning and zero index builds per run "
            "(index_builds_during_runs must be 0)",
            "cold": "a fresh Database per run: every run pays planning "
            "and index builds",
        },
        "scale": scale,
        "sizes": query.sizes(),
        "pushdown": {
            "heavy": bench_pushdown(query, heavy),
            "light": bench_pushdown(query, light),
        },
        "prepared": bench_prepared(query, repeats),
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true", help="tiny CI-sized instance"
    )
    parser.add_argument(
        "-o", "--output", default=str(RESULT_PATH), help="result JSON path"
    )
    args = parser.parse_args(argv)
    scale = 1 if args.smoke else 3
    repeats = 5 if args.smoke else 10
    results = run(scale, repeats)
    path = pathlib.Path(args.output)
    path.write_text(json.dumps(results, indent=2) + "\n")
    print(f"query api benchmark -> {path}")
    failed = False
    for kind in ("heavy", "light"):
        data = results["pushdown"][kind]
        print(
            f"  pushdown[{kind}] A={data['value']}: {data['rows']} row(s), "
            f"pushdown {data['pushdown_seconds']:.3f}s vs post-filter "
            f"{data['postfilter_seconds']:.3f}s -> "
            f"{data['speedup']:.1f}x"
        )
        if not data["parity"]:
            print(f"  PARITY FAILURE on pushdown[{kind}]")
            failed = True
    prepared = results["prepared"]
    print(
        f"  prepared: cold {prepared['cold_seconds_per_run']:.3f}s/run vs "
        f"warm {prepared['warm_seconds_per_run']:.3f}s/run "
        f"(prepare {prepared['prepare_seconds']:.3f}s, "
        f"{prepared['index_builds_during_runs']} build(s) during "
        f"{prepared['repeats']} runs)"
    )
    if not prepared["parity"]:
        print("  PARITY FAILURE on prepared")
        failed = True
    if prepared["index_builds_during_runs"] != 0:
        print("  FAILURE: prepared runs built indexes")
        failed = True
    if results["pushdown"]["light"]["speedup"] <= 1.0:
        print(
            "  FAILURE: pushdown does not beat post-filter on the "
            "light-value selection"
        )
        failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
