"""F1 / F2 — regenerating the paper's two figures.

Figure 1 (Section 5.2): the query-plan tree for the 6-attribute,
5-relation worked example, whose total order must come out as
``1, 4, 2, 5, 3, 6``.

Figure 2 (Section 5.3.1): the QP tree for ``R1(A1,A2,A4,A5) join ... join
R5(A3,A5,A6)`` with root label 5 and child universes {1,2,4} / {3,5,6}.

Both trees are rendered into the results tables so the reproduction is
visually checkable against the paper.
"""

from __future__ import annotations

from repro.core.qptree import QPTree
from repro.workloads import queries

from benchmarks.conftest import record_table


def test_f1_section_52_tree(benchmark):
    tree = QPTree(queries.paper_example_52())
    assert tree.total_order == ("1", "4", "2", "5", "3", "6")
    assert tree.check_to1() and tree.check_to2()
    record_table(
        "F1 (Figure 1 / Section 5.2): QP tree of the worked example\n"
        + tree.render()
        + "\npaper's total order: 1, 4, 2, 5, 3, 6  -- reproduced exactly"
    )
    benchmark.pedantic(
        lambda: QPTree(queries.paper_example_52()), rounds=5, iterations=1
    )


def test_f2_figure2_tree(benchmark):
    tree = QPTree(queries.paper_figure2())
    root = tree.root
    assert root.label == 5
    assert root.left.universe == frozenset({"A1", "A2", "A4"})
    assert root.right.universe == frozenset({"A3", "A5", "A6"})
    assert root.left.left.universe == frozenset({"A1"})
    assert root.left.right.universe == frozenset({"A2", "A4"})
    record_table(
        "F2 (Figure 2): QP tree for q = R1(A1A2A4A5) * R2(A1A3A4A6) * "
        "R3(A1A2A3) * R4(A2A4A6) * R5(A3A5A6)\n" + tree.render()
        + "\npaper's universes at depth 1: {1,2,4} and {3,5,6}  -- reproduced"
    )
    benchmark.pedantic(
        lambda: QPTree(queries.paper_figure2()), rounds=5, iterations=1
    )
