"""E3 — Lemmas 6.1 and 6.2: the "simple relation" separation.

Paper claims: on the Lemma 6.1 instances (relations holding every tuple
with at most one non-zero coordinate), *any* join-project plan — which
subsumes every binary-join plan and AGM's algorithm — needs
``Omega(N^2/n^2)`` time, because some step must join two simple relations
with incomparable attribute sets; Algorithm 2 runs in ``O(n^2 N)``
(Lemma 6.2).

Reproduced shape: the join-project baseline's peak intermediate grows
quadratically in N while NPRR's work counters grow linearly; the ratio is
the paper's Omega(N) gap (for constant n).
"""

from __future__ import annotations

import pytest

from repro.baselines.join_project import agm_join_project
from repro.baselines.plans import best_binary_plan
from repro.core.nprr import NPRRJoin
from repro.utils.tables import format_table
from repro.utils.timing import timed
from repro.workloads import instances

from benchmarks.conftest import record_table


def test_e3_gap_table(benchmark):
    rows = []
    series = {}
    for n in (3, 4):
        for size in (200, 400, 800):
            query = instances.lw_hard_instance(n, size)
            realized = query.sizes()[query.edge_ids[0]]

            executor = NPRRJoin(query)
            nprr_time = timed(executor.execute).seconds
            nprr_work = (
                executor.stats.comparisons + executor.stats.tuples_emitted
            )

            jp = timed(lambda q=query: agm_join_project(q))
            _out, jp_stats = jp.result

            series[(n, size)] = (nprr_work, jp_stats.max_intermediate)
            rows.append(
                (
                    n,
                    size,
                    realized,
                    f"{nprr_time:.4f}",
                    nprr_work,
                    f"{jp.seconds:.4f}",
                    jp_stats.max_intermediate,
                    f"{jp_stats.max_intermediate / max(1, nprr_work):.1f}x",
                )
            )
    record_table(
        format_table(
            (
                "n",
                "N req",
                "N realized",
                "nprr s",
                "nprr work",
                "joinproj s",
                "jp peak interm",
                "work gap",
            ),
            rows,
            title=(
                "E3 (Lemmas 6.1/6.2): simple-relation instances - "
                "join-project quadratic, Algorithm 2 linear"
            ),
        )
    )

    for n in (3, 4):
        nprr_small, jp_small = series[(n, 200)]
        nprr_large, jp_large = series[(n, 800)]
        assert jp_large / jp_small > 3.0**2 / 2  # ~quadratic in N
        assert nprr_large / max(1, nprr_small) < 8  # ~linear in N
        # Lemma 6.1's floor: Omega(N^2/n^2) intermediate tuples.
        m = (800 - 1) // (n - 1)
        assert jp_large >= (1 + m) ** 2 / 4

    benchmark.pedantic(
        lambda: NPRRJoin(instances.lw_hard_instance(3, 800)).execute(),
        rounds=3,
        iterations=1,
    )


def test_e3_best_binary_plan_also_quadratic(benchmark):
    """Even the best of all 3 binary plans pays the quadratic toll."""
    size = 300
    query = instances.lw_hard_instance(3, size)
    m = (size - 1) // 2
    _plan, _result, stats = best_binary_plan(query)
    assert stats.max_intermediate >= (1 + m) ** 2
    record_table(
        format_table(
            ("N", "best plan peak intermediate", "Lemma 6.1 floor"),
            [(size, stats.max_intermediate, (1 + m) ** 2)],
            title="E3: best binary plan on the Lemma 6.1 instance (n=3)",
        )
    )
    benchmark.pedantic(
        lambda: best_binary_plan(query), rounds=1, iterations=1
    )
