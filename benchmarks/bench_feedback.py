"""Runtime-feedback benchmark: self-correction and online re-sharding.

Emits ``benchmarks/BENCH_feedback.json`` with two workloads:

* ``trap_selfcorrect`` — the amplified ``zipf_trap_triangle`` (small
  ``c_domain`` makes ``C`` a second decoy, so the min-distinct
  heuristic defers the payoff attribute ``A`` to the last level).  The
  first run under ``--feedback`` plans from the heuristic (sampling
  disabled: feedback mode *replaces* sampling with observation), walks
  into the trap, and records per-level telemetry; the second run
  re-plans from the observations and promotes the attribute whose
  level measurably pruned.  The headline metric is ``work_ratio`` —
  first-run candidate enumerations over second-run's — a deterministic,
  wall-clock-free measure of the search-work reduction (17x at smoke
  scale on the reference host).  Wall times are recorded alongside for
  context.
* ``zipf_hotshard`` — ``generators.hub_triangle``: one value of ``A``
  carries most of ``R``'s and ``T``'s mass (Zipf skew at its limit).
  Static ``shards="auto"`` gives the hub its own shard, but a single
  value cannot be subdivided by value partitioning, so the hub shard
  dominates the critical path.  The first feedback run records
  per-shard wall times; the second re-partitions the recorded-hot hub
  shard on the *next* attribute of the order and dispatches its
  sub-shards.  ``critical_path_ratio`` compares the slowest shard of
  run 1 against the slowest executed shard of run 2 (shards are timed
  one at a time, as in ``bench_stats``, so the number is honest on
  single-core CI hosts).

The harness exits non-zero if either loop fails to help: no order
change / no work reduction on the trap, no split / no critical-path
reduction on the hub, or any parity violation.  The JSON schema is
pinned by ``tools/check_bench_feedback.py``; ratio metrics are gated
against committed baselines by ``tools/check_bench_regression.py``.
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import sys

from repro.feedback.config import FeedbackConfig
from repro.query.builder import Q
from repro.query.context import ExecutionContext
from repro.stats import StatsConfig, StatsProvider
from repro.utils.timing import timed
from repro.workloads import generators

RESULT_PATH = pathlib.Path(__file__).parent / "BENCH_feedback.json"

ALGORITHM = "generic"

#: The hot-shard run pins this order so run-to-run comparison isolates
#: the re-sharding effect (the planner may break ties differently once
#: observations exist); sharding is correct for any order.
HOTSHARD_ORDER = ("A", "C", "B")


def _cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:
        return os.cpu_count() or 1


def bench_trap(scale: int) -> dict:
    query = generators.zipf_trap_triangle(
        3000 * scale,
        6000 * scale,
        seed=7,
        match_fraction=0.02,
        decoy_domain=40,
        c_domain=40,
    )
    provider = StatsProvider(config=StatsConfig(sample_size=0))
    builder = Q(query).using(
        algorithm=ALGORITHM, stats=provider, feedback=FeedbackConfig()
    )

    first_plan = builder.plan()
    first = timed(lambda: set(builder.stream()))
    first_work = provider.observed_telemetry(query).total_candidates

    second_plan = builder.plan()
    second = timed(lambda: set(builder.stream()))
    history = provider.observed_history(query)
    second_work = history[second_plan.attribute_order].total_candidates

    sampled_order = (
        Q(query).using(algorithm=ALGORITHM, stats=StatsProvider()).plan()
    ).attribute_order

    return {
        "sizes": query.sizes(),
        "rows": len(first.result),
        "first": {
            "order": list(first_plan.attribute_order),
            "source": first_plan.statistics.source,
            "candidates": first_work,
            "seconds": first.seconds,
        },
        "second": {
            "order": list(second_plan.attribute_order),
            "source": second_plan.statistics.source,
            "candidates": second_work,
            "seconds": second.seconds,
        },
        "order_changed": (
            second_plan.attribute_order != first_plan.attribute_order
        ),
        "work_ratio": first_work / second_work,
        "sampled_reference_order": list(sampled_order),
        "parity": first.result == second.result,
    }


def bench_hotshard(scale: int) -> dict:
    query = generators.hub_triangle(
        light_domain=300,
        b_domain=500,
        c_domain=12000 * scale,
        r_size=3000 * scale,
        s_size=8000 * scale,
        t_size=24000 * scale,
        seed=23,
    )
    provider = StatsProvider()
    context = ExecutionContext(
        algorithm=ALGORITHM,
        shards="auto",
        mode="serial",  # shard-at-a-time timing: honest on 1-CPU hosts
        attribute_order=HOTSHARD_ORDER,
        stats=provider,
        feedback=FeedbackConfig(split_threshold=1.5),
    )
    builder = Q(query).using(context=context)

    first = timed(lambda: set(builder.stream()))
    first_observed = provider.observed_shards(query)
    first_seconds = {
        key: entry.seconds for key, entry in first_observed.items()
    }
    critical_first = max(first_seconds.values())

    second = timed(lambda: set(builder.stream()))
    observed = provider.observed_shards(query)
    split_parents = {key[:-1] for key in observed if len(key) > 1}
    executed = {
        key: entry
        for key, entry in observed.items()
        if key not in split_parents
    }
    critical_second = max(entry.seconds for entry in executed.values())
    splits = sum(1 for key in observed if len(key) > 1)

    return {
        "sizes": query.sizes(),
        "rows": len(first.result),
        "shards_first": len(first_observed),
        "shard_seconds_first": sorted(
            first_seconds.values(), reverse=True
        ),
        "critical_path_first": critical_first,
        "splits": splits,
        "shard_seconds_second": sorted(
            (entry.seconds for entry in executed.values()), reverse=True
        ),
        "critical_path_second": critical_second,
        "critical_path_ratio": critical_first / critical_second,
        "wall_seconds": [first.seconds, second.seconds],
        "parity": first.result == second.result,
    }


def run(scale: int) -> dict:
    return {
        "host": {"cpus": _cpus()},
        "definitions": {
            "trap_selfcorrect": "amplified zipf_trap_triangle; run 1 "
            "plans from the min-distinct heuristic (sampling disabled — "
            "feedback replaces sampling), run 2 re-plans from recorded "
            "per-level telemetry (the classical cardinality-feedback "
            "loop)",
            "work_ratio": "run-1 candidate enumerations / run-2's — "
            "deterministic search-work units, no wall clock",
            "zipf_hotshard": "hub_triangle under static shards='auto'; "
            "run 2 re-partitions the recorded-hot hub shard on the next "
            "attribute of the order (the online 'Skew Strikes Back' "
            "split); attribute order pinned so only the shard layout "
            "changes between runs",
            "critical_path_ratio": "slowest shard of run 1 / slowest "
            "executed shard of run 2 (shards timed one at a time, so "
            "the ratio is the per-worker wall-time win)",
        },
        "scale": scale,
        "workloads": {
            "trap_selfcorrect": bench_trap(scale),
            "zipf_hotshard": bench_hotshard(scale),
        },
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true", help="tiny CI-sized instances"
    )
    parser.add_argument(
        "-o", "--output", default=str(RESULT_PATH), help="result JSON path"
    )
    args = parser.parse_args(argv)
    scale = 1 if args.smoke else 2
    results = run(scale)
    path = pathlib.Path(args.output)
    path.write_text(json.dumps(results, indent=2) + "\n")
    print(f"feedback benchmark -> {path}")

    trap = results["workloads"]["trap_selfcorrect"]
    hot = results["workloads"]["zipf_hotshard"]
    print(
        f"  trap_selfcorrect: {trap['first']['order']} "
        f"({trap['first']['candidates']} candidates) -> "
        f"{trap['second']['order']} ({trap['second']['candidates']} "
        f"candidates), work ratio {trap['work_ratio']:.2f}x"
    )
    print(
        f"  zipf_hotshard: critical path "
        f"{hot['critical_path_first']:.3f}s -> "
        f"{hot['critical_path_second']:.3f}s "
        f"({hot['splits']} split shard(s)), "
        f"ratio {hot['critical_path_ratio']:.2f}x"
    )

    failed = False
    if not trap["parity"] or not hot["parity"]:
        print("  PARITY FAILURE")
        failed = True
    if not trap["order_changed"]:
        print("  FAILURE: feedback did not change the trap order")
        failed = True
    if trap["work_ratio"] <= 1.0:
        print("  FAILURE: re-planned trap order did not reduce work")
        failed = True
    if hot["splits"] < 1:
        print("  FAILURE: no hot shard was split")
        failed = True
    if hot["critical_path_ratio"] <= 1.0:
        print("  FAILURE: splitting did not reduce the critical path")
        failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
