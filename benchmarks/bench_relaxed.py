"""E7 — Section 7.2 / Theorem 7.6: relaxed joins and the tight instance.

Paper claims reproduced:

* Algorithm 6 evaluates ``q_r`` within ``sum_{S in C*} LPOpt(S)``;
* on the singletons-plus-full-edge instance the bound is met exactly:
  ``|q_r| = N + N^n`` with ``C* = {{e_{n+1}}, {e_1..e_n}}`` (at ``r = n``;
  for ``0 < r < n`` Definition 7.4 gives ``N^n`` — see the note in
  EXPERIMENTS.md).
"""

from __future__ import annotations

from repro.core.relaxed import RelaxedJoin, relaxed_join_reference
from repro.utils.tables import format_table
from repro.utils.timing import timed
from repro.workloads import generators, instances, queries

from benchmarks.conftest import record_table


def test_e7_lower_bound_instance(benchmark):
    rows = []
    n = 3
    for size in (4, 8, 12, 16):
        query = instances.relaxed_lower_bound_instance(n, size)
        join = RelaxedJoin(query, n)
        run = timed(join.execute)
        bound = join.bound()
        expected = size + size**n
        assert len(run.result) == expected
        assert abs(bound - expected) < 1e-4 * expected
        supports = sorted(
            "{" + ",".join(sorted(support)) + "}"
            for _s, support, _c in join.representatives
        )
        rows.append(
            (
                size,
                len(run.result),
                f"{bound:.1f}",
                expected,
                f"{run.seconds:.4f}",
                " ".join(supports),
            )
        )
    record_table(
        format_table(
            ("N", "|q_r|", "Thm 7.6 bound", "N + N^n", "time s", "C* supports"),
            rows,
            title=(
                "E7 (Thm 7.6): relaxed-join lower-bound instance (n=3, r=n) - "
                "bound met exactly"
            ),
        )
    )
    benchmark.pedantic(
        lambda: RelaxedJoin(
            instances.relaxed_lower_bound_instance(3, 16), 3
        ).execute(),
        rounds=3,
        iterations=1,
    )


def test_e7_random_relaxed_within_bound(benchmark):
    rows = []
    for seed in range(4):
        query = generators.random_instance(
            queries.triangle(), 60, 8, seed=seed
        )
        for r in (1, 2):
            join = RelaxedJoin(query, r)
            run = timed(join.execute)
            bound = join.bound()
            assert len(run.result) <= bound + 1e-6
            reference = relaxed_join_reference(query, r)
            assert run.result.equivalent(reference)
            rows.append(
                (
                    seed,
                    r,
                    len(run.result),
                    f"{bound:.0f}",
                    f"{run.seconds:.4f}",
                )
            )
    record_table(
        format_table(
            ("seed", "r", "|q_r|", "bound", "time s"),
            rows,
            title="E7: Algorithm 6 on random triangles (verified against Definition 7.4)",
        )
    )
    benchmark.pedantic(
        lambda: RelaxedJoin(
            generators.random_instance(queries.triangle(), 60, 8, seed=0), 1
        ).execute(),
        rounds=3,
        iterations=1,
    )
