"""E8 — Section 7.3: functional-dependency-aware join processing.

Paper claims reproduced on the fan-out family ``join_i R_i(A,B_i) join_i
S_i(B_i,C)`` with FDs ``A -> B_i``:

* the FD-unaware AGM bound is ``N^k`` while the FD-aware bound (after
  closure expansion) is ``N^2``;
* a wrong join ordering (the ``S`` side first) materializes ``N^k``
  tuples, while the FD-aware algorithm runs linearly;
* the FD-aware join returns exactly the plain join.
"""

from __future__ import annotations

from repro.baselines.naive import naive_join
from repro.core.fd import fd_aware_bound, fd_aware_join
from repro.utils.tables import format_table
from repro.utils.timing import timed
from repro.workloads import instances

from benchmarks.conftest import record_table


def test_e8_bound_gap(benchmark):
    rows = []
    size = 12
    for k in (2, 3, 4, 5):
        query, fds = instances.fd_fanout_instance(k, size)
        unaware, aware = fd_aware_bound(query, fds)
        assert abs(unaware - size**k) < 1e-3 * size**k
        assert abs(aware - size**2) < 1e-3 * size**2
        rows.append(
            (k, size, f"{unaware:.0f}", f"{aware:.0f}", f"{unaware / aware:.0f}x")
        )
    record_table(
        format_table(
            ("k", "N", "FD-unaware bound (N^k)", "FD-aware bound (N^2)", "gap"),
            rows,
            title="E8 (Sec 7.3): AGM bound with and without FD expansion",
        )
    )
    benchmark.pedantic(
        lambda: fd_aware_bound(*instances.fd_fanout_instance(5, 12)),
        rounds=3,
        iterations=1,
    )


def test_e8_wrong_order_blowup(benchmark):
    rows = []
    for k, size in ((2, 60), (3, 24), (4, 12)):
        query, fds = instances.fd_fanout_instance(k, size)

        aware_run = timed(lambda q=query, f=fds: fd_aware_join(q, f))

        def wrong_order(q=query, kk=k):
            joined = q.relation("S1")
            for i in range(2, kk + 1):
                joined = joined.natural_join(q.relation(f"S{i}"))
            return joined

        wrong_run = timed(wrong_order)
        half_size = len(wrong_run.result)
        assert half_size == size**k  # the paper's huge half-join
        assert len(aware_run.result) == size
        rows.append(
            (
                k,
                size,
                len(aware_run.result),
                f"{aware_run.seconds:.4f}",
                half_size,
                f"{wrong_run.seconds:.4f}",
            )
        )
    record_table(
        format_table(
            (
                "k",
                "N",
                "|J|",
                "FD-aware s",
                "wrong-order interm (N^k)",
                "wrong-order s",
            ),
            rows,
            title="E8: FD-aware join vs the S-side-first ordering blowup",
        )
    )
    benchmark.pedantic(
        lambda: fd_aware_join(*instances.fd_fanout_instance(3, 24)),
        rounds=3,
        iterations=1,
    )


def test_e8_correctness(benchmark):
    query, fds = instances.fd_fanout_instance(3, 10)
    aware = fd_aware_join(query, fds)
    assert aware.equivalent(naive_join(query))
    benchmark.pedantic(
        lambda: fd_aware_join(query, fds), rounds=3, iterations=1
    )
