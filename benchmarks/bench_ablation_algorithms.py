"""A2 — ablation: all join algorithms across all workload families.

The paper's stated future work is "to implement these ideas to see how
they compare".  This grid runs every implementation (Algorithm 2, the LW
and arity-2 specialists where the shape allows, the Generic Join /
Leapfrog extensions, and the binary baseline) over each instance family
and reports wall-clock times; outputs are cross-checked for equality.
"""

from __future__ import annotations

from repro.baselines.hash_join import chain_hash_join
from repro.core.arity_two import ArityTwoJoin
from repro.core.generic_join import generic_join
from repro.core.leapfrog import leapfrog_join
from repro.core.lw import lw_join
from repro.core.nprr import nprr_join
from repro.utils.tables import format_table
from repro.utils.timing import timed
from repro.workloads import generators, instances, queries

from benchmarks.conftest import record_table

NA = "-"


def _run_family(label, query, allow_lw, allow_a2, rows):
    results = {}
    times = {}
    times["nprr"] = timed(lambda: nprr_join(query))
    results["nprr"] = times["nprr"].result
    times["generic"] = timed(lambda: generic_join(query))
    results["generic"] = times["generic"].result
    times["leapfrog"] = timed(lambda: leapfrog_join(query))
    results["leapfrog"] = times["leapfrog"].result
    if allow_lw:
        times["lw"] = timed(lambda: lw_join(query))
        results["lw"] = times["lw"].result
    if allow_a2:
        times["arity2"] = timed(lambda: ArityTwoJoin(query).execute())
        results["arity2"] = times["arity2"].result
    times["hash"] = timed(lambda: chain_hash_join(query)[0])
    results["hash"] = times["hash"].result

    baseline = results["nprr"]
    for name, result in results.items():
        assert result.equivalent(baseline), f"{name} disagrees on {label}"

    def cell(name):
        return f"{times[name].seconds:.4f}" if name in times else NA

    rows.append(
        (
            label,
            len(baseline),
            cell("nprr"),
            cell("lw"),
            cell("arity2"),
            cell("generic"),
            cell("leapfrog"),
            cell("hash"),
        )
    )


def test_a2_algorithm_grid(benchmark):
    rows = []
    _run_family(
        "Ex2.2 triangle N=1000",
        instances.triangle_hard_instance(1000),
        allow_lw=True,
        allow_a2=True,
        rows=rows,
    )
    _run_family(
        "random triangle N=1500",
        generators.random_instance(queries.triangle(), 1500, 60, seed=4),
        allow_lw=True,
        allow_a2=True,
        rows=rows,
    )
    _run_family(
        "LW n=4 grid side=8",
        instances.grid_instance(queries.lw_query(4), 8),
        allow_lw=True,
        allow_a2=False,
        rows=rows,
    )
    _run_family(
        "Lemma6.1 n=3 N=500",
        instances.lw_hard_instance(3, 500),
        allow_lw=True,
        allow_a2=False,
        rows=rows,
    )
    _run_family(
        "hard cycle C5 N=400",
        instances.cycle_hard_instance(5, 400),
        allow_lw=False,
        allow_a2=True,
        rows=rows,
    )
    _run_family(
        "figure-2 query",
        generators.random_instance(queries.paper_figure2(), 300, 6, seed=5),
        allow_lw=False,
        allow_a2=False,
        rows=rows,
    )
    _run_family(
        "tripartite hub graph",
        generators.tripartite_triangle_instance(800, 3000, seed=6, hub=True),
        allow_lw=True,
        allow_a2=True,
        rows=rows,
    )
    record_table(
        format_table(
            (
                "workload",
                "|J|",
                "nprr s",
                "lw s",
                "arity2 s",
                "generic s",
                "leapfrog s",
                "hash s",
            ),
            rows,
            title="A2: every algorithm across every instance family (outputs cross-checked)",
        )
    )
    benchmark.pedantic(
        lambda: nprr_join(
            generators.random_instance(queries.triangle(), 1500, 60, seed=4)
        ),
        rounds=3,
        iterations=1,
    )
