"""Distributed fabric benchmark: loopback fleet vs local pool on the hub.

Emits ``benchmarks/BENCH_distributed.json`` for the ``hub_triangle``
workload — the adversarial instance where one hub value of the first
attribute carries most of the probability mass, so first-attribute
sharding plans one shard that dominates the critical path however many
shards are requested.  Three fleet configurations run against the same
loopback fleet (real wire protocol, zero network):

* ``no_steal``    — ``ShardSpec(K)``: the planned shards as-is.  The
  hub shard *is* the critical path; ``max_shard_seconds`` measures it.
* ``steal``       — ``ShardSpec(K, steal=StealPolicy())``: the run
  warms a rate model on completed shards and splits the hub shard at
  claim time, spreading its work across idle workers.
  ``critical_path_ratio`` (no-steal / steal ``max_shard_seconds``) is
  the headline: > 1 means within-run stealing shortened the pole.
  ``work_ratio`` (no-steal / steal total ``shard_seconds``) near 1
  shows stealing did not inflate total work to get there.
* ``predictive``  — ``ShardSpec(K, predictive=True)``: the hub shard is
  split at *plan* time from heavy-hitter statistics, before anything
  runs (no warm-up run needed at all).

Every configuration asserts row-set parity against serial
``iter_rows`` (the ``parity`` flags the regression gate pins), and a
local process-pool run of the same ``ShardSpec(K)`` rides along under
``local_pool`` for the fleet-vs-local wall-clock comparison.

Run standalone (``PYTHONPATH=src python benchmarks/bench_distributed.py``)
or with ``--smoke`` for the CI-sized instance.
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib

from repro import execute
from repro.distributed import DispatchScheduler, LoopbackTransport
from repro.engine.planner import plan_join
from repro.query.context import ExecutionContext
from repro.query.shards import ShardSpec, StealPolicy
from repro.utils.timing import timed
from repro.workloads import generators

RESULT_PATH = pathlib.Path(__file__).parent / "BENCH_distributed.json"

ALGORITHM = "generic"
SHARDS = 6
FLEET_SLOTS = 4


def _workload(scale: int):
    return generators.hub_triangle(
        light_domain=60 * scale,
        b_domain=80 * scale,
        c_domain=800 * scale,
        r_size=600 * scale,
        s_size=1500 * scale,
        t_size=4000 * scale,
        seed=23,
    )


def _fleet_run(query, spec: ShardSpec, serial_rows: set) -> tuple[dict, dict]:
    """One fleet execution; returns (measurements, board summary)."""
    scheduler = DispatchScheduler(
        [LoopbackTransport() for _ in range(FLEET_SLOTS)]
    )
    context = ExecutionContext(
        algorithm=ALGORITHM, shards=spec, scheduler=scheduler
    )
    wall = timed(lambda: set(execute(query, context=context)))
    summary = dict(scheduler.last_run)
    measurements = {
        "wall_seconds": wall.seconds,
        "rows": len(wall.result),
        "parity": wall.result == serial_rows,
        "shards_run": summary.get("shards", 0),
        "steals": summary.get("steals", 0),
        "retries": summary.get("retries", 0),
        "presplits": summary.get("presplits", 0),
        "shard_seconds": summary.get("shard_seconds", 0.0),
        "max_shard_seconds": summary.get("max_shard_seconds", 0.0),
    }
    return measurements, summary


def bench_hub(query) -> dict:
    plan = plan_join(query, ALGORITHM)
    serial = timed(lambda: set(plan.iter_rows()))
    serial_rows: set = serial.result

    no_steal, _ = _fleet_run(query, ShardSpec(SHARDS), serial_rows)
    steal, _ = _fleet_run(
        query, ShardSpec(SHARDS, steal=StealPolicy()), serial_rows
    )
    predictive, _ = _fleet_run(
        query, ShardSpec(SHARDS, predictive=True), serial_rows
    )

    local = timed(
        lambda: set(
            execute(
                query,
                context=ExecutionContext(
                    algorithm=ALGORITHM, shards=ShardSpec(SHARDS)
                ),
            )
        )
    )

    steal["steal_triggered"] = steal["steals"] >= 1
    steal["critical_path_ratio"] = no_steal["max_shard_seconds"] / max(
        steal["max_shard_seconds"], 1e-9
    )
    steal["work_ratio"] = no_steal["shard_seconds"] / max(
        steal["shard_seconds"], 1e-9
    )
    predictive["presplit_triggered"] = predictive["presplits"] >= 1
    predictive["critical_path_ratio"] = no_steal[
        "max_shard_seconds"
    ] / max(predictive["max_shard_seconds"], 1e-9)

    for name, entry in (
        ("no_steal", no_steal),
        ("steal", steal),
        ("predictive", predictive),
    ):
        if not entry["parity"]:
            raise SystemExit(
                f"PARITY FAILURE in {name}: fleet rows differ from serial"
            )
    if not steal["steal_triggered"]:
        raise SystemExit("stealing never triggered on the hub workload")
    if not predictive["presplit_triggered"]:
        raise SystemExit("predictive pre-split never triggered on the hub")

    return {
        "sizes": query.sizes(),
        "serial_seconds": serial.seconds,
        "serial_rows": len(serial_rows),
        "no_steal": no_steal,
        "steal": steal,
        "predictive": predictive,
        "local_pool": {
            "wall_seconds": local.seconds,
            "parity": local.result == serial_rows,
            "fleet_wall_ratio": local.seconds
            / max(no_steal["wall_seconds"], 1e-9),
        },
    }


def run(scale: int) -> dict:
    return {
        "host": {
            "cpus": len(os.sched_getaffinity(0))
            if hasattr(os, "sched_getaffinity")
            else (os.cpu_count() or 1),
        },
        "scale": scale,
        "shards": SHARDS,
        "fleet_slots": FLEET_SLOTS,
        "definitions": {
            "critical_path_ratio": "no-steal max_shard_seconds / this "
            "mode's max_shard_seconds — > 1 means the hub shard's pole "
            "got shorter (worker-measured, contention-free: each shard "
            "reports its own wall time)",
            "work_ratio": "no-steal total shard_seconds / steal total "
            "shard_seconds — near 1 means stealing rearranged work "
            "without inflating it",
            "parity": "fleet row set equals serial iter_rows row set",
        },
        "workloads": {"hub_triangle": bench_hub(_workload(scale))},
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true", help="tiny CI-sized instance"
    )
    parser.add_argument(
        "-o", "--output", default=str(RESULT_PATH), help="result JSON path"
    )
    args = parser.parse_args(argv)
    results = run(1 if args.smoke else 6)
    path = pathlib.Path(args.output)
    path.write_text(json.dumps(results, indent=2) + "\n")
    print(f"distributed benchmark -> {path}")
    hub = results["workloads"]["hub_triangle"]
    print(
        f"  hub_triangle: serial {hub['serial_seconds']:.3f}s, "
        f"{hub['serial_rows']} rows"
    )
    for name in ("no_steal", "steal", "predictive"):
        entry = hub[name]
        extras = ""
        if "critical_path_ratio" in entry:
            extras = f", critical path ratio {entry['critical_path_ratio']:.2f}x"
        print(
            f"    {name}: wall {entry['wall_seconds']:.3f}s, "
            f"{entry['shards_run']} shard(s), steals {entry['steals']}, "
            f"presplits {entry['presplits']}{extras}"
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
