"""E2 — Theorem 4.1: Algorithm 1 runs linearly in the LW bound.

Paper claim: for an LW instance on ``n`` attributes, Algorithm 1 computes
the join in ``O(n^2 (prod_e N_e)^{1/(n-1)} + n^2 sum_e N_e)`` — the LW
bound is also achieved by the grid instances, so output size, bound, and
run time all line up.

Reproduced shape: on AGM-tight grids, ``|J|`` equals the bound exactly;
run time divided by (bound + input) stays flat as the instance grows.
"""

from __future__ import annotations

import pytest

from repro.core.lw import LWJoin
from repro.core.nprr import NPRRJoin
from repro.utils.tables import format_table
from repro.utils.timing import timed
from repro.workloads import generators, instances, queries

from benchmarks.conftest import record_table


def test_e2_grid_tightness_table(benchmark):
    rows = []
    normalized = []
    for n, side in ((3, 8), (3, 16), (3, 32), (4, 4), (4, 8), (5, 4)):
        query = instances.grid_instance(queries.lw_query(n), side)
        executor = LWJoin(query)
        measured = timed(executor.execute)
        bound = executor.bound()
        output = len(measured.result)
        unit_cost = measured.seconds / (bound + query.total_input_size())
        normalized.append(unit_cost)
        rows.append(
            (
                n,
                side,
                query.sizes()[query.edge_ids[0]],
                output,
                f"{bound:.0f}",
                f"{measured.seconds:.4f}",
                f"{unit_cost * 1e6:.2f}",
            )
        )
        assert output == side**n  # tight: |J| == bound
        assert abs(bound - side**n) < 1e-6 * side**n
    record_table(
        format_table(
            ("n", "side", "N_e", "|J|", "LW bound", "time s", "us/(bound+input)"),
            rows,
            title="E2 (Thm 4.1): Algorithm 1 on AGM-tight LW grids - output equals bound",
        )
    )
    # Linearity in the bound: normalized cost varies by < 10x across sizes.
    assert max(normalized) / min(normalized) < 10

    benchmark.pedantic(
        lambda: LWJoin(
            instances.grid_instance(queries.lw_query(3), 32)
        ).execute(),
        rounds=3,
        iterations=1,
    )


def test_e2_random_lw_within_bound(benchmark):
    rows = []
    for n in (3, 4, 5):
        for seed in (0, 1):
            query = generators.random_instance(
                queries.lw_query(n), 400, 12, seed=seed
            )
            executor = LWJoin(query)
            measured = timed(executor.execute)
            bound = executor.bound()
            assert len(measured.result) <= bound + 1e-9
            rows.append(
                (
                    n,
                    seed,
                    query.total_input_size(),
                    len(measured.result),
                    f"{bound:.0f}",
                    f"{measured.seconds:.4f}",
                )
            )
    record_table(
        format_table(
            ("n", "seed", "sum N_e", "|J|", "LW bound", "time s"),
            rows,
            title="E2 (Thm 4.1): random LW instances stay within the bound",
        )
    )
    benchmark.pedantic(
        lambda: LWJoin(
            generators.random_instance(queries.lw_query(4), 400, 12, seed=0)
        ).execute(),
        rounds=3,
        iterations=1,
    )


def test_e2_lw_vs_nprr_consistency(benchmark):
    """Algorithms 1 and 2 agree tuple-for-tuple on LW instances."""
    query = generators.random_instance(queries.lw_query(4), 300, 10, seed=5)
    lw_out = LWJoin(query).execute()
    nprr_out = NPRRJoin(query).execute()
    assert lw_out.equivalent(nprr_out)
    benchmark.pedantic(
        lambda: LWJoin(query).execute(), rounds=3, iterations=1
    )
