"""Observability overhead benchmark: tracing + metrics must stay cheap.

Emits ``benchmarks/BENCH_observe.json`` with three sections over the
``zipf_trap_triangle`` workload (the statistics benchmark's staple):

* ``overhead`` — the same full-drain join run untraced and run under a
  ``Tracer`` *and* a ``MetricsRegistry`` together, interleaved
  best-of-N both ways.  The headline metrics are ``overhead``
  (traced / untraced wall, must stay <= the ``MAX_OVERHEAD`` budget of
  1.05) and ``efficiency`` (untraced / traced — the direction the
  floor-based regression gate understands: lower means tracing got
  more expensive).  Spans are per *phase*, never per row, which is the
  whole overhead argument.
* ``worker_spans`` — a process-pool sharded run; asserts the workers'
  shipped ``shard`` spans re-stitched *nested* under the parent's
  ``execute`` span (the cross-process propagation contract).
* ``explain_analyze`` — ``explain(analyze=True)`` on the same query;
  asserts every level of the executed order carries observed counters
  next to its estimate, and that the final level's matches equal the
  result cardinality.

The traced run's span tree is written alongside as
``BENCH_observe_trace.json`` — the JSON artifact CI uploads with the
smoke run.  The schema is pinned by ``tools/check_bench_observe.py``;
``efficiency`` and the exact flags are gated against the committed
baseline by ``tools/check_bench_regression.py``.
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import sys

from repro.observe.metrics import MetricsRegistry
from repro.observe.tracing import Tracer
from repro.query.builder import Q
from repro.utils.timing import timed
from repro.version import __version__
from repro.workloads import generators

RESULT_PATH = pathlib.Path(__file__).parent / "BENCH_observe.json"
TRACE_PATH = pathlib.Path(__file__).parent / "BENCH_observe_trace.json"

ALGORITHM = "generic"

#: The acceptance budget: a traced+metered run may cost at most 5% more
#: wall time than an untraced one.
MAX_OVERHEAD = 1.05


def _cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:
        return os.cpu_count() or 1


def _query(scale: int):
    return generators.zipf_trap_triangle(
        3000 * scale, 6000 * scale, seed=7
    )


def bench_overhead(scale: int, repeats: int) -> tuple[dict, Tracer]:
    query = _query(scale)

    def untraced_run():
        return sum(
            1 for _ in Q(query).using(algorithm=ALGORITHM).stream()
        )

    last_tracer = Tracer(name="bench-observe")

    def traced_run():
        nonlocal last_tracer
        last_tracer = Tracer(name="bench-observe")
        builder = Q(query).using(
            algorithm=ALGORITHM,
            tracer=last_tracer,
            metrics=MetricsRegistry(),
        )
        return sum(1 for _ in builder.stream())

    # Interleave the two variants so drift (thermal, cache warmup)
    # lands on both equally; keep the minimum of each, the usual
    # noise-robust micro-benchmark summary.
    untraced_walls: list[float] = []
    traced_walls: list[float] = []
    untraced_rows = traced_rows = 0
    for _ in range(max(1, repeats)):
        measurement = timed(untraced_run)
        untraced_rows = measurement.result
        untraced_walls.append(measurement.seconds)
        measurement = timed(traced_run)
        traced_rows = measurement.result
        traced_walls.append(measurement.seconds)

    untraced_wall = min(untraced_walls)
    traced_wall = min(traced_walls)
    span_count = sum(1 for _ in last_tracer.walk())
    return (
        {
            "sizes": _query(scale).sizes(),
            "rows": untraced_rows,
            "repeats": repeats,
            "untraced_wall": untraced_wall,
            "traced_wall": traced_wall,
            "overhead": traced_wall / untraced_wall,
            "efficiency": untraced_wall / traced_wall,
            "max_overhead": MAX_OVERHEAD,
            "spans_per_run": span_count,
            "parity": untraced_rows == traced_rows,
        },
        last_tracer,
    )


def bench_worker_spans(scale: int) -> dict:
    query = _query(scale)
    tracer = Tracer(name="bench-observe-sharded")
    rows = sum(
        1
        for _ in Q(query)
        .using(
            algorithm=ALGORITHM,
            shards=2,
            mode="process",
            tracer=tracer,
        )
        .stream()
    )
    execute = tracer.find("execute")
    shard_spans = (
        [c for c in execute.children if c.name == "shard"]
        if execute is not None
        else []
    )
    return {
        "rows": rows,
        "mode": "process",
        "shards": 2,
        "shard_spans": len(shard_spans),
        "worker_spans_nested": len(shard_spans) == 2,
        "worker_rows_reported": all(
            "rows" in span.meta for span in shard_spans
        ),
    }


def bench_explain_analyze(scale: int) -> dict:
    analysis = (
        Q(_query(scale)).using(algorithm=ALGORITHM).explain(analyze=True)
    )
    observed_levels = sum(
        1 for level in analysis.levels if level.matches is not None
    )
    estimated_levels = sum(
        1 for level in analysis.levels if level.estimated is not None
    )
    return {
        "rows": analysis.rows,
        "attribute_order": list(analysis.plan.attribute_order),
        "levels": len(analysis.levels),
        "observed_levels": observed_levels,
        "estimated_levels": estimated_levels,
        "all_levels_observed": observed_levels == len(analysis.levels),
        "final_level_matches_rows": (
            analysis.levels[-1].matches == analysis.rows
        ),
        "miss_factors": [
            round(level.miss_factor, 3)
            for level in analysis.levels
            if level.miss_factor is not None
        ],
    }


def run(scale: int, repeats: int) -> tuple[dict, Tracer]:
    overhead, tracer = bench_overhead(scale, repeats)
    return (
        {
            "host": {"cpus": _cpus()},
            "version": __version__,
            "definitions": {
                "overhead": "traced+metered wall / untraced wall on the "
                "full-drain zipf_trap_triangle join, best-of-N "
                "interleaved; the acceptance budget is max_overhead",
                "efficiency": "untraced / traced wall — the same "
                "measurement in the direction the floor-based "
                "regression gate checks (falling efficiency = rising "
                "overhead)",
                "worker_spans": "process-pool sharded run: workers' "
                "shipped shard spans must re-stitch nested under the "
                "parent execute span",
                "explain_analyze": "every level of the executed order "
                "must carry observed counters beside its estimate",
            },
            "scale": scale,
            "workloads": {
                "overhead": overhead,
                "worker_spans": bench_worker_spans(scale),
                "explain_analyze": bench_explain_analyze(scale),
            },
        },
        tracer,
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true", help="tiny CI-sized instances"
    )
    parser.add_argument(
        "--repeats",
        type=int,
        default=5,
        help="interleaved repeats per variant (minimum wall is kept)",
    )
    parser.add_argument(
        "-o", "--output", default=str(RESULT_PATH), help="result JSON path"
    )
    parser.add_argument(
        "--trace-output",
        default=str(TRACE_PATH),
        help="span-tree JSON artifact path (the CI upload)",
    )
    args = parser.parse_args(argv)
    scale = 1 if args.smoke else 2
    results, tracer = run(scale, args.repeats)
    path = pathlib.Path(args.output)
    path.write_text(json.dumps(results, indent=2) + "\n")
    trace_path = pathlib.Path(args.trace_output)
    trace_path.write_text(tracer.export_json() + "\n")
    print(f"observe benchmark -> {path}")
    print(f"trace artifact -> {trace_path}")

    overhead = results["workloads"]["overhead"]
    workers = results["workloads"]["worker_spans"]
    analyze = results["workloads"]["explain_analyze"]
    print(
        f"  overhead: untraced {overhead['untraced_wall']:.3f}s, "
        f"traced {overhead['traced_wall']:.3f}s -> "
        f"{(overhead['overhead'] - 1) * 100:+.1f}% "
        f"({overhead['spans_per_run']} spans/run, "
        f"budget {(MAX_OVERHEAD - 1) * 100:.0f}%)"
    )
    print(
        f"  worker_spans: {workers['shard_spans']} shard span(s) nested "
        f"under execute ({workers['mode']} mode)"
    )
    print(
        f"  explain_analyze: {analyze['observed_levels']}/"
        f"{analyze['levels']} levels observed, "
        f"{analyze['rows']} row(s)"
    )

    failed = False
    if not overhead["parity"]:
        print("  PARITY FAILURE: traced run changed the result count")
        failed = True
    if overhead["overhead"] > MAX_OVERHEAD:
        print(
            f"  FAILURE: tracing overhead {overhead['overhead']:.3f} "
            f"exceeds the {MAX_OVERHEAD} budget"
        )
        failed = True
    if not workers["worker_spans_nested"]:
        print("  FAILURE: worker shard spans did not nest under execute")
        failed = True
    if not analyze["all_levels_observed"]:
        print("  FAILURE: explain analyze left levels unobserved")
        failed = True
    if not analyze["final_level_matches_rows"]:
        print("  FAILURE: final-level matches != result cardinality")
        failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
