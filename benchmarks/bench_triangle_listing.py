"""E9 — Section 8 / related work [3]: triangle listing in O(N^{3/2}).

The paper's lead example is equivalent to enumerating triangles in a
tripartite graph, known to be doable in ``O(N^{3/2})`` [Alon-Yuster-Zwick].
This benchmark lists triangles on random and hub-skewed tripartite graphs:

* on uniform random graphs binary plans are competitive (intermediates
  stay near-linear) — there is no free lunch to reproduce here;
* under hub skew the binary plans' intermediates explode while the WCOJ
  algorithms track the ``N^{3/2}`` bound — the crossover the paper
  predicts.
"""

from __future__ import annotations

from repro.baselines.hash_join import chain_hash_join
from repro.core.generic_join import generic_join
from repro.core.leapfrog import leapfrog_join
from repro.core.lw import triangle_join
from repro.core.nprr import nprr_join
from repro.utils.tables import format_table
from repro.utils.timing import timed
from repro.workloads import generators

from benchmarks.conftest import record_table


def _measure(query):
    nprr_run = timed(lambda: nprr_join(query))
    gj_run = timed(lambda: generic_join(query))
    lf_run = timed(lambda: leapfrog_join(query))
    tri_run = timed(
        lambda: triangle_join(
            query.relation("R"), query.relation("S"), query.relation("T")
        )
    )
    hash_run = timed(lambda: chain_hash_join(query))
    _out, hash_stats = hash_run.result
    assert nprr_run.result.equivalent(gj_run.result)
    assert nprr_run.result.equivalent(lf_run.result)
    assert nprr_run.result.equivalent(tri_run.result)
    return nprr_run, gj_run, lf_run, tri_run, hash_run, hash_stats


def test_e9_skew_crossover(benchmark):
    rows = []
    peaks = {}
    for hub in (False, True):
        for edges in (2000, 4000):
            query = generators.tripartite_triangle_instance(
                edges // 4, edges, seed=7, hub=hub
            )
            nprr_run, gj_run, lf_run, tri_run, hash_run, hash_stats = _measure(
                query
            )
            n_edges = query.sizes()["R"]
            bound = (
                query.sizes()["R"] * query.sizes()["S"] * query.sizes()["T"]
            ) ** 0.5
            peaks[(hub, edges)] = hash_stats.max_intermediate
            rows.append(
                (
                    "hub" if hub else "uniform",
                    n_edges,
                    len(nprr_run.result),
                    f"{bound:.0f}",
                    f"{nprr_run.seconds:.4f}",
                    f"{gj_run.seconds:.4f}",
                    f"{lf_run.seconds:.4f}",
                    f"{tri_run.seconds:.4f}",
                    f"{hash_run.seconds:.4f}",
                    hash_stats.max_intermediate,
                )
            )
    record_table(
        format_table(
            (
                "graph",
                "|E| per pair",
                "#triangles",
                "N^1.5 bound",
                "nprr s",
                "generic s",
                "leapfrog s",
                "Ex4.2 s",
                "hash s",
                "hash peak",
            ),
            rows,
            title="E9: triangle listing on tripartite graphs - skew crossover",
        )
    )
    # Hub skew inflates the binary plan's intermediates far beyond the
    # uniform case at equal |E|.
    assert peaks[(True, 4000)] > 4 * peaks[(False, 4000)]

    benchmark.pedantic(
        lambda: generic_join(
            generators.tripartite_triangle_instance(1000, 4000, seed=7, hub=True)
        ),
        rounds=3,
        iterations=1,
    )


def test_e9_sqrt_scaling(benchmark):
    """WCOJ time grows ~linearly in the N^{3/2} bound on dense grids."""
    from repro.workloads import instances, queries

    rows = []
    normalized = []
    for side in (8, 16, 24):
        query = instances.grid_instance(queries.triangle(), side)
        run = timed(lambda q=query: generic_join(q))
        bound = (side**2) ** 1.5
        unit = run.seconds / bound
        normalized.append(unit)
        rows.append(
            (side, side**2, len(run.result), f"{bound:.0f}", f"{run.seconds:.4f}")
        )
        assert len(run.result) == side**3
    record_table(
        format_table(
            ("side", "N_e", "#triangles", "N^1.5", "generic s"),
            rows,
            title="E9: dense grids - output and time track N^{3/2} exactly",
        )
    )
    assert max(normalized) / min(normalized) < 10

    benchmark.pedantic(
        lambda: generic_join(
            instances.grid_instance(queries.triangle(), 24)
        ),
        rounds=3,
        iterations=1,
    )
