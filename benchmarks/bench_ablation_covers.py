"""A1 — ablation: how the fractional cover choice steers Algorithm 2.

Section 5.1's second ingredient is the per-tuple size comparison, whose
thresholds come from the cover.  The cover never changes the *output*
(any valid cover is correct) but it changes the case-a/case-b decisions
and hence the work done.  This ablation runs NPRR under the LP-optimal,
uniform-LW, and all-ones covers and reports work counters and times.
"""

from __future__ import annotations

from fractions import Fraction

from repro.core.nprr import NPRRJoin
from repro.hypergraph.covers import FractionalCover
from repro.utils.tables import format_table
from repro.utils.timing import timed
from repro.workloads import generators, instances, queries

from benchmarks.conftest import record_table


def _covers_for(query):
    h = query.hypergraph
    return (
        ("lp-optimal", None),
        ("uniform 1/(n-1)", FractionalCover.loomis_whitney(h))
        if h.is_lw_instance()
        else ("uniform 1/2", FractionalCover.uniform(h, Fraction(1, 2))),
        ("all-ones", FractionalCover.all_ones(h)),
    )


def test_a1_cover_ablation(benchmark):
    rows = []
    workloads = (
        ("Ex2.2 N=1200", instances.triangle_hard_instance(1200)),
        ("Lemma6.1 n=3 N=600", instances.lw_hard_instance(3, 600)),
        (
            "random triangle",
            generators.random_instance(queries.triangle(), 800, 40, seed=1),
        ),
        (
            "skewed triangle",
            generators.random_instance(
                queries.triangle(), 800, 60, seed=2, skew=1.3
            ),
        ),
    )
    baseline_outputs = {}
    for label, query in workloads:
        for cover_name, cover in _covers_for(query):
            executor = NPRRJoin(query, cover=cover)
            run = timed(executor.execute)
            stats = executor.stats
            key = label
            if key in baseline_outputs:
                assert run.result.equivalent(baseline_outputs[key])
            else:
                baseline_outputs[key] = run.result
            rows.append(
                (
                    label,
                    cover_name,
                    len(run.result),
                    stats.case_a,
                    stats.case_b,
                    stats.tuples_emitted,
                    f"{run.seconds:.4f}",
                )
            )
    record_table(
        format_table(
            ("workload", "cover", "|J|", "case a", "case b", "emitted", "time s"),
            rows,
            title="A1: Algorithm 2 under different fractional covers (same output)",
        )
    )
    benchmark.pedantic(
        lambda: NPRRJoin(instances.triangle_hard_instance(1200)).execute(),
        rounds=3,
        iterations=1,
    )


def test_a1_comparison_mode_ablation(benchmark):
    """Exact-integer vs float log-space case tests: identical output,
    comparable cost at these scales."""
    rows = []
    query = generators.random_instance(queries.triangle(), 800, 40, seed=3)
    baseline = None
    for mode in ("exact", "float"):
        executor = NPRRJoin(query, comparison=mode)
        run = timed(executor.execute)
        if baseline is None:
            baseline = run.result
        else:
            assert run.result.equivalent(baseline)
        rows.append(
            (mode, len(run.result), executor.stats.comparisons, f"{run.seconds:.4f}")
        )
    record_table(
        format_table(
            ("comparison mode", "|J|", "comparisons", "time s"),
            rows,
            title="A1: exact vs float size-comparison modes",
        )
    )
    benchmark.pedantic(
        lambda: NPRRJoin(query, comparison="float").execute(),
        rounds=3,
        iterations=1,
    )
