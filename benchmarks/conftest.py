"""Shared infrastructure for the experiment benchmarks.

Every experiment module (one per DESIGN.md experiment id) measures its
sweep with :mod:`repro.utils.timing`, renders an ASCII table of the series
the paper's claim is about, and registers it via :func:`record_table`.
The tables are printed in the terminal summary (outside pytest's capture,
so they appear under ``--benchmark-only``) and appended to
``benchmarks/results.txt`` for EXPERIMENTS.md.
"""

from __future__ import annotations

import pathlib

_TABLES: list[str] = []

RESULTS_PATH = pathlib.Path(__file__).parent / "results.txt"


def record_table(text: str) -> None:
    """Register an experiment table for the end-of-run summary."""
    _TABLES.append(text)


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if not _TABLES:
        return
    terminalreporter.section("paper reproduction tables")
    for table in _TABLES:
        terminalreporter.write_line(table)
        terminalreporter.write_line("")
    RESULTS_PATH.write_text("\n\n".join(_TABLES) + "\n")
    terminalreporter.write_line(f"(tables saved to {RESULTS_PATH})")
