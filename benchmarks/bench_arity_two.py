"""E6 — Section 7.1 / Theorem 7.3: arity-2 queries via half-integral LPs.

Paper claims reproduced:

* exact LP vertices over graph cover polyhedra are half-integral with
  star + odd-cycle support (Lemma 7.2);
* cycles are joined in ``O(m sqrt(prod_e N_e))`` by the Cycle Lemma
  (Lemma 7.1) — on the hub-pattern hard instances, binary plans blow up
  quadratically while the cycle join's work tracks the bound;
* the decomposition algorithm matches Algorithm 2's output everywhere.
"""

from __future__ import annotations

import math
from fractions import Fraction

from repro.baselines.hash_join import chain_hash_join
from repro.core.arity_two import ArityTwoJoin, decompose_support, is_half_integral
from repro.core.nprr import nprr_join
from repro.hypergraph.agm import optimal_fractional_cover
from repro.utils.tables import format_table
from repro.utils.timing import timed
from repro.workloads import generators, instances, queries

from benchmarks.conftest import record_table


def test_e6_half_integral_structure(benchmark):
    rows = []
    for k in (3, 4, 5, 6, 7):
        query = generators.random_instance(
            queries.cycle_query(k), 200, 30, seed=k
        )
        cover = optimal_fractional_cover(query.hypergraph, query.sizes())
        assert is_half_integral(cover)
        ones, halves, zeros = decompose_support(query.hypergraph, cover)
        structure = (
            f"{len(ones)} star-part(s), {len(halves)} odd-cycle(s), "
            f"{len(zeros)} zero edge(s)"
        )
        if k % 2:
            assert len(halves) == 1 and halves[0].is_cycle() is not None
        rows.append((f"C{k}", str(dict(cover.items()) != {}), structure))
    record_table(
        format_table(
            ("query", "half-integral", "support structure"),
            rows,
            title="E6 (Lemma 7.2): LP vertices on cycle queries",
        )
    )
    benchmark.pedantic(
        lambda: optimal_fractional_cover(
            queries.cycle_query(7),
            {f"R{i}": 200 for i in range(1, 8)},
        ),
        rounds=3,
        iterations=1,
    )


#: Sweep sizes per cycle length.  The binary chain's intermediates grow
#: quadratically on C4 and *cubically* on longer hub cycles (the hub value
#: fans out twice), so the larger k get smaller N to keep pure-Python
#: baselines feasible.
CYCLE_SWEEPS = {4: (200, 400, 800), 5: (40, 80, 160), 6: (40, 80)}


def test_e6_cycle_lemma_vs_binary(benchmark):
    rows = []
    series = {}
    for k, sweep in CYCLE_SWEEPS.items():
        for size in sweep:
            query = instances.cycle_hard_instance(k, size)
            a2 = ArityTwoJoin(query)
            a2_run = timed(a2.execute)
            bound = a2.bound()

            hash_run = timed(lambda q=query: chain_hash_join(q))
            _out, hash_stats = hash_run.result
            series[(k, size)] = hash_stats.max_intermediate
            rows.append(
                (
                    f"C{k}",
                    size,
                    len(a2_run.result),
                    f"{bound:.0f}",
                    f"{a2_run.seconds:.4f}",
                    f"{hash_run.seconds:.4f}",
                    hash_stats.max_intermediate,
                )
            )
            assert len(a2_run.result) <= bound + 1e-6
    record_table(
        format_table(
            (
                "cycle",
                "N",
                "|J|",
                "AGM bound",
                "cycle-lemma s",
                "hash-chain s",
                "hash peak interm",
            ),
            rows,
            title=(
                "E6 (Lemma 7.1): hub-pattern cycles - Cycle Lemma vs binary "
                "chain (super-linear intermediates)"
            ),
        )
    )
    for k, sweep in CYCLE_SWEEPS.items():
        small, large = sweep[0], sweep[-1]
        doublings = (large // small).bit_length() - 1
        # At least quadratic growth in the chain's peak intermediate.
        assert series[(k, large)] / series[(k, small)] > 2.0 ** (
            2 * doublings
        ) / 2

    benchmark.pedantic(
        lambda: ArityTwoJoin(instances.cycle_hard_instance(5, 160)).execute(),
        rounds=3,
        iterations=1,
    )


def test_e6_consistency_and_query_complexity(benchmark):
    """The decomposition matches Algorithm 2, with the Theorem 7.3 bound
    m * prod N_e^{x_e} respected by the output."""
    rows = []
    # Domains scale with k so the random cycles stay sparse enough for a
    # Python-sized output (dense long cycles have astronomically large
    # joins); sizes shrink with k because the Cycle Lemma's cost is
    # Theta(sqrt(prod N_e)) regardless of the output size.
    for k, size, domain in ((3, 300, 18), (5, 200, 30), (7, 60, 25)):
        query = generators.random_instance(
            queries.cycle_query(k), size, domain, seed=10 + k
        )
        a2_run = timed(lambda q=query: ArityTwoJoin(q).execute())
        nprr_run = timed(lambda q=query: nprr_join(q))
        assert a2_run.result.equivalent(nprr_run.result)
        bound = ArityTwoJoin(query).bound()
        rows.append(
            (
                f"C{k}",
                len(a2_run.result),
                f"{bound:.0f}",
                f"{a2_run.seconds:.4f}",
                f"{nprr_run.seconds:.4f}",
            )
        )
    record_table(
        format_table(
            ("cycle", "|J|", "bound", "arity2 s", "nprr s"),
            rows,
            title="E6 (Thm 7.3): decomposition join vs Algorithm 2 on random cycles",
        )
    )
    benchmark.pedantic(
        lambda: ArityTwoJoin(
            generators.random_instance(queries.cycle_query(5), 300, 18, seed=15)
        ).execute(),
        rounds=3,
        iterations=1,
    )
