"""E5 — Sections 2-3: AGM bound validity, tightness, and the geometry.

Paper claims reproduced here:

* inequality (2) holds on arbitrary instances (output <= bound for the
  LP-optimal cover) and is *achieved* on product instances — the
  tightness half of AGM's theorem;
* Lemma 3.2's transformation never worsens the bound (and often improves
  it) while preserving the join;
* the discrete LW / BT inequalities (Theorems 3.1/3.4) hold on point sets,
  with equality on boxes — and joining the projections is the paper's
  *algorithmic proof*.
"""

from __future__ import annotations

import math
import random

from repro.baselines.naive import naive_join
from repro.core.nprr import NPRRJoin, nprr_join
from repro.core.query import JoinQuery
from repro.hypergraph.agm import agm_log_bound, optimal_fractional_cover
from repro.hypergraph.covers import FractionalCover, tighten_cover
from repro.hypergraph.inequalities import verify_lw
from repro.utils.tables import format_table
from repro.workloads import generators, instances, queries

from benchmarks.conftest import record_table


def test_e5_tightness_on_grids(benchmark):
    rows = []
    for name, hypergraph, side in (
        ("triangle", queries.triangle(), 24),
        ("LW n=3", queries.lw_query(3), 24),
        ("LW n=4", queries.lw_query(4), 8),
        ("LW n=5", queries.lw_query(5), 4),
    ):
        query = instances.grid_instance(hypergraph, side)
        cover = optimal_fractional_cover(query.hypergraph, query.sizes())
        bound = math.exp(
            agm_log_bound(query.hypergraph, query.sizes(), cover)
        )
        output = len(nprr_join(query))
        rows.append(
            (name, side, query.sizes()[query.edge_ids[0]], output, f"{bound:.0f}")
        )
        assert output == round(bound)  # tight, as AGM's theorem promises
    record_table(
        format_table(
            ("query", "side", "N_e", "|J|", "AGM bound"),
            rows,
            title="E5: AGM bound achieved exactly on product (grid) instances",
        )
    )
    benchmark.pedantic(
        lambda: nprr_join(instances.grid_instance(queries.triangle(), 24)),
        rounds=3,
        iterations=1,
    )


def test_e5_bound_validity_random(benchmark):
    rows = []
    for seed in range(6):
        query = generators.random_instance(
            queries.triangle(), 300, 24, seed=seed
        )
        cover = optimal_fractional_cover(query.hypergraph, query.sizes())
        bound = math.exp(
            agm_log_bound(query.hypergraph, query.sizes(), cover)
        )
        output = len(nprr_join(query))
        assert output <= bound + 1e-6
        rows.append((seed, output, f"{bound:.0f}", f"{output / bound:.3f}"))
    record_table(
        format_table(
            ("seed", "|J|", "AGM bound", "fill ratio"),
            rows,
            title="E5: inequality (2) on random triangle instances",
        )
    )
    benchmark.pedantic(
        lambda: nprr_join(
            generators.random_instance(queries.triangle(), 300, 24, seed=0)
        ),
        rounds=3,
        iterations=1,
    )


def test_e5_lemma_32_improvement(benchmark):
    rows = []
    for builder, label in (
        (queries.triangle, "triangle"),
        (lambda: queries.lw_query(4), "LW n=4"),
        (queries.paper_figure2, "figure 2"),
    ):
        hypergraph = builder()
        query = generators.random_instance(hypergraph, 60, 5, seed=2)
        cover = FractionalCover.all_ones(hypergraph)
        relations = dict(query.relations)
        before = sum(
            float(cover.get(eid)) * math.log(max(1, len(relations[eid])))
            for eid in hypergraph.edges
        )
        new_h, new_cover, new_rels = tighten_cover(
            hypergraph, cover, relations
        )
        after = sum(
            float(new_cover.get(eid)) * math.log(max(1, len(new_rels[eid])))
            for eid in new_h.edges
        )
        assert new_cover.is_tight(new_h)
        assert after <= before + 1e-9
        original = naive_join(query)
        transformed = naive_join(
            JoinQuery([new_rels[eid].with_name(eid) for eid in new_h.edges])
        )
        assert original.equivalent(transformed)
        rows.append(
            (label, f"{math.exp(before):.0f}", f"{math.exp(after):.0f}")
        )
    record_table(
        format_table(
            ("query", "bound before", "bound after tightening"),
            rows,
            title="E5 (Lemma 3.2): tightening preserves the join, never worsens the bound",
        )
    )
    benchmark.pedantic(
        lambda: tighten_cover(
            queries.paper_figure2(),
            FractionalCover.all_ones(queries.paper_figure2()),
            dict(
                generators.random_instance(
                    queries.paper_figure2(), 60, 5, seed=2
                ).relations
            ),
        ),
        rounds=3,
        iterations=1,
    )


def test_e5_dual_certificates(benchmark):
    """Strong duality in action: the packing LP's optimum certifies the
    worst case, and the product instance it induces realizes it."""
    from repro.hypergraph.duality import (
        optimal_vertex_packing,
        packing_lower_bound,
        tight_instance,
    )

    rows = []
    for name, hypergraph, sizes in (
        ("triangle", queries.triangle(), {"R": 64, "S": 64, "T": 64}),
        (
            "LW n=4",
            queries.lw_query(4),
            {f"R{i}": 64 for i in range(1, 5)},
        ),
        (
            "skewed triangle",
            queries.triangle(),
            {"R": 400, "S": 100, "T": 100},
        ),
    ):
        cover = optimal_fractional_cover(hypergraph, sizes)
        upper = math.exp(agm_log_bound(hypergraph, sizes, cover))
        packing = optimal_vertex_packing(hypergraph, sizes)
        lower = packing_lower_bound(packing)
        witness = tight_instance(hypergraph, sizes)
        realized = len(nprr_join(witness))
        rows.append(
            (
                name,
                f"{upper:.0f}",
                f"{lower:.0f}",
                realized,
                f"{realized / upper:.3f}",
            )
        )
        assert abs(upper - lower) <= 1e-6 * upper  # strong duality
        assert realized <= upper + 1e-6
        assert realized >= 0.2 * upper  # rounding keeps it near-tight
    record_table(
        format_table(
            (
                "query",
                "AGM bound (primal)",
                "packing certificate (dual)",
                "witness |J|",
                "fill",
            ),
            rows,
            title="E5: dual packing certificates and their product witnesses",
        )
    )
    benchmark.pedantic(
        lambda: tight_instance(
            queries.triangle(), {"R": 64, "S": 64, "T": 64}
        ),
        rounds=3,
        iterations=1,
    )


def test_e5_lw_inequality_point_sets(benchmark):
    rows = []
    rng = random.Random(0)
    for kind in ("random", "box", "diagonal"):
        if kind == "random":
            points = {
                (rng.randrange(8), rng.randrange(8), rng.randrange(8))
                for _ in range(200)
            }
        elif kind == "box":
            points = {
                (a, b, c) for a in range(6) for b in range(5) for c in range(4)
            }
        else:
            points = {(i, i, i) for i in range(50)}
        check = verify_lw(points)
        assert check.holds
        rows.append(
            (kind, len(points), f"{check.ratio:.3f}", check.tight)
        )
    record_table(
        format_table(
            ("point set", "|S|", "rhs/lhs ratio", "tight"),
            rows,
            title="E5 (Thm 3.4): discrete Loomis-Whitney inequality on point sets",
        )
    )
    benchmark.pedantic(
        lambda: verify_lw(
            {(i % 10, i % 7, i % 5) for i in range(400)}
        ),
        rounds=3,
        iterations=1,
    )
