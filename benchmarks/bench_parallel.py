"""Parallel sharding benchmark: scaling across 1/2/4/8 shards.

Emits ``benchmarks/BENCH_parallel.json`` for the skewed (Zipf triangle)
and clique workload generators.  For each shard count ``k`` the harness
measures, against the serial streaming engine:

* ``shard_seconds``     — each shard of :func:`repro.engine.parallel.
  plan_shards` executed *one at a time* in-process (no contention), the
  honest per-shard cost including its index builds;
* ``critical_path_seconds`` — ``max(shard_seconds)``: the wall time a
  pool with one core per shard achieves, since shards share nothing;
* ``speedup``           — ``serial_seconds / critical_path_seconds``,
  i.e. the parallel speedup on a machine with >= k cores.  Reported this
  way because CI boxes (and this container: see ``host.cpus`` in the
  JSON) may expose a single core, where a pool cannot beat serial no
  matter the algorithm;
* ``wall_seconds`` / ``wall_speedup`` — the observed end-to-end time of
  ``shard_join(..., mode="process")`` *on this host*, pool and pickling
  overhead included;
* ``balance``           — ``max(shard_seconds) / mean(shard_seconds)``
  (1.0 = perfectly balanced shards; the LPT partitioning keeps this low
  even under Zipf skew);
* a parity check: the sharded row set must equal the serial row set.

A short batched-delivery comparison (row-at-a-time vs ``batches(n)``)
rides along under ``"batched"``.

Run standalone (``PYTHONPATH=src python benchmarks/bench_parallel.py``)
or with ``--smoke`` for the CI-sized instance.
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import sys

from repro.engine.parallel import (
    batches,
    iter_shard_rows,
    plan_shards,
    shard_join,
)
from repro.engine.planner import plan_join
from repro.utils.timing import timed
from repro.workloads import generators, queries

RESULT_PATH = pathlib.Path(__file__).parent / "BENCH_parallel.json"

SHARD_COUNTS = (1, 2, 4, 8)

#: The streaming WCOJ executor under test (the blocking shape
#: specialists lw/arity2 would hide the streaming union).
ALGORITHM = "generic"


def _workloads(scale: int) -> list[tuple[str, object]]:
    """The two ISSUE workloads.

    ``skewed``  — the Zipf triangle: heavy hub values, the distribution
    that punishes naive range partitioning and motivates the
    work-balanced (LPT) shard planner.
    ``clique``  — a uniform 4-clique: six binary relations, the dense
    many-relation shape where every shard still touches every relation.
    """
    skewed = generators.random_instance(
        queries.triangle(), 9000 * scale, 150 * scale, seed=23, skew=1.1
    )
    clique = generators.random_instance(
        queries.clique_query(4), 1200 * scale, 40 * scale, seed=24
    )
    return [("skewed", skewed), ("clique", clique)]


def bench_shards(query) -> dict:
    plan = plan_join(query, ALGORITHM)
    attribute = plan.attribute_order[0]
    serial = timed(lambda: set(plan.iter_rows()))
    serial_rows: set = serial.result
    out: dict = {
        "algorithm": ALGORITHM,
        "shard_attribute": attribute,
        "serial_seconds": serial.seconds,
        "serial_rows": len(serial_rows),
        "by_shard_count": {},
    }
    for count in SHARD_COUNTS:
        specs = plan_shards(query, count, attribute)
        shard_runs = [
            timed(
                lambda spec=spec: sum(
                    1 for _ in iter_shard_rows(query, spec, ALGORITHM)
                )
            )
            for spec in specs
        ]
        shard_seconds = [run.seconds for run in shard_runs]
        critical_path = max(shard_seconds)
        mean = sum(shard_seconds) / len(shard_seconds)
        wall = timed(
            lambda count=count: set(
                shard_join(query, shards=count, algorithm=ALGORITHM,
                           mode="process")
            )
        )
        parity = wall.result == serial_rows
        out["by_shard_count"][str(count)] = {
            "shards_planned": len(specs),
            "shard_rows": [run.result for run in shard_runs],
            "shard_seconds": shard_seconds,
            "critical_path_seconds": critical_path,
            "sum_shard_seconds": sum(shard_seconds),
            "speedup": serial.seconds / critical_path,
            "balance": critical_path / mean,
            "wall_seconds": wall.seconds,
            "wall_speedup": serial.seconds / wall.seconds,
            "parity_with_serial": parity,
        }
        if not parity:
            raise SystemExit(
                f"PARITY FAILURE at {count} shards: sharded result "
                "differs from serial"
            )
    return out


def bench_batched(query) -> dict:
    """Row-at-a-time vs batched delivery of the same stream."""
    plan = plan_join(query, ALGORITHM)
    row_run = timed(lambda: sum(1 for _ in plan.iter_rows()))
    batch_run = timed(
        lambda: sum(len(b) for b in batches(plan.iter_rows(), 1024))
    )
    return {
        "rows": row_run.result,
        "row_at_a_time_seconds": row_run.seconds,
        "batched_1024_seconds": batch_run.seconds,
    }


def run(scale: int) -> dict:
    results: dict = {
        "host": {
            "cpus": len(os.sched_getaffinity(0))
            if hasattr(os, "sched_getaffinity")
            else (os.cpu_count() or 1),
        },
        "definitions": {
            "speedup": "serial_seconds / critical_path_seconds — the "
            "parallel speedup with one core per shard (shards share "
            "nothing, so a k-core pool's wall time is the slowest "
            "shard); shards are timed one at a time to avoid "
            "contention on hosts with fewer cores than shards",
            "wall_speedup": "serial_seconds / wall_seconds of "
            "shard_join(mode='process') observed on THIS host — "
            "bounded by host.cpus, plus pool and pickling overhead",
        },
        "scale": scale,
        "workloads": {},
    }
    for name, query in _workloads(scale):
        results["workloads"][name] = {
            "sizes": query.sizes(),
            "sharding": bench_shards(query),
            "batched": bench_batched(query),
        }
    return results


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true", help="tiny CI-sized instances"
    )
    parser.add_argument(
        "-o", "--output", default=str(RESULT_PATH), help="result JSON path"
    )
    args = parser.parse_args(argv)
    scale = 1 if args.smoke else 2
    results = run(scale)
    path = pathlib.Path(args.output)
    path.write_text(json.dumps(results, indent=2) + "\n")
    print(f"parallel benchmark -> {path}")
    failed = False
    for name, data in results["workloads"].items():
        sharding = data["sharding"]
        print(
            f"  {name}: serial {sharding['serial_seconds']:.3f}s, "
            f"{sharding['serial_rows']} rows"
        )
        for count, entry in sharding["by_shard_count"].items():
            print(
                f"    {count} shard(s): speedup {entry['speedup']:.2f}x "
                f"(balance {entry['balance']:.2f}, wall "
                f"{entry['wall_seconds']:.3f}s)"
            )
        four = sharding["by_shard_count"].get("4")
        if name == "skewed" and four and four["speedup"] < 1.5:
            print("  WARNING: < 1.5x speedup at 4 shards on skewed")
            failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
