"""Engine benchmark: planner order, backends, and the shared index cache.

Emits ``benchmarks/BENCH_engine.json`` with three comparisons on the
triangle and Loomis-Whitney workloads:

* ``order``   — default (query) attribute order vs the planner's
  most-selective-first order, for Generic Join and Leapfrog;
* ``backend`` — hash-trie vs sorted flat-array indexes for Generic Join;
* ``cache``   — repeated-query latency with a shared ``Database`` index
  cache: the first run pays the index build (sort / trie construction),
  the second must not rebuild (``cold`` vs ``warm`` seconds, plus the
  cache-entry counts proving no second build happened).

Run standalone (``PYTHONPATH=src python benchmarks/bench_engine.py``) or
with ``--smoke`` for the CI-sized instance.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

from repro.core.generic_join import GenericJoin
from repro.core.leapfrog import LeapfrogTriejoin
from repro.engine.planner import plan_join
from repro.relations.database import Database
from repro.utils.timing import best_of, timed
from repro.workloads import generators, queries

RESULT_PATH = pathlib.Path(__file__).parent / "BENCH_engine.json"


def _workloads(scale: int) -> list[tuple[str, object]]:
    """The two ISSUE workloads: triangle and LW(4).

    Sparse instances (domain grows with size) keep outputs small, so the
    repeated-query comparison isolates index-build cost — the thing the
    shared cache eliminates — from enumeration cost.
    """
    triangle = generators.random_instance(
        queries.triangle(), 1500 * scale, 120 * scale, seed=13
    )
    lw4 = generators.random_instance(
        queries.lw_query(4), 400 * scale, 8 * scale, seed=14
    )
    return [("triangle", triangle), ("lw4", lw4)]


def bench_order(query, repeats: int) -> dict:
    """Default-order vs planner-order executors (fresh indexes each)."""
    planned = plan_join(query, "generic").attribute_order
    out = {"planned_order": list(planned)}
    for label, order in (
        ("default", query.attributes),
        ("planner", planned),
    ):
        gj = best_of(
            lambda order=order: GenericJoin(
                query, attribute_order=order
            ).execute(),
            repeats,
        )
        lf = best_of(
            lambda order=order: LeapfrogTriejoin(
                query, attribute_order=order
            ).execute(),
            repeats,
        )
        out[label] = {
            "generic_seconds": gj.seconds,
            "leapfrog_seconds": lf.seconds,
        }
    return out


def bench_backend(query, repeats: int) -> dict:
    """Dict-trie vs sorted-array backends for Generic Join."""
    out = {}
    for backend in ("trie", "sorted"):
        run = best_of(
            lambda backend=backend: GenericJoin(
                query, backend=backend
            ).execute(),
            repeats,
        )
        out[backend] = {"generic_seconds": run.seconds}
    return out


def bench_cache(query) -> dict:
    """Cold vs warm repeated-query latency through the Database cache.

    The warm run reuses cached indexes, so it must not re-sort
    (leapfrog) or rebuild tries (generic): cache-entry counts before and
    after the second run are equal.
    """
    out = {}
    for label, factory, kind in (
        (
            "leapfrog",
            lambda db: LeapfrogTriejoin(query, database=db),
            "sorted",
        ),
        ("generic", lambda db: GenericJoin(query, database=db), "trie"),
    ):
        db = Database(list(query.relations.values()))
        cold = timed(lambda: factory(db).execute())
        entries_after_cold = db.cached_index_count(kind)
        warm = timed(lambda: factory(db).execute())
        entries_after_warm = db.cached_index_count(kind)
        out[label] = {
            "cold_seconds": cold.seconds,
            "warm_seconds": warm.seconds,
            "speedup": cold.seconds / warm.seconds if warm.seconds else None,
            "cache_entries_after_cold": entries_after_cold,
            "cache_entries_after_warm": entries_after_warm,
            "rebuilt_on_second_run": entries_after_warm != entries_after_cold,
        }
    return out


def run(scale: int, repeats: int) -> dict:
    results: dict = {"scale": scale, "workloads": {}}
    for name, query in _workloads(scale):
        results["workloads"][name] = {
            "sizes": query.sizes(),
            "order": bench_order(query, repeats),
            "backend": bench_backend(query, repeats),
            "cache": bench_cache(query),
        }
    return results


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true", help="tiny CI-sized instances"
    )
    parser.add_argument(
        "-o", "--output", default=str(RESULT_PATH), help="result JSON path"
    )
    args = parser.parse_args(argv)
    scale = 1 if args.smoke else 4
    repeats = 1 if args.smoke else 3
    results = run(scale, repeats)
    path = pathlib.Path(args.output)
    path.write_text(json.dumps(results, indent=2) + "\n")
    print(f"engine benchmark -> {path}")
    for name, data in results["workloads"].items():
        cache = data["cache"]
        print(
            f"  {name}: leapfrog cold {cache['leapfrog']['cold_seconds']:.4f}s"
            f" / warm {cache['leapfrog']['warm_seconds']:.4f}s,"
            f" generic cold {cache['generic']['cold_seconds']:.4f}s"
            f" / warm {cache['generic']['warm_seconds']:.4f}s"
        )
        for label in ("leapfrog", "generic"):
            if cache[label]["rebuilt_on_second_run"]:
                print(f"  WARNING: {label} rebuilt indexes on the warm run")
                return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
