"""Tests for the named query builders."""

import pytest

from repro.errors import QueryError
from repro.workloads import queries


class TestShapes:
    def test_triangle(self):
        h = queries.triangle()
        assert h.is_lw_instance()
        assert h.is_graph()

    @pytest.mark.parametrize("n", [2, 3, 4, 6])
    def test_lw(self, n):
        h = queries.lw_query(n)
        assert h.is_lw_instance()
        assert len(h) == n

    @pytest.mark.parametrize("k", [2, 3, 5, 8])
    def test_cycle(self, k):
        h = queries.cycle_query(k)
        assert h.is_graph()
        assert h.is_cycle() is not None

    def test_cycle_too_small(self):
        with pytest.raises(QueryError):
            queries.cycle_query(1)

    @pytest.mark.parametrize("k", [1, 3, 5])
    def test_path(self, k):
        h = queries.path_query(k)
        assert h.is_graph()
        assert h.is_cycle() is None
        assert len(h) == k

    @pytest.mark.parametrize("k", [1, 2, 5])
    def test_star(self, k):
        h = queries.star_query(k)
        if k == 1:
            # A single edge is a star with either endpoint as its center.
            assert h.is_star() in ("Hub", "A1")
        else:
            assert h.is_star() == "Hub"

    @pytest.mark.parametrize("k", [2, 3, 4])
    def test_clique(self, k):
        h = queries.clique_query(k)
        assert len(h) == k * (k - 1) // 2
        assert h.is_graph()

    def test_fd_fanout(self):
        h = queries.fd_fanout_query(3)
        assert len(h) == 6
        assert h.is_graph()

    def test_relaxed_lower_bound(self):
        h = queries.relaxed_lower_bound_query(3)
        assert len(h) == 4
        assert len(h.edges["E4"]) == 3


class TestPaperQueries:
    def test_example_52_incidence(self):
        """The edges match the paper's incidence matrix M exactly."""
        h = queries.paper_example_52()
        assert h.edge("a") == frozenset("1245")
        assert h.edge("b") == frozenset("1346")
        assert h.edge("c") == frozenset("123")
        assert h.edge("d") == frozenset("246")
        assert h.edge("e") == frozenset("356")
        assert h.edge_ids == ("a", "b", "c", "d", "e")

    def test_figure2_schemas(self):
        h = queries.paper_figure2()
        assert h.edge("R1") == frozenset({"A1", "A2", "A4", "A5"})
        assert h.edge("R5") == frozenset({"A3", "A5", "A6"})

    def test_beyond_lw_conditions(self):
        """The three Lemma 6.3 conditions for U = {A,B,C}, F = E."""
        h = queries.beyond_lw_query()
        u = {"A", "B", "C"}
        # (1) every u in U occurs in exactly |U| - 1 = 2 edges of F.
        for vertex in u:
            assert h.degree(vertex) == 2
        # (2) the U-relevant vertex D appears in >= 2 edges.
        assert h.degree("D") == 3
        # (3) no U-troublesome attribute: no edge contains all of U.
        for edge in h.edges.values():
            assert not u <= edge
