"""Tests for the random generators (determinism + shape)."""

import random

import pytest

from repro.workloads import generators, queries


class TestRandomRelation:
    def test_deterministic(self):
        a = generators.random_relation("R", ("A", "B"), 30, 5, random.Random(1))
        b = generators.random_relation("R", ("A", "B"), 30, 5, random.Random(1))
        assert a == b

    def test_size_cap(self):
        rel = generators.random_relation("R", ("A",), 100, 3, random.Random(0))
        assert len(rel) <= 3

    def test_domain_respected(self):
        rel = generators.random_relation("R", ("A", "B"), 50, 4, random.Random(2))
        for row in rel.tuples:
            assert all(0 <= v < 4 for v in row)


class TestZipfRelation:
    def test_skew_shape(self):
        rng = random.Random(3)
        rel = generators.zipf_relation("R", ("A", "B"), 400, 50, rng, exponent=1.5)
        counts = {}
        for row in rel.tuples:
            counts[row[0]] = counts.get(row[0], 0) + 1
        assert counts.get(0, 0) >= counts.get(40, 0)


class TestRandomInstance:
    def test_deterministic(self):
        a = generators.random_instance(queries.triangle(), 30, 5, seed=4)
        b = generators.random_instance(queries.triangle(), 30, 5, seed=4)
        assert a.relation("R") == b.relation("R")

    def test_schemas_match_hypergraph(self):
        q = generators.random_instance(queries.paper_figure2(), 20, 3, seed=5)
        for eid in q.edge_ids:
            assert q.relation(eid).attribute_set == q.hypergraph.edges[eid]

    def test_skewed_variant(self):
        q = generators.random_instance(
            queries.triangle(), 40, 10, seed=6, skew=1.3
        )
        assert len(q) == 3


class TestRandomHypergraph:
    @pytest.mark.parametrize("seed", range(10))
    def test_always_coverable(self, seed):
        h = generators.random_hypergraph(6, 4, 3, seed=seed)
        assert h.covers_vertices()

    @pytest.mark.parametrize("seed", range(10))
    def test_respects_max_arity(self, seed):
        h = generators.random_hypergraph(6, 5, 2, seed=seed)
        assert all(len(e) <= 2 for e in h.edges.values())

    def test_deterministic(self):
        assert generators.random_hypergraph(5, 4, 3, seed=7) == (
            generators.random_hypergraph(5, 4, 3, seed=7)
        )


class TestTripartite:
    def test_shape(self):
        q = generators.tripartite_triangle_instance(20, 60, seed=1)
        assert q.edge_ids == ("R", "S", "T")
        assert len(q.relation("R")) == 60

    def test_hub_adds_skew(self):
        plain = generators.tripartite_triangle_instance(20, 30, seed=2)
        hubbed = generators.tripartite_triangle_instance(20, 30, seed=2, hub=True)
        assert len(hubbed.relation("R")) > len(plain.relation("R"))
