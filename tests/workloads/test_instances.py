"""Tests that the paper's instance families have their claimed properties."""

import pytest

from repro.baselines.naive import naive_join
from repro.core.nprr import nprr_join
from repro.errors import QueryError
from repro.workloads import instances, queries


class TestExample22:
    @pytest.mark.parametrize("n", [4, 10, 20, 40])
    def test_sizes(self, n):
        q = instances.triangle_hard_instance(n)
        assert q.sizes() == {"R": n, "S": n, "T": n}

    @pytest.mark.parametrize("n", [4, 10, 20])
    def test_pairwise_join_sizes(self, n):
        """|R join S| = N^2/4 + N/2, for every pair (Example 2.2 (2))."""
        q = instances.triangle_hard_instance(n)
        expected = n * n // 4 + n // 2
        assert len(q.relation("R").natural_join(q.relation("S"))) == expected
        assert len(q.relation("S").natural_join(q.relation("T"))) == expected
        assert len(q.relation("R").natural_join(q.relation("T"))) == expected

    @pytest.mark.parametrize("n", [4, 10, 20])
    def test_triangle_join_empty(self, n):
        """|R join S join T| = 0 (Example 2.2 (3))."""
        q = instances.triangle_hard_instance(n)
        assert naive_join(q).is_empty()

    def test_odd_n_rejected(self):
        with pytest.raises(QueryError):
            instances.triangle_hard_instance(7)


class TestLWHard:
    @pytest.mark.parametrize("n,size", [(3, 13), (4, 16), (5, 21)])
    def test_realized_sizes(self, n, size):
        q = instances.lw_hard_instance(n, size)
        m = max(1, (size - 1) // (n - 1))
        expected = 1 + (n - 1) * m
        for eid in q.edge_ids:
            assert len(q.relation(eid)) == expected

    def test_simple_relation_structure(self):
        """Every tuple has at most one non-zero coordinate."""
        q = instances.lw_hard_instance(4, 13)
        for relation in q.relations.values():
            for row in relation.tuples:
                assert sum(1 for v in row if v != 0) <= 1

    def test_join_size_formula(self):
        """|join| = N + (N-1)/(n-1) with the realized sizes (Lemma 6.1)."""
        n, size = 3, 21
        q = instances.lw_hard_instance(n, size)
        m = (size - 1) // (n - 1)
        realized = 1 + (n - 1) * m
        out = naive_join(q)
        assert len(out) == realized + m

    def test_pairwise_joins_blow_up(self):
        """Joining two simple relations with incomparable attribute sets
        yields Omega(N^2/n^2) tuples (the lower-bound engine)."""
        n, size = 3, 31
        q = instances.lw_hard_instance(n, size)
        m = (size - 1) // (n - 1)
        pair = q.relation("R1").natural_join(q.relation("R2"))
        assert len(pair) >= (1 + m) ** 2

    def test_too_small_n_rejected(self):
        with pytest.raises(QueryError):
            instances.lw_hard_instance(2, 10)


class TestBeyondLW:
    def test_schema(self):
        q = instances.beyond_lw_instance(13)
        assert set(q.attributes) == {"A", "B", "C", "D"}
        for relation in q.relations.values():
            assert "D" in relation.attribute_set

    def test_padding_constant(self):
        q = instances.beyond_lw_instance(13, padding_value=-7)
        for relation in q.relations.values():
            d_pos = relation.position("D")
            assert all(row[d_pos] == -7 for row in relation.tuples)

    def test_join_matches_lw_core(self):
        """Projecting D away recovers the Lemma 6.1 join."""
        size = 13
        lifted = instances.beyond_lw_instance(size)
        core = instances.lw_hard_instance(3, size)
        lifted_join = naive_join(lifted).project(("A", "B", "C"))
        core_join = naive_join(core).rename(
            {"A1": "A", "A2": "B", "A3": "C"}
        )
        assert lifted_join.equivalent(core_join)


class TestGrid:
    def test_sizes(self):
        q = instances.grid_instance(queries.triangle(), 5)
        assert all(size == 25 for size in q.sizes().values())

    def test_join_is_full_grid(self):
        q = instances.grid_instance(queries.triangle(), 3)
        assert len(nprr_join(q)) == 27

    def test_lw_grid_tight(self):
        """Output = side^n = (side^{n-1})^{n/(n-1)} = AGM bound exactly."""
        side, n = 3, 4
        q = instances.grid_instance(queries.lw_query(n), side)
        out = nprr_join(q)
        assert len(out) == side**n

    def test_bad_side_rejected(self):
        with pytest.raises(QueryError):
            instances.grid_instance(queries.triangle(), 0)


class TestRelaxedLowerBound:
    def test_shapes(self):
        q = instances.relaxed_lower_bound_instance(3, 5)
        assert q.sizes() == {"E1": 5, "E2": 5, "E3": 5, "E4": 5}
        assert len(q.relation("E4").attributes) == 3

    def test_heavy_relation_disjoint_domain(self):
        q = instances.relaxed_lower_bound_instance(3, 5)
        heavy = q.relation("E4")
        light_values = {v for (v,) in q.relation("E1").tuples}
        for row in heavy.tuples:
            assert set(row).isdisjoint(light_values)

    def test_plain_join_empty(self):
        q = instances.relaxed_lower_bound_instance(3, 4)
        assert nprr_join(q).is_empty()


class TestFDFanout:
    def test_shapes(self):
        query, fds = instances.fd_fanout_instance(3, 7)
        assert len(fds) == 3
        assert query.sizes()["R1"] == 7
        assert query.sizes()["S2"] == 7

    def test_join_size(self):
        query, _fds = instances.fd_fanout_instance(2, 6)
        assert len(naive_join(query)) == 6

    def test_half_join_explodes(self):
        """join_i S_i alone has N^k tuples (the paper's bad ordering)."""
        k, size = 2, 6
        query, _fds = instances.fd_fanout_instance(k, size)
        half = query.relation("S1").natural_join(query.relation("S2"))
        assert len(half) == size**k


class TestCycleHard:
    @pytest.mark.parametrize("k", [3, 4, 5])
    def test_sizes(self, k):
        q = instances.cycle_hard_instance(k, 12)
        assert all(size == 12 for size in q.sizes().values())

    def test_pairwise_blowup(self):
        q = instances.cycle_hard_instance(4, 20)
        pair = q.relation("R1").natural_join(q.relation("R2"))
        assert len(pair) >= 100

    def test_odd_n_rejected(self):
        with pytest.raises(QueryError):
            instances.cycle_hard_instance(4, 9)
