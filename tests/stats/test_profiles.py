"""Profiles: distinct counts, heavy/light split, deterministic top-k."""

import random

from repro.relations.relation import Relation
from repro.stats.profiles import heavy_threshold, profile_relation
from repro.workloads import generators


def skewed_relation(size=400, domain=50, exponent=1.2, seed=3):
    return generators.zipf_relation(
        "Z", ("A", "B"), size, domain, random.Random(seed), exponent
    )


class TestHeavyThreshold:
    def test_sqrt_rule(self):
        assert heavy_threshold(100) == 10
        assert heavy_threshold(10000) == 100

    def test_clamped_for_tiny_relations(self):
        # sqrt(1) = 1 would make every singleton value "heavy".
        assert heavy_threshold(0) == 2
        assert heavy_threshold(1) == 2
        assert heavy_threshold(3) == 2


class TestAttributeProfile:
    def test_distinct_and_total(self):
        rel = Relation("R", ("A", "B"), [(1, 1), (1, 2), (2, 3)])
        profile = profile_relation(rel)
        assert profile.size == 3
        assert profile.attribute("A").distinct == 2
        assert profile.attribute("B").distinct == 3
        assert profile.attribute("A").total == 3

    def test_top_is_most_frequent_first(self):
        rel = Relation(
            "R",
            ("A", "B"),
            [(9, i) for i in range(4)] + [(1, 0), (2, 0)],
        )
        top = profile_relation(rel).attribute("A").top
        assert top[0] == (9, 4)

    def test_top_ties_break_on_repr(self):
        rel = Relation("R", ("A",), [(v,) for v in (3, 1, 2)])
        top = profile_relation(rel).attribute("A").top
        assert top == ((1, 1), (2, 1), (3, 1))

    def test_top_k_limits_table(self):
        rel = Relation("R", ("A",), [(v,) for v in range(100)])
        assert len(profile_relation(rel, top_k=5).attribute("A").top) == 5

    def test_no_heavy_values_in_uniform_data(self):
        rel = Relation("R", ("A", "B"), [(i, i) for i in range(100)])
        profile = profile_relation(rel).attribute("A")
        assert profile.heavy_count == 0
        assert profile.heavy_mass == 0.0
        assert not profile.is_skewed

    def test_heavy_values_detected_under_skew(self):
        # One hub value with frequency far above sqrt(N).
        hub = [(0, i) for i in range(64)]
        tail = [(i, 0) for i in range(1, 37)]
        rel = Relation("R", ("A", "B"), hub + tail)
        profile = profile_relation(rel).attribute("A")
        assert profile.total == 100
        assert profile.heavy_threshold == 10
        assert profile.heavy_count == 1
        assert profile.heavy_mass == 0.64
        assert profile.is_skewed
        assert profile.max_frequency == 64

    def test_zipf_relation_is_skewed(self):
        profile = profile_relation(skewed_relation())
        assert profile.max_heavy_mass > 0.0
        assert any(p.is_skewed for p in profile.attributes)

    def test_skew_is_one_for_perfectly_uniform(self):
        rel = Relation("R", ("A",), [(i,) for i in range(10)])
        assert profile_relation(rel).attribute("A").skew == 1.0

    def test_empty_relation(self):
        profile = profile_relation(Relation("R", ("A", "B")))
        assert profile.size == 0
        a = profile.attribute("A")
        assert a.distinct == 0
        assert a.heavy_mass == 0.0
        assert a.max_frequency == 0
        assert a.skew == 1.0

    def test_describe_mentions_heavy_split(self):
        rel = Relation(
            "R", ("A", "B"), [(0, i) for i in range(64)]
            + [(i, 0) for i in range(1, 37)]
        )
        text = profile_relation(rel).attribute("A").describe()
        assert "1 heavy" in text
        assert "64%" in text

    def test_determinism(self):
        rel = skewed_relation()
        assert profile_relation(rel) == profile_relation(rel)
