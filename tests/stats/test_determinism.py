"""Sampling determinism: identical seeds => identical plans.

The contract (ISSUE 3 satellite): with the same data and the same
sampler seed, the planner's decisions — attribute order, backend(s),
shard count — are identical across runs *and across process
boundaries*.  Cross-process is the sharp edge: string hashing is
randomized per process (``PYTHONHASHSEED``), so anything that iterates
a set/frozenset of strings in hash order is run-to-run stable but
process-to-process unstable.  The sampler ranks rows by a keyed BLAKE2b
digest precisely to dodge this; these tests pin it with string-valued
relations and explicitly different hash seeds.
"""

import os
import pathlib
import pickle
import subprocess
import sys
import textwrap

from repro.engine.planner import plan_join
from repro.stats import StatsConfig, StatsProvider
from repro.workloads import generators

# String values make set iteration order process-dependent — the
# adversarial case for cross-process determinism.
WORKLOAD_SRC = textwrap.dedent(
    """
    from repro.core.query import JoinQuery
    from repro.relations.relation import Relation

    def workload():
        r = Relation(
            "R", ("A", "B"),
            [(f"a{i % 37}", f"b{i % 11}") for i in range(300)],
        )
        s = Relation(
            "S", ("B", "C"),
            [(f"b{i % 11}", f"c{i % 53}") for i in range(300)],
        )
        t = Relation(
            "T", ("A", "C"),
            [(f"a{i % 5}", f"c{i % 53}") for i in range(300)],
        )
        return JoinQuery([r, s, t])
    """
)

_NAMESPACE: dict = {}
exec(WORKLOAD_SRC, _NAMESPACE)
workload = _NAMESPACE["workload"]


def decisions(plan):
    return (
        plan.attribute_order,
        plan.backend,
        plan.relation_backends,
        plan.shards,
        plan.batch_size,
        plan.statistics,
    )


class TestWithinProcess:
    def test_identical_seeds_identical_plans(self):
        first = plan_join(workload(), "generic", shards="auto")
        second = plan_join(workload(), "generic", shards="auto")
        assert decisions(first) == decisions(second)

    def test_fresh_providers_agree(self):
        # No hidden state: two independent providers, same seed.
        a = plan_join(workload(), "generic", stats=StatsProvider())
        b = plan_join(workload(), "generic", stats=StatsProvider())
        assert decisions(a) == decisions(b)

    def test_different_seed_may_differ_but_is_deterministic(self):
        seeded = StatsConfig(seed=99)
        a = plan_join(
            workload(), "generic", stats=StatsProvider(config=seeded)
        )
        b = plan_join(
            workload(), "generic", stats=StatsProvider(config=seeded)
        )
        assert decisions(a) == decisions(b)

    def test_pickled_plan_preserves_decisions(self):
        plan = plan_join(workload(), "generic", shards="auto")
        clone = pickle.loads(pickle.dumps(plan))
        assert decisions(clone) == decisions(plan)
        assert clone.reasons == plan.reasons


class TestAcrossProcesses:
    """Run the same plan in subprocesses with different PYTHONHASHSEED."""

    SCRIPT = WORKLOAD_SRC + textwrap.dedent(
        """
        import pickle, sys
        from repro.engine.planner import plan_join

        plan = plan_join(workload(), "generic", shards="auto")
        payload = (
            plan.attribute_order,
            plan.backend,
            plan.relation_backends,
            plan.shards,
            plan.statistics,
        )
        sys.stdout.buffer.write(pickle.dumps(payload))
        """
    )

    def run_child(self, hashseed: str):
        src = str(pathlib.Path(__file__).resolve().parents[2] / "src")
        env = dict(os.environ)
        env["PYTHONPATH"] = src
        env["PYTHONHASHSEED"] = hashseed
        result = subprocess.run(
            [sys.executable, "-c", self.SCRIPT],
            capture_output=True,
            env=env,
            check=True,
        )
        return pickle.loads(result.stdout)

    def test_plans_agree_across_hash_randomization(self):
        first = self.run_child("1")
        second = self.run_child("2")
        assert first == second

    def test_child_plan_matches_parent(self):
        child = self.run_child("3")
        parent = plan_join(workload(), "generic", shards="auto")
        assert child == (
            parent.attribute_order,
            parent.backend,
            parent.relation_backends,
            parent.shards,
            parent.statistics,
        )


class TestShardedExecutionDeterminism:
    def test_auto_sharded_parity_with_serial(self):
        # shards="auto" + heavy-aware sizing keeps exact set parity.
        q = generators.random_instance(
            generators.random_hypergraph(3, 3, 2, seed=1), 2600, 40, seed=5
        )
        from repro.api import iter_join, shard_join

        serial = set(iter_join(q, algorithm="generic"))
        sharded = set(
            shard_join(q, shards="auto", algorithm="generic", mode="serial")
        )
        assert sharded == serial
