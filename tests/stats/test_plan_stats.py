"""Statistics-driven planning: order, backends, shards, evidence."""

import pytest

from repro.baselines.naive import naive_join
from repro.core.query import JoinQuery
from repro.engine.planner import (
    plan_attribute_order,
    plan_attribute_order_sampled,
    plan_join,
)
from repro.relations.database import Database
from repro.relations.relation import Relation
from repro.stats import PlanStatistics, StatsConfig, StatsProvider
from repro.workloads import generators, queries

from tests.helpers import triangle_query


def heuristic_provider():
    return StatsProvider(config=StatsConfig(sample_size=0))


@pytest.fixture
def trap():
    # B: 8 distinct values (min-distinct bait) but selectivity ~1;
    # A: 20 distinct in T, and only ~5% of R's A-values match T.
    return generators.zipf_trap_triangle(400, 3000, seed=7)


class TestSampledOrder:
    def test_avoids_the_distinct_count_trap(self, trap):
        provider = StatsProvider()
        sampled, scores, estimates, consulted = (
            plan_attribute_order_sampled(trap, provider)
        )
        heuristic = plan_attribute_order(trap, scores)
        assert heuristic[0] == "B"  # the decoy: fewest distinct values
        assert sampled[0] == "A"  # the payoff: sampled selectivity ~5%
        assert consulted[("R", "T")] < 0.2  # the evidence
        assert [a for a, _est in estimates] == list(sampled)

    def test_is_a_permutation(self, trap):
        order, *_rest = plan_attribute_order_sampled(trap, StatsProvider())
        assert sorted(order) == sorted(trap.attributes)

    def test_falls_back_to_min_distinct_when_sampling_disabled(self, trap):
        plan = plan_join(trap, "generic", stats=heuristic_provider())
        scores = heuristic_provider().attribute_scores(trap)
        assert plan.attribute_order == plan_attribute_order(trap, scores)
        assert plan.statistics.source == "heuristic"
        assert any("ascending distinct-count" in r for r in plan.reasons)

    def test_sampled_plan_same_result_set(self, trap):
        base = naive_join(trap)
        plan = plan_join(trap, "generic")
        assert plan.execute().equivalent(base)

    def test_estimates_clamped_by_agm_subbounds(self):
        # Triangle: the final attribute's estimate cannot exceed the
        # covered sub-query's AGM bound (3^1.5 here, further clamped by
        # the fully-covered relations' sizes).
        q = triangle_query()
        _order, _scores, estimates, _sels = plan_attribute_order_sampled(
            q, StatsProvider()
        )
        assert estimates[-1][1] <= 3**1.5 + 1e-9


class TestPlanStatisticsRecord:
    def test_present_for_order_sensitive_plans(self, trap):
        plan = plan_join(trap, "generic")
        stats = plan.statistics
        assert isinstance(stats, PlanStatistics)
        assert stats.source == "sampled"
        assert dict(stats.distinct_counts)  # every ordered attribute
        assert stats.selectivities  # the probes that drove the order
        assert stats.order_estimates

    def test_absent_when_no_statistics_consulted(self):
        # lw derives its own order; nothing data-driven was decided.
        plan = plan_join(triangle_query())
        assert plan.algorithm == "lw"
        assert plan.statistics is None

    def test_describe_show_stats(self, trap):
        plan = plan_join(trap, "generic")
        assert "statistics:" not in plan.describe()
        text = plan.describe(show_stats=True)
        assert "statistics:" in text
        assert "selectivity: P(match in" in text

    def test_heavy_hitters_recorded_on_skewed_data(self):
        q = generators.random_instance(
            queries.triangle(), 6000, 120, seed=23, skew=1.1
        )
        plan = plan_join(q, "generic")
        assert plan.statistics.heavy_hitters


class TestAutoShardsHeavyAware:
    def test_heavy_values_boost_shard_count(self):
        q = generators.random_instance(
            queries.triangle(), 9000, 150, seed=23, skew=1.1
        )
        assert q.total_input_size() >= 4096
        plan = plan_join(q, "generic", shards="auto")
        stats = plan.statistics
        assert stats.shard_attribute == plan.attribute_order[0]
        assert stats.shard_heavy_mass >= 0.25
        assert stats.shard_cpus >= 1
        # Enough shards for each heavy value to get its own.
        assert plan.shards >= 2

    def test_uniform_data_uses_cpu_rule(self):
        q = generators.random_instance(queries.triangle(), 2500, 500, seed=9)
        assert q.total_input_size() >= 4096
        plan = plan_join(q, "generic", shards="auto")
        assert 1 <= plan.shards <= 8
        assert plan.statistics.shard_heavy_mass is not None
        assert not any("heavy value(s) carry" in r for r in plan.reasons)

    def test_small_input_stays_serial(self):
        plan = plan_join(triangle_query(), "generic", shards="auto")
        assert plan.shards == 1


class TestPerRelationBackends:
    def test_cached_index_is_reused(self):
        db = Database(
            [
                Relation("R", ("A", "B"), [(0, 1), (1, 2), (2, 0)]),
                Relation("S", ("B", "C"), [(1, 5), (2, 6), (0, 7)]),
                Relation("T", ("A", "C"), [(0, 5), (1, 6), (2, 7)]),
            ]
        )
        q = JoinQuery.from_database(db, ["R", "S", "T"])
        base = plan_join(q, "generic", database=db)
        order = base.attribute_order
        rank = {a: i for i, a in enumerate(order)}
        r_order = tuple(sorted(db["R"].attributes, key=rank.__getitem__))
        db.sorted_index("R", r_order)  # warm a sorted index for R
        plan = plan_join(q, "generic", database=db)
        assert plan.backend == "mixed"
        assert ("R", "sorted") in plan.relation_backends
        assert any("cached sorted index" in r for r in plan.reasons)
        # Mixed backends still compute the right answer, via the cache.
        assert plan.execute(database=db).equivalent(naive_join(q))

    def test_default_stays_uniform_trie(self):
        plan = plan_join(triangle_query(), "generic")
        assert plan.backend == "trie"
        assert plan.relation_backends is None

    def test_dense_first_level_gets_compact(self):
        import repro.engine.planner as planner_module

        # R's first index level (B = i % 977) is a full integer interval:
        # density 1.0, well past the DENSE_FIRST_LEVEL cut.
        big = Relation(
            "R", ("A", "B"), [(i, i % 977) for i in range(40000)]
        )
        small = Relation("S", ("B", "C"), [(i % 977, i) for i in range(500)])
        q = JoinQuery([big, small])
        assert len(big) >= planner_module.DENSE_COMPACT_RELATION
        plan = plan_join(q, "generic")
        assert plan.backend == "mixed"
        assert ("R", "compact") in plan.relation_backends
        assert ("S", "trie") in plan.relation_backends
        assert any("dense integer" in r for r in plan.reasons)

    def test_large_low_skew_relation_gets_compact(self):
        import repro.engine.planner as planner_module

        # B = (i % 977) * 5 leaves gaps: 977 distinct over a span of
        # 4881 (~20% dense), below the density rule — so only the
        # large-low-skew rule can pick compact here.
        big = Relation(
            "R", ("A", "B"), [(i, (i % 977) * 5) for i in range(40000)]
        )
        small = Relation(
            "S", ("B", "C"), [((i % 977) * 5, i) for i in range(500)]
        )
        q = JoinQuery([big, small])
        assert len(big) >= planner_module.LARGE_FLAT_RELATION
        assert planner_module.LARGE_SORTED_RELATION == (
            planner_module.LARGE_FLAT_RELATION
        )
        plan = plan_join(q, "generic")
        assert plan.backend == "mixed"
        assert ("R", "compact") in plan.relation_backends
        assert ("S", "trie") in plan.relation_backends
        assert any("low-skew tuples" in r for r in plan.reasons)

    def test_cached_compact_index_is_reused(self):
        db = Database(
            [
                Relation("R", ("A", "B"), [(0, 1), (1, 2), (2, 0)]),
                Relation("S", ("B", "C"), [(1, 5), (2, 6), (0, 7)]),
                Relation("T", ("A", "C"), [(0, 5), (1, 6), (2, 7)]),
            ]
        )
        q = JoinQuery.from_database(db, ["R", "S", "T"])
        base = plan_join(q, "generic", database=db)
        rank = {a: i for i, a in enumerate(base.attribute_order)}
        r_order = tuple(sorted(db["R"].attributes, key=rank.__getitem__))
        db.compact_index("R", r_order)
        plan = plan_join(q, "generic", database=db)
        assert plan.backend == "mixed"
        assert ("R", "compact") in plan.relation_backends
        assert any("cached compact index" in r for r in plan.reasons)
        assert plan.execute(database=db).equivalent(naive_join(q))

    def test_caller_fixed_backend_wins(self):
        plan = plan_join(triangle_query(), "generic", backend="sorted")
        assert plan.backend == "sorted"
        assert plan.relation_backends is None

    def test_partial_mapping_labels_mixed(self):
        # A mapping that covers only some relations leaves the rest on
        # the trie default — the label must say so.
        from repro.core.generic_join import GenericJoin

        q = triangle_query()
        assert GenericJoin(q, backend={"R": "sorted"}).backend == "mixed"
        assert GenericJoin(q, backend={"R": "trie"}).backend == "trie"
        executor = GenericJoin(q, backend={"R": "sorted"})
        assert sorted(executor.iter_join()) == sorted(
            naive_join(q).reorder(q.attributes).tuples
        )


class TestSharedDefaultProvider:
    def test_repeated_adhoc_plans_do_not_rescan(self, monkeypatch):
        # plan_join without a database must reuse the process-wide
        # provider: planning the same relation objects twice profiles
        # them once.
        import repro.stats.provider as provider_module

        calls = []
        real = provider_module.profile_relation

        def counting(relation, top_k):
            calls.append(relation.name)
            return real(relation, top_k)

        monkeypatch.setattr(provider_module, "profile_relation", counting)
        q = JoinQuery(
            [
                Relation("R", ("A", "B"), [(i, i + 1) for i in range(30)]),
                Relation("S", ("B", "C"), [(i + 1, i) for i in range(30)]),
            ]
        )
        plan_join(q, "generic")
        first = len(calls)
        assert first > 0
        plan_join(q, "generic")
        assert len(calls) == first

    def test_local_cache_is_bounded(self):
        from repro.stats.provider import LOCAL_CACHE_BUDGET

        provider = StatsProvider()
        for i in range(LOCAL_CACHE_BUDGET + 50):
            provider.profile(Relation(f"R{i}", ("A",), [(i,)]))
        assert len(provider._local) <= LOCAL_CACHE_BUDGET


class TestAiterJoinDatabase:
    def test_database_reused_for_async_plans(self):
        import asyncio

        from repro.api import aiter_join

        db = Database(
            [
                Relation("R", ("A", "B"), [(0, 1), (1, 2), (2, 0)]),
                Relation("S", ("B", "C"), [(1, 5), (2, 6), (0, 7)]),
                Relation("T", ("A", "C"), [(0, 5), (1, 6), (2, 7)]),
            ]
        )
        q = JoinQuery.from_database(db, ["R", "S", "T"])

        async def collect():
            return {
                row
                async for row in aiter_join(
                    q, algorithm="generic", database=db
                )
            }

        rows = asyncio.run(collect())
        assert rows == {(0, 1, 5), (1, 2, 6), (2, 0, 7)}
        assert db.cached_index_count() > 0
        assert db.cached_stats_count() > 0
