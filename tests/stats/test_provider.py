"""StatsProvider: identity-keyed caching, database invalidation."""

import pytest

from repro.core.query import JoinQuery
from repro.relations.database import Database
from repro.relations.relation import Relation
from repro.stats import StatsConfig, StatsProvider


def triangle_relations():
    return [
        Relation("R", ("A", "B"), [(0, 1), (1, 2), (2, 0)]),
        Relation("S", ("B", "C"), [(1, 5), (2, 6), (0, 7)]),
        Relation("T", ("A", "C"), [(0, 5), (1, 6), (2, 7)]),
    ]


@pytest.fixture
def db():
    return Database(triangle_relations())


class TestConfig:
    def test_sampling_flag(self):
        assert StatsConfig().sampling
        assert not StatsConfig(sample_size=0).sampling

    def test_hashable(self):
        assert StatsConfig() == StatsConfig()
        assert len({StatsConfig(), StatsConfig(seed=1)}) == 2


class TestDatabaseCache:
    def test_profile_cached_in_database(self, db):
        provider = db.stats()
        first = provider.profile(db["R"])
        assert db.cached_stats_count() > 0
        assert provider.profile(db["R"]) is first

    def test_shared_across_provider_lookups(self, db):
        # db.stats() returns one provider per config.
        assert db.stats() is db.stats()
        assert db.stats(StatsConfig(seed=1)) is not db.stats()

    def test_replace_invalidates(self, db):
        provider = db.stats()
        before = provider.profile(db["R"])
        assert before.attribute("A").distinct == 3
        db.add(Relation("R", ("A", "B"), [(9, 9)]), replace=True)
        after = provider.profile(db["R"])
        assert after is not before
        assert after.attribute("A").distinct == 1

    def test_remove_invalidates(self, db):
        provider = db.stats()
        provider.profile(db["R"])
        assert db.cached_stats_count() > 0
        db.remove("R")
        assert db.cached_stats_count() == 0

    def test_same_named_adhoc_relation_does_not_hit_catalog_cache(self, db):
        provider = db.stats()
        provider.profile(db["R"])
        imposter = Relation("R", ("A", "B"), [(7, 7)])
        profile = provider.profile(imposter)
        assert profile.size == 1  # the imposter's own data
        # And the catalog's cached profile is untouched.
        assert provider.profile(db["R"]).size == 3

    def test_selectivity_cached_and_invalidated_with_target(self, db):
        provider = db.stats()
        sel = provider.selectivity(db["R"], db["T"])
        assert sel == 1.0
        cached = db.cached_stats_count()
        assert cached > 0
        # Replacing the *target* must invalidate the pair entry.
        db.add(Relation("T", ("A", "C"), [(99, 99)]), replace=True)
        assert provider.selectivity(db["R"], db["T"]) == 0.0


class TestAdhocCache:
    def test_local_cache_by_identity(self):
        provider = StatsProvider()
        rel = Relation("R", ("A",), [(1,), (2,)])
        assert provider.profile(rel) is provider.profile(rel)

    def test_equal_but_distinct_objects_not_conflated(self):
        provider = StatsProvider()
        a = Relation("R", ("A",), [(1,)])
        b = Relation("R", ("A",), [(1,), (2,)])  # same name, other data
        assert provider.profile(a).size == 1
        assert provider.profile(b).size == 2


class TestQueries:
    def test_attribute_scores_are_min_distinct(self):
        q = JoinQuery(
            [
                Relation("R", ("A", "B"), [(1, 1), (1, 2), (1, 3)]),
                Relation("S", ("B", "C"), [(1, 1), (2, 1), (3, 1)]),
            ]
        )
        assert StatsProvider().attribute_scores(q) == {
            "A": 1, "B": 3, "C": 1
        }

    def test_selectivity_requires_shared_attributes(self):
        provider = StatsProvider()
        r = Relation("R", ("A",), [(1,)])
        s = Relation("S", ("B",), [(1,)])
        with pytest.raises(ValueError):
            provider.selectivity(r, s)

    def test_heavy_hitters_sorted_by_mass(self):
        hub_r = Relation(
            "R", ("A", "B"),
            [(0, i) for i in range(64)] + [(i, 0) for i in range(1, 37)],
        )
        mild = Relation(
            "S", ("B", "C"),
            [(0, i) for i in range(30)] + [(i, i) for i in range(1, 71)],
        )
        q = JoinQuery([hub_r, mild])
        found = StatsProvider().heavy_hitters(q)
        assert found  # the hub crosses the default 25% threshold
        masses = [mass for *_ignored, mass in found]
        assert masses == sorted(masses, reverse=True)
        assert found[0][0] == "R"
