"""Sampling: process-stable samples and conditional selectivities."""

import random

from repro.relations.relation import Relation
from repro.stats.sampling import (
    conditional_selectivity,
    projection_values,
    sample_rows,
    stable_rank,
)
from repro.workloads import generators


def big_relation(seed=0):
    return generators.random_relation(
        "R", ("A", "B"), 500, 100, random.Random(seed)
    )


class TestStableRank:
    def test_deterministic(self):
        assert stable_rank((1, "x"), 7) == stable_rank((1, "x"), 7)

    def test_seed_changes_rank(self):
        assert stable_rank((1, "x"), 7) != stable_rank((1, "x"), 8)

    def test_rows_spread(self):
        ranks = {stable_rank((i,), 0) for i in range(100)}
        assert len(ranks) == 100


class TestSampleRows:
    def test_same_seed_same_sample(self):
        rel = big_relation()
        assert sample_rows(rel, 32, 0) == sample_rows(rel, 32, 0)

    def test_different_seed_different_sample(self):
        rel = big_relation()
        assert sample_rows(rel, 32, 0) != sample_rows(rel, 32, 1)

    def test_sample_is_subset(self):
        rel = big_relation()
        assert set(sample_rows(rel, 32, 0)) <= rel.tuples

    def test_k_at_least_size_returns_all(self):
        rel = Relation("R", ("A",), [(1,), (2,), (3,)])
        assert set(sample_rows(rel, 10, 0)) == rel.tuples

    def test_k_zero_is_empty(self):
        assert sample_rows(big_relation(), 0, 0) == ()

    def test_string_values_ok(self):
        rel = Relation("R", ("A",), [(f"v{i}",) for i in range(50)])
        first = sample_rows(rel, 8, 5)
        assert first == sample_rows(rel, 8, 5)
        assert all(isinstance(row[0], str) for row in first)


class TestProjection:
    def test_projection_values(self):
        rel = Relation("R", ("A", "B"), [(1, 2), (1, 3), (4, 2)])
        assert projection_values(rel, ("A",)) == {(1,), (4,)}
        assert projection_values(rel, ("B", "A")) == {
            (2, 1), (3, 1), (2, 4)
        }


class TestConditionalSelectivity:
    def rel(self, name, attrs, rows):
        return Relation(name, attrs, rows)

    def test_full_overlap_is_one(self):
        source = self.rel("R", ("A", "B"), [(i, 0) for i in range(20)])
        target = self.rel("T", ("A", "C"), [(i, 1) for i in range(20)])
        sel = conditional_selectivity(
            source,
            ("A",),
            sample_rows(source, 20, 0),
            projection_values(target, ("A",)),
        )
        assert sel == 1.0

    def test_no_overlap_is_zero(self):
        source = self.rel("R", ("A", "B"), [(i, 0) for i in range(20)])
        target = self.rel("T", ("A", "C"), [(i + 100, 1) for i in range(20)])
        sel = conditional_selectivity(
            source,
            ("A",),
            sample_rows(source, 20, 0),
            projection_values(target, ("A",)),
        )
        assert sel == 0.0

    def test_partial_overlap_exact_on_full_sample(self):
        # 5 of 20 source A-values appear in the target.
        source = self.rel("R", ("A", "B"), [(i, 0) for i in range(20)])
        target = self.rel("T", ("A", "C"), [(i, 1) for i in range(5)])
        sel = conditional_selectivity(
            source,
            ("A",),
            sample_rows(source, 20, 0),
            projection_values(target, ("A",)),
        )
        assert sel == 0.25

    def test_empty_source_reports_zero(self):
        source = self.rel("R", ("A",), [])
        target = self.rel("T", ("A",), [(1,)])
        sel = conditional_selectivity(
            source, ("A",), (), projection_values(target, ("A",))
        )
        assert sel == 0.0

    def test_subsampled_estimate_near_truth(self):
        # 10% of source values match; a 128-row sample should land near.
        source = self.rel("R", ("A", "B"), [(i, 0) for i in range(1000)])
        target = self.rel("T", ("A", "C"), [(i, 1) for i in range(100)])
        sel = conditional_selectivity(
            source,
            ("A",),
            sample_rows(source, 128, 0),
            projection_values(target, ("A",)),
        )
        assert 0.02 <= sel <= 0.25
