"""Unit tests for the baseline join implementations."""

import pytest

from repro.baselines.hash_join import chain_hash_join, hash_join
from repro.baselines.join_project import agm_join_project
from repro.baselines.naive import naive_join
from repro.baselines.plans import (
    best_binary_plan,
    enumerate_plans,
    execute_plan,
    greedy_plan,
    join_plan,
    leaf,
    left_deep_plan,
)
from repro.baselines.sort_merge import chain_sort_merge, sort_merge_join
from repro.core.query import JoinQuery
from repro.errors import QueryError
from repro.relations.relation import Relation
from repro.workloads import generators, instances, queries

from tests.helpers import triangle_query, two_path_query


class TestNaive:
    def test_triangle(self):
        q = triangle_query()
        out = naive_join(q)
        assert set(out.tuples) == {(0, 1, 5), (1, 2, 6), (2, 0, 7)}

    def test_single_relation(self):
        q = JoinQuery([Relation("R", ("A",), [(1,), (2,)])])
        assert len(naive_join(q)) == 2

    def test_empty(self):
        q = instances.triangle_hard_instance(6)
        assert naive_join(q).is_empty()


class TestHashJoin:
    def test_matches_naive(self):
        q = two_path_query()
        assert hash_join(q).equivalent(naive_join(q))

    @pytest.mark.parametrize("seed", range(4))
    def test_random(self, seed):
        q = generators.random_instance(queries.triangle(), 30, 5, seed=seed)
        assert hash_join(q).equivalent(naive_join(q))

    def test_order_changes_stats_not_result(self):
        q = generators.random_instance(queries.triangle(), 30, 5, seed=1)
        r1, s1 = chain_hash_join(q, order=("R", "S", "T"))
        r2, s2 = chain_hash_join(q, order=("T", "R", "S"))
        assert r1.equivalent(r2)
        assert len(s1.intermediate_sizes) == len(s2.intermediate_sizes) == 2

    def test_example_22_quadratic_intermediates(self):
        """Example 2.2: every order's first intermediate is N^2/4 + N/2."""
        n = 20
        q = instances.triangle_hard_instance(n)
        _out, stats = chain_hash_join(q)
        assert stats.max_intermediate == n * n // 4 + n // 2

    def test_bad_order_rejected(self):
        with pytest.raises(QueryError):
            chain_hash_join(triangle_query(), order=("R", "S"))


class TestSortMerge:
    def test_pairwise_matches_hash(self):
        q = two_path_query()
        hashed = q.relation("R").natural_join(q.relation("S"))
        merged = sort_merge_join(q.relation("R"), q.relation("S"))
        assert hashed.equivalent(merged)

    @pytest.mark.parametrize("seed", range(4))
    def test_chain_random(self, seed):
        q = generators.random_instance(queries.triangle(), 30, 5, seed=seed)
        assert chain_sort_merge(q).equivalent(naive_join(q))

    def test_duplicate_runs(self):
        left = Relation("L", ("A", "B"), [(0, b) for b in range(5)])
        right = Relation("R", ("B", "C"), [(b, 0) for b in range(5)])
        out = sort_merge_join(left, right)
        assert len(out) == 5

    def test_no_shared_attributes(self):
        left = Relation("L", ("A",), [(1,), (2,)])
        right = Relation("R", ("B",), [(3,)])
        assert len(sort_merge_join(left, right)) == 2

    def test_mixed_types_sortable(self):
        left = Relation("L", ("A", "B"), [(1, "x"), ("s", "y")])
        right = Relation("R", ("B", "C"), [("x", 1), ("y", 2)])
        out = sort_merge_join(left, right)
        assert len(out) == 2


class TestPlans:
    def test_enumerate_counts(self):
        # (2m-3)!! plans: m=2 -> 1, m=3 -> 3, m=4 -> 15.
        assert len(enumerate_plans(["a", "b"])) == 1
        assert len(enumerate_plans(["a", "b", "c"])) == 3
        assert len(enumerate_plans(["a", "b", "c", "d"])) == 15

    def test_enumerate_cap(self):
        with pytest.raises(QueryError):
            enumerate_plans([str(i) for i in range(8)])

    def test_left_deep_shape(self):
        plan = left_deep_plan(["a", "b", "c"])
        assert plan.leaves() == ["a", "b", "c"]
        assert not plan.is_leaf

    def test_execute_plan(self):
        q = triangle_query()
        plan = join_plan(join_plan(leaf("R"), leaf("S")), leaf("T"))
        out, stats = execute_plan(q, plan)
        assert out.equivalent(naive_join(q))
        assert len(stats.intermediate_sizes) == 2

    def test_execute_plan_wrong_leaves(self):
        q = triangle_query()
        with pytest.raises(QueryError):
            execute_plan(q, join_plan(leaf("R"), leaf("S")))

    def test_best_plan_is_minimal(self):
        q = generators.random_instance(queries.triangle(), 25, 5, seed=7)
        _plan, result, stats = best_binary_plan(q)
        assert result.equivalent(naive_join(q))
        for plan in enumerate_plans(q.edge_ids):
            _out, other = execute_plan(q, plan)
            assert stats.total_intermediate <= other.total_intermediate

    def test_best_plan_still_quadratic_on_example22(self):
        """The Section 6 point: even the *best* binary plan pays ~N^2/4."""
        n = 16
        q = instances.triangle_hard_instance(n)
        _plan, result, stats = best_binary_plan(q)
        assert result.is_empty()
        assert stats.max_intermediate >= n * n // 4

    def test_greedy_plan_correct(self):
        q = generators.random_instance(queries.paper_figure2(), 20, 3, seed=4)
        plan = greedy_plan(q)
        out, _stats = execute_plan(q, plan)
        assert out.equivalent(naive_join(q))


class TestJoinProject:
    @pytest.mark.parametrize("seed", range(4))
    def test_matches_naive(self, seed):
        q = generators.random_instance(queries.triangle(), 30, 5, seed=seed)
        out, _stats = agm_join_project(q)
        assert out.equivalent(naive_join(q))

    def test_lw_instance(self):
        q = generators.random_instance(queries.lw_query(4), 25, 4, seed=2)
        out, _stats = agm_join_project(q)
        assert out.equivalent(naive_join(q))

    def test_example_22_quadratic(self):
        n = 20
        q = instances.triangle_hard_instance(n)
        out, stats = agm_join_project(q)
        assert out.is_empty()
        assert stats.max_intermediate >= n * n // 4

    def test_attribute_order_parameter(self):
        q = generators.random_instance(queries.triangle(), 25, 5, seed=3)
        base = naive_join(q)
        for order in (("A", "B", "C"), ("C", "B", "A"), ("B", "A", "C")):
            out, _stats = agm_join_project(q, attribute_order=order)
            assert out.equivalent(base)

    def test_bad_order_rejected(self):
        with pytest.raises(QueryError):
            agm_join_project(triangle_query(), attribute_order=("A",))
