"""Unit tests for GYO reduction and Yannakakis' algorithm."""

import pytest

from repro.baselines.naive import naive_join
from repro.baselines.yannakakis import (
    JoinTree,
    gyo_reduction,
    is_acyclic,
    yannakakis_join,
)
from repro.core.query import JoinQuery
from repro.errors import QueryError
from repro.hypergraph.hypergraph import Hypergraph
from repro.relations.relation import Relation
from repro.workloads import generators, queries


class TestGYO:
    def test_path_is_acyclic(self):
        assert is_acyclic(queries.path_query(4))

    def test_star_is_acyclic(self):
        assert is_acyclic(queries.star_query(5))

    def test_triangle_is_cyclic(self):
        assert not is_acyclic(queries.triangle())

    @pytest.mark.parametrize("k", [4, 5, 6])
    def test_cycles_are_cyclic(self, k):
        assert not is_acyclic(queries.cycle_query(k))

    def test_lw_is_cyclic(self):
        assert not is_acyclic(queries.lw_query(4))

    def test_alpha_acyclic_with_big_edge(self):
        """A hyperedge covering a cycle makes it alpha-acyclic."""
        h = Hypergraph(
            ("A", "B", "C"),
            {
                "R": ("A", "B"),
                "S": ("B", "C"),
                "T": ("A", "C"),
                "Big": ("A", "B", "C"),
            },
        )
        assert is_acyclic(h)

    def test_single_edge(self):
        h = Hypergraph(("A", "B"), {"R": ("A", "B")})
        tree = gyo_reduction(h)
        assert tree is not None and tree.root == "R"

    def test_join_tree_connectivity(self):
        tree = gyo_reduction(queries.path_query(5))
        assert tree is not None
        order = tree.bottom_up()
        assert order[-1] == tree.root
        assert len(order) == 5

    def test_join_tree_running_intersection(self):
        """Each edge's shared attributes occur in its parent."""
        h = queries.star_query(4)
        tree = gyo_reduction(h)
        assert tree is not None
        for child, parent in tree.parent.items():
            shared = set()
            for other_id, other in h.edges.items():
                if other_id != child:
                    shared |= h.edges[child] & other
            assert shared <= h.edges[parent]

    def test_bottom_up_children_first(self):
        tree = JoinTree(root="a", parent={"b": "a", "c": "b"})
        order = tree.bottom_up()
        assert order.index("c") < order.index("b") < order.index("a")


class TestYannakakis:
    @pytest.mark.parametrize("k", [1, 2, 4])
    @pytest.mark.parametrize("seed", [0, 1])
    def test_paths(self, k, seed):
        q = generators.random_instance(queries.path_query(k), 40, 6, seed=seed)
        assert yannakakis_join(q).equivalent(naive_join(q))

    @pytest.mark.parametrize("k", [2, 4])
    def test_stars(self, k):
        q = generators.random_instance(queries.star_query(k), 40, 6, seed=k)
        assert yannakakis_join(q).equivalent(naive_join(q))

    def test_tree_query(self):
        h = Hypergraph(
            ("A", "B", "C", "D", "E"),
            {
                "R": ("A", "B"),
                "S": ("B", "C"),
                "T": ("B", "D"),
                "U": ("D", "E"),
            },
        )
        q = generators.random_instance(h, 30, 5, seed=3)
        assert yannakakis_join(q).equivalent(naive_join(q))

    def test_hyperedge_tree(self):
        h = Hypergraph(
            ("A", "B", "C", "D"),
            {"R": ("A", "B", "C"), "S": ("B", "C", "D"), "T": ("D",)},
        )
        q = generators.random_instance(h, 30, 4, seed=4)
        assert yannakakis_join(q).equivalent(naive_join(q))

    def test_cyclic_rejected(self):
        q = generators.random_instance(queries.triangle(), 10, 3, seed=0)
        with pytest.raises(QueryError):
            yannakakis_join(q)

    def test_empty_relation(self):
        q = JoinQuery(
            [
                Relation("R", ("A", "B"), []),
                Relation("S", ("B", "C"), [(1, 2)]),
            ]
        )
        assert yannakakis_join(q).is_empty()

    def test_dangling_tuples_removed(self):
        """The semijoin program prevents dead intermediates: a long chain
        where only one tuple survives end-to-end."""
        q = JoinQuery(
            [
                Relation("R", ("A", "B"), [(i, i) for i in range(50)]),
                Relation("S", ("B", "C"), [(0, 0)] + [(i, 99) for i in range(1, 50)]),
                Relation("T", ("C", "D"), [(0, 0)]),
            ]
        )
        out = yannakakis_join(q)
        assert set(out.tuples) == {(0, 0, 0, 0)}

    def test_matches_nprr_on_acyclic(self):
        from repro.core.nprr import nprr_join

        q = generators.random_instance(queries.path_query(3), 60, 8, seed=5)
        assert yannakakis_join(q).equivalent(nprr_join(q))
