"""Extended hypothesis property suites across subsystems.

These complement the per-module property files with cross-cutting
invariants: the arity-2 decomposition, Yannakakis, the QP tree on random
hypergraphs, the leapfrog iterator against a trie model, and the
tightening transformation.
"""

import math
from fractions import Fraction

from hypothesis import given, settings, strategies as st

from repro.baselines.naive import naive_join
from repro.baselines.yannakakis import is_acyclic, yannakakis_join
from repro.core.arity_two import arity_two_join, is_half_integral
from repro.core.leapfrog import SortedTrieIterator
from repro.core.nprr import nprr_join
from repro.core.qptree import QPTree
from repro.core.query import JoinQuery
from repro.core.relaxed import relaxed_join, relaxed_join_reference
from repro.hypergraph.agm import optimal_fractional_cover
from repro.hypergraph.covers import FractionalCover, tighten_cover
from repro.relations.relation import Relation
from repro.relations.trie import TrieIndex


def binary_rows(domain=5, max_size=12):
    return st.frozensets(
        st.tuples(st.integers(0, domain - 1), st.integers(0, domain - 1)),
        max_size=max_size,
    )


def path_instances():
    return st.tuples(binary_rows(), binary_rows(), binary_rows()).map(
        lambda rs: JoinQuery(
            [
                Relation("R", ("A", "B"), rs[0]),
                Relation("S", ("B", "C"), rs[1]),
                Relation("U", ("C", "D"), rs[2]),
            ]
        )
    )


def cycle4_instances():
    return st.tuples(
        binary_rows(), binary_rows(), binary_rows(), binary_rows()
    ).map(
        lambda rs: JoinQuery(
            [
                Relation("R1", ("A", "B"), rs[0]),
                Relation("R2", ("B", "C"), rs[1]),
                Relation("R3", ("C", "D"), rs[2]),
                Relation("R4", ("D", "A"), rs[3]),
            ]
        )
    )


@given(cycle4_instances())
@settings(max_examples=40, deadline=None)
def test_arity_two_equals_naive_on_c4(query):
    assert arity_two_join(query).equivalent(naive_join(query))


@given(cycle4_instances())
@settings(max_examples=25, deadline=None)
def test_lp_vertices_half_integral_on_c4(query):
    cover = optimal_fractional_cover(query.hypergraph, query.sizes())
    assert is_half_integral(cover)


@given(path_instances())
@settings(max_examples=40, deadline=None)
def test_yannakakis_equals_naive_on_paths(query):
    assert is_acyclic(query.hypergraph)
    assert yannakakis_join(query).equivalent(naive_join(query))


@given(path_instances())
@settings(max_examples=25, deadline=None)
def test_yannakakis_equals_nprr_on_paths(query):
    assert yannakakis_join(query).equivalent(nprr_join(query))


@given(path_instances(), st.integers(0, 3))
@settings(max_examples=25, deadline=None)
def test_relaxed_join_matches_definition(query, relaxation):
    left = relaxed_join(query, relaxation)
    right = relaxed_join_reference(query, relaxation)
    assert left.equivalent(right)


@given(
    st.frozensets(
        st.tuples(st.integers(0, 3), st.integers(0, 3), st.integers(0, 3)),
        max_size=20,
    )
)
@settings(max_examples=40, deadline=None)
def test_leapfrog_iterator_matches_trie_model(rows):
    """The sorted-array iterator enumerates exactly the trie's structure."""
    relation = Relation("R", ("A", "B", "C"), rows)
    trie = TrieIndex(relation, ("A", "B", "C"))
    iterator = SortedTrieIterator(relation, ("A", "B", "C"))
    if not rows:
        assert iterator.at_end
        return

    def collect(node, it, depth):
        """Recursively compare children at every level."""
        expected = sorted(node.children)
        it.open()
        seen = []
        while not it.at_end:
            seen.append(it.key())
            if depth < 2:
                collect(node.children[seen[-1]], it, depth + 1)
            it.next()
        it.up()
        assert seen == expected

    collect(trie.root, iterator, 0)


@given(
    st.frozensets(
        st.tuples(st.integers(0, 9), st.integers(0, 9)), min_size=1, max_size=25
    ),
    st.integers(0, 12),
)
@settings(max_examples=50, deadline=None)
def test_leapfrog_seek_semantics(rows, target):
    """seek(t) lands on the first key >= t at the open level."""
    relation = Relation("R", ("A", "B"), rows)
    iterator = SortedTrieIterator(relation, ("A", "B"))
    iterator.open()
    iterator.seek(target)
    keys = sorted({row[0] for row in rows})
    expected = [k for k in keys if k >= target]
    if expected:
        assert not iterator.at_end
        assert iterator.key() == expected[0]
    else:
        assert iterator.at_end


@given(path_instances())
@settings(max_examples=25, deadline=None)
def test_tightening_on_random_paths(query):
    hypergraph = query.hypergraph
    cover = FractionalCover.all_ones(hypergraph)
    relations = dict(query.relations)
    new_h, new_cover, new_rels = tighten_cover(hypergraph, cover, relations)
    assert new_cover.is_tight(new_h)
    before = sum(
        float(cover.get(eid)) * math.log(max(1, len(relations[eid])))
        for eid in hypergraph.edges
    )
    after = sum(
        float(new_cover.get(eid)) * math.log(max(1, len(new_rels[eid])))
        for eid in new_h.edges
    )
    assert after <= before + 1e-9


@given(st.data())
@settings(max_examples=30, deadline=None)
def test_qptree_invariants_random(data):
    """TO1/TO2 and total-order completeness on random hypergraphs."""
    n_vertices = data.draw(st.integers(2, 6))
    vertices = tuple(f"A{i}" for i in range(n_vertices))
    n_edges = data.draw(st.integers(1, 5))
    edges = {}
    for j in range(n_edges):
        size = data.draw(st.integers(1, n_vertices))
        members = data.draw(
            st.permutations(vertices).map(lambda p: tuple(p[:size]))
        )
        edges[f"R{j}"] = members
    from repro.hypergraph.hypergraph import Hypergraph

    hypergraph = Hypergraph(vertices, edges)
    if not hypergraph.covers_vertices():
        return
    tree = QPTree(hypergraph)
    assert sorted(tree.total_order) == sorted(vertices)
    assert tree.check_to1()
    assert tree.check_to2()
