"""The prepared-query cache: LRU behavior and frozen-plan reuse."""

import pytest

from repro.lang import compile_query
from repro.query.prepared import PreparedQuery
from repro.relations.database import Database
from repro.relations.relation import Relation
from repro.server import CacheEntry, PreparedCache


@pytest.fixture()
def database():
    r = Relation("R", ("A", "B"), [(i, i % 3) for i in range(6)])
    s = Relation("S", ("B", "C"), [(i % 3, i) for i in range(6)])
    return Database([r, s])


def entry_for(database, text):
    return CacheEntry(compile_query(text, database))


class TestCacheEntry:
    def test_entry_freezes_plan_and_bound(self, database):
        entry = entry_for(database, "select * from R, S;")
        assert isinstance(entry.prepared, PreparedQuery)
        assert entry.bound > 0
        assert entry.compiled.kind == "rows"

    def test_prepared_runs_without_new_index_builds(self, database):
        entry = entry_for(database, "select * from R, S;")
        first = sorted(entry.prepared.stream())
        misses = database.cache_info().misses
        assert sorted(entry.prepared.stream()) == first
        assert database.cache_info().misses == misses


class TestLRU:
    def test_miss_then_hit(self, database):
        cache = PreparedCache(capacity=4)
        assert cache.get("select * from R, S") is None
        entry = entry_for(database, "select * from R, S;")
        cache.put("select * from R, S", entry)
        assert cache.get("select * from R, S") is entry
        info = cache.cache_info()
        assert (info.hits, info.misses, info.entries) == (1, 1, 1)

    def test_eviction_drops_least_recent(self, database):
        cache = PreparedCache(capacity=2)
        entries = {}
        for name in ("R", "S"):
            text = f"select * from {name}"
            entries[name] = entry_for(database, text + ";")
            cache.put(text, entries[name])
        cache.get("select * from R")  # refresh R; S is now LRU
        cache.put(
            "select * from R, S",
            entry_for(database, "select * from R, S;"),
        )
        assert "select * from S" not in cache
        assert "select * from R" in cache
        assert cache.cache_info().evictions == 1

    def test_reput_refreshes_instead_of_evicting(self, database):
        cache = PreparedCache(capacity=2)
        entry = entry_for(database, "select * from R;")
        cache.put("select * from R", entry)
        cache.put("select * from R", entry)
        info = cache.cache_info()
        assert info.entries == 1
        assert info.evictions == 0

    def test_capacity_validation(self):
        with pytest.raises(ValueError, match="capacity"):
            PreparedCache(capacity=0)
