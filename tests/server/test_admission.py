"""Admission control: reject, queue, exempt — driven by the AGM bound."""

import asyncio

import pytest

from repro.server import AdmissionController, AdmissionRejected


class TestDecide:
    def test_enumeration_over_budget_rejects(self):
        controller = AdmissionController(row_budget=100.0)
        with pytest.raises(AdmissionRejected) as info:
            controller.decide("rows", 250.0)
        error = info.value
        assert error.bound == 250.0
        assert error.budget == 100.0
        assert "250.0" in str(error) and "100.0" in str(error)
        assert "AGM" in str(error)
        assert controller.rejected == 1

    def test_under_budget_admits(self):
        controller = AdmissionController(row_budget=100.0)
        decision = controller.decide("rows", 99.0)
        assert decision.admitted and not decision.queued

    def test_no_budget_admits_everything(self):
        controller = AdmissionController()
        assert controller.decide("rows", 1e18).admitted

    def test_aggregates_exempt_by_default(self):
        controller = AdmissionController(row_budget=10.0)
        for kind in ("aggregate", "group", "sample", "explain",
                     "explain_analyze"):
            assert controller.decide(kind, 1e6).admitted, kind

    def test_exemption_can_be_disabled(self):
        controller = AdmissionController(
            row_budget=10.0, exempt_aggregates=False
        )
        with pytest.raises(AdmissionRejected):
            controller.decide("aggregate", 1e6)

    def test_queue_budget_marks_heavy(self):
        controller = AdmissionController(
            row_budget=1000.0, queue_budget=100.0
        )
        assert controller.decide("rows", 50.0).queued is False
        decision = controller.decide("rows", 500.0)
        assert decision.queued is True
        assert decision.reason == "queued-heavy"

    def test_validation(self):
        with pytest.raises(ValueError, match="row_budget"):
            AdmissionController(row_budget=0)
        with pytest.raises(ValueError, match="queue_budget"):
            AdmissionController(queue_budget=-1)
        with pytest.raises(ValueError, match="max_concurrent"):
            AdmissionController(max_concurrent=0)


class TestAdmit:
    def test_admit_counts_and_releases(self):
        controller = AdmissionController(max_concurrent=2)

        async def scenario():
            async with controller.admit("rows", 5.0) as decision:
                assert decision.admitted
            # The slot released: two more concurrent holds fit.
            async with controller.admit("rows", 5.0):
                async with controller.admit("rows", 5.0):
                    pass

        asyncio.run(scenario())
        assert controller.admitted == 3

    def test_heavy_queries_serialize(self):
        controller = AdmissionController(queue_budget=10.0)
        order = []

        async def heavy(tag, delay):
            async with controller.admit("rows", 100.0):
                order.append(("start", tag))
                await asyncio.sleep(delay)
                order.append(("end", tag))

        async def scenario():
            await asyncio.gather(heavy("a", 0.02), heavy("b", 0.0))

        asyncio.run(scenario())
        # One heavy query at a time: no interleaving of start/end.
        assert order in (
            [("start", "a"), ("end", "a"), ("start", "b"), ("end", "b")],
            [("start", "b"), ("end", "b"), ("start", "a"), ("end", "a")],
        )
        assert controller.queued == 2

    def test_light_queries_run_concurrently(self):
        controller = AdmissionController(queue_budget=1000.0)
        running = {"now": 0, "peak": 0}

        async def light():
            async with controller.admit("rows", 5.0):
                running["now"] += 1
                running["peak"] = max(running["peak"], running["now"])
                await asyncio.sleep(0.01)
                running["now"] -= 1

        async def scenario():
            await asyncio.gather(light(), light(), light())

        asyncio.run(scenario())
        assert running["peak"] == 3
