"""Server integration: concurrency, the prepared cache, admission, and
graceful shutdown — over real sockets."""

import json
import socket
import threading

import pytest

from repro.query.builder import Q
from repro.server import (
    AdmissionController,
    JoinServer,
    PreparedCache,
    ServerClient,
    ServerError,
)


def triangle_rows(database):
    relations = [database[name] for name in ("R", "S", "T")]
    return sorted(Q(*relations).on(database).stream())


class TestQueries:
    def test_rows_parity_with_builder(self, live_server, database):
        live = live_server(JoinServer(database))
        with ServerClient(live.host, live.port) as client:
            outcome = client.query("select * from R, S, T;")
        assert sorted(outcome.rows) == triangle_rows(database)
        assert outcome.final["kind"] == "rows"
        assert outcome.final["columns"] == ["A", "B", "C"]
        assert outcome.final["rows_total"] == len(outcome.rows)

    def test_small_batches_stream_multiple_lines(self, live_server,
                                                 database):
        live = live_server(JoinServer(database))
        with ServerClient(live.host, live.port) as client:
            batches, final = client.request(
                "query", q="select * from R, S, T;", batch=4
            )
        assert len(batches) >= 2  # 40 rows at 4 per line
        assert all(len(b["rows"]) <= 4 for b in batches)
        assert final["rows_total"] == 40

    def test_aggregates_answer_inline(self, live_server, database):
        live = live_server(JoinServer(database))
        with ServerClient(live.host, live.port) as client:
            outcome = client.query(
                "select count(*), avg(B), count(distinct C) from R, S, T;"
            )
        relations = [database[name] for name in ("R", "S", "T")]
        oracle = Q(*relations).on(database)
        assert outcome.rows == [(
            oracle.count(), oracle.avg("B"), oracle.count_distinct("C")
        )]

    def test_explain_op_returns_plan_text(self, live_server, database):
        live = live_server(JoinServer(database))
        with ServerClient(live.host, live.port) as client:
            text = client.explain("select * from R, S, T;")
        assert "R" in text and "S" in text and "T" in text

    def test_trace_round_trips(self, live_server, database):
        live = live_server(JoinServer(database))
        with ServerClient(live.host, live.port) as client:
            outcome = client.query(
                "select count(*) from R;", trace=True
            )
        spans = outcome.final["trace"]["spans"]
        assert spans[0]["name"] == "request"
        child_names = [c["name"] for c in spans[0]["children"]]
        assert "parse" in child_names and "execute" in child_names


class TestPreparedCache:
    def test_repeated_normalized_text_hits_with_zero_index_builds(
        self, live_server, database
    ):
        live = live_server(JoinServer(database))
        with ServerClient(live.host, live.port) as client:
            first = client.query("select * from R, S, T;")
            assert first.cached is False
            misses_before = database.cache_info().misses
            # Different spelling, same normalized text.
            second = client.query("SELECT  *  FROM R , S , T")
            third = client.query(
                "select * -- comment\n from R, S, T;"
            )
            stats = client.stats()
        assert second.cached is True
        assert third.cached is True
        assert sorted(second.rows) == sorted(first.rows)
        # The hit reused the frozen plan: not one new index build.
        assert database.cache_info().misses == misses_before
        assert stats["prepared_cache"]["hits"] == 2
        assert stats["prepared_cache"]["entries"] == 1

    def test_normalized_text_is_reported(self, live_server, database):
        live = live_server(JoinServer(database))
        with ServerClient(live.host, live.port) as client:
            outcome = client.query("SELECT  * FROM R ;")
        assert outcome.final["normalized"] == "select * from R"

    def test_failed_compiles_do_not_poison_the_cache(
        self, live_server, database
    ):
        live = live_server(JoinServer(database))
        with ServerClient(live.host, live.port) as client:
            with pytest.raises(ServerError):
                client.query("select * from Missing;")
            stats = client.stats()
        assert stats["prepared_cache"]["entries"] == 0


class TestAdmission:
    def test_over_budget_rejection_names_bound_and_budget(
        self, live_server, database
    ):
        live = live_server(
            JoinServer(
                database,
                admission=AdmissionController(row_budget=2.0),
            )
        )
        with ServerClient(live.host, live.port) as client:
            with pytest.raises(ServerError) as info:
                client.query("select * from R, S, T;")
            stats = client.stats()
        error = info.value
        assert error.kind == "admission"
        assert error.payload["budget"] == 2.0
        assert error.payload["bound"] > 2.0
        assert "bound" in error.payload["message"]
        assert "row budget" in error.payload["message"]
        assert stats["admission"]["rejected"] == 1

    def test_rejection_happens_before_any_index_build(
        self, live_server, database
    ):
        live = live_server(
            JoinServer(
                database,
                admission=AdmissionController(row_budget=2.0),
            )
        )
        with ServerClient(live.host, live.port) as client:
            with pytest.raises(ServerError):
                client.query("select * from R, S, T;")
        info = database.cache_info()
        assert info.misses == 0  # zero index builds for a rejected query

    def test_aggregates_pass_the_same_budget(self, live_server, database):
        live = live_server(
            JoinServer(
                database,
                admission=AdmissionController(row_budget=2.0),
            )
        )
        with ServerClient(live.host, live.port) as client:
            outcome = client.query("select count(*) from R, S, T;")
        assert outcome.rows[0][0] == 40


class TestProtocolOverTheWire:
    def test_ping_stats_metrics(self, live_server, database):
        live = live_server(JoinServer(database))
        with ServerClient(live.host, live.port) as client:
            assert client.ping()["pong"] is True
            client.query("select count(*) from R;")
            stats = client.stats()
            metrics = client.metrics()
        assert stats["relations"] == {"R": 40, "S": 40, "T": 40}
        assert "repro_server_requests_total" in metrics
        assert "repro_server_request_seconds" in metrics

    def test_malformed_json_answers_typed_error(self, live_server,
                                                database):
        live = live_server(JoinServer(database))
        with socket.create_connection(
            (live.host, live.port), timeout=10
        ) as raw:
            raw.sendall(b"this is not json\n")
            line = raw.makefile("rb").readline()
        response = json.loads(line)
        assert response["ok"] is False
        assert response["error"]["type"] == "protocol"

    def test_bad_batch_field(self, live_server, database):
        live = live_server(JoinServer(database))
        with ServerClient(live.host, live.port) as client:
            with pytest.raises(ServerError) as info:
                client.request("query", q="select * from R;", batch=0)
        assert info.value.kind == "protocol"

    def test_errors_never_kill_the_connection(self, live_server,
                                              database):
        live = live_server(JoinServer(database))
        with ServerClient(live.host, live.port) as client:
            for bad in ("selec *;", "select * from Zed;"):
                with pytest.raises(ServerError):
                    client.query(bad)
            outcome = client.query("select count(*) from R;")
        assert outcome.rows


class TestConcurrency:
    def test_concurrent_clients_multiplex(self, live_server, database):
        live = live_server(JoinServer(database))
        expected = triangle_rows(database)
        results: dict[int, bool] = {}

        def worker(index: int) -> None:
            with ServerClient(live.host, live.port) as client:
                outcome = client.query("select * from R, S, T;", batch=8)
                results[index] = sorted(outcome.rows) == expected

        threads = [
            threading.Thread(target=worker, args=(i,)) for i in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)
        assert len(results) == 8
        assert all(results.values())

    def test_one_connection_pipelines_requests(self, live_server,
                                               database):
        live = live_server(JoinServer(database))
        with socket.create_connection(
            (live.host, live.port), timeout=10
        ) as raw:
            for i in (1, 2, 3):
                raw.sendall(
                    json.dumps(
                        {"id": i, "op": "query",
                         "q": "select count(*) from R;"}
                    ).encode() + b"\n"
                )
            reader = raw.makefile("rb")
            finals = {}
            while len(finals) < 3:
                response = json.loads(reader.readline())
                if response.get("final"):
                    finals[response["id"]] = response
        assert set(finals) == {1, 2, 3}
        assert all(f["ok"] for f in finals.values())


class TestShutdown:
    def test_drain_finishes_in_flight_queries(self, live_server,
                                              database):
        live = live_server(JoinServer(database))
        with socket.create_connection(
            (live.host, live.port), timeout=30
        ) as raw:
            raw.sendall(
                json.dumps(
                    {"id": 1, "op": "query",
                     "q": "select * from R, S, T;", "batch": 1}
                ).encode() + b"\n"
            )
            reader = raw.makefile("rb")
            first = json.loads(reader.readline())  # one batch in flight
            assert first.get("rows")
            # Stop with drain while the stream is mid-flight.
            stopper = live.submit(live.server.stop(drain=True))
            rows = list(first["rows"])
            final = None
            while final is None:
                response = json.loads(reader.readline())
                if response.get("final"):
                    final = response
                else:
                    rows.extend(response["rows"])
            stopper.result(timeout=30)
        # Every row arrived and the final line flushed before teardown.
        assert final["ok"] is True
        assert sorted(tuple(r) for r in rows) == triangle_rows(database)
        assert final["rows_total"] == len(rows)

    def test_new_requests_during_drain_get_shutdown_error(
        self, live_server, database
    ):
        live = live_server(JoinServer(database))

        async def enter_drain():
            # What stop() does first; the connection stays up so the
            # refusal itself is observable.
            live.server._draining = True

        with socket.create_connection(
            (live.host, live.port), timeout=30
        ) as raw:
            reader = raw.makefile("rb")
            live.submit(enter_drain()).result(timeout=5)
            raw.sendall(b'{"id": 9, "op": "ping"}\n')
            response = json.loads(reader.readline())
        assert response["ok"] is False
        assert response["error"]["type"] == "shutdown"

    def test_listener_closes_after_stop(self, live_server, database):
        live = live_server(JoinServer(database))
        live.stop()
        with pytest.raises(OSError):
            socket.create_connection((live.host, live.port), timeout=2)
