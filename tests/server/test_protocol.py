"""The wire protocol: encode/decode and the typed error payloads."""

import json

import pytest

from repro.errors import CompileError, ParseError, PlanError, QueryError
from repro.server import AdmissionRejected, ProtocolError, error_payload
from repro.server.protocol import decode_line, encode


class TestCodec:
    def test_encode_is_one_compact_line(self):
        line = encode({"id": 1, "ok": True, "rows": [[1, 2]]})
        assert line.endswith(b"\n")
        assert line.count(b"\n") == 1
        assert b": " not in line  # compact separators
        assert json.loads(line) == {"id": 1, "ok": True, "rows": [[1, 2]]}

    def test_encode_stringifies_exotic_values(self):
        line = encode({"value": float("inf").__class__})  # a type object
        assert json.loads(line)  # default=str keeps it serializable

    def test_decode_roundtrip(self):
        message = decode_line(b'{"id": 3, "op": "ping"}\n')
        assert message == {"id": 3, "op": "ping"}

    def test_decode_rejects_bad_json(self):
        with pytest.raises(ProtocolError, match="not valid JSON"):
            decode_line(b"{nope\n")

    def test_decode_rejects_non_objects(self):
        with pytest.raises(ProtocolError, match="JSON object"):
            decode_line(b"[1, 2]\n")

    def test_decode_rejects_unknown_ops(self):
        with pytest.raises(ProtocolError, match="unknown op 'drop'"):
            decode_line(b'{"op": "drop"}\n')
        with pytest.raises(ProtocolError, match="unknown op None"):
            decode_line(b'{"q": "select 1"}\n')


class TestErrorPayloads:
    def test_admission_carries_bound_and_budget(self):
        error = AdmissionRejected("too big", bound=512.0, budget=100.0)
        payload = error_payload(error)
        assert payload == {
            "type": "admission",
            "message": "too big",
            "bound": 512.0,
            "budget": 100.0,
        }

    def test_parse_and_compile_carry_positions(self):
        parse = error_payload(
            ParseError("bad", source="select x", line=1, column=8)
        )
        assert parse["type"] == "parse"
        assert (parse["line"], parse["column"]) == (1, 8)
        assert "^" in parse["caret"]
        compile_ = error_payload(
            CompileError("bad", source="select x", line=1, column=8)
        )
        assert compile_["type"] == "compile"

    def test_plan_query_protocol_and_internal(self):
        assert error_payload(PlanError("p"))["type"] == "plan"
        assert error_payload(QueryError("q"))["type"] == "query"
        assert error_payload(ProtocolError("m"))["type"] == "protocol"
        internal = error_payload(ZeroDivisionError("boom"))
        assert internal["type"] == "internal"
        assert "ZeroDivisionError" in internal["message"]

    def test_every_payload_is_json_serializable(self):
        errors = [
            AdmissionRejected("m", bound=1.0, budget=2.0),
            ParseError("m", source="s"),
            ProtocolError("m"),
            QueryError("m"),
            RuntimeError("m"),
        ]
        for error in errors:
            json.dumps(error_payload(error))
