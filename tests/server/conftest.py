"""Shared plumbing: a live server on a background event loop."""

import asyncio
import threading

import pytest

from repro.relations.database import Database
from repro.relations.relation import Relation
from repro.server import JoinServer


class LiveServer:
    """One started :class:`JoinServer` plus its loop thread."""

    def __init__(self, server: JoinServer) -> None:
        self.server = server
        self.loop = asyncio.new_event_loop()
        self._started = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)
        self._thread.start()
        assert self._started.wait(timeout=10), "server failed to start"
        self.host, self.port = server.address

    def _run(self) -> None:
        asyncio.set_event_loop(self.loop)
        self.loop.run_until_complete(self.server.start())
        self._started.set()
        self.loop.run_forever()

    def submit(self, coroutine):
        """Run a coroutine on the server's loop from the test thread."""
        return asyncio.run_coroutine_threadsafe(coroutine, self.loop)

    def stop(self, drain: bool = True, timeout: float = 30.0) -> None:
        self.submit(self.server.stop(drain=drain)).result(timeout=timeout)

    def close(self) -> None:
        if self._thread.is_alive():
            self.loop.call_soon_threadsafe(self.loop.stop)
            self._thread.join(timeout=10)
        self.loop.close()


@pytest.fixture()
def live_server():
    """A factory: ``live_server(JoinServer(...))`` starts it and owns
    teardown (stop + loop shutdown), however many servers a test makes."""
    running: list[LiveServer] = []

    def start(server: JoinServer) -> LiveServer:
        live = LiveServer(server)
        running.append(live)
        return live

    yield start
    for live in running:
        try:
            live.stop()
        except Exception:
            pass
        live.close()


@pytest.fixture()
def database():
    r = Relation("R", ("A", "B"), [(i, i % 5) for i in range(40)])
    s = Relation("S", ("B", "C"), [(i % 5, i) for i in range(40)])
    t = Relation("T", ("A", "C"), [(i, i) for i in range(40)])
    return Database([r, s, t])
