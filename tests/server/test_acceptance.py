"""The PR's acceptance criterion, end to end: the same statement text,
entered through the REPL and through the server, returns rows identical
to the equivalent ``Q(...)`` call — across algorithms and execution
modes."""

import io
import re

import pytest

from repro.lang.repl import Repl
from repro.query.builder import Q
from repro.query.context import ExecutionContext
from repro.relations.database import Database
from repro.relations.relation import Relation
from repro.server import JoinServer, ServerClient

TEXT = "select * from R, S, T where A in (0, 1, 2, 3, 4, 5);"


@pytest.fixture()
def database():
    r = Relation("R", ("A", "B"), [(i, i % 4) for i in range(24)])
    s = Relation("S", ("B", "C"), [(i % 4, i % 7) for i in range(24)])
    t = Relation("T", ("A", "C"), [(i, i % 7) for i in range(24)])
    return Database([r, s, t])


def builder_rows(database, context):
    relations = [database[name] for name in ("R", "S", "T")]
    builder = (
        Q(*relations, context=context.replace(database=database))
        .where_in("A", (0, 1, 2, 3, 4, 5))
    )
    return sorted(builder.stream())


def repl_rows(database, context):
    output = io.StringIO()
    Repl(
        database,
        input_stream=io.StringIO(TEXT + "\n"),
        output_stream=output,
        context=context,
    ).run()
    lines = output.getvalue().splitlines()
    rows = []
    for line in lines[2:]:  # header, separator, rows..., trailer
        if re.fullmatch(r"\(\d+ rows?\)", line):
            break
        rows.append(tuple(int(cell) for cell in line.split("|")))
    return sorted(rows)


CONFIGS = [
    pytest.param(algorithm, mode, id=f"{algorithm}-{mode}")
    for algorithm in ("generic", "leapfrog")
    for mode in ("serial", "sharded")
]


@pytest.mark.parametrize("algorithm, mode", CONFIGS)
def test_repl_and_server_match_builder(
    live_server, database, algorithm, mode
):
    context = ExecutionContext(algorithm=algorithm)
    if mode == "sharded":
        context = context.replace(shards=3, mode="serial")
    expected = builder_rows(database, context)
    assert expected  # a vacuous pass would prove nothing

    assert repl_rows(database, context) == expected

    live = live_server(JoinServer(database, context=context))
    with ServerClient(live.host, live.port) as client:
        outcome = client.query(TEXT, batch=7)
    assert sorted(outcome.rows) == expected
    assert list(outcome.final["columns"]) == ["A", "B", "C"]
