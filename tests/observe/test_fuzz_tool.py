"""The fuzz harness's failure reporting: per-iteration seeds and the
minimal one-instance ``--replay`` repro command."""

import importlib.util
import pathlib

import pytest

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent.parent
TOOL = REPO_ROOT / "tools" / "fuzz_join.py"


@pytest.fixture(scope="module")
def fuzz():
    spec = importlib.util.spec_from_file_location("fuzz_join", TOOL)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestReplay:
    def test_short_run_passes(self, fuzz, capsys):
        assert fuzz.main(["--iterations", "25", "--seed", "3"]) == 0
        assert "no disagreements" in capsys.readouterr().out

    def test_replay_is_self_contained(self, fuzz, capsys):
        assert fuzz.main(["--replay", "987654321"]) == 0
        assert "seed 987654321 passes" in capsys.readouterr().out

    def test_instances_are_seed_deterministic(self, fuzz):
        import random

        first = fuzz.random_instance(random.Random(42))
        second = fuzz.random_instance(random.Random(42))
        assert [(r.name, r.attributes, r.tuples) for r in first] == [
            (r.name, r.attributes, r.tuples) for r in second
        ]


class TestFailureReport:
    def _break_engine(self, fuzz, monkeypatch, error):
        def broken(rng, relations):
            raise error

        monkeypatch.setattr(fuzz, "check_instance", broken)

    def test_mismatch_prints_seed_and_repro(
        self, fuzz, monkeypatch, capsys
    ):
        self._break_engine(
            fuzz, monkeypatch, AssertionError("count() 1 != oracle 2")
        )
        assert fuzz.main(["--iterations", "1", "--seed", "7"]) == 1
        err = capsys.readouterr().err
        assert "FUZZ FAILURE (iteration seed " in err
        assert "count() 1 != oracle 2" in err
        assert "reproduce: python tools/fuzz_join.py --replay " in err
        # The printed seed IS the repro argument: one instance, alone.
        seed = int(err.split("--replay ")[1].split()[0])
        assert f"iteration seed {seed}" in err

    def test_crash_is_reported_like_a_mismatch(
        self, fuzz, monkeypatch, capsys
    ):
        self._break_engine(fuzz, monkeypatch, RuntimeError("boom"))
        assert fuzz.main(["--iterations", "1"]) == 1
        err = capsys.readouterr().err
        assert "FUZZ FAILURE" in err
        assert "RuntimeError: boom" in err
        assert "--replay" in err

    def test_failed_replay_exits_nonzero(self, fuzz, monkeypatch, capsys):
        self._break_engine(fuzz, monkeypatch, AssertionError("bad"))
        assert fuzz.main(["--replay", "1234"]) == 1
        assert "--replay 1234" in capsys.readouterr().err

    def test_instance_is_printed(self, fuzz, monkeypatch, capsys):
        self._break_engine(fuzz, monkeypatch, AssertionError("bad"))
        fuzz.main(["--iterations", "1"])
        err = capsys.readouterr().err
        assert "R0(" in err  # the failing instance's relations
