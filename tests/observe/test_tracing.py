"""Unit tests for the tracing layer: spans, nesting, ambient
activation, worker re-stitching, and exports."""

import json
import pickle

import pytest

from repro.observe.tracing import (
    TRACE_FORMAT,
    Span,
    SpanContext,
    Tracer,
    current_tracer,
    maybe_span,
)
from repro.version import __version__


class TestSpanRecording:
    def test_span_times_and_meta(self):
        tracer = Tracer()
        with tracer.span("plan", algorithm="generic") as span:
            assert span.wall is None  # open span: not yet timed
        assert span.wall is not None and span.wall >= 0
        assert span.cpu is not None and span.cpu >= 0
        assert span.meta == {"algorithm": "generic"}
        assert tracer.roots == [span]

    def test_nesting_follows_the_stack(self):
        tracer = Tracer()
        with tracer.span("execute"):
            with tracer.span("shard", shard=0):
                pass
            with tracer.span("shard", shard=1):
                pass
        (execute,) = tracer.roots
        assert [c.name for c in execute.children] == ["shard", "shard"]
        assert [c.meta["shard"] for c in execute.children] == [0, 1]

    def test_late_meta_via_yielded_span(self):
        tracer = Tracer()
        with tracer.span("execute") as span:
            span.meta["rows"] = 42
        assert tracer.roots[0].meta["rows"] == 42

    def test_span_closes_on_exception(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("execute"):
                raise RuntimeError("boom")
        assert tracer.roots[0].wall is not None
        # The stack unwound: the next span is a sibling, not a child.
        with tracer.span("plan"):
            pass
        assert [s.name for s in tracer.roots] == ["execute", "plan"]

    def test_walk_and_find(self):
        tracer = Tracer()
        with tracer.span("execute"):
            with tracer.span("shard", shard=3):
                pass
        assert [s.name for s in tracer.walk()] == ["execute", "shard"]
        assert tracer.find("shard").meta["shard"] == 3
        assert tracer.find("nope") is None


class TestAmbientActivation:
    def test_maybe_span_is_noop_without_tracer(self):
        assert current_tracer() is None
        with maybe_span("plan") as span:
            assert span is None

    def test_maybe_span_records_into_active_tracer(self):
        tracer = Tracer()
        with tracer.activate():
            assert current_tracer() is tracer
            with maybe_span("index-build", relation="R") as span:
                assert span is not None
        assert current_tracer() is None
        assert tracer.roots[0].meta["relation"] == "R"

    def test_activation_restores_previous(self):
        outer, inner = Tracer(), Tracer()
        with outer.activate():
            with inner.activate():
                assert current_tracer() is inner
            assert current_tracer() is outer

    def test_ambient_spans_nest_under_explicit_ones(self):
        tracer = Tracer()
        with tracer.activate(), tracer.span("plan"):
            with maybe_span("stats-profile"):
                pass
        assert tracer.roots[0].children[0].name == "stats-profile"


class TestWorkerRestitching:
    def test_spans_round_trip_pickle(self):
        span = Span(name="shard", meta={"shard": 2, "rows": 7}, wall=0.5)
        clone = pickle.loads(pickle.dumps(span))
        assert clone == span

    def test_attach_nests_under_open_span(self):
        tracer = Tracer()
        shipped = Span(name="shard", meta={"shard": 0}, wall=0.1)
        with tracer.span("execute"):
            tracer.attach(shipped, tracer.context())
        assert tracer.roots[0].children == [shipped]

    def test_attach_drops_foreign_trace(self):
        ours, theirs = Tracer(), Tracer()
        shipped = Span(name="shard", wall=0.1)
        with ours.span("execute"):
            ours.attach(shipped, theirs.context())
        assert ours.roots[0].children == []

    def test_attach_without_context_is_trusted(self):
        tracer = Tracer()
        shipped = Span(name="shard", wall=0.1)
        tracer.attach(shipped)
        assert tracer.roots == [shipped]

    def test_context_carries_open_path(self):
        tracer = Tracer()
        with tracer.span("execute"):
            context = tracer.context()
        assert context == SpanContext(
            trace_id=tracer.trace_id, path=("execute",)
        )
        assert pickle.loads(pickle.dumps(context)) == context

    def test_trace_ids_are_unique(self):
        assert Tracer().trace_id != Tracer().trace_id


class TestExport:
    def test_to_dict_header(self):
        tracer = Tracer(name="t")
        with tracer.span("execute") as span:
            span.meta["rows"] = 1
        record = tracer.to_dict()
        assert record["format"] == TRACE_FORMAT
        assert record["version"] == __version__
        assert record["trace"] == "t"
        assert record["spans"][0]["name"] == "execute"
        assert record["spans"][0]["meta"] == {"rows": 1}
        assert record["spans"][0]["wall_seconds"] == span.wall

    def test_export_json_parses(self):
        tracer = Tracer()
        with tracer.span("plan"):
            pass
        assert json.loads(tracer.export_json())["format"] == TRACE_FORMAT

    def test_render_indents_children(self):
        tracer = Tracer()
        with tracer.span("execute"):
            with tracer.span("shard", shard=0):
                pass
        lines = tracer.render().splitlines()
        assert lines[0].startswith("execute:")
        assert lines[1].startswith("  shard:")
        assert "[shard=0]" in lines[1]
