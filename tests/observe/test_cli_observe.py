"""CLI surfaces of the observability layer: ``--version``,
``explain --analyze``, and the ``join --trace`` / ``--metrics`` exports."""

import json

import pytest

from repro.__main__ import main
from repro.observe.metrics import METRICS_FORMAT
from repro.observe.tracing import TRACE_FORMAT
from repro.version import __version__


@pytest.fixture
def triangle_files(tmp_path):
    (tmp_path / "R.csv").write_text("A,B\n0,1\n1,2\n2,0\n")
    (tmp_path / "S.csv").write_text("B,C\n1,5\n2,6\n0,7\n")
    (tmp_path / "T.csv").write_text("A,C\n0,5\n1,6\n2,7\n")
    return [str(tmp_path / f"{n}.csv") for n in ("R", "S", "T")]


class TestVersion:
    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        assert capsys.readouterr().out.strip() == f"repro {__version__}"

    def test_package_attribute_matches(self):
        import repro

        assert repro.__version__ == __version__


class TestExplainAnalyze:
    def test_analyze_renders_levels_and_spans(self, triangle_files, capsys):
        code = main(
            ["explain", *triangle_files, "--analyze",
             "--algorithm", "generic"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "EXPLAIN ANALYZE: 3 row(s)" in out
        assert "estimated" in out and "observed" in out
        assert "span timings:" in out
        assert "execute:" in out

    def test_analyze_with_stats(self, triangle_files, capsys):
        assert (
            main(
                ["explain", *triangle_files, "--analyze", "--stats",
                 "--algorithm", "generic"]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "EXPLAIN ANALYZE" in out

    def test_plain_explain_unchanged(self, triangle_files, capsys):
        assert main(["explain", *triangle_files]) == 0
        out = capsys.readouterr().out
        assert "EXPLAIN ANALYZE" not in out
        assert "query-plan tree" in out


class TestJoinExports:
    def test_trace_export(self, triangle_files, tmp_path, capsys):
        trace_path = tmp_path / "trace.json"
        code = main(["join", *triangle_files, "--trace", str(trace_path)])
        assert code == 0
        assert "0,1,5" in capsys.readouterr().out
        record = json.loads(trace_path.read_text())
        assert record["format"] == TRACE_FORMAT
        assert record["version"] == __version__
        names = {span["name"] for span in record["spans"]}
        assert "execute" in names

    def test_metrics_export(self, triangle_files, tmp_path):
        metrics_path = tmp_path / "metrics.prom"
        code = main(
            ["join", *triangle_files, "--metrics", str(metrics_path)]
        )
        assert code == 0
        text = metrics_path.read_text()
        assert text.startswith(f"# repro {__version__} ({METRICS_FORMAT})")
        assert f'repro_build_info{{version="{__version__}"}} 1' in text
        assert "repro_rows_emitted_total 3" in text

    def test_sharded_trace_nests_shard_spans(
        self, triangle_files, tmp_path
    ):
        trace_path = tmp_path / "trace.json"
        code = main(
            ["join", *triangle_files, "--shards", "2",
             "--trace", str(trace_path)]
        )
        assert code == 0
        record = json.loads(trace_path.read_text())
        execute = next(
            span for span in record["spans"] if span["name"] == "execute"
        )
        shard_spans = [
            child
            for child in execute.get("children", ())
            if child["name"] == "shard"
        ]
        assert len(shard_spans) == 2

    def test_untraced_join_writes_nothing(
        self, triangle_files, tmp_path, capsys
    ):
        assert main(["join", *triangle_files]) == 0
        assert list(tmp_path.glob("*.json")) == []
        assert list(tmp_path.glob("*.prom")) == []
