"""Unit tests for the metrics registry: families, ingest hooks fed from
the engine's existing instrumentation, and both export formats."""

import json

import pytest

from repro import Q, Relation
from repro.observe.metrics import (
    METRICS_FORMAT,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.relations.database import Database
from repro.version import __version__

TRIANGLE = (
    Relation("R", ("A", "B"), [(0, 1), (1, 2)]),
    Relation("S", ("B", "C"), [(1, 5), (2, 6)]),
    Relation("T", ("A", "C"), [(0, 5), (1, 6)]),
)


class TestFamilies:
    def test_counter_accumulates_per_label_set(self):
        counter = Counter("c")
        counter.inc()
        counter.inc(2, backend="trie")
        assert counter.value() == 1
        assert counter.value(backend="trie") == 2

    def test_counter_rejects_decrease(self):
        with pytest.raises(ValueError):
            Counter("c").inc(-1)

    def test_counter_set_total_is_idempotent(self):
        counter = Counter("c")
        counter.set_total(5)
        counter.set_total(5)
        assert counter.value() == 5

    def test_gauge_moves_both_ways(self):
        gauge = Gauge("g")
        gauge.set(3.5)
        gauge.set(1.0)
        assert gauge.value() == 1.0

    def test_histogram_buckets_are_cumulative(self):
        histogram = Histogram("h", buckets=(0.1, 1.0))
        for value in (0.05, 0.5, 5.0):
            histogram.observe(value)
        assert histogram.bucket_counts() == (
            (0.1, 1),
            (1.0, 2),
            (float("inf"), 3),
        )
        assert histogram.count == 3
        assert histogram.sum == pytest.approx(5.55)

    def test_registry_get_or_create(self):
        registry = MetricsRegistry()
        assert registry.counter("x") is registry.counter("x")
        with pytest.raises(ValueError):
            registry.gauge("x")
        assert len(registry) == 1


class TestIngest:
    def test_record_run_comes_from_telemetry(self):
        registry = MetricsRegistry()
        rows = list(
            Q(*TRIANGLE)
            .using(algorithm="generic", metrics=registry, feedback=True)
            .stream()
        )
        assert len(rows) == 2
        assert registry.counter("repro_rows_emitted_total").value() == 2
        assert registry.counter("repro_runs_total").value() == 1
        assert (
            registry.counter("repro_intersection_probes_total").value() > 0
        )

    def test_record_rows_fallback_without_probe(self):
        registry = MetricsRegistry()
        list(Q(*TRIANGLE).using(algorithm="lw", metrics=registry).stream())
        assert registry.counter("repro_rows_emitted_total").value() == 2
        assert registry.counter("repro_runs_total").value() == 1
        # No probe was built, so no probe-derived series appears.
        assert (
            registry.counter("repro_intersection_probes_total").value() == 0
        )

    def test_record_cache_mirrors_cache_info(self):
        registry = MetricsRegistry()
        db = Database(list(TRIANGLE))
        db.trie("R", ("A", "B"))
        db.trie("R", ("A", "B"))
        registry.record_cache(db.cache_info())
        registry.record_cache(db.cache_info())  # idempotent refresh
        assert (
            registry.counter("repro_index_cache_hits_total").value() == 1
        )
        assert (
            registry.counter("repro_index_cache_misses_total").value() == 1
        )
        info = db.cache_info()
        bytes_gauge = registry.gauge("repro_index_cache_bytes")
        assert bytes_gauge.value(backend="all") == info.bytes_total
        assert bytes_gauge.value(backend="trie") == info.bytes_total

    def test_record_shards_imbalance(self):
        registry = MetricsRegistry()
        registry.record_shards([1.0, 1.0, 4.0])
        assert registry.gauge("repro_shard_imbalance_ratio").value() == (
            pytest.approx(2.0)
        )
        assert registry.histogram("repro_shard_seconds").count == 3
        registry.record_shards([])  # no shards: nothing folded
        assert registry.histogram("repro_shard_seconds").count == 3

    def test_sharded_run_feeds_shard_metrics(self):
        registry = MetricsRegistry()
        rows = list(
            Q(*TRIANGLE)
            .using(shards=2, mode="serial", metrics=registry)
            .stream()
        )
        assert len(rows) == 2
        assert registry.counter("repro_sharded_runs_total").value() == 1
        assert registry.gauge("repro_shard_imbalance_ratio").value() >= 1.0
        assert registry.counter("repro_rows_emitted_total").value() == 2

    def test_record_replan(self):
        registry = MetricsRegistry()
        registry.record_replan()
        assert registry.counter("repro_replans_total").value() == 1

    def test_context_metrics_true_sugar(self):
        builder = Q(*TRIANGLE).using(metrics=True)
        assert isinstance(builder.context.metrics, MetricsRegistry)

    def test_early_close_records_nothing(self):
        registry = MetricsRegistry()
        stream = Q(*TRIANGLE).using(metrics=registry).stream()
        next(stream)
        stream.close()
        # An abandoned run must not feed an undercounted row total.
        assert registry.counter("repro_rows_emitted_total").value() == 0
        assert registry.counter("repro_runs_total").value() == 0


class TestExport:
    def _loaded(self):
        registry = MetricsRegistry()
        registry.counter("repro_runs_total", "runs").inc(3)
        registry.gauge("repro_index_cache_bytes", "bytes").set(
            128, backend="trie"
        )
        registry.record_shards([0.01, 0.02])
        return registry

    def test_to_dict_header_and_shapes(self):
        record = self._loaded().to_dict()
        assert record["format"] == METRICS_FORMAT
        assert record["version"] == __version__
        by_name = {m["name"]: m for m in record["metrics"]}
        assert by_name["repro_runs_total"]["samples"] == [
            {"labels": {}, "value": 3}
        ]
        histogram = by_name["repro_shard_seconds"]
        assert histogram["count"] == 2
        assert histogram["buckets"][-1]["le"] == "+Inf"
        assert json.loads(self._loaded().to_json())["format"] == (
            METRICS_FORMAT
        )

    def test_prometheus_text_format(self):
        text = self._loaded().to_prometheus()
        lines = text.splitlines()
        assert lines[0] == f"# repro {__version__} ({METRICS_FORMAT})"
        assert f'repro_build_info{{version="{__version__}"}} 1' in lines
        assert "# TYPE repro_runs_total counter" in lines
        assert "repro_runs_total 3" in lines
        assert 'repro_index_cache_bytes{backend="trie"} 128' in lines
        assert 'repro_shard_seconds_bucket{le="+Inf"} 2' in lines
        assert "repro_shard_seconds_count 2" in lines
        assert text.endswith("\n")
