"""EXPLAIN ANALYZE: estimated-vs-observed levels, span timings, and the
builder / export surfaces."""

import json

import pytest

from repro import Q, Relation
from repro.observe.explain import (
    EXPLAIN_FORMAT,
    ExplainAnalysis,
    LevelAnalysis,
)
from repro.observe.tracing import Tracer
from repro.version import __version__

TRIANGLE = (
    Relation("R", ("A", "B"), [(0, 1), (1, 2)]),
    Relation("S", ("B", "C"), [(1, 5), (2, 6)]),
    Relation("T", ("A", "C"), [(0, 5), (1, 6)]),
)


def _analysis(**options) -> ExplainAnalysis:
    return Q(*TRIANGLE).using(**options).explain(analyze=True)


class TestLevelAnalysis:
    def test_miss_factor_symmetric(self):
        over = LevelAnalysis("A", 0, estimated=8.0, partials=2,
                             candidates=2, matches=2)
        under = LevelAnalysis("A", 0, estimated=0.5, partials=2,
                              candidates=2, matches=2)
        assert over.miss_factor == pytest.approx(4.0)
        assert under.miss_factor == pytest.approx(2.0)

    def test_miss_factor_unknown(self):
        level = LevelAnalysis("A", 0, estimated=None, partials=None,
                              candidates=None, matches=None)
        assert level.miss_factor is None


class TestAnalyzeNativePath:
    def test_observed_counters_per_level(self):
        analysis = _analysis(algorithm="generic")
        assert analysis.rows == 2
        assert analysis.wall_seconds > 0
        assert [lvl.attribute for lvl in analysis.levels] == list(
            analysis.plan.attribute_order
        )
        for level in analysis.levels:
            assert level.matches is not None
            assert level.candidates is not None
            assert level.estimated is not None
        # Final-level matches equals the result cardinality.
        assert analysis.levels[-1].matches == 2

    def test_observations_folded_into_plan_statistics(self):
        analysis = _analysis(algorithm="generic")
        observed = analysis.plan.statistics.observed_levels
        assert [entry[0] for entry in observed] == list(
            analysis.plan.attribute_order
        )

    def test_spans_cover_all_phases(self):
        analysis = _analysis(algorithm="generic")
        names = {span.name for span in analysis.tracer.walk()}
        assert {"plan", "execute"} <= names
        execute = analysis.tracer.find("execute")
        assert execute.meta["rows"] == 2

    def test_reuses_context_tracer(self):
        tracer = Tracer(name="mine")
        analysis = _analysis(algorithm="generic", tracer=tracer)
        assert analysis.tracer is tracer

    def test_feedback_context_records_observation(self):
        builder = Q(*TRIANGLE).using(algorithm="generic", feedback=True)
        builder.explain(analyze=True)
        # The recorded observation now drives feedback planning.
        plan = Q(*TRIANGLE).using(algorithm="generic",
                                  feedback=True).plan()
        assert plan.statistics.observed_levels

    def test_metrics_context_is_fed(self):
        builder = Q(*TRIANGLE).using(algorithm="generic", metrics=True)
        builder.explain(analyze=True)
        registry = builder.context.metrics
        assert registry.counter("repro_rows_emitted_total").value() == 2


class TestAnalyzeOtherPaths:
    def test_non_native_algorithm_still_times(self):
        analysis = _analysis(algorithm="lw")
        assert analysis.rows == 2
        assert all(lvl.matches is None for lvl in analysis.levels)
        assert analysis.tracer.find("execute") is not None

    def test_sharded_run_reports_shard_spans(self):
        analysis = _analysis(shards=2, mode="serial")
        assert analysis.rows == 2
        execute = analysis.tracer.find("execute")
        shard_spans = [c for c in execute.children if c.name == "shard"]
        assert len(shard_spans) == 2

    def test_unsatisfiable_query_is_empty(self):
        analysis = Q(*TRIANGLE).where(A=99).explain(analyze=True)
        assert analysis.rows == 0

    def test_explain_without_analyze_is_the_plan(self):
        plan = Q(*TRIANGLE).explain()
        assert plan.algorithm  # a JoinPlan, nothing executed
        assert not isinstance(plan, ExplainAnalysis)


class TestRendering:
    def test_describe_contains_table_and_spans(self):
        text = _analysis(algorithm="generic").describe()
        assert "EXPLAIN ANALYZE: 2 row(s)" in text
        assert "estimated" in text and "observed" in text
        assert "span timings:" in text
        assert "execute:" in text

    def test_describe_forwards_show_stats(self):
        analysis = _analysis(algorithm="generic")
        assert len(analysis.describe(show_stats=True)) > len(
            analysis.describe()
        )

    def test_to_dict_header_and_trace(self):
        record = _analysis(algorithm="generic").to_dict()
        assert record["format"] == EXPLAIN_FORMAT
        assert record["version"] == __version__
        assert record["rows"] == 2
        assert record["trace"]["spans"]
        assert all(
            {"attribute", "estimated", "matches", "miss_factor"}
            <= set(level)
            for level in record["levels"]
        )
        json.dumps(record)  # JSON-ready end to end

    def test_repr(self):
        assert "rows=2" in repr(_analysis(algorithm="generic"))
