"""Unit tests for the Hypergraph structure."""

import pytest

from repro.errors import QueryError
from repro.hypergraph.hypergraph import Hypergraph, lw_hypergraph
from repro.workloads import queries


@pytest.fixture
def triangle():
    return queries.triangle()


class TestConstruction:
    def test_basic(self, triangle):
        assert triangle.vertices == ("A", "B", "C")
        assert triangle.edge_ids == ("R", "S", "T")
        assert triangle.edge("R") == frozenset({"A", "B"})

    def test_unknown_vertex_rejected(self):
        with pytest.raises(QueryError):
            Hypergraph(("A",), {"R": ("A", "B")})

    def test_duplicate_vertices_rejected(self):
        with pytest.raises(QueryError):
            Hypergraph(("A", "A"), {})

    def test_unknown_edge_lookup(self, triangle):
        with pytest.raises(QueryError):
            triangle.edge("X")

    def test_multiset_edges_allowed(self):
        h = Hypergraph(("A", "B"), {"R1": ("A", "B"), "R2": ("A", "B")})
        assert len(h) == 2

    def test_equality(self, triangle):
        assert triangle == queries.triangle()
        assert hash(triangle) == hash(queries.triangle())


class TestStructure:
    def test_edges_containing(self, triangle):
        assert triangle.edges_containing("A") == ["R", "T"]
        assert triangle.degree("B") == 2

    def test_edges_containing_unknown(self, triangle):
        with pytest.raises(QueryError):
            triangle.edges_containing("Z")

    def test_covers_vertices(self, triangle):
        assert triangle.covers_vertices()
        h = Hypergraph(("A", "B"), {"R": ("A",)})
        assert not h.covers_vertices()

    def test_is_graph(self, triangle):
        assert triangle.is_graph()
        assert not queries.lw_query(4).is_graph()

    def test_is_simple_graph(self, triangle):
        assert triangle.is_simple_graph()
        multi = Hypergraph(("A", "B"), {"R1": ("A", "B"), "R2": ("A", "B")})
        assert not multi.is_simple_graph()

    def test_is_lw_instance(self, triangle):
        assert triangle.is_lw_instance()
        assert queries.lw_query(5).is_lw_instance()
        assert not queries.cycle_query(4).is_lw_instance()
        assert not queries.paper_figure2().is_lw_instance()

    def test_lw_hypergraph_shape(self):
        h = lw_hypergraph(4)
        assert len(h) == 4
        for eid in h.edge_ids:
            assert len(h.edge(eid)) == 3

    def test_lw_hypergraph_n1_rejected(self):
        with pytest.raises(QueryError):
            lw_hypergraph(1)


class TestRestrict:
    def test_restrict(self, triangle):
        h = triangle.restrict(("A", "B"))
        assert h.vertices == ("A", "B")
        assert h.edge("R") == frozenset({"A", "B"})
        assert h.edge("S") == frozenset({"B"})
        assert h.edge("T") == frozenset({"A"})

    def test_restrict_drops_empty_traces(self):
        h = Hypergraph(("A", "B", "C"), {"R": ("A", "B"), "S": ("C",)})
        restricted = h.restrict(("A", "B"))
        assert "S" not in restricted.edges

    def test_restrict_unknown(self, triangle):
        with pytest.raises(QueryError):
            triangle.restrict(("Z",))

    def test_subhypergraph(self, triangle):
        sub = triangle.subhypergraph(["R", "T"])
        assert sub.edge_ids == ("R", "T")
        assert sub.vertices == triangle.vertices


class TestComponents:
    def test_connected_triangle(self, triangle):
        assert len(triangle.connected_components()) == 1

    def test_two_components(self):
        h = Hypergraph(
            ("A", "B", "C", "D"),
            {"R": ("A", "B"), "S": ("C", "D")},
        )
        comps = h.connected_components()
        assert len(comps) == 2
        sizes = sorted(len(c.vertices) for c in comps)
        assert sizes == [2, 2]

    def test_isolated_vertex(self):
        h = Hypergraph(("A", "B"), {"R": ("A",)})
        comps = h.connected_components()
        assert len(comps) == 2


class TestShapeDetection:
    def test_triangle_is_cycle(self, triangle):
        order = triangle.is_cycle()
        assert order is not None
        assert len(order) == 3

    def test_larger_cycle(self):
        order = queries.cycle_query(6).is_cycle()
        assert order is not None and len(order) == 6

    def test_two_cycle(self):
        h = Hypergraph(("A", "B"), {"R1": ("A", "B"), "R2": ("A", "B")})
        assert h.is_cycle() == ["A", "B"]

    def test_path_is_not_cycle(self):
        assert queries.path_query(3).is_cycle() is None

    def test_star_detection(self):
        assert queries.star_query(3).is_star() == "Hub"
        assert queries.cycle_query(4).is_star() is None

    def test_single_edge_is_star(self):
        h = Hypergraph(("A", "B"), {"R": ("A", "B")})
        assert h.is_star() in ("A", "B")
