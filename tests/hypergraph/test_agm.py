"""Unit tests for AGM bounds and the optimal-cover LP."""

import math
from fractions import Fraction

import pytest

from repro.errors import QueryError
from repro.hypergraph.agm import (
    agm_bound,
    agm_log_bound,
    best_agm_bound,
    minimum_integral_cover,
    optimal_fractional_cover,
)
from repro.hypergraph.covers import FractionalCover
from repro.hypergraph.hypergraph import Hypergraph
from repro.workloads import queries


@pytest.fixture
def triangle():
    return queries.triangle()


class TestBoundEvaluation:
    def test_triangle_half_cover(self, triangle):
        sizes = {"R": 100, "S": 100, "T": 100}
        cover = FractionalCover.uniform(triangle, Fraction(1, 2))
        assert agm_bound(triangle, sizes, cover) == pytest.approx(1000.0)

    def test_empty_relation_zeroes_bound(self, triangle):
        sizes = {"R": 0, "S": 100, "T": 100}
        cover = FractionalCover.uniform(triangle, Fraction(1, 2))
        assert agm_bound(triangle, sizes, cover) == 0.0
        assert agm_log_bound(triangle, sizes, cover) == -math.inf

    def test_zero_weight_edge_ignored(self, triangle):
        sizes = {"R": 0, "S": 4, "T": 4}
        cover = FractionalCover({"R": 0, "S": 1, "T": 1})
        assert agm_bound(triangle, sizes, cover) == pytest.approx(16.0)

    def test_size_one_contributes_nothing(self, triangle):
        sizes = {"R": 1, "S": 1, "T": 1}
        cover = FractionalCover.all_ones(triangle)
        assert agm_bound(triangle, sizes, cover) == pytest.approx(1.0)


class TestOptimalCover:
    def test_triangle_uniform_sizes(self, triangle):
        cover = optimal_fractional_cover(triangle, {"R": 64, "S": 64, "T": 64})
        # The optimum is the all-1/2 cover with bound 64^{3/2} = 512.
        assert cover.is_valid(triangle)
        assert agm_bound(
            triangle, {"R": 64, "S": 64, "T": 64}, cover
        ) == pytest.approx(512.0, rel=1e-6)

    def test_skewed_sizes_choose_cheap_relations(self, triangle):
        # Tiny S and T: cover A,B,C with S and T alone (weight 1 each,
        # bound 4) rather than touching the huge R.
        sizes = {"R": 10**6, "S": 2, "T": 2}
        cover = optimal_fractional_cover(triangle, sizes)
        assert cover["R"] == 0
        assert agm_bound(triangle, sizes, cover) == pytest.approx(4.0, rel=1e-6)

    def test_lw_cover_is_uniform(self):
        h = queries.lw_query(4)
        sizes = {eid: 1000 for eid in h.edge_ids}
        cover = optimal_fractional_cover(h, sizes)
        bound = agm_bound(h, sizes, cover)
        assert bound == pytest.approx(1000 ** (4 / 3), rel=1e-5)

    def test_no_sizes_minimizes_cover_number(self, triangle):
        cover = optimal_fractional_cover(triangle)
        assert cover.total_weight() == Fraction(3, 2)

    def test_uncoverable_rejected(self):
        h = Hypergraph(("A", "B"), {"R": ("A",)})
        with pytest.raises(QueryError):
            optimal_fractional_cover(h)

    def test_exact_vertex_feasibility(self):
        """Feasibility of the returned cover is exact even though the
        objective is a rational approximation of the logs."""
        h = queries.paper_figure2()
        sizes = {eid: 17 + i for i, eid in enumerate(h.edge_ids)}
        cover = optimal_fractional_cover(h, sizes)
        for vertex in h.vertices:
            assert cover.coverage(h, vertex) >= 1  # exact Fraction compare

    def test_beats_integral_cover(self, triangle):
        sizes = {"R": 100, "S": 100, "T": 100}
        fractional = optimal_fractional_cover(triangle, sizes)
        integral = minimum_integral_cover(triangle, sizes)
        assert agm_bound(triangle, sizes, fractional) < agm_bound(
            triangle, sizes, integral
        )


class TestIntegralCover:
    def test_triangle_needs_two_edges(self, triangle):
        cover = minimum_integral_cover(triangle)
        assert cover.total_weight() == 2
        assert cover.is_valid(triangle)

    def test_respects_sizes(self, triangle):
        sizes = {"R": 1000, "S": 2, "T": 2}
        cover = minimum_integral_cover(triangle, sizes)
        assert cover["R"] == 0

    def test_single_edge_query(self):
        h = Hypergraph(("A", "B"), {"R": ("A", "B")})
        cover = minimum_integral_cover(h)
        assert cover["R"] == 1

    def test_uncoverable_rejected(self):
        h = Hypergraph(("A", "B"), {"R": ("A",)})
        with pytest.raises(QueryError):
            minimum_integral_cover(h)


class TestBestBound:
    def test_returns_pair(self, triangle):
        cover, bound = best_agm_bound(triangle, {"R": 4, "S": 4, "T": 4})
        assert cover.is_valid(triangle)
        assert bound == pytest.approx(8.0, rel=1e-6)
