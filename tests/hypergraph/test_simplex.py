"""Unit tests for the exact two-phase simplex."""

from fractions import Fraction

import pytest

from repro.errors import InfeasibleProgramError, UnboundedProgramError
from repro.hypergraph.simplex import (
    SimplexResult,
    feasible_point_check,
    solve_min_geq,
)


class TestBasicPrograms:
    def test_single_variable(self):
        # min x s.t. x >= 3
        result = solve_min_geq([1], [[1]], [3])
        assert result.x == (Fraction(3),)
        assert result.objective == 3

    def test_triangle_cover_lp(self):
        # min x1+x2+x3 s.t. each vertex covered by its two edges.
        rows = [[1, 0, 1], [1, 1, 0], [0, 1, 1]]
        result = solve_min_geq([1, 1, 1], rows, [1, 1, 1])
        assert result.objective == Fraction(3, 2)
        assert all(x == Fraction(1, 2) for x in result.x)

    def test_weighted_triangle_prefers_cheap_edges(self):
        # Make edge 0 very expensive: the optimum puts weight 1 on the
        # other two edges instead (objective 2 beats 10/2 + ...).
        rows = [[1, 0, 1], [1, 1, 0], [0, 1, 1]]
        result = solve_min_geq([10, 1, 1], rows, [1, 1, 1])
        assert result.x[0] == 0
        assert result.objective == 2

    def test_two_constraints_one_var(self):
        # min x s.t. x >= 2, x >= 5
        result = solve_min_geq([1], [[1], [1]], [2, 5])
        assert result.x == (Fraction(5),)

    def test_zero_cost_variables(self):
        result = solve_min_geq([0, 1], [[1, 1]], [1])
        assert result.objective == 0

    def test_fractional_costs(self):
        result = solve_min_geq(
            [Fraction(1, 3), Fraction(1, 2)], [[1, 0], [0, 1]], [1, 1]
        )
        assert result.objective == Fraction(5, 6)

    def test_negative_rhs_handled(self):
        # min x s.t. x >= -5 (slack constraint; optimum x = 0).
        result = solve_min_geq([1], [[1]], [-5])
        assert result.x == (Fraction(0),)

    def test_redundant_constraints(self):
        rows = [[1], [1], [1]]
        result = solve_min_geq([1], rows, [1, 1, 1])
        assert result.x == (Fraction(1),)


class TestDegenerateAndEdgeCases:
    def test_infeasible(self):
        # x >= 1 and -x >= 0 (i.e. x <= 0) cannot both hold.
        with pytest.raises(InfeasibleProgramError):
            solve_min_geq([1], [[1], [-1]], [1, 0])

    def test_unbounded(self):
        # min -x s.t. x >= 0 — drive x to infinity.
        with pytest.raises(UnboundedProgramError):
            solve_min_geq([-1], [[1]], [0])

    def test_dimension_mismatch_rows(self):
        with pytest.raises(ValueError):
            solve_min_geq([1], [[1, 2]], [1])

    def test_dimension_mismatch_rhs(self):
        with pytest.raises(ValueError):
            solve_min_geq([1], [[1]], [1, 2])

    def test_result_is_exact_fraction(self):
        rows = [[1, 0, 1], [1, 1, 0], [0, 1, 1]]
        result = solve_min_geq([1, 1, 1], rows, [1, 1, 1])
        for x in result.x:
            assert isinstance(x, Fraction)

    def test_support(self):
        result = SimplexResult(
            (Fraction(0), Fraction(1, 2), Fraction(1)), Fraction(1), (0,)
        )
        assert result.support() == (1, 2)


class TestFeasibleCheck:
    def test_accepts_feasible(self):
        assert feasible_point_check([[1, 1]], [1], [Fraction(1, 2), Fraction(1, 2)])

    def test_rejects_negative(self):
        assert not feasible_point_check([[1]], [0], [-1])

    def test_rejects_violated(self):
        assert not feasible_point_check([[1, 1]], [2], [1, Fraction(1, 2)])

    def test_solver_output_is_feasible(self):
        rows = [[2, 1], [1, 3]]
        result = solve_min_geq([3, 4], rows, [5, 6])
        assert feasible_point_check(rows, [5, 6], result.x)
