"""Property tests: the exact simplex against scipy.optimize.linprog."""

from fractions import Fraction

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import LinearProgramError
from repro.hypergraph.simplex import feasible_point_check, solve_min_geq

scipy_opt = pytest.importorskip("scipy.optimize")


def cover_style_lps():
    """Random cover-polytope-shaped LPs: 0/1 matrices, rhs 1, costs >= 0.

    Always feasible (x large enough works) whenever every row has a 1 —
    enforced below.
    """

    def build(draw_rows, costs):
        return draw_rows, costs

    n_vars = st.integers(1, 5)
    return n_vars.flatmap(
        lambda n: st.tuples(
            st.lists(
                st.lists(st.integers(0, 1), min_size=n, max_size=n).filter(
                    lambda row: any(row)
                ),
                min_size=1,
                max_size=5,
            ),
            st.lists(st.integers(0, 20), min_size=n, max_size=n),
        )
    )


@given(cover_style_lps())
@settings(max_examples=60, deadline=None)
def test_matches_scipy_on_cover_lps(problem):
    rows, costs = problem
    rhs = [1] * len(rows)
    ours = solve_min_geq(costs, rows, rhs)
    assert feasible_point_check(rows, rhs, ours.x)
    scipy_result = scipy_opt.linprog(
        c=costs,
        A_ub=[[-v for v in row] for row in rows],
        b_ub=[-1] * len(rows),
        bounds=[(0, None)] * len(costs),
        method="highs",
    )
    assert scipy_result.status == 0
    assert float(ours.objective) == pytest.approx(scipy_result.fun, abs=1e-9)


@given(cover_style_lps())
@settings(max_examples=40, deadline=None)
def test_vertex_has_small_support(problem):
    """A vertex of {Ax >= b, x >= 0} has at most (#rows) positive
    coordinates (basic feasible solutions have basis-bounded support)."""
    rows, costs = problem
    ours = solve_min_geq(costs, rows, [1] * len(rows))
    assert len(ours.support()) <= len(rows)


@given(
    st.lists(st.integers(1, 10), min_size=2, max_size=5),
)
@settings(max_examples=30, deadline=None)
def test_diagonal_lp_exact(bounds):
    """min sum x_i s.t. x_i >= b_i solves to x = b exactly."""
    n = len(bounds)
    rows = [[1 if j == i else 0 for j in range(n)] for i in range(n)]
    result = solve_min_geq([1] * n, rows, bounds)
    assert list(result.x) == [Fraction(b) for b in bounds]
