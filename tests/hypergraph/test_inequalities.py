"""Unit tests for the BT/LW inequality verifiers and Prop 3.3 machinery."""

import itertools
import random
from fractions import Fraction

import pytest

from repro.core.nprr import nprr_join
from repro.core.query import JoinQuery
from repro.errors import QueryError
from repro.hypergraph.covers import FractionalCover
from repro.hypergraph.inequalities import (
    bt_instance_from_points,
    project_points,
    replicate_to_regular_family,
    verify_bt,
    verify_lw,
)
from repro.workloads import generators, queries


def random_points(n, count, domain, seed):
    rng = random.Random(seed)
    return {
        tuple(rng.randrange(domain) for _ in range(n)) for _ in range(count)
    }


class TestProjections:
    def test_project(self):
        pts = {(1, 2, 3), (1, 2, 4), (5, 2, 3)}
        assert project_points(pts, [0, 1]) == {(1, 2), (5, 2)}

    def test_project_empty_coords(self):
        assert project_points({(1, 2)}, []) == {()}


class TestLWInequality:
    @pytest.mark.parametrize("n", [2, 3, 4])
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_holds_on_random_sets(self, n, seed):
        pts = random_points(n, 50, 4, seed)
        assert verify_lw(pts).holds

    def test_tight_on_boxes(self):
        """LW is an equality on product sets (boxes)."""
        pts = set(itertools.product(range(3), range(4), range(2)))
        check = verify_lw(pts)
        assert check.holds and check.tight

    def test_empty_set(self):
        assert verify_lw(set()).holds

    def test_dimension_one_rejected(self):
        with pytest.raises(QueryError):
            verify_lw({(1,)})

    def test_diagonal_far_from_tight(self):
        pts = {(i, i, i) for i in range(10)}
        check = verify_lw(pts)
        assert check.holds
        assert check.ratio == pytest.approx(10.0, rel=1e-9)  # 10^3 / 10^2


class TestBTInequality:
    def test_lw_is_special_case(self):
        pts = random_points(3, 30, 4, 9)
        family = [[1, 2], [0, 2], [0, 1]]
        assert verify_bt(pts, family).holds

    def test_regularity_two_family(self):
        # Coordinates {0,1,2,3}; family of four pairs, each coord twice.
        pts = random_points(4, 40, 3, 5)
        family = [[0, 1], [2, 3], [0, 2], [1, 3]]
        check = verify_bt(pts, family, regularity=2)
        assert check.holds

    def test_irregular_family_rejected(self):
        with pytest.raises(QueryError):
            verify_bt({(1, 2)}, [[0], [0]])

    def test_wrong_declared_regularity(self):
        with pytest.raises(QueryError):
            verify_bt({(1, 2)}, [[0], [1]], regularity=2)

    def test_out_of_range_coordinate(self):
        with pytest.raises(QueryError):
            verify_bt({(1, 2)}, [[0, 5], [1, 0]])


class TestAGMtoBT:
    def test_instance_from_points(self):
        pts = random_points(3, 25, 4, 1)
        family = [[1, 2], [0, 2], [0, 1]]
        hypergraph, relations, cover = bt_instance_from_points(pts, family)
        cover.validate(hypergraph)
        assert all(w == Fraction(1, 2) for w in cover.weights.values())
        # Joining the projections recovers a superset of the points whose
        # size obeys the BT bound — the algorithmic proof.
        query = JoinQuery.from_hypergraph(hypergraph, relations)
        joined = nprr_join(query).reorder(("X0", "X1", "X2"))
        point_tuples = {tuple(p) for p in pts}
        assert point_tuples <= set(joined.tuples)
        lhs = len(joined) ** 2
        rhs = 1
        for rel in relations.values():
            rhs *= len(rel)
        assert lhs <= rhs

    def test_empty_points_rejected(self):
        with pytest.raises(QueryError):
            bt_instance_from_points(set(), [[0]])


class TestBTtoAGM:
    def test_replication_regularity(self):
        h = queries.triangle()
        query = generators.random_instance(h, 20, 4, seed=3)
        cover = FractionalCover.uniform(h, Fraction(1, 2))
        replicated, relations, d = replicate_to_regular_family(
            h, cover, dict(query.relations)
        )
        assert d == 2
        for vertex in replicated.vertices:
            assert replicated.degree(vertex) == d

    def test_replication_after_tightening(self):
        """A slack cover gets tightened first; replication still regular."""
        h = queries.triangle()
        query = generators.random_instance(h, 20, 4, seed=4)
        cover = FractionalCover.all_ones(h)
        replicated, _relations, d = replicate_to_regular_family(
            h, cover, dict(query.relations)
        )
        for vertex in replicated.vertices:
            assert replicated.degree(vertex) == d

    def test_bt_bound_equals_agm_bound(self):
        """prod |R'_e|^{1/d} over the replicated family equals the original
        AGM bound (up to the tightening improvement)."""
        import math

        h = queries.triangle()
        query = generators.random_instance(h, 20, 4, seed=5)
        cover = FractionalCover.uniform(h, Fraction(1, 2))
        replicated, relations, d = replicate_to_regular_family(
            h, cover, dict(query.relations)
        )
        replicated_log = sum(
            math.log(len(rel)) for rel in relations.values()
        ) / d
        original_log = sum(
            float(cover.get(eid)) * math.log(len(query.relation(eid)))
            for eid in h.edges
        )
        assert replicated_log == pytest.approx(original_log, rel=1e-9)
