"""Unit tests for fractional covers and the Lemma 3.2 tightening."""

import math
from fractions import Fraction

import pytest

from repro.errors import CoverError
from repro.hypergraph.covers import FractionalCover, tighten_cover
from repro.workloads import generators, queries
from repro.baselines.naive import naive_join
from repro.core.query import JoinQuery


@pytest.fixture
def triangle():
    return queries.triangle()


class TestFractionalCover:
    def test_validate_ok(self, triangle):
        FractionalCover.uniform(triangle, Fraction(1, 2)).validate(triangle)

    def test_all_ones_always_valid(self):
        h = queries.paper_figure2()
        assert FractionalCover.all_ones(h).is_valid(h)

    def test_negative_rejected(self, triangle):
        cover = FractionalCover({"R": -1, "S": 1, "T": 1})
        with pytest.raises(CoverError):
            cover.validate(triangle)

    def test_undercover_rejected(self, triangle):
        cover = FractionalCover({"R": Fraction(1, 4), "S": Fraction(1, 4), "T": Fraction(1, 4)})
        assert not cover.is_valid(triangle)

    def test_unknown_edge_rejected(self, triangle):
        cover = FractionalCover({"X": 1})
        with pytest.raises(CoverError):
            cover.validate(triangle)

    def test_coverage_and_slack(self, triangle):
        cover = FractionalCover.all_ones(triangle)
        assert cover.coverage(triangle, "A") == 2
        assert cover.slack(triangle, "A") == 1

    def test_is_tight(self, triangle):
        assert FractionalCover.uniform(triangle, Fraction(1, 2)).is_tight(triangle)
        assert not FractionalCover.all_ones(triangle).is_tight(triangle)

    def test_lw_cover(self):
        h = queries.lw_query(4)
        cover = FractionalCover.loomis_whitney(h)
        assert cover.is_tight(h)
        assert all(w == Fraction(1, 3) for w in cover.weights.values())

    def test_support(self):
        cover = FractionalCover({"R": 0, "S": Fraction(1, 2), "T": 1})
        assert cover.support() == frozenset({"S", "T"})

    def test_total_weight(self, triangle):
        assert FractionalCover.uniform(triangle, Fraction(1, 2)).total_weight() == Fraction(3, 2)

    def test_common_denominator(self):
        cover = FractionalCover({"R": Fraction(1, 2), "S": Fraction(1, 3)})
        assert cover.common_denominator() == 6

    def test_restrict(self, triangle):
        cover = FractionalCover.all_ones(triangle).restrict(["R", "S"])
        assert set(cover.weights) == {"R", "S"}

    def test_scaled(self):
        cover = FractionalCover({"R": Fraction(1, 2)}).scaled(Fraction(2))
        assert cover["R"] == 1

    def test_immutable(self, triangle):
        cover = FractionalCover.all_ones(triangle)
        with pytest.raises(AttributeError):
            cover.weights = {}

    def test_missing_weight_raises(self):
        with pytest.raises(CoverError):
            FractionalCover({})["R"]


class TestTightenCover:
    def _instance(self, hypergraph, seed=0):
        query = generators.random_instance(hypergraph, 25, 4, seed=seed)
        return query.hypergraph, dict(query.relations)

    def _log_bound(self, hypergraph, cover, relations):
        return sum(
            float(cover.get(eid)) * math.log(max(1, len(relations[eid])))
            for eid in hypergraph.edges
        )

    @pytest.mark.parametrize("builder", [
        queries.triangle,
        lambda: queries.lw_query(4),
        queries.paper_figure2,
        lambda: queries.cycle_query(5),
    ])
    def test_properties_a_b_c(self, builder):
        h = builder()
        _, relations = self._instance(h)
        cover = FractionalCover.all_ones(h)
        new_h, new_cover, new_relations = tighten_cover(h, cover, relations)
        # (a) tightness
        assert new_cover.is_tight(new_h)
        assert new_cover.is_valid(new_h)
        # (b) same join
        original = naive_join(JoinQuery(
            [relations[eid].with_name(eid) for eid in h.edges]
        ))
        transformed = naive_join(JoinQuery(
            [new_relations[eid].with_name(eid) for eid in new_h.edges]
        ))
        assert original.equivalent(transformed)
        # (c) bound no worse
        before = self._log_bound(h, cover, relations)
        after = self._log_bound(new_h, new_cover, new_relations)
        assert after <= before + 1e-9

    def test_tight_input_unchanged(self):
        h = queries.triangle()
        _, relations = self._instance(h)
        cover = FractionalCover.uniform(h, Fraction(1, 2))
        new_h, new_cover, _ = tighten_cover(h, cover, relations)
        assert set(new_h.edges) == set(h.edges)
        assert new_cover == cover

    def test_new_edges_carry_projections(self):
        h = queries.triangle()
        _, relations = self._instance(h)
        cover = FractionalCover.all_ones(h)
        new_h, _, new_relations = tighten_cover(h, cover, relations)
        for eid, members in new_h.edges.items():
            assert new_relations[eid].attribute_set == members

    def test_invalid_cover_rejected(self):
        h = queries.triangle()
        _, relations = self._instance(h)
        with pytest.raises(CoverError):
            tighten_cover(h, FractionalCover.uniform(h, 0), relations)

    def test_missing_relation_rejected(self):
        h = queries.triangle()
        with pytest.raises(CoverError):
            tighten_cover(h, FractionalCover.all_ones(h), {})
