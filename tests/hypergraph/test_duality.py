"""Tests for the dual packing LP and the AGM tight-instance construction."""

import math
from fractions import Fraction

import pytest

from repro.core.nprr import nprr_join
from repro.errors import QueryError
from repro.hypergraph.agm import (
    agm_bound,
    agm_log_bound,
    optimal_fractional_cover,
)
from repro.hypergraph.duality import (
    optimal_vertex_packing,
    packing_lower_bound,
    packing_value,
    tight_instance,
)
from repro.hypergraph.hypergraph import Hypergraph
from repro.workloads import generators, queries


class TestPackingLP:
    def test_triangle_uniform(self):
        """Uniform budgets: the packing is y_v = 1/2 with value 3/2."""
        h = queries.triangle()
        packing = optimal_vertex_packing(h)
        assert packing_value(packing) == Fraction(3, 2)

    def test_feasibility(self):
        h = queries.paper_figure2()
        sizes = {eid: 100 + 7 * i for i, eid in enumerate(h.edge_ids)}
        packing = optimal_vertex_packing(h, sizes)
        for eid, members in h.edges.items():
            total = sum(
                (packing[v] for v in members), start=Fraction(0)
            )
            budget = Fraction(math.log(sizes[eid])).limit_denominator(10**6)
            assert total <= budget

    @pytest.mark.parametrize(
        "builder",
        [
            queries.triangle,
            lambda: queries.lw_query(4),
            lambda: queries.cycle_query(5),
            queries.paper_example_52,
            queries.paper_figure2,
            lambda: queries.star_query(3),
        ],
    )
    def test_strong_duality(self, builder):
        """max packing value == min cover cost, exactly (same rationalized
        objective on both sides)."""
        h = builder()
        sizes = {eid: 50 + 13 * i for i, eid in enumerate(h.edge_ids)}
        cover = optimal_fractional_cover(h, sizes)
        packing = optimal_vertex_packing(h, sizes)
        primal = sum(
            (
                cover.get(eid)
                * Fraction(math.log(sizes[eid])).limit_denominator(10**6)
                for eid in h.edge_ids
            ),
            start=Fraction(0),
        )
        assert primal == packing_value(packing)

    def test_weak_duality_random(self):
        for seed in range(6):
            h = generators.random_hypergraph(5, 4, 3, seed=seed)
            sizes = {eid: 20 + 3 * i for i, eid in enumerate(h.edge_ids)}
            cover = optimal_fractional_cover(h, sizes)
            packing = optimal_vertex_packing(h, sizes)
            assert packing_lower_bound(packing) <= agm_bound(
                h, sizes, cover
            ) * (1 + 1e-9)

    def test_uncovered_vertex_rejected(self):
        h = Hypergraph(("A", "B"), {"R": ("A",)})
        with pytest.raises(QueryError):
            optimal_vertex_packing(h)


class TestTightInstance:
    def test_triangle_power_of_e_sizes(self):
        """Budgets exp(2k): domains land on integers, bound met exactly."""
        h = queries.triangle()
        side = 8
        sizes = {eid: side * side for eid in h.edge_ids}
        query = tight_instance(h, sizes)
        out = nprr_join(query)
        cover = optimal_fractional_cover(h, sizes)
        bound = agm_bound(h, sizes, cover)
        assert len(out) == side**3
        assert len(out) >= 0.99 * bound  # tight up to rounding

    def test_sizes_respected(self):
        h = queries.paper_figure2()
        sizes = {eid: 200 for eid in h.edge_ids}
        query = tight_instance(h, sizes)
        for eid, declared in sizes.items():
            assert len(query.relation(eid)) <= declared

    def test_output_tracks_bound_asymmetric(self):
        h = queries.triangle()
        sizes = {"R": 400, "S": 100, "T": 100}
        query = tight_instance(h, sizes)
        out = nprr_join(query)
        cover = optimal_fractional_cover(h, sizes)
        log_bound = agm_log_bound(h, sizes, cover)
        # Rounding each domain loses at most a constant factor per attr.
        assert math.log(max(1, len(out))) >= log_bound - len(h.vertices) * 0.8

    @pytest.mark.parametrize("n", [3, 4])
    def test_lw_tight_instances(self, n):
        h = queries.lw_query(n)
        side = 4
        sizes = {eid: side ** (n - 1) for eid in h.edge_ids}
        query = tight_instance(h, sizes)
        out = nprr_join(query)
        assert len(out) == side**n
