"""Tests for the public front-door API."""

import pytest

from repro import Relation, iter_join, join, output_bound
from repro.baselines.naive import naive_join
from repro.core.query import JoinQuery
from repro.errors import PlanError, QueryError
from repro.workloads import generators, queries


@pytest.fixture
def relations():
    return [
        Relation("R", ("A", "B"), [(0, 1), (1, 2), (2, 0)]),
        Relation("S", ("B", "C"), [(1, 5), (2, 6), (0, 7)]),
        Relation("T", ("A", "C"), [(0, 5), (1, 6), (2, 7)]),
    ]


class TestJoin:
    def test_default_auto(self, relations):
        out = join(relations)
        assert len(out) == 3

    @pytest.mark.parametrize(
        "algorithm", ["nprr", "lw", "generic", "leapfrog", "arity2"]
    )
    def test_every_algorithm(self, relations, algorithm):
        expected = naive_join(JoinQuery(relations))
        assert join(relations, algorithm=algorithm).equivalent(expected)

    def test_accepts_query_object(self, relations):
        q = JoinQuery(relations)
        assert join(q).equivalent(naive_join(q))

    def test_unknown_algorithm(self, relations):
        with pytest.raises(QueryError):
            join(relations, algorithm="quantum")

    def test_auto_falls_back_to_nprr(self):
        q = generators.random_instance(queries.paper_figure2(), 20, 3, seed=0)
        assert join(q).equivalent(naive_join(q))

    def test_auto_with_cover_uses_nprr(self, relations):
        from fractions import Fraction

        from repro import FractionalCover

        q = JoinQuery(relations)
        cover = FractionalCover.uniform(q.hypergraph, Fraction(1, 2))
        assert join(q, cover=cover).equivalent(naive_join(q))

    def test_custom_name(self, relations):
        assert join(relations, name="Out").name == "Out"


class TestIterJoinEagerValidation:
    """Regression: iter_join must raise at *call* time, exactly like join.

    A streaming entry point that deferred plan validation to the first
    ``next()`` would let a rejected ``backend=`` slip past the call site
    (e.g. into a response already streaming); both front doors must fail
    identically, before any iterator is returned.
    """

    def test_rejected_backend_raises_at_call(self, relations):
        with pytest.raises(PlanError) as via_iter:
            iter_join(relations, algorithm="leapfrog", backend="trie")
        with pytest.raises(PlanError) as via_join:
            join(relations, algorithm="leapfrog", backend="trie")
        assert str(via_iter.value) == str(via_join.value)

    def test_rejected_attribute_order_raises_at_call(self, relations):
        with pytest.raises(PlanError):
            iter_join(
                relations, algorithm="nprr", attribute_order=("A", "B", "C")
            )

    def test_plan_error_is_a_query_error(self, relations):
        # Callers that predate PlanError still catch the rejection.
        with pytest.raises(QueryError):
            iter_join(relations, algorithm="arity2", backend="sorted")

    def test_unknown_algorithm_raises_at_call(self, relations):
        with pytest.raises(QueryError):
            iter_join(relations, algorithm="quantum")


class TestOutputBound:
    def test_triangle_bound(self, relations):
        assert output_bound(relations) == pytest.approx(
            3**1.5, rel=1e-6
        )

    def test_bound_dominates_output(self):
        for seed in range(5):
            q = generators.random_instance(queries.triangle(), 30, 5, seed=seed)
            assert len(join(q)) <= output_bound(q) + 1e-6


class TestDocstringExample:
    def test_module_docstring_quickstart(self):
        r = Relation("R", ("A", "B"), [(1, 2), (2, 3)])
        s = Relation("S", ("B", "C"), [(2, 9), (3, 7)])
        t = Relation("T", ("A", "C"), [(1, 9), (2, 7)])
        assert sorted(join([r, s, t]).tuples) == [(1, 2, 9), (2, 3, 7)]
