"""The feedback planner: self-correction, precedence, and stability."""

import pytest

from repro import Q
from repro.engine.planner import plan_join
from repro.feedback.config import FeedbackConfig
from repro.stats.provider import StatsConfig, StatsProvider
from repro.workloads import generators

#: The amplified trap: C's small domain makes it a second decoy, so the
#: min-distinct heuristic defers the payoff attribute A to the last
#: level — where its pruning is paid as dead-end enumeration.
TRAP = dict(
    nodes=600, size=1500, seed=7, match_fraction=0.05, decoy_domain=25,
    c_domain=25,
)


@pytest.fixture()
def trap():
    return generators.zipf_trap_triangle(**TRAP)


def heuristic_provider():
    return StatsProvider(config=StatsConfig(sample_size=0))


class TestSelfCorrection:
    def test_second_run_chooses_a_better_order(self, trap):
        provider = heuristic_provider()
        builder = Q(trap).using(
            algorithm="generic", stats=provider, feedback=FeedbackConfig()
        )
        first = builder.plan()
        # The heuristic walks into the trap: both decoys before the
        # payoff attribute.
        assert first.attribute_order[-1] == "A"
        assert first.statistics.source == "heuristic"
        rows_first = set(builder.stream())

        second = builder.plan()
        assert second.statistics.source == "feedback"
        assert second.attribute_order != first.attribute_order
        assert second.attribute_order[0] == "A"
        rows_second = set(builder.stream())
        assert rows_second == rows_first  # parity across re-planning

        history = provider.observed_history(trap)
        work = {order: t.total_candidates for order, t in history.items()}
        # The re-planned order did measurably less search work.
        assert work[second.attribute_order] < work[first.attribute_order]

    def test_converges_and_stays(self, trap):
        provider = heuristic_provider()
        builder = Q(trap).using(
            algorithm="generic", stats=provider, feedback=FeedbackConfig()
        )
        orders = []
        for _run in range(4):
            orders.append(builder.plan().attribute_order)
            for _row in builder.stream():
                pass
        # One exploration, then pinned: the explore margin stops the
        # greedy descent from oscillating off the measured best order.
        assert orders[1] == orders[2] == orders[3]
        assert orders[0] != orders[1]

    def test_pinned_plan_reports_measured_estimates(self, trap):
        provider = heuristic_provider()
        builder = Q(trap).using(
            algorithm="generic", stats=provider, feedback=FeedbackConfig()
        )
        for _run in range(2):
            for _row in builder.stream():
                pass
        plan = builder.plan()
        best = provider.observed_telemetry(trap)
        if plan.attribute_order == best.attribute_order:
            matches = {
                level.attribute: level.matches for level in best.levels
            }
            for attribute, estimate in plan.statistics.order_estimates:
                if not plan.statistics.baseline_estimates:
                    assert estimate == pytest.approx(matches[attribute])


class TestPrecedenceAndFallback:
    def test_observed_takes_precedence_over_sampled(self, trap):
        provider = StatsProvider()  # sampling enabled
        builder = Q(trap).using(
            algorithm="generic", stats=provider, feedback=FeedbackConfig()
        )
        sampled_plan = Q(trap).using(
            algorithm="generic", stats=provider
        ).plan()
        assert sampled_plan.statistics.source == "sampled"
        for _row in builder.stream():
            pass
        plan = builder.plan()
        assert plan.statistics.source == "feedback"
        assert plan.statistics.observed_levels

    def test_feedback_off_never_consults_observations(self, trap):
        provider = heuristic_provider()
        with_feedback = Q(trap).using(
            algorithm="generic", stats=provider, feedback=FeedbackConfig()
        )
        for _row in with_feedback.stream():
            pass
        assert provider.observed_history(trap)
        plain = Q(trap).using(algorithm="generic", stats=provider).plan()
        assert plain.statistics.source == "heuristic"

    def test_feedback_without_observations_notes_it(self, trap):
        provider = heuristic_provider()
        plan = plan_join(
            trap, "generic", stats=provider, feedback=FeedbackConfig()
        )
        assert plan.statistics.source == "heuristic"
        assert any("no observations recorded" in r for r in plan.reasons)

    def test_filtered_and_unfiltered_runs_never_share_telemetry(self, trap):
        # A where_in-filtered execution has different cardinalities
        # than the plain query over the same relations; its telemetry
        # is scoped by the filter signature and must not drive (or be
        # driven by) the unfiltered query's plans.
        provider = heuristic_provider()
        filtered = (
            Q(trap)
            .where_in("B", {0})
            .using(
                algorithm="generic",
                stats=provider,
                feedback=FeedbackConfig(),
            )
        )
        for _row in filtered.stream():
            pass
        plain = Q(trap).using(
            algorithm="generic", stats=provider, feedback=FeedbackConfig()
        )
        assert plain.plan().statistics.source == "heuristic"
        assert filtered.plan().statistics.source == "feedback"
        for _row in plain.stream():
            pass
        other_filter = (
            Q(trap)
            .where_in("B", {0, 1})
            .using(
                algorithm="generic",
                stats=provider,
                feedback=FeedbackConfig(),
            )
        )
        assert other_filter.plan().statistics.source == "heuristic"

    def test_fixed_order_bypasses_feedback(self, trap):
        provider = heuristic_provider()
        builder = Q(trap).using(
            algorithm="generic", stats=provider, feedback=FeedbackConfig()
        )
        for _row in builder.stream():
            pass
        pinned = plan_join(
            trap,
            "generic",
            attribute_order=("C", "B", "A"),
            stats=provider,
            feedback=FeedbackConfig(),
        )
        assert pinned.attribute_order == ("C", "B", "A")


class TestDescribe:
    def test_observed_vs_sampled_rendering(self, trap):
        provider = heuristic_provider()
        builder = Q(trap).using(
            algorithm="generic", stats=provider, feedback=FeedbackConfig()
        )
        for _row in builder.stream():
            pass
        text = builder.plan().describe(show_stats=True)
        assert "source: feedback" in text
        assert "observed levels (last recorded run):" in text
        assert "selectivity=" in text and "fan-out=" in text
        assert "observed vs sampled (per chosen attribute):" in text


class TestDeterminism:
    def test_same_observations_same_plan(self, trap):
        provider_a = heuristic_provider()
        provider_b = heuristic_provider()
        orders = []
        for provider in (provider_a, provider_b):
            builder = Q(trap).using(
                algorithm="generic",
                stats=provider,
                feedback=FeedbackConfig(),
            )
            for _row in builder.stream():
                pass
            orders.append(builder.plan().attribute_order)
        assert orders[0] == orders[1]
