"""Telemetry counters: parity with the uninstrumented paths, and the
counter invariants that make the feedback loop's arithmetic sound."""

import pytest

from repro.core.generic_join import GenericJoin
from repro.core.leapfrog import LeapfrogTriejoin
from repro.errors import QueryError
from repro.feedback.telemetry import (
    ExecutionTelemetry,
    ObservedLevel,
    TelemetryProbe,
    estimate_divergence,
)
from repro.workloads import generators


@pytest.fixture(scope="module")
def trap():
    return generators.zipf_trap_triangle(
        120, 500, seed=7, match_fraction=0.05, decoy_domain=8
    )


ORDERS = [("A", "B", "C"), ("B", "C", "A"), ("C", "A", "B")]


class TestProbeParity:
    """The instrumented search twins must yield exactly the plain rows."""

    @pytest.mark.parametrize("order", ORDERS)
    def test_generic_rows_identical(self, trap, order):
        plain = list(GenericJoin(trap, attribute_order=order).iter_join())
        probe = TelemetryProbe(order)
        observed = list(
            GenericJoin(
                trap, attribute_order=order, telemetry=probe
            ).iter_join()
        )
        assert observed == plain

    @pytest.mark.parametrize("order", ORDERS)
    def test_leapfrog_rows_identical(self, trap, order):
        plain = list(
            LeapfrogTriejoin(trap, attribute_order=order).iter_join()
        )
        probe = TelemetryProbe(order)
        observed = list(
            LeapfrogTriejoin(
                trap, attribute_order=order, telemetry=probe
            ).iter_join()
        )
        assert observed == plain

    def test_generic_with_filters(self, trap):
        filters = {"B": lambda v: v != 0}
        order = ("B", "A", "C")
        plain = list(
            GenericJoin(
                trap, attribute_order=order, filters=filters
            ).iter_join()
        )
        probe = TelemetryProbe(order)
        observed = list(
            GenericJoin(
                trap,
                attribute_order=order,
                filters=filters,
                telemetry=probe,
            ).iter_join()
        )
        assert observed == plain
        # The filter rejects candidates before they become matches.
        assert probe.candidates[0] > probe.matches[0]


class TestCounterInvariants:
    def _run(self, trap, cls, order):
        probe = TelemetryProbe(order)
        rows = list(
            cls(trap, attribute_order=order, telemetry=probe).iter_join()
        )
        return probe, rows

    @pytest.mark.parametrize("cls", [GenericJoin, LeapfrogTriejoin])
    def test_chain_invariants(self, trap, cls):
        order = ("B", "C", "A")
        probe, rows = self._run(trap, cls, order)
        # The root is entered exactly once; each level's matches are the
        # next level's partials; the last level's matches are the rows.
        assert probe.partials[0] == 1
        for depth in range(1, len(order)):
            assert probe.partials[depth] == probe.matches[depth - 1]
        assert probe.matches[-1] == len(rows)
        for depth in range(len(order)):
            assert probe.candidates[depth] >= probe.matches[depth]

    def test_generic_sees_dead_ends(self, trap):
        # The trap's payoff attribute prunes hard when bound last: the
        # hash-probe executor enumerates candidates that fail.
        probe, _rows = self._run(trap, GenericJoin, ("B", "C", "A"))
        assert probe.candidates[2] > probe.matches[2]

    def test_reset_zeroes_counters(self, trap):
        order = ("A", "B", "C")
        probe = TelemetryProbe(order)
        executor = GenericJoin(trap, attribute_order=order, telemetry=probe)
        first = list(executor.iter_join())
        after_first = list(probe.candidates)
        probe.reset()
        assert probe.candidates == [0, 0, 0]
        second = list(executor.iter_join())
        assert second == first
        assert list(probe.candidates) == after_first

    def test_order_mismatch_rejected(self, trap):
        probe = TelemetryProbe(("A", "B", "C"))
        with pytest.raises(QueryError, match="telemetry probe order"):
            GenericJoin(
                trap, attribute_order=("B", "A", "C"), telemetry=probe
            )
        with pytest.raises(QueryError, match="telemetry probe order"):
            LeapfrogTriejoin(
                trap, attribute_order=("B", "A", "C"), telemetry=probe
            )


class TestSnapshot:
    def test_snapshot_fields(self):
        probe = TelemetryProbe(("A", "B"))
        probe.partials[0] = 1
        probe.candidates[0] = 10
        probe.matches[0] = 4
        probe.partials[1] = 4
        probe.candidates[1] = 8
        probe.matches[1] = 8
        telemetry = probe.snapshot(rows=8, seconds=0.5, complete=True)
        assert telemetry.attribute_order == ("A", "B")
        assert telemetry.rows == 8
        assert telemetry.complete
        a = telemetry.level("A")
        assert a.prefix == ()
        assert a.selectivity == pytest.approx(0.4)
        assert a.fanout == pytest.approx(4.0)
        b = telemetry.level("B")
        assert b.prefix == ("A",)
        assert b.selectivity == pytest.approx(1.0)
        assert b.fanout == pytest.approx(2.0)
        assert telemetry.level("Z") is None
        assert telemetry.total_candidates == 18

    def test_degenerate_level_ratios(self):
        level = ObservedLevel(
            attribute="A",
            position=0,
            prefix=(),
            partials=0,
            candidates=0,
            matches=0,
        )
        assert level.selectivity == 1.0
        assert level.fanout == 0.0


class TestEstimateDivergence:
    def _telemetry(self, matches_by_attr):
        levels = tuple(
            ObservedLevel(
                attribute=attr,
                position=i,
                prefix=tuple(matches_by_attr)[:i],
                partials=1,
                candidates=max(matches, 1),
                matches=matches,
            )
            for i, (attr, matches) in enumerate(matches_by_attr.items())
        )
        return ExecutionTelemetry(
            attribute_order=tuple(matches_by_attr),
            levels=levels,
            rows=0,
            seconds=0.0,
            complete=True,
        )

    def test_exact_estimates_diverge_by_one(self):
        telemetry = self._telemetry({"A": 10, "B": 100})
        assert estimate_divergence(
            (("A", 10.0), ("B", 100.0)), telemetry
        ) == pytest.approx(1.0)

    def test_both_directions_count(self):
        telemetry = self._telemetry({"A": 10})
        assert estimate_divergence(
            (("A", 100.0),), telemetry
        ) == pytest.approx(10.0)
        assert estimate_divergence((("A", 1.0),), telemetry) == pytest.approx(
            10.0
        )

    def test_unobserved_levels_skipped(self):
        telemetry = self._telemetry({"A": 10})
        assert estimate_divergence(
            (("A", 10.0), ("Z", 1e9)), telemetry
        ) == pytest.approx(1.0)
