"""Online re-sharding: the hot-shard split logic and its end-to-end path."""

import pytest

from repro import Q, iter_join
from repro.engine.parallel import _shard_queries, plan_shards
from repro.feedback.config import FeedbackConfig
from repro.feedback.resharding import ShardPlanEntry, expand_shards
from repro.feedback.telemetry import ShardObservation
from repro.query.context import ExecutionContext
from repro.stats.provider import StatsProvider
from repro.workloads import generators

ORDER = ("A", "C", "B")

#: Small hub instance: one value of A dominates R and T.
HUB = dict(
    light_domain=60,
    b_domain=80,
    c_domain=1500,
    r_size=500,
    s_size=1200,
    t_size=3600,
    r_hub=0.8,
    t_hub=0.92,
    seed=23,
)


@pytest.fixture(scope="module")
def hub():
    return generators.hub_triangle(**HUB)


def entries_for(query, shards, attribute=ORDER[0]):
    specs = plan_shards(query, shards, attribute)
    restricted = _shard_queries(query, specs)
    return [
        ShardPlanEntry(
            key=((attribute, spec.values),), query=sub, weight=spec.weight
        )
        for spec, sub in zip(specs, restricted)
    ], specs


def observe(entries, seconds):
    return {
        entry.key: ShardObservation(
            key=entry.key,
            seconds=s,
            rows=10,
            weight=entry.weight,
        )
        for entry, s in zip(entries, seconds)
    }


class TestExpandShards:
    def test_no_observations_passthrough(self, hub):
        entries, _specs = entries_for(hub, 2)
        expanded = expand_shards(entries, ORDER, {}, FeedbackConfig())
        assert expanded == entries

    def test_hot_shard_splits_on_next_attribute(self, hub):
        entries, _specs = entries_for(hub, 2)
        observed = observe(entries, [1.0, 0.2])
        expanded = expand_shards(
            entries, ORDER, observed, FeedbackConfig(split_threshold=2.0)
        )
        # The hot entry is replaced by sub-shards on ORDER[1]; the cool
        # one passes through.
        assert len(expanded) == 3
        sub = [e for e in expanded if len(e.key) == 2]
        assert len(sub) == 2
        for entry in sub:
            assert entry.key[0] == entries[0].key[0]
            assert entry.key[1][0] == ORDER[1]
        assert entries[1] in expanded
        # Sub-shard queries partition the hot shard's output.
        hot_rows = set(
            iter_join(entries[0].query, algorithm="generic",
                      attribute_order=ORDER)
        )
        sub_rows = [
            set(iter_join(e.query, algorithm="generic",
                          attribute_order=ORDER))
            for e in sub
        ]
        assert sub_rows[0] | sub_rows[1] == hot_rows
        assert not (sub_rows[0] & sub_rows[1])

    def test_cool_shards_never_split(self, hub):
        entries, _specs = entries_for(hub, 2)
        observed = observe(entries, [0.2, 0.21])
        expanded = expand_shards(
            entries, ORDER, observed, FeedbackConfig(split_threshold=1.5)
        )
        assert expanded == entries

    def test_single_shard_has_no_siblings(self, hub):
        entries, _specs = entries_for(hub, 1)
        observed = observe(entries, [10.0])
        expanded = expand_shards(
            entries, ORDER, observed, FeedbackConfig(split_threshold=1.5)
        )
        assert expanded == entries

    def test_min_split_seconds_floor(self, hub):
        entries, _specs = entries_for(hub, 2)
        observed = observe(entries, [0.010, 0.001])
        config = FeedbackConfig(split_threshold=1.5, min_split_seconds=0.05)
        assert expand_shards(entries, ORDER, observed, config) == entries

    def test_split_factor_controls_sub_shards(self, hub):
        entries, _specs = entries_for(hub, 2)
        observed = observe(entries, [1.0, 0.1])
        expanded = expand_shards(
            entries,
            ORDER,
            observed,
            FeedbackConfig(split_threshold=1.5, split_factor=3),
        )
        assert len([e for e in expanded if len(e.key) == 2]) == 3

    def test_recursive_split_bounded_by_depth(self, hub):
        entries, _specs = entries_for(hub, 2)
        config = FeedbackConfig(split_threshold=1.5, max_split_depth=1)
        observed = observe(entries, [1.0, 0.1])
        once = expand_shards(entries, ORDER, observed, config)
        subs = [e for e in once if len(e.key) == 2]
        # Record the sub-shards as skewed too: with depth capped at 1
        # they must not split again.
        deeper = dict(observed)
        deeper.update(observe(subs, [1.0, 0.05]))
        again = expand_shards(entries, ORDER, deeper, config)
        assert max(len(e.key) for e in again) == 2
        # Raising the cap lets the hot sub-shard split on ORDER[2].
        three = expand_shards(
            entries,
            ORDER,
            deeper,
            FeedbackConfig(split_threshold=1.5, max_split_depth=2),
        )
        deepest = [e for e in three if len(e.key) == 3]
        assert deepest
        assert all(e.key[2][0] == ORDER[2] for e in deepest)

    def test_depth_never_exceeds_order_length(self, hub):
        entries, _specs = entries_for(hub, 2)
        observed = observe(entries, [1.0, 0.1])
        config = FeedbackConfig(split_threshold=1.5, max_split_depth=10)
        expanded = expand_shards(entries, ORDER, observed, config)
        subs = [e for e in expanded if len(e.key) > 1]
        deeper = dict(observed)
        deeper.update(observe(subs, [1.0] + [0.01] * (len(subs) - 1)))
        expanded = expand_shards(entries, ORDER, deeper, config)
        assert max(len(e.key) for e in expanded) <= len(ORDER)

    def test_deterministic(self, hub):
        entries, _specs = entries_for(hub, 2)
        observed = observe(entries, [1.0, 0.1])
        config = FeedbackConfig(split_threshold=1.5)
        first = expand_shards(entries, ORDER, observed, config)
        second = expand_shards(entries, ORDER, observed, config)
        # Entries hold JoinQuery objects (identity-compared); the split
        # *structure* — keys, weights, per-shard relation sizes — must
        # be reproducible.
        assert [(e.key, e.weight) for e in first] == [
            (e.key, e.weight) for e in second
        ]
        assert [
            {name: len(rel) for name, rel in e.query.relations.items()}
            for e in first
        ] == [
            {name: len(rel) for name, rel in e.query.relations.items()}
            for e in second
        ]


class TestEndToEnd:
    @pytest.mark.parametrize("mode", ["serial", "thread", "process"])
    def test_second_run_splits_and_keeps_parity(self, hub, mode):
        provider = StatsProvider()
        context = ExecutionContext(
            algorithm="generic",
            shards=2,
            mode=mode,
            attribute_order=ORDER,
            stats=provider,
            # min_split_seconds=0 on purpose: the hub shard is hot by
            # structure, whatever this host's absolute timings are.
            feedback=FeedbackConfig(split_threshold=1.5),
        )
        serial = set(
            iter_join(hub, algorithm="generic", attribute_order=ORDER)
        )
        first = set(Q(hub).using(context=context).stream())
        assert first == serial
        assert provider.observed_shards(hub)
        second = set(Q(hub).using(context=context).stream())
        assert second == serial
        observed = provider.observed_shards(hub)
        # Whether the hub shard split depends on this host's timings;
        # when it did, the sub-shards must be keyed under it on the
        # next attribute of the order.
        for key in observed:
            if len(key) == 2:
                assert key[1][0] == ORDER[1]

    def test_early_abandonment_records_nothing(self, hub):
        provider = StatsProvider()
        context = ExecutionContext(
            algorithm="generic",
            shards=2,
            mode="serial",
            attribute_order=ORDER,
            stats=provider,
            feedback=FeedbackConfig(),
        )
        stream = Q(hub).using(context=context).stream()
        next(stream)
        stream.close()
        assert provider.observed_shards(hub) == {}
