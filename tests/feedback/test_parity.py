"""Feedback must never change results — only plans and shard layouts.

The acceptance gate: result-set parity with non-feedback execution
across all five algorithms and serial/sharded/batched/async modes, on
every workload generator the engine ships.
"""

import asyncio

import pytest

from repro import Q, join
from repro.api import ALGORITHMS
from repro.feedback.config import FeedbackConfig
from repro.query.context import ExecutionContext
from repro.stats.provider import StatsProvider
from repro.workloads import generators, queries


def workloads():
    return [
        (
            "uniform_triangle",
            generators.random_instance(queries.triangle(), 300, 30, seed=5),
        ),
        (
            "zipf_triangle",
            generators.random_instance(
                queries.triangle(), 400, 25, seed=23, skew=1.1
            ),
        ),
        (
            "trap_triangle",
            generators.zipf_trap_triangle(
                200, 600, seed=7, match_fraction=0.05, decoy_domain=10,
                c_domain=10,
            ),
        ),
        ("hub_triangle", generators.hub_triangle(
            light_domain=40, b_domain=50, c_domain=400, r_size=300,
            s_size=500, t_size=1200, seed=23,
        )),
        (
            "clique4",
            generators.random_instance(
                queries.clique_query(4), 300, 12, seed=24
            ),
        ),
    ]


WORKLOADS = workloads()
TRIANGLES = [w for w in WORKLOADS if w[0] != "clique4"]


class TestAlgorithmParity:
    @pytest.mark.parametrize("name,query", WORKLOADS)
    @pytest.mark.parametrize(
        "algorithm", [a for a in ALGORITHMS if a not in ("lw",)]
    )
    def test_serial_parity(self, name, query, algorithm):
        if algorithm == "arity2" and name == "clique4":
            pytest.skip("arity2 requires arity <= 2 (it applies here, "
                        "but keep the matrix small)")
        plain = set(Q(query).using(algorithm=algorithm).stream())
        provider = StatsProvider()
        observed = Q(query).using(
            algorithm=algorithm, stats=provider, feedback=FeedbackConfig()
        )
        # Two runs: the second may be re-planned from observations.
        assert set(observed.stream()) == plain
        assert set(observed.stream()) == plain

    @pytest.mark.parametrize("name,query", TRIANGLES)
    def test_lw_parity(self, name, query):
        plain = set(Q(query).using(algorithm="lw").stream())
        observed = Q(query).using(
            algorithm="lw", stats=StatsProvider(), feedback=FeedbackConfig()
        )
        assert set(observed.stream()) == plain
        assert set(observed.stream()) == plain


class TestModeParity:
    @pytest.mark.parametrize("name,query", TRIANGLES)
    @pytest.mark.parametrize("mode", ["serial", "thread", "process"])
    def test_sharded_parity(self, name, query, mode):
        plain = set(Q(query).using(algorithm="generic").stream())
        provider = StatsProvider()
        context = ExecutionContext(
            algorithm="generic",
            shards=2,
            mode=mode,
            stats=provider,
            feedback=FeedbackConfig(split_threshold=1.2),
        )
        observed = Q(query).using(context=context)
        assert set(observed.stream()) == plain
        assert set(observed.stream()) == plain  # post-split layout

    @pytest.mark.parametrize("name,query", TRIANGLES[:2])
    def test_batched_parity(self, name, query):
        plain = set(Q(query).using(algorithm="generic").stream())
        observed = Q(query).using(
            algorithm="generic",
            batch_size=64,
            stats=StatsProvider(),
            feedback=FeedbackConfig(),
        )
        rows = [row for batch in observed.batches() for row in batch]
        assert set(rows) == plain
        assert len(rows) == len(plain)

    @pytest.mark.parametrize("name,query", TRIANGLES[:2])
    def test_async_parity(self, name, query):
        plain = set(Q(query).using(algorithm="generic").stream())

        async def drain():
            collected = []
            async for row in Q(query).using(
                algorithm="generic",
                stats=StatsProvider(),
                feedback=FeedbackConfig(),
            ).astream(batch_size=128):
                collected.append(row)
            return collected

        rows = asyncio.run(drain())
        assert set(rows) == plain
        assert len(rows) == len(plain)


class TestPushdownParity:
    def test_feedback_with_where_and_select(self):
        query = generators.random_instance(
            queries.triangle(), 300, 20, seed=11
        )
        provider = StatsProvider()
        plain = set(
            Q(query).where(A=1).select("B", "C").stream()
        )
        observed = (
            Q(query)
            .where(A=1)
            .select("B", "C")
            .using(stats=provider, feedback=FeedbackConfig())
        )
        assert set(observed.stream()) == plain
        assert set(observed.stream()) == plain

    def test_feedback_with_residual_filter(self):
        query = generators.random_instance(
            queries.triangle(), 300, 20, seed=11
        )
        plain = set(Q(query).where_in("B", {1, 2, 3}).stream())
        observed = Q(query).where_in("B", {1, 2, 3}).using(
            stats=StatsProvider(), feedback=FeedbackConfig()
        )
        assert set(observed.stream()) == plain
        assert set(observed.stream()) == plain


class TestMaterializedParity:
    def test_api_join_with_feedback(self):
        query = generators.random_instance(
            queries.triangle(), 200, 20, seed=3
        )
        plain = join(query)
        observed = join(query, feedback=FeedbackConfig())
        assert set(observed.tuples) == set(plain.tuples)
