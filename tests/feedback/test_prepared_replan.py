"""PreparedQuery under feedback: divergence-triggered re-planning."""

import pytest

from repro import Q
from repro.feedback.config import FeedbackConfig
from repro.stats.provider import StatsConfig, StatsProvider
from repro.workloads import generators, queries

TRAP = dict(
    nodes=600, size=1500, seed=7, match_fraction=0.05, decoy_domain=25,
    c_domain=25,
)


@pytest.fixture()
def trap():
    return generators.zipf_trap_triangle(**TRAP)


def heuristic_provider():
    return StatsProvider(config=StatsConfig(sample_size=0))


class TestReplan:
    def test_diverging_plan_is_replaced_once(self, trap):
        prepared = (
            Q(trap)
            .using(
                algorithm="generic",
                stats=heuristic_provider(),
                feedback=FeedbackConfig(),
            )
            .prepare()
        )
        frozen = prepared.plan.attribute_order
        assert frozen[-1] == "A"  # the heuristic trap order
        assert prepared.replans == 0
        counts = [prepared.count() for _ in range(4)]
        assert len(set(counts)) == 1  # parity across re-planning
        assert prepared.replans == 1
        assert prepared.plan.attribute_order != frozen
        assert prepared.plan.attribute_order[0] == "A"
        assert prepared.plan.statistics.source == "feedback"

    def test_replanned_executor_serves_later_runs(self, trap):
        provider = heuristic_provider()
        prepared = (
            Q(trap)
            .using(
                algorithm="generic",
                stats=provider,
                feedback=FeedbackConfig(),
            )
            .prepare()
        )
        prepared.count()  # records + re-plans
        stable = prepared.plan.attribute_order
        prepared.count()
        prepared.count()
        assert prepared.plan.attribute_order == stable
        assert prepared.replans == 1

    def test_tolerance_blocks_replanning(self, trap):
        prepared = (
            Q(trap)
            .using(
                algorithm="generic",
                stats=heuristic_provider(),
                feedback=FeedbackConfig(replan_tolerance=1e9),
            )
            .prepare()
        )
        frozen = prepared.plan.attribute_order
        prepared.count()
        prepared.count()
        assert prepared.plan.attribute_order == frozen
        assert prepared.replans == 0

    def test_without_feedback_nothing_moves(self, trap):
        prepared = (
            Q(trap)
            .using(algorithm="generic", stats=heuristic_provider())
            .prepare()
        )
        frozen = prepared.plan.attribute_order
        prepared.count()
        prepared.count()
        assert prepared.plan.attribute_order == frozen
        assert prepared.replans == 0

    def test_replanning_converges(self):
        # Whatever the first estimates were worth, the loop settles: at
        # most one correction plus one exploration, then the
        # measured-best order stays put.
        query = generators.random_instance(
            queries.triangle(), 400, 25, seed=5
        )
        prepared = (
            Q(query)
            .using(
                algorithm="generic",
                stats=StatsProvider(),
                feedback=FeedbackConfig(),
            )
            .prepare()
        )
        counts = [prepared.count() for _ in range(3)]
        settled = prepared.plan.attribute_order
        replans = prepared.replans
        counts.append(prepared.count())
        assert prepared.plan.attribute_order == settled
        assert prepared.replans == replans <= 2
        assert len(set(counts)) == 1


class TestBindAfterReplan:
    def test_bind_reuses_the_refreshed_plan(self, trap):
        prepared = (
            Q(trap)
            .where(B=1)
            .using(
                algorithm="generic",
                stats=heuristic_provider(),
                feedback=FeedbackConfig(),
            )
            .prepare()
        )
        baseline = {
            value: set(
                Q(trap).where(B=value).using(algorithm="generic").stream()
            )
            for value in (1, 2)
        }
        assert set(prepared.stream()) == baseline[1]
        rebound = prepared.bind(B=2)
        assert set(rebound.stream()) == baseline[2]
        assert rebound.plan.algorithm == prepared.plan.algorithm
