"""Feedback ingestion on StatsProvider: keying, history, invalidation."""

import pytest

from repro.core.query import JoinQuery
from repro.feedback.telemetry import (
    ExecutionTelemetry,
    ObservedLevel,
    ShardObservation,
)
from repro.relations.database import Database
from repro.relations.relation import Relation
from repro.stats.provider import StatsConfig, StatsProvider, resolve_provider


def triangle_relations():
    return [
        Relation("R", ("A", "B"), [(1, 2), (2, 3), (3, 1)]),
        Relation("S", ("B", "C"), [(2, 9), (3, 7), (1, 5)]),
        Relation("T", ("A", "C"), [(1, 9), (2, 7), (3, 5)]),
    ]


def telemetry_for(order, matches=(2, 2, 2)):
    levels = []
    partials = 1
    for i, attribute in enumerate(order):
        levels.append(
            ObservedLevel(
                attribute=attribute,
                position=i,
                prefix=tuple(order[:i]),
                partials=partials,
                candidates=matches[i] + 1,
                matches=matches[i],
            )
        )
        partials = matches[i]
    return ExecutionTelemetry(
        attribute_order=tuple(order),
        levels=tuple(levels),
        rows=matches[-1],
        seconds=0.01,
        complete=True,
    )


class TestAdHocKeying:
    def test_roundtrip(self):
        query = JoinQuery(triangle_relations())
        provider = StatsProvider()
        assert provider.observed_levels(query) == {}
        provider.record_levels(query, telemetry_for(("A", "B", "C")))
        observed = provider.observed_levels(query)
        assert set(observed) == {"A", "B", "C"}
        assert observed["A"].position == 0

    def test_value_keyed_across_equal_reloads(self):
        # Feedback must survive re-loading the same data into new
        # relation objects (a CLI process answering repeated queries).
        provider = StatsProvider()
        provider.record_levels(
            JoinQuery(triangle_relations()), telemetry_for(("A", "B", "C"))
        )
        reloaded = JoinQuery(triangle_relations())
        assert set(provider.observed_levels(reloaded)) == {"A", "B", "C"}

    def test_different_data_misses(self):
        provider = StatsProvider()
        provider.record_levels(
            JoinQuery(triangle_relations()), telemetry_for(("A", "B", "C"))
        )
        changed = triangle_relations()
        changed[0] = Relation("R", ("A", "B"), [(1, 2), (2, 3), (9, 9)])
        assert provider.observed_levels(JoinQuery(changed)) == {}

    def test_incomplete_and_empty_telemetry_ignored(self):
        query = JoinQuery(triangle_relations())
        provider = StatsProvider()
        abandoned = ExecutionTelemetry(
            attribute_order=("A", "B", "C"),
            levels=telemetry_for(("A", "B", "C")).levels,
            rows=1,
            seconds=0.0,
            complete=False,
        )
        provider.record_levels(query, abandoned)
        assert provider.observed_levels(query) == {}
        no_levels = ExecutionTelemetry(
            attribute_order=("A", "B", "C"),
            levels=(),
            rows=1,
            seconds=0.0,
            complete=True,
        )
        provider.record_levels(query, no_levels)
        assert provider.observed_levels(query) == {}


class TestHistory:
    def test_best_order_wins(self):
        query = JoinQuery(triangle_relations())
        provider = StatsProvider()
        provider.record_levels(
            query, telemetry_for(("B", "C", "A"), matches=(8, 8, 8))
        )
        provider.record_levels(
            query, telemetry_for(("A", "B", "C"), matches=(1, 1, 1))
        )
        history = provider.observed_history(query)
        assert set(history) == {("B", "C", "A"), ("A", "B", "C")}
        best = provider.observed_telemetry(query)
        assert best.attribute_order == ("A", "B", "C")
        assert provider.observed_levels(query)["A"].matches == 1

    def test_latest_run_of_an_order_overwrites(self):
        query = JoinQuery(triangle_relations())
        provider = StatsProvider()
        provider.record_levels(
            query, telemetry_for(("A", "B", "C"), matches=(5, 5, 5))
        )
        provider.record_levels(
            query, telemetry_for(("A", "B", "C"), matches=(2, 2, 2))
        )
        history = provider.observed_history(query)
        assert len(history) == 1
        assert history[("A", "B", "C")].rows == 2


class TestShardObservations:
    def test_merge_across_runs(self):
        query = JoinQuery(triangle_relations())
        provider = StatsProvider()
        top = ShardObservation(
            key=(("A", frozenset({1})),), seconds=1.0, rows=5, weight=10
        )
        provider.record_shards(query, [top])
        sub = ShardObservation(
            key=(("A", frozenset({1})), ("B", frozenset({2}))),
            seconds=0.4,
            rows=2,
            weight=4,
        )
        provider.record_shards(query, [sub])
        observed = provider.observed_shards(query)
        assert set(observed) == {top.key, sub.key}
        # Re-recording a key overwrites it.
        provider.record_shards(
            query,
            [
                ShardObservation(
                    key=top.key, seconds=2.0, rows=5, weight=10
                )
            ],
        )
        assert provider.observed_shards(query)[top.key].seconds == 2.0

    def test_empty_record_is_noop(self):
        query = JoinQuery(triangle_relations())
        provider = StatsProvider()
        provider.record_shards(query, [])
        assert provider.observed_shards(query) == {}


class TestDatabaseInvalidation:
    """Satellite: feedback-cache invalidation on replace and drop."""

    def _db_provider(self):
        db = Database(triangle_relations())
        provider = db.stats()
        query = JoinQuery([db["R"], db["S"], db["T"]])
        provider.record_levels(query, telemetry_for(("A", "B", "C")))
        provider.record_shards(
            query,
            [
                ShardObservation(
                    key=(("A", frozenset({1})),),
                    seconds=1.0,
                    rows=5,
                    weight=10,
                )
            ],
        )
        assert provider.observed_levels(query)
        assert provider.observed_shards(query)
        return db, provider

    @pytest.mark.parametrize("name", ["R", "S", "T"])
    def test_replacing_any_relation_invalidates(self, name):
        db, provider = self._db_provider()
        replacement = Relation(
            name, db[name].attributes, list(db[name].tuples)[:-1]
        )
        db.add(replacement, replace=True)
        query = JoinQuery([db["R"], db["S"], db["T"]])
        assert provider.observed_levels(query) == {}
        assert provider.observed_shards(query) == {}

    def test_dropping_a_relation_invalidates(self):
        db, provider = self._db_provider()
        stale = JoinQuery([db["R"], db["S"], db["T"]])
        db.remove("S")
        assert provider.observed_levels(stale) == {}
        assert provider.observed_shards(stale) == {}

    def test_same_named_ad_hoc_relations_do_not_hit(self):
        db, provider = self._db_provider()
        # Equal-valued but different-sized relations under the same
        # names must not be served the catalog's observations.
        shrunk = [
            Relation("R", ("A", "B"), [(1, 2)]),
            Relation("S", ("B", "C"), [(2, 9)]),
            Relation("T", ("A", "C"), [(1, 9)]),
        ]
        assert provider.observed_levels(JoinQuery(shrunk)) == {}


class TestResolveProvider:
    def test_explicit_provider_wins(self):
        provider = StatsProvider()
        assert resolve_provider(None, provider) is provider

    def test_config_without_database_is_shared(self):
        config = StatsConfig(sample_size=7, seed=3)
        first = resolve_provider(None, config)
        second = resolve_provider(None, config)
        assert first is second
        assert first.config == config

    def test_database_provider_cached(self):
        db = Database(triangle_relations())
        assert resolve_provider(db, None) is db.stats()
        config = StatsConfig(sample_size=0)
        assert resolve_provider(db, config) is db.stats(config)

    def test_default_provider_shared(self):
        assert resolve_provider(None, None) is resolve_provider(None, None)
