"""Planner tests: plan shape, order invariance, early validation."""

import itertools

import pytest

from repro import FractionalCover, output_bound
from repro.api import explain, join
from repro.baselines.naive import naive_join
from repro.core.query import JoinQuery
from repro.engine.planner import (
    JoinPlan,
    attribute_statistics,
    plan_attribute_order,
    plan_join,
)
from repro.errors import QueryError
from repro.relations.relation import Relation
from repro.workloads import generators, queries

from tests.helpers import triangle_query


class TestPlanShape:
    def test_auto_picks_lw_for_lw_instance(self):
        plan = plan_join(triangle_query())
        assert plan.algorithm == "lw"
        assert plan.estimated_bound == pytest.approx(3**1.5, rel=1e-6)

    def test_auto_picks_arity2_for_graphs(self):
        q = generators.random_instance(queries.cycle_query(4), 20, 4, seed=0)
        plan = plan_join(q)
        assert plan.algorithm == "arity2"

    def test_auto_picks_generic_for_general_shapes(self):
        q = generators.random_instance(queries.paper_figure2(), 20, 3, seed=0)
        plan = plan_join(q)
        assert plan.algorithm == "generic"
        assert set(plan.attribute_order) == set(q.attributes)

    def test_auto_with_cover_uses_nprr(self):
        from fractions import Fraction

        q = triangle_query()
        cover = FractionalCover.uniform(q.hypergraph, Fraction(1, 2))
        plan = plan_join(q, cover=cover)
        assert plan.algorithm == "nprr"
        assert plan.cover is cover

    def test_leapfrog_gets_sorted_backend(self):
        plan = plan_join(triangle_query(), "leapfrog")
        assert plan.backend == "sorted"

    def test_indexless_algorithms_report_no_backend(self):
        assert plan_join(triangle_query(), "lw").backend == "none"
        assert plan_join(triangle_query(), "arity2").backend == "none"

    def test_auto_honors_explicit_order_with_generic(self):
        # The triangle would normally go to the blocking lw specialist;
        # a caller-fixed order must route to an order-sensitive executor.
        q = triangle_query()
        plan = plan_join(q, attribute_order=("C", "B", "A"))
        assert plan.algorithm == "generic"
        assert plan.attribute_order == ("C", "B", "A")

    def test_auto_honors_explicit_backend_with_generic(self):
        plan = plan_join(triangle_query(), backend="sorted")
        assert plan.algorithm == "generic"
        assert plan.backend == "sorted"

    def test_unsupported_order_request_rejected(self):
        # Executors that derive their own order must not silently ignore
        # a caller-fixed one.
        for algorithm in ("nprr", "lw", "arity2"):
            with pytest.raises(QueryError):
                plan_join(
                    triangle_query(), algorithm,
                    attribute_order=("A", "B", "C"),
                )

    def test_unsupported_backend_request_rejected(self):
        with pytest.raises(QueryError):
            plan_join(triangle_query(), "leapfrog", backend="trie")
        with pytest.raises(QueryError):
            plan_join(triangle_query(), "nprr", backend="sorted")
        with pytest.raises(QueryError):
            plan_join(triangle_query(), "lw", backend="trie")

    def test_bound_is_lazy_for_streaming_algorithms(self):
        plan = plan_join(triangle_query(), "generic")
        assert object.__getattribute__(plan, "_bound") is None
        assert plan.estimated_bound == pytest.approx(3**1.5, rel=1e-6)
        assert object.__getattribute__(plan, "_bound") is not None

    def test_estimated_bound_matches_output_bound(self):
        q = generators.random_instance(queries.triangle(), 30, 5, seed=3)
        assert plan_join(q).estimated_bound == pytest.approx(output_bound(q))

    def test_describe_mentions_choices(self):
        plan = plan_join(triangle_query(), "leapfrog")
        text = plan.describe()
        assert "leapfrog" in text
        assert "attribute order:" in text
        assert "AGM bound" in text

    def test_explain_returns_plan_without_running(self):
        plan = explain(triangle_query())
        assert isinstance(plan, JoinPlan)
        result = plan.execute()
        assert result.equivalent(naive_join(triangle_query()))


class TestOrderHeuristic:
    def test_statistics_are_min_distinct_counts(self):
        q = JoinQuery(
            [
                Relation("R", ("A", "B"), [(1, 1), (1, 2), (1, 3)]),
                Relation("S", ("B", "C"), [(1, 1), (2, 1), (3, 1)]),
            ]
        )
        stats = attribute_statistics(q)
        assert stats == {"A": 1, "B": 3, "C": 1}

    def test_most_selective_attribute_first(self):
        # A has one distinct value; C has many; B is in between.
        q = JoinQuery(
            [
                Relation("R", ("A", "B"), [(7, b) for b in range(4)]),
                Relation(
                    "S", ("B", "C"), [(b, c) for b in range(4) for c in range(8)]
                ),
                Relation("T", ("A", "C"), [(7, c) for c in range(8)]),
            ]
        )
        order = plan_attribute_order(q)
        assert order[0] == "A"

    def test_order_is_permutation(self):
        for seed in range(5):
            h = generators.random_hypergraph(5, 4, 3, seed=seed)
            q = generators.random_instance(h, 25, 4, seed=seed)
            order = plan_attribute_order(q)
            assert sorted(order) == sorted(q.attributes)

    def test_order_is_deterministic(self):
        q = generators.random_instance(queries.triangle(), 30, 5, seed=1)
        assert plan_attribute_order(q) == plan_attribute_order(q)


class TestPlannerInvariance:
    """Any chosen order yields the same result set (WCOJ correctness)."""

    @pytest.mark.parametrize("algorithm", ["generic", "leapfrog"])
    def test_all_orders_same_result(self, algorithm):
        q = generators.random_instance(queries.triangle(), 30, 5, seed=4)
        base = naive_join(q)
        for order in itertools.permutations(q.attributes):
            plan = plan_join(q, algorithm, attribute_order=order)
            assert plan.execute().equivalent(base)
            assert sorted(plan.iter_rows()) == sorted(
                base.reorder(q.attributes).tuples
            )

    def test_planned_order_matches_default_order(self):
        q = generators.random_instance(
            queries.paper_figure2(), 25, 3, seed=8, skew=1.3
        )
        base = naive_join(q)
        planned = plan_join(q, "generic")
        default = plan_join(q, "generic", attribute_order=q.attributes)
        assert planned.execute().equivalent(base)
        assert default.execute().equivalent(base)


class TestEarlyValidation:
    def test_unknown_algorithm_rejected_before_any_work(self):
        # The relations argument is never touched: validation precedes
        # query construction and index building.
        with pytest.raises(QueryError):
            join(None, algorithm="quantum")

    def test_unknown_algorithm_rejected_by_planner(self):
        with pytest.raises(QueryError):
            plan_join(triangle_query(), "quantum")

    def test_unknown_backend_rejected(self):
        from repro.errors import DatabaseError

        with pytest.raises(DatabaseError):
            plan_join(triangle_query(), "generic", backend="quantum")

    def test_algorithms_single_source_of_truth(self):
        from repro.api import ALGORITHMS
        from repro.engine.executors import EXECUTORS

        assert ALGORITHMS == tuple(EXECUTORS) + ("auto",)
