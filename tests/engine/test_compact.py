"""The compact packed-array backend: parity, seeks, pickling, telemetry.

The compact backend must be *observationally identical* to the hash trie
and the sorted flat array through the ``IndexBackend`` protocol — every
walk, descend, child, count, and paths answer, over every relation shape
hypothesis can dream up.  Beyond the protocol it must also keep the
engine's telemetry twins honest: an instrumented run over compact indexes
counts exactly what the same run counts over the other backends, because
the counters track *logical* search events, not physical probes.
"""

import pickle
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.generic_join import GenericJoin
from repro.core.leapfrog import LeapfrogTriejoin
from repro.core.query import JoinQuery
from repro.engine.compact import (
    DENSITY_THRESHOLD,
    CompactArrayIndex,
    CompactTrieIterator,
)
from repro.errors import QueryError
from repro.feedback.telemetry import TelemetryProbe
from repro.relations.relation import Relation
from repro.relations.sorted_index import SortedArrayIndex
from repro.relations.trie import TrieIndex

BACKENDS = (TrieIndex, SortedArrayIndex, CompactArrayIndex)

# Small domains force duplicate-heavy relations; a string column
# exercises the unpacked (tuple-levels) fallback.  Columns stay
# type-homogeneous: the sort-based backends (sorted, compact) need
# orderable values within each level, just like ``sorted()`` does.
int_rows = st.lists(
    st.tuples(
        st.integers(0, 7), st.integers(-3, 3), st.integers(0, 5)
    ),
    max_size=40,
)
string_rows = st.lists(
    st.tuples(
        st.sampled_from(["u", "v", "w", "x", "y"]),
        st.integers(0, 4),
    ),
    max_size=30,
)


def _indexes(rows, attributes):
    relation = Relation("R", attributes, rows)
    return [cls(relation, attributes) for cls in BACKENDS]


def _assert_agreement(indexes, arity, miss=99):
    trie, flat, compact = indexes
    assert len(trie) == len(flat) == len(compact)
    for depth in range(arity + 1):
        paths = sorted(trie.paths(trie.root, depth))
        assert sorted(flat.paths(flat.root, depth)) == paths
        assert sorted(compact.paths(compact.root, depth)) == paths
    prefixes = {p for p in trie.paths(trie.root, arity)}
    prefixes |= {p[:d] for p in prefixes for d in range(arity)}
    # A miss value comparable with the first column's values: the
    # sort-based backends binary-search it against real keys.
    prefixes |= {(miss,)}
    for prefix in sorted(prefixes, key=repr):
        nodes = [index.walk(prefix) for index in indexes]
        missing = [node is None for node in nodes]
        assert missing == [missing[0]] * 3
        for depth in range(arity - len(prefix) + 1):
            counts = [
                index.count(node, depth)
                for index, node in zip(indexes, nodes)
            ]
            assert counts == [counts[0]] * 3
        if len(prefix) < arity:
            fanouts = [
                index.fanout(node) for index, node in zip(indexes, nodes)
            ]
            assert fanouts == [fanouts[0]] * 3
            items = [
                sorted(
                    (value for value, _child in index.items(node)),
                    key=repr,
                )
                if node is not None
                else []
                for index, node in zip(indexes, nodes)
            ]
            assert items == [items[0]] * 3


class TestPropertyParity:
    @settings(max_examples=60, deadline=None)
    @given(int_rows)
    def test_integer_relations(self, rows):
        indexes = _indexes(rows, ("A", "B", "C"))
        _assert_agreement(indexes, 3)

    @settings(max_examples=40, deadline=None)
    @given(string_rows)
    def test_string_key_relations(self, rows):
        indexes = _indexes(rows, ("A", "B"))
        _assert_agreement(indexes, 2, miss="zz")

    @settings(max_examples=40, deadline=None)
    @given(int_rows, st.lists(st.integers(-5, 12), max_size=8))
    def test_child_and_descend_on_probes(self, rows, probes):
        trie, flat, compact = _indexes(rows, ("A", "B", "C"))
        for value in probes:
            t = trie.child(trie.root, value)
            c = compact.child(compact.root, value)
            assert (t is None) == (c is None)
            if t is not None:
                assert trie.count(t, 2) == compact.count(c, 2)
            t2 = trie.descend(trie.root, (value,))
            c2 = compact.descend(compact.root, (value,))
            assert (t2 is None) == (c2 is None)

    def test_empty_relation(self):
        trie, flat, compact = _indexes([], ("A", "B"))
        assert len(compact) == 0
        assert compact.fanout(compact.root) == 0
        assert list(compact.paths(compact.root, 2)) == []
        assert compact.count(compact.root, 0) == trie.count(trie.root, 0)
        assert compact.child(compact.root, 1) is None

    def test_single_row(self):
        _, _, compact = _indexes([(4, 2)], ("A", "B"))
        assert list(compact.paths(compact.root, 2)) == [(4, 2)]
        node = compact.walk((4,))
        assert compact.count(node, 1) == 1
        assert compact.fanout_hint(node) == 1

    def test_duplicate_heavy(self):
        rows = [(1, 2, 3)] * 50 + [(1, 2, 4)] * 50
        trie, flat, compact = _indexes(rows, ("A", "B", "C"))
        assert len(compact) == 2  # distinct tuples
        _assert_agreement((trie, flat, compact), 3)


class TestSeeks:
    def test_dense_radix_levels(self):
        # A fully dense first level: span == length, the radix path.
        rows = [(i, i % 7) for i in range(500)]
        index = CompactArrayIndex(Relation("R", ("A", "B"), rows), ("A", "B"))
        for value in (0, 123, 499):
            node = index.child(index.root, value)
            assert node is not None
            assert index.count(node, 1) == 1
        assert index.child(index.root, 500) is None
        assert index.child(index.root, -1) is None

    def test_near_dense_interpolated(self):
        # Gaps but within DENSITY_THRESHOLD: interpolated start + gallop.
        rows = [(i * 3, 0) for i in range(200)]
        index = CompactArrayIndex(Relation("R", ("A", "B"), rows), ("A", "B"))
        span = 3 * 199 + 1
        assert span <= DENSITY_THRESHOLD * 200
        assert index.child(index.root, 300) is not None
        assert index.child(index.root, 301) is None

    def test_sparse_gallop(self):
        rows = [(i * 1000, i) for i in range(100)]
        index = CompactArrayIndex(Relation("R", ("A", "B"), rows), ("A", "B"))
        hits = [0, 57000, 99000]
        for value in hits:
            assert index.child(index.root, value) is not None
        assert index.child(index.root, 57001) is None

    def test_monotone_probe_sequence_uses_hints(self):
        # The per-level hint must never change answers, only start
        # positions — probe ascending, descending, and random orders.
        rows = [(v, 0) for v in range(0, 4000, 7)]
        index = CompactArrayIndex(Relation("R", ("A", "B"), rows), ("A", "B"))
        values = [v for v, _ in rows]
        rng = random.Random(11)
        shuffled = values[:]
        rng.shuffle(shuffled)
        for sequence in (values, values[::-1], shuffled):
            for value in sequence:
                assert index.child(index.root, value) is not None
                assert index.child(index.root, value + 1) is None


class TestCursor:
    def test_open_next_seek_up(self):
        rows = [(1, 10), (1, 20), (5, 30), (9, 40)]
        index = CompactArrayIndex(Relation("R", ("A", "B"), rows), ("A", "B"))
        cursor = index.cursor()
        assert isinstance(cursor, CompactTrieIterator)
        cursor.open()
        assert cursor.key() == 1
        cursor.seek(4)
        assert cursor.key() == 5
        cursor.open()
        assert cursor.key() == 30
        cursor.up()
        cursor.next()
        assert cursor.key() == 9
        cursor.seek(100)
        assert cursor.at_end

    def test_leapfrog_runs_on_compact_cursors(self):
        R = Relation("R", ("A", "B"), [(i, (i * 3) % 40) for i in range(200)])
        S = Relation("S", ("B", "C"), [((i * 3) % 40, i % 9) for i in range(200)])
        q = JoinQuery([R, S])
        base = sorted(LeapfrogTriejoin(q).iter_join())
        compact = sorted(LeapfrogTriejoin(q, backend="compact").iter_join())
        assert base == compact

    def test_leapfrog_rejects_non_cursor_backend(self):
        q = JoinQuery([Relation("R", ("A",), [(1,)])])
        with pytest.raises(QueryError):
            LeapfrogTriejoin(q, backend="trie")


class TestPickle:
    def test_round_trip_preserves_answers(self):
        rows = [(i % 13, (i * 7) % 11, i % 5) for i in range(300)]
        relation = Relation("R", ("A", "B", "C"), rows)
        index = CompactArrayIndex(relation, ("A", "B", "C"))
        clone = pickle.loads(pickle.dumps(index))
        assert clone.attributes == index.attributes
        assert len(clone) == len(index)
        assert clone.nbytes() == index.nbytes()
        assert sorted(clone.paths(clone.root, 3)) == sorted(
            index.paths(index.root, 3)
        )
        node = clone.walk((1, 7))
        assert node is not None
        assert clone.count(node, 1) == index.count(index.walk((1, 7)), 1)

    def test_round_trip_unpacked_levels(self):
        relation = Relation("R", ("A", "B"), [("x", 1), ("y", 2)])
        index = CompactArrayIndex(relation, ("A", "B"))
        clone = pickle.loads(pickle.dumps(index))
        assert sorted(clone.paths(clone.root, 2)) == [("x", 1), ("y", 2)]

    def test_round_trip_empty(self):
        index = CompactArrayIndex(Relation("R", ("A",), []), ("A",))
        clone = pickle.loads(pickle.dumps(index))
        assert len(clone) == 0
        assert list(clone.paths(clone.root, 1)) == []


class TestTelemetryTwins:
    """Backends must be invisible to the telemetry counters."""

    @staticmethod
    def _query():
        rng = random.Random(21)
        rows = lambda: [  # noqa: E731
            (rng.randrange(30), rng.randrange(30)) for _ in range(250)
        ]
        return JoinQuery(
            [
                Relation("R", ("A", "B"), rows()),
                Relation("S", ("B", "C"), rows()),
                Relation("T", ("A", "C"), rows()),
            ]
        )

    def test_generic_counts_match_trie(self):
        q = self._query()
        order = q.attributes
        counters = {}
        for kind in ("trie", "compact"):
            probe = TelemetryProbe(order)
            rows = sorted(
                GenericJoin(
                    q, order, backend=kind, telemetry=probe
                ).iter_join()
            )
            counters[kind] = (
                probe.partials[:],
                probe.candidates[:],
                probe.matches[:],
                rows,
            )
        assert counters["trie"] == counters["compact"]

    def test_leapfrog_counts_match_sorted(self):
        q = self._query()
        order = q.attributes
        counters = {}
        for kind in ("sorted", "compact"):
            probe = TelemetryProbe(order)
            rows = sorted(
                LeapfrogTriejoin(
                    q, order, backend=kind, telemetry=probe
                ).iter_join()
            )
            counters[kind] = (
                probe.partials[:],
                probe.candidates[:],
                probe.matches[:],
                rows,
            )
        assert counters["sorted"] == counters["compact"]


class TestFanoutHint:
    def test_compact_hint_is_exact(self):
        rows = [(i % 9, i) for i in range(100)]
        index = CompactArrayIndex(Relation("R", ("A", "B"), rows), ("A", "B"))
        assert index.fanout_hint(index.root) == index.fanout(index.root) == 9
        node = index.child(index.root, 3)
        assert index.fanout_hint(node) == index.fanout(node)

    def test_sorted_hint_tightens_on_dense_levels(self):
        # 100 rows but only 9 distinct first-level values: the span-based
        # hint must not report the raw row width.
        rows = [(i % 9, i) for i in range(100)]
        index = SortedArrayIndex(Relation("R", ("A", "B"), rows), ("A", "B"))
        assert index.fanout_hint(index.root) == 9

    def test_sorted_hint_never_underestimates(self):
        rng = random.Random(5)
        rows = sorted(
            {(rng.randrange(50), rng.randrange(10)) for _ in range(120)}
        )
        index = SortedArrayIndex(Relation("R", ("A", "B"), rows), ("A", "B"))
        node = index.root
        assert index.fanout_hint(node) >= index.fanout(node)
        for value, child in index.items(node):
            assert index.fanout_hint(child) >= index.fanout(child)
