"""Streaming parity: iter_join agrees with join for every algorithm.

The acceptance property of the streaming engine:
``sorted(iter_join(q)) == sorted(join(q).tuples)`` across the workload
generators, for all five algorithms — plus laziness and index-cache
behavior of the streaming path.
"""

import pytest

from repro.api import iter_join, join
from repro.core.generic_join import GenericJoin
from repro.core.leapfrog import LeapfrogTriejoin
from repro.core.nprr import NPRRJoin
from repro.core.query import JoinQuery
from repro.relations.database import Database
from repro.relations.relation import Relation
from repro.workloads import generators, queries

from tests.helpers import single_relation_query, triangle_query

ALL_ALGORITHMS = ("nprr", "lw", "generic", "leapfrog", "arity2")

#: (query builder, algorithms applicable to its shape)
WORKLOADS = [
    ("triangle-uniform", lambda: generators.random_instance(
        queries.triangle(), 40, 6, seed=1
    ), ALL_ALGORITHMS),
    ("triangle-skewed", lambda: generators.random_instance(
        queries.triangle(), 40, 6, seed=2, skew=1.2
    ), ALL_ALGORITHMS),
    ("lw4", lambda: generators.random_instance(
        queries.lw_query(4), 30, 3, seed=3
    ), ("nprr", "lw", "generic", "leapfrog")),
    ("cycle5", lambda: generators.random_instance(
        queries.cycle_query(5), 25, 4, seed=4
    ), ("nprr", "generic", "leapfrog", "arity2")),
    ("figure2", lambda: generators.random_instance(
        queries.paper_figure2(), 25, 3, seed=5
    ), ("nprr", "generic", "leapfrog")),
    ("random-hypergraph", lambda: generators.random_instance(
        generators.random_hypergraph(4, 4, 3, seed=6), 25, 4, seed=6
    ), ("nprr", "generic", "leapfrog")),
]


@pytest.mark.parametrize(
    "name,builder,algorithms", WORKLOADS, ids=[w[0] for w in WORKLOADS]
)
def test_streaming_parity_across_workloads(name, builder, algorithms):
    query = builder()
    for algorithm in algorithms:
        materialized = join(query, algorithm=algorithm)
        streamed = sorted(iter_join(query, algorithm=algorithm))
        assert streamed == sorted(materialized.tuples), (
            f"{algorithm} disagrees with itself on {name}"
        )


@pytest.mark.parametrize("algorithm", ALL_ALGORITHMS)
def test_streaming_parity_auto_vs_fixed(algorithm):
    query = triangle_query()
    assert sorted(iter_join(query, algorithm=algorithm)) == sorted(
        join(query).tuples
    )


def test_rows_follow_query_attribute_order():
    query = generators.random_instance(queries.triangle(), 30, 5, seed=9)
    expected = join(query)
    assert expected.attributes == query.attributes
    for algorithm in ALL_ALGORITHMS:
        rows = set(iter_join(query, algorithm=algorithm))
        assert rows == set(expected.tuples)


def test_single_relation_streams():
    q = single_relation_query()
    assert sorted(iter_join(q)) == sorted(q.relation("R").tuples)


def test_empty_input_streams_nothing():
    q = JoinQuery(
        [
            Relation("R", ("A", "B"), []),
            Relation("S", ("B", "C"), [(1, 2)]),
        ]
    )
    for algorithm in ("nprr", "generic", "leapfrog", "arity2"):
        assert list(iter_join(q, algorithm=algorithm)) == []


class TestLaziness:
    def test_iter_join_returns_iterator(self):
        rows = iter_join(triangle_query(), algorithm="generic")
        assert iter(rows) is rows
        first = next(rows)
        assert isinstance(first, tuple)
        rows.close()

    @pytest.mark.parametrize("algorithm", ["generic", "leapfrog", "nprr"])
    def test_early_stop_is_safe(self, algorithm):
        query = generators.random_instance(queries.triangle(), 50, 5, seed=11)
        rows = iter_join(query, algorithm=algorithm)
        taken = [row for _, row in zip(range(2), rows)]
        rows.close()
        full = sorted(join(query, algorithm=algorithm).tuples)
        assert len(full) >= 2
        for row in taken:
            assert row in set(full)

    def test_leapfrog_reruns_after_abandoned_stream(self):
        # Abandoning a stream mid-way must not corrupt executor state.
        query = generators.random_instance(queries.triangle(), 50, 5, seed=12)
        executor = LeapfrogTriejoin(query)
        stream = executor.iter_join()
        next(stream)
        stream.close()
        assert sorted(executor.iter_join()) == sorted(
            executor.execute().tuples
        )


class TestSharedIndexCache:
    def test_leapfrog_uses_database_cache(self):
        query = triangle_query()
        db = Database(list(query.relations.values()))
        LeapfrogTriejoin(query, database=db).execute()
        assert db.cached_index_count("sorted") == 3
        LeapfrogTriejoin(query, database=db).execute()
        assert db.cached_index_count("sorted") == 3  # no rebuild

    def test_leapfrog_second_run_reuses_same_objects(self):
        query = triangle_query()
        db = Database(list(query.relations.values()))
        first = LeapfrogTriejoin(query, database=db)
        second = LeapfrogTriejoin(query, database=db)
        assert all(
            a is b for a, b in zip(first._indexes, second._indexes)
        )

    def test_generic_sorted_backend_shares_leapfrog_cache(self):
        query = triangle_query()
        db = Database(list(query.relations.values()))
        LeapfrogTriejoin(query, database=db).execute()
        GenericJoin(query, database=db, backend="sorted").execute()
        # Same (sorted, relation, order) keys: still only three indexes.
        assert db.cached_index_count("sorted") == 3

    def test_nprr_and_generic_share_trie_cache_keys(self):
        query = triangle_query()
        db = Database(list(query.relations.values()))
        NPRRJoin(query, database=db).execute()
        count = db.cached_trie_count()
        NPRRJoin(query, database=db).execute()
        assert db.cached_trie_count() == count

    def test_api_join_accepts_database(self):
        query = triangle_query()
        db = Database(list(query.relations.values()))
        first = join(query, algorithm="leapfrog", database=db)
        cached = db.cached_index_count("sorted")
        assert cached == 3
        second = join(query, algorithm="leapfrog", database=db)
        assert db.cached_index_count("sorted") == cached
        assert first.equivalent(second)
