"""Backend parity: all index implementations honor the same protocol."""

import random

import pytest

from repro.engine.backends import (
    INDEX_BACKENDS,
    CompactArrayIndex,
    IndexBackend,
    backend_kinds,
    build_index,
    validate_backend,
)
from repro.errors import DatabaseError, SchemaError
from repro.relations.database import Database
from repro.relations.relation import Relation
from repro.relations.sorted_index import SortedArrayIndex
from repro.relations.trie import TrieIndex
from repro.workloads import generators


def _random_relation(seed: int, arity: int = 3, size: int = 40) -> Relation:
    rng = random.Random(seed)
    attrs = tuple(f"A{i}" for i in range(arity))
    return generators.random_relation("R", attrs, size, 5, rng)


@pytest.fixture(params=range(4))
def relation(request):
    return _random_relation(request.param)


class TestProtocol:
    def test_registry(self):
        assert set(backend_kinds()) == {"trie", "sorted", "compact"}
        assert INDEX_BACKENDS["trie"] is TrieIndex
        assert INDEX_BACKENDS["sorted"] is SortedArrayIndex
        assert INDEX_BACKENDS["compact"] is CompactArrayIndex

    @pytest.mark.parametrize("kind", ["trie", "sorted", "compact"])
    def test_instances_satisfy_protocol(self, kind):
        rel = Relation("R", ("A", "B"), [(1, 2)])
        index = build_index(rel, ("A", "B"), kind)
        assert isinstance(index, IndexBackend)
        assert index.kind == kind

    def test_unknown_backend_rejected(self):
        rel = Relation("R", ("A",), [(1,)])
        with pytest.raises(DatabaseError):
            build_index(rel, ("A",), "quantum")
        with pytest.raises(DatabaseError):
            validate_backend("quantum")

    @pytest.mark.parametrize("kind", ["trie", "sorted", "compact"])
    def test_bad_order_rejected(self, kind):
        rel = Relation("R", ("A", "B"), [(1, 2)])
        with pytest.raises(SchemaError):
            build_index(rel, ("A",), kind)
        with pytest.raises(SchemaError):
            build_index(rel, ("A", "Z"), kind)


class TestParity:
    """The sorted backend answers exactly like the hash trie."""

    def test_len(self, relation):
        trie = TrieIndex(relation, relation.attributes)
        flat = SortedArrayIndex(relation, relation.attributes)
        assert len(trie) == len(flat) == len(relation)

    def test_walk_and_counts(self, relation):
        order = relation.attributes
        trie = TrieIndex(relation, order)
        flat = SortedArrayIndex(relation, order)
        arity = len(order)
        prefixes = {row[:d] for row in relation.tuples for d in range(arity)}
        prefixes |= {(99, 99)[:d] for d in range(1, 3)}  # misses
        for prefix in prefixes:
            t_node = trie.walk(prefix)
            f_node = flat.walk(prefix)
            assert (t_node is None) == (f_node is None)
            for depth in range(arity - len(prefix) + 1):
                assert trie.count(t_node, depth) == flat.count(f_node, depth)

    def test_paths(self, relation):
        order = relation.attributes
        trie = TrieIndex(relation, order)
        flat = SortedArrayIndex(relation, order)
        arity = len(order)
        for depth in range(arity + 1):
            assert sorted(trie.paths(trie.root, depth)) == sorted(
                flat.paths(flat.root, depth)
            )

    def test_items_child_fanout(self, relation):
        order = relation.attributes
        trie = TrieIndex(relation, order)
        flat = SortedArrayIndex(relation, order)
        t_items = dict(trie.items(trie.root))
        f_items = dict(flat.items(flat.root))
        assert sorted(t_items) == sorted(f_items)
        assert trie.fanout(trie.root) == flat.fanout(flat.root)
        for value in t_items:
            t_child = trie.child(trie.root, value)
            f_child = flat.child(flat.root, value)
            assert trie.count(t_child, 1) == flat.count(f_child, 1)
        assert flat.child(flat.root, -1) is None  # value below every key
        assert trie.child(None, 1) is None
        assert flat.child(None, 1) is None

    def test_sorted_paths_are_sorted(self, relation):
        flat = SortedArrayIndex(relation, relation.attributes)
        full = list(flat.paths(flat.root, len(relation.attributes)))
        assert full == sorted(full)

    def test_to_relation_roundtrip(self, relation):
        flat = SortedArrayIndex(relation, relation.attributes)
        assert flat.to_relation().equivalent(relation)


class TestCursorSharing:
    def test_cursor_shares_sorted_array(self):
        rel = _random_relation(7)
        index = SortedArrayIndex(rel, rel.attributes)
        first = index.cursor()
        second = index.cursor()
        assert first.rows is index.rows
        assert second.rows is index.rows
        assert first is not second

    def test_cursor_state_is_private(self):
        rel = Relation("R", ("A", "B"), [(1, 1), (2, 2)])
        index = SortedArrayIndex(rel, ("A", "B"))
        a, b = index.cursor(), index.cursor()
        a.open()
        a.next()
        b.open()
        assert b.key() == 1
        assert a.key() == 2


class TestDatabaseIndexCache:
    @pytest.fixture
    def db(self):
        return Database(
            [
                Relation("R", ("A", "B"), [(1, 2), (3, 4)]),
                Relation("S", ("B", "C"), [(2, 5)]),
            ]
        )

    def test_kinds_cached_separately(self, db):
        trie = db.index("R", ("A", "B"), "trie")
        flat = db.index("R", ("A", "B"), "sorted")
        assert isinstance(trie, TrieIndex)
        assert isinstance(flat, SortedArrayIndex)
        assert db.cached_index_count() == 2
        assert db.cached_trie_count() == 1
        assert db.cached_index_count("sorted") == 1

    def test_cache_hit_per_kind(self, db):
        assert db.sorted_index("R", ("A", "B")) is db.index(
            "R", ("A", "B"), "sorted"
        )
        assert db.trie("R", ("A", "B")) is db.index("R", ("A", "B"), "trie")

    def test_replace_invalidates_all_kinds(self, db):
        db.trie("R", ("A", "B"))
        db.sorted_index("R", ("A", "B"))
        db.add(Relation("R", ("A", "B"), [(9, 9)]), replace=True)
        assert db.cached_index_count() == 0
        assert len(db.sorted_index("R", ("A", "B"))) == 1

    def test_compact_cached_and_measured(self, db):
        index = db.compact_index("R", ("A", "B"))
        assert isinstance(index, CompactArrayIndex)
        assert db.index("R", ("A", "B"), "compact") is index
        info = db.cache_info()
        assert info.bytes_by_backend["compact"] == index.nbytes() > 0
        assert info.bytes_total == sum(info.bytes_by_backend.values())

    def test_unknown_kind_rejected(self, db):
        with pytest.raises(DatabaseError):
            db.index("R", ("A", "B"), "quantum")
