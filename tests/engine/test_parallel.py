"""Tests for the parallel execution layer: batching, sharding, async."""

import asyncio
import pickle
import threading
import time

import pytest

from repro.api import aiter_join, iter_join, join_batched, shard_join
from repro.core.generic_join import GenericJoin
from repro.core.query import JoinQuery
from repro.engine import parallel
from repro.engine.parallel import (
    ShardSlice,
    batches,
    iter_shard_rows,
    plan_shards,
    shard_query,
)
from repro.engine.planner import plan_join
from repro.errors import PlanError
from repro.hypergraph.covers import FractionalCover
from repro.relations.relation import Relation
from repro.workloads import generators, queries


@pytest.fixture
def triangle_query():
    return JoinQuery(
        [
            Relation("R", ("A", "B"), [(0, 1), (1, 2), (2, 0)]),
            Relation("S", ("B", "C"), [(1, 5), (2, 6), (0, 7)]),
            Relation("T", ("A", "C"), [(0, 5), (1, 6), (2, 7)]),
        ]
    )


def _workload_queries():
    """The parity workloads: every generator family, kept small."""
    return [
        generators.random_instance(
            queries.triangle(), 400, 20, seed=3, skew=1.2
        ),
        generators.random_instance(queries.clique_query(4), 150, 8, seed=4),
        generators.random_instance(queries.lw_query(3), 120, 6, seed=5),
        generators.random_instance(
            generators.random_hypergraph(4, 3, 3, seed=6), 80, 5, seed=6
        ),
    ]


class TestBatches:
    def test_sizes_and_remainder(self):
        out = list(batches(iter([(i,) for i in range(10)]), 4))
        assert [len(b) for b in out] == [4, 4, 2]
        assert [row for b in out for row in b] == [(i,) for i in range(10)]

    def test_exact_multiple_has_no_empty_batch(self):
        out = list(batches(iter([(i,) for i in range(8)]), 4))
        assert [len(b) for b in out] == [4, 4]

    def test_empty_source(self):
        assert list(batches(iter([]), 3)) == []

    def test_accepts_executor(self, triangle_query):
        executor = GenericJoin(triangle_query)
        rows = {r for b in batches(executor, 2) for r in b}
        assert rows == set(GenericJoin(triangle_query).iter_join())

    def test_lazy_consumption(self):
        seen = []

        def source():
            for i in range(100):
                seen.append(i)
                yield (i,)

        stream = batches(source(), 5)
        next(stream)
        assert len(seen) <= 10  # one batch ahead at most

    @pytest.mark.parametrize("bad", [0, -1, "x", 2.5, True])
    def test_invalid_size_raises_eagerly(self, bad):
        with pytest.raises(PlanError):
            batches(iter([]), bad)


class TestPlanShards:
    def test_partitions_candidate_values(self, triangle_query):
        specs = plan_shards(triangle_query, 2, "A")
        union = set().union(*(s.values for s in specs))
        assert union == {0, 1, 2}
        assert sum(len(s.values) for s in specs) == 3  # disjoint

    def test_drops_values_outside_intersection(self):
        q = JoinQuery(
            [
                Relation("R", ("A", "B"), [(0, 1), (9, 1)]),
                Relation("T", ("A", "C"), [(0, 2), (7, 2)]),
            ]
        )
        specs = plan_shards(q, 4, "A")
        assert set().union(*(s.values for s in specs)) == {0}

    def test_more_shards_than_values(self, triangle_query):
        specs = plan_shards(triangle_query, 16, "A")
        assert 1 <= len(specs) <= 3
        assert all(s.values for s in specs)

    def test_deterministic(self, triangle_query):
        assert plan_shards(triangle_query, 3, "A") == plan_shards(
            triangle_query, 3, "A"
        )

    def test_skew_balance(self):
        # One hub value with weight ~N, many light values: LPT must not
        # stack light values onto the hub's shard.
        rows = [(0, i) for i in range(50)] + [(j, 0) for j in range(1, 26)]
        q = JoinQuery(
            [
                Relation("R", ("A", "B"), rows),
                Relation("T", ("A", "C"), rows),
            ]
        )
        specs = plan_shards(q, 2, "A")
        hub = next(s for s in specs if 0 in s.values)
        assert hub.values == {0}

    def test_unknown_attribute(self, triangle_query):
        with pytest.raises(PlanError):
            plan_shards(triangle_query, 2, "Z")

    @pytest.mark.parametrize("bad", [0, -2, "4", True])
    def test_invalid_count(self, triangle_query, bad):
        with pytest.raises(PlanError):
            plan_shards(triangle_query, bad, "A")


class TestShardQuery:
    def test_restricts_only_participants(self, triangle_query):
        spec = ShardSlice("A", frozenset({0}), 1)
        restricted = shard_query(triangle_query, spec)
        assert set(restricted.relation("R").tuples) == {(0, 1)}
        assert set(restricted.relation("T").tuples) == {(0, 5)}
        # S does not contain A: shared untouched.
        assert restricted.relation("S") is triangle_query.relation("S")

    def test_same_hypergraph(self, triangle_query):
        spec = ShardSlice("A", frozenset({0, 1}), 1)
        restricted = shard_query(triangle_query, spec)
        assert restricted.attributes == triangle_query.attributes
        assert restricted.edge_ids == triangle_query.edge_ids


class TestShardJoinParity:
    """Sharded row sets must equal serial iter_join on every generator."""

    @pytest.mark.parametrize("mode", ["serial", "thread", "process"])
    def test_modes_match_serial(self, mode):
        for query in _workload_queries():
            serial = set(iter_join(query, algorithm="generic"))
            sharded = set(
                shard_join(query, shards=3, algorithm="generic", mode=mode)
            )
            assert sharded == serial

    @pytest.mark.parametrize("shards", [1, 2, 4, 8])
    def test_shard_counts_match_serial(self, shards):
        query = _workload_queries()[0]
        serial = set(iter_join(query))
        assert set(shard_join(query, shards=shards, mode="serial")) == serial

    @pytest.mark.parametrize(
        "algorithm", ["nprr", "lw", "generic", "leapfrog", "arity2"]
    )
    def test_every_algorithm(self, triangle_query, algorithm):
        serial = set(iter_join(triangle_query, algorithm=algorithm))
        sharded = set(
            shard_join(
                triangle_query, shards=2, algorithm=algorithm, mode="serial"
            )
        )
        assert sharded == serial

    def test_with_cover(self, triangle_query):
        from fractions import Fraction

        cover = FractionalCover.uniform(
            triangle_query.hypergraph, Fraction(1, 2)
        )
        serial = set(iter_join(triangle_query, cover=cover))
        assert (
            set(
                shard_join(
                    triangle_query, shards=2, cover=cover, mode="serial"
                )
            )
            == serial
        )

    def test_empty_result(self):
        q = JoinQuery(
            [
                Relation("R", ("A", "B"), [(0, 1)]),
                Relation("S", ("B", "C"), [(9, 2)]),
            ]
        )
        assert list(shard_join(q, shards=4, mode="serial")) == []

    def test_single_relation(self):
        q = JoinQuery([Relation("R", ("A", "B"), [(0, 1), (1, 2)])])
        assert set(shard_join(q, shards=2, mode="serial")) == {(0, 1), (1, 2)}

    def test_auto_falls_back_to_thread_for_unpicklable(self):
        class Local:  # unpicklable: defined inside a function
            pass

        a, b = Local(), Local()
        q = JoinQuery(
            [
                Relation("R", ("A", "B"), [(a, 1), (b, 2)]),
                Relation("T", ("A", "C"), [(a, 5), (b, 6)]),
            ]
        )
        with pytest.raises(Exception):
            pickle.dumps(q)
        assert set(shard_join(q, shards=2, mode="auto")) == set(iter_join(q))

    def test_auto_mode_with_mixed_picklability(self):
        # Regression: one heavy *picklable* value monopolizes the first
        # shard, so sampling only tasks[0] would choose the process pool
        # and crash at first next() when a later shard's unpicklable
        # value hits the pickler.  Auto mode must inspect every task.
        class Local:
            pass

        a, b = Local(), Local()
        rows = [(0, i) for i in range(30)] + [(a, 0), (b, 1)]
        q = JoinQuery(
            [
                Relation("R", ("A", "B"), rows),
                Relation("T", ("A", "C"), rows),
            ]
        )
        assert set(shard_join(q, shards=2, mode="auto")) == set(iter_join(q))

    def test_workers_cap(self):
        query = _workload_queries()[0]
        serial = set(iter_join(query, algorithm="generic"))
        got = set(
            shard_join(
                query,
                shards=4,
                algorithm="generic",
                mode="thread",
                workers=2,
            )
        )
        assert got == serial

    def test_thread_mode_propagates_worker_errors(self, triangle_query, monkeypatch):
        def boom(task):
            raise RuntimeError("shard exploded")

        monkeypatch.setattr(parallel, "_shard_rows", boom)
        with pytest.raises(RuntimeError, match="shard exploded"):
            list(
                shard_join(triangle_query, shards=2, mode="thread")
            )

    def test_explicit_process_mode_rejects_unpicklable_eagerly(self):
        class Local:
            pass

        a, b = Local(), Local()
        q = JoinQuery(
            [
                Relation("R", ("A", "B"), [(a, 1), (b, 2)]),
                Relation("T", ("A", "C"), [(a, 5), (b, 6)]),
            ]
        )
        # auto falls back to threads; an explicit process request must
        # surface the pickling failure at the call site instead.
        with pytest.raises(Exception):
            shard_join(q, shards=2, mode="process")

    def test_thread_mode_workers_retire_on_early_close(self):
        query = generators.random_instance(
            queries.triangle(), 800, 20, seed=8, skew=1.2
        )
        before = threading.active_count()
        stream = shard_join(query, shards=4, mode="thread")
        next(stream)
        stream.close()
        deadline = time.monotonic() + 5.0
        while (
            threading.active_count() > before
            and time.monotonic() < deadline
        ):
            time.sleep(0.02)
        assert threading.active_count() <= before

    def test_eager_validation(self, triangle_query):
        with pytest.raises(PlanError):
            shard_join(triangle_query, shards=0)
        with pytest.raises(PlanError):
            shard_join(triangle_query, shards=2, mode="warp")
        with pytest.raises(PlanError):
            shard_join(triangle_query, shards=2, workers=0)
        with pytest.raises(PlanError):
            shard_join(
                triangle_query, shards=2, algorithm="nprr", backend="sorted"
            )


class TestCompactBackendParallel:
    """``backend="compact"`` matches default rows in every exec mode."""

    @pytest.mark.parametrize("algorithm", ["generic", "leapfrog"])
    @pytest.mark.parametrize("mode", ["serial", "thread", "process"])
    def test_sharded_modes(self, triangle_query, algorithm, mode):
        expected = set(iter_join(triangle_query, algorithm=algorithm))
        sharded = set(
            shard_join(
                triangle_query,
                shards=2,
                algorithm=algorithm,
                backend="compact",
                mode=mode,
            )
        )
        assert sharded == expected

    @pytest.mark.parametrize("algorithm", ["generic", "leapfrog"])
    def test_batched(self, triangle_query, algorithm):
        flat = {
            row
            for batch in join_batched(
                triangle_query,
                algorithm=algorithm,
                backend="compact",
                batch_size=2,
            )
            for row in batch
        }
        assert flat == set(iter_join(triangle_query, algorithm=algorithm))

    @pytest.mark.parametrize("algorithm", ["generic", "leapfrog"])
    def test_async(self, triangle_query, algorithm):
        async def collect():
            stream = aiter_join(
                triangle_query, algorithm=algorithm, backend="compact"
            )
            return {row async for row in stream}

        assert asyncio.run(collect()) == set(
            iter_join(triangle_query, algorithm=algorithm)
        )

    def test_workload_parity(self):
        for query in _workload_queries():
            expected = set(iter_join(query, algorithm="generic"))
            assert expected == set(
                iter_join(query, algorithm="generic", backend="compact")
            )
            assert expected == set(
                shard_join(
                    query,
                    shards=3,
                    algorithm="leapfrog",
                    backend="compact",
                    mode="serial",
                )
            )


class TestIterShardRows:
    def test_streams_one_shard(self, triangle_query):
        specs = plan_shards(triangle_query, 3, "A")
        rows = set()
        for spec in specs:
            rows |= set(iter_shard_rows(triangle_query, spec, "generic"))
        assert rows == set(iter_join(triangle_query, algorithm="generic"))


class TestJoinBatched:
    def test_flattens_to_iter_join(self, triangle_query):
        flat = [
            row
            for batch in join_batched(triangle_query, batch_size=2)
            for row in batch
        ]
        assert set(flat) == set(iter_join(triangle_query))
        assert len(flat) == len(set(flat))

    def test_batch_size_auto(self, triangle_query):
        out = list(join_batched(triangle_query, batch_size="auto"))
        assert {row for b in out for row in b} == set(
            iter_join(triangle_query)
        )

    def test_invalid_batch_size_raises_eagerly(self, triangle_query):
        with pytest.raises(PlanError):
            join_batched(triangle_query, batch_size=0)


class TestAiterJoin:
    def test_parity(self, triangle_query):
        async def collect():
            return {row async for row in aiter_join(triangle_query)}

        assert asyncio.run(collect()) == set(iter_join(triangle_query))

    def test_sharded(self, triangle_query):
        async def collect():
            stream = aiter_join(triangle_query, shards=2, batch_size=2)
            return {row async for row in stream}

        assert asyncio.run(collect()) == set(iter_join(triangle_query))

    def test_eager_validation_outside_event_loop(self, triangle_query):
        # Misconfiguration must raise in the synchronous call, not at
        # first anext() inside a running loop.
        with pytest.raises(PlanError):
            aiter_join(triangle_query, algorithm="leapfrog", backend="trie")


class TestPlannerParallelFields:
    def test_defaults_are_serial(self, triangle_query):
        plan = plan_join(triangle_query, "generic")
        assert plan.shards == 1
        assert plan.batch_size is None

    def test_fixed_by_caller(self, triangle_query):
        plan = plan_join(triangle_query, "generic", shards=4, batch_size=500)
        assert (plan.shards, plan.batch_size) == (4, 500)
        assert any("shard count fixed" in r for r in plan.reasons)

    def test_auto_small_input_stays_serial(self, triangle_query):
        plan = plan_join(triangle_query, "generic", shards="auto")
        assert plan.shards == 1

    def test_auto_large_input_shards(self):
        query = generators.random_instance(queries.triangle(), 2500, 500, seed=9)
        assert query.total_input_size() >= 4096
        plan = plan_join(query, "generic", shards="auto")
        assert 1 <= plan.shards <= 8

    def test_auto_batch_from_agm(self, triangle_query):
        plan = plan_join(triangle_query, "generic", batch_size="auto")
        assert 64 <= plan.batch_size <= 4096

    def test_describe_mentions_parallel_fields(self, triangle_query):
        text = plan_join(
            triangle_query, "generic", shards=2, batch_size=10
        ).describe()
        assert "shards: 2" in text
        assert "batch size: 10" in text

    def test_iter_batches(self, triangle_query):
        plan = plan_join(triangle_query, "generic", batch_size=2)
        out = list(plan.iter_batches())
        assert [len(b) for b in out] == [2, 1]

    def test_iter_batches_rejects_zero_like_every_other_layer(
        self, triangle_query
    ):
        plan = plan_join(triangle_query, "generic")
        with pytest.raises(PlanError):
            plan.iter_batches(batch_size=0)

    @pytest.mark.parametrize("bad", [0, -1, 1.5, True])
    def test_invalid_shards(self, triangle_query, bad):
        with pytest.raises(PlanError):
            plan_join(triangle_query, "generic", shards=bad)

    @pytest.mark.parametrize("bad", [0, -1, 1.5, True])
    def test_invalid_batch_size(self, triangle_query, bad):
        with pytest.raises(PlanError):
            plan_join(triangle_query, "generic", batch_size=bad)


class TestPickling:
    """Process-mode sharding ships queries to workers via pickle."""

    def test_relation_roundtrip(self):
        rel = Relation("R", ("A", "B"), [(1, 2), (3, 4)])
        again = pickle.loads(pickle.dumps(rel))
        assert again == rel
        assert again.name == "R"

    def test_join_query_roundtrip(self, triangle_query):
        again = pickle.loads(pickle.dumps(triangle_query))
        assert again.edge_ids == triangle_query.edge_ids
        assert again.relations == triangle_query.relations

    def test_cover_roundtrip(self, triangle_query):
        from fractions import Fraction

        cover = FractionalCover.uniform(
            triangle_query.hypergraph, Fraction(1, 2)
        )
        assert pickle.loads(pickle.dumps(cover)) == cover
