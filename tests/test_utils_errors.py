"""Tests for the utility helpers and the exception hierarchy."""

import time

import pytest

from repro import errors
from repro.utils.tables import format_cell, format_table, print_table
from repro.utils.timing import Stopwatch, best_of, timed


class TestErrorsHierarchy:
    @pytest.mark.parametrize(
        "exc",
        [
            errors.SchemaError,
            errors.DatabaseError,
            errors.QueryError,
            errors.CoverError,
            errors.LinearProgramError,
            errors.FunctionalDependencyError,
        ],
    )
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, errors.ReproError)

    def test_lp_subtypes(self):
        assert issubclass(
            errors.InfeasibleProgramError, errors.LinearProgramError
        )
        assert issubclass(
            errors.UnboundedProgramError, errors.LinearProgramError
        )

    def test_catchable_as_base(self):
        with pytest.raises(errors.ReproError):
            raise errors.QueryError("boom")


class TestTiming:
    def test_timed_returns_result(self):
        measurement = timed(lambda: 42)
        assert measurement.result == 42
        assert measurement.seconds >= 0

    def test_best_of_keeps_minimum(self):
        calls = []

        def fn():
            calls.append(None)
            time.sleep(0.001)
            return len(calls)

        measurement = best_of(fn, repeats=3)
        assert len(calls) == 3
        assert measurement.seconds >= 0.001

    def test_best_of_at_least_one(self):
        measurement = best_of(lambda: "x", repeats=0)
        assert measurement.result == "x"

    def test_stopwatch(self):
        with Stopwatch() as sw:
            time.sleep(0.001)
        assert sw.seconds >= 0.001


class TestTables:
    def test_format_cell_float(self):
        assert format_cell(3.14159) == "3.142"
        assert format_cell(0.0) == "0"
        assert format_cell(1e9) == "1.000e+09"
        assert format_cell(1e-6) == "1.000e-06"

    def test_format_cell_other(self):
        assert format_cell(12) == "12"
        assert format_cell(True) == "True"
        assert format_cell("text") == "text"

    def test_format_table_alignment(self):
        text = format_table(
            ("name", "value"), [("a", 1), ("long-name", 100)], title="T"
        )
        lines = text.splitlines()
        assert lines[0] == "T"
        assert all(len(line) == len(lines[1]) for line in lines[1:])
        assert "long-name" in text

    def test_format_table_empty_rows(self):
        text = format_table(("a",), [])
        assert "a" in text

    def test_print_table(self, capsys):
        print_table(("x",), [(1,)], title="demo")
        out = capsys.readouterr().out
        assert "demo" in out and "1" in out
