"""Surface tests: aggregation and sampling across every entry layer.

The tentpole threads one mechanism (fold + AGM sampling) through the
query builder, prepared queries, the functional api, the CLI, the
planner's explain output, and the parallel driver — each layer gets a
direct test here so a wiring regression is caught at the layer that
broke, not three layers up.
"""

from __future__ import annotations

import csv
import random

import pytest

from repro.aggregate.fold import Folder, fold_rows
from repro.aggregate.specs import Count, Sum
from repro.api import count_join, sample_join
from repro.core.query import JoinQuery
from repro.engine.parallel import shard_fold
from repro.engine.planner import plan_join
from repro.errors import QueryError
from repro.query.builder import Q
from repro.query.context import ExecutionContext
from repro.relations.relation import Relation
from repro.__main__ import main as cli_main
from tests.helpers import oracle_count, triangle_query


def _relations(seed=13, n=50, domain=8):
    rng = random.Random(seed)

    def rows():
        return sorted(
            {
                (rng.randrange(domain), rng.randrange(domain))
                for _ in range(n)
            }
        )

    return (
        Relation("R", ("A", "B"), rows()),
        Relation("S", ("B", "C"), rows()),
        Relation("T", ("A", "C"), rows()),
    )


# -- functional api ----------------------------------------------------------


def test_count_join_matches_enumeration():
    relations = _relations()
    rows = list(Q(*relations).stream())
    assert count_join(list(relations)) == oracle_count(rows)
    assert count_join(list(relations), algorithm="generic") == len(rows)
    assert count_join(list(relations), shards=3, mode="serial") == len(rows)


def test_sample_join_is_deterministic_and_valid():
    relations = _relations()
    rows = set(Q(*relations).stream())
    sample = sample_join(list(relations), 4, seed=21)
    assert sample == sample_join(list(relations), 4, seed=21)
    assert len(sample) == 4 and set(sample) <= rows


def test_count_join_rejects_unknown_algorithm():
    with pytest.raises(QueryError):
        count_join(list(_relations()), algorithm="nope")


# -- planner ----------------------------------------------------------------


def test_plan_records_aggregate_mode_in_describe():
    query = triangle_query()
    plan = plan_join(query, "generic")
    assert plan.aggregate is None
    assert "aggregate:" not in plan.describe()
    from dataclasses import replace

    marked = replace(plan, aggregate="count")
    assert marked.aggregate == "count"
    assert "aggregate: count" in marked.describe()


# -- fold internals exposed at the executor layer ----------------------------


def test_executor_fold_matches_stream_fold():
    query = JoinQuery(list(_relations()))
    for algorithm in ("generic", "leapfrog"):
        plan = plan_join(query, algorithm)
        executor = plan.executor()
        folder = Folder(Count(), plan.attribute_order)
        executor.fold(folder)
        assert folder.result() == len(list(plan.iter_rows()))


def test_folder_rejects_unknown_needs():
    with pytest.raises(QueryError):
        Folder(Sum("Z"), ("A", "B", "C"))


def test_fold_rows_is_the_universal_fallback():
    rows = [(1, 2), (1, 3), (2, 2)]
    assert fold_rows(iter(rows), Count(), ("A", "B")) == 3
    assert fold_rows(iter(rows), Sum("B"), ("A", "B")) == 7


# -- parallel driver ---------------------------------------------------------


def test_shard_fold_merges_partial_states():
    query = JoinQuery(list(_relations()))
    expected = len(list(plan_join(query, "generic").iter_rows()))
    for mode in ("serial", "thread", "process"):
        context = ExecutionContext(shards=3, mode=mode)
        assert shard_fold(query, Count(), context=context) == expected


def test_shard_fold_validates_eagerly():
    query = JoinQuery(list(_relations()))
    with pytest.raises(Exception):
        shard_fold(query, Count(), mode="bogus")
    with pytest.raises(Exception):
        shard_fold(query, Count(), workers=0)


# -- prepared queries --------------------------------------------------------


def test_prepared_aggregates_skip_replanning():
    relations = _relations()
    prepared = Q(*relations).prepare()
    rows = list(prepared.stream())
    assert prepared.count() == len(rows)
    assert prepared.sum("B") == sum(r[1] for r in rows)
    assert prepared.group_by("A").count() == Q(*relations).group_by(
        "A"
    ).count()
    sample = prepared.sample(3, seed=8)
    assert sample == Q(*relations).sample(3, seed=8)


def test_prepared_bind_rebinds_aggregates():
    relations = _relations()
    prepared = Q(*relations).where(A=0).prepare()
    for value in (0, 3, 5):
        bound = prepared.bind(A=value)
        assert bound.count() == Q(*relations).where(A=value).count()
        # The rebound prepared query keeps the frozen plan.
        assert bound.plan.algorithm == prepared.plan.algorithm


# -- grouped query object ----------------------------------------------------


def test_grouped_query_validates_and_reports():
    builder = Q(*_relations())
    with pytest.raises(QueryError):
        builder.group_by()
    with pytest.raises(QueryError):
        builder.group_by("Z")
    grouped = builder.group_by("A")
    assert grouped.keys == ("A",)
    with pytest.raises(QueryError):
        grouped.agg()
    with pytest.raises(QueryError):
        grouped.agg(bad="median")
    assert "group_by(A)" in repr(grouped)


def test_aggregate_rejects_attributes_outside_output():
    builder = Q(*_relations()).select("A")
    with pytest.raises(QueryError):
        builder.sum("B")


# -- CLI ---------------------------------------------------------------------


@pytest.fixture()
def csv_files(tmp_path):
    relations = _relations()
    paths = []
    for relation in relations:
        path = tmp_path / f"{relation.name}.csv"
        with open(path, "w", newline="") as sink:
            writer = csv.writer(sink)
            writer.writerow(relation.attributes)
            writer.writerows(sorted(relation.tuples))
        paths.append(str(path))
    return paths, list(relations)


def test_cli_join_count(csv_files, capsys):
    paths, relations = csv_files
    assert cli_main(["join", *paths, "--count"]) == 0
    out = capsys.readouterr().out.strip()
    assert int(out) == Q(*relations).count()


def test_cli_join_count_sharded(csv_files, capsys):
    paths, relations = csv_files
    assert cli_main(["join", *paths, "--count", "--shards", "2"]) == 0
    assert int(capsys.readouterr().out.strip()) == Q(*relations).count()


def test_cli_join_sample_deterministic(csv_files, capsys):
    paths, relations = csv_files
    assert cli_main(["join", *paths, "--sample", "3", "--seed", "7"]) == 0
    first = capsys.readouterr().out
    assert cli_main(["join", *paths, "--sample", "3", "--seed", "7"]) == 0
    assert capsys.readouterr().out == first
    lines = first.strip().splitlines()
    assert lines[0] == "A,B,C"
    rows = set(Q(*relations).stream())
    parsed = {
        tuple(int(v) for v in line.split(",")) for line in lines[1:]
    }
    assert len(parsed) == 3 and parsed <= rows


def test_cli_count_and_sample_flags_conflict(csv_files, capsys):
    paths, _relations = csv_files
    assert cli_main(["join", *paths, "--count", "--sample", "2"]) == 2
    assert "mutually exclusive" in capsys.readouterr().err
    assert cli_main(["join", *paths, "--count", "--stream"]) == 2
    assert "--stream" in capsys.readouterr().err


def test_cli_count_composes_with_where(csv_files, capsys):
    paths, relations = csv_files
    assert cli_main(["join", *paths, "--where", "A=1", "--count"]) == 0
    out = capsys.readouterr().out.strip()
    assert int(out) == Q(*relations).where(A=1).count()
