"""Aggregate parity: every algorithm, every execution style, one oracle.

Each test materializes the query's rows once via the ordinary streaming
path and checks that ``count()`` / ``sum()`` / ``min()`` / ``max()`` /
``group_by().agg()`` — which never materialize anything — agree exactly
with the brute-force oracle over those rows.  Configurations cover all
five algorithms, the three index backends, and serial / sharded /
batched / async execution, so a fold or pruning bug in any layer shows
up as a concrete count mismatch.
"""

from __future__ import annotations

import random

import pytest

from repro.query.builder import Q, drain_async
from repro.relations.relation import Relation
from tests.helpers import (
    oracle_avg,
    oracle_count,
    oracle_count_distinct,
    oracle_group_by,
    oracle_max,
    oracle_min,
    oracle_sum,
)

ALGORITHMS = ("nprr", "lw", "generic", "leapfrog", "arity2")
BACKENDS = ("trie", "sorted", "compact")


def _random_rows(rng, arity, n, domain):
    return sorted(
        {tuple(rng.randrange(domain) for _ in range(arity)) for _ in range(n)}
    )


def _triangle(seed=29, n=60, domain=9):
    rng = random.Random(seed)
    return (
        Relation("R", ("A", "B"), _random_rows(rng, 2, n, domain)),
        Relation("S", ("B", "C"), _random_rows(rng, 2, n, domain)),
        Relation("T", ("A", "C"), _random_rows(rng, 2, n, domain)),
    )


def _path(seed=31, n=50, domain=8):
    # A path query has single-participant deep levels, so the fold's
    # factorized pruning actually fires (the triangle never prunes).
    rng = random.Random(seed)
    return (
        Relation("R", ("A", "B"), _random_rows(rng, 2, n, domain)),
        Relation("S", ("B", "C"), _random_rows(rng, 2, n, domain)),
        Relation("T", ("C", "D"), _random_rows(rng, 2, n, domain)),
    )


def _assert_aggregates_match(builder):
    rows = list(builder.stream())
    attrs = builder.output_attributes
    assert builder.count() == oracle_count(rows)
    assert builder.sum("B") == oracle_sum(rows, attrs, "B")
    assert builder.min("C") == oracle_min(rows, attrs, "C")
    assert builder.max("C") == oracle_max(rows, attrs, "C")
    assert builder.avg("B") == oracle_avg(rows, attrs, "B")
    assert builder.count_distinct("C") == oracle_count_distinct(
        rows, attrs, "C"
    )
    assert builder.group_by("A").agg(
        n="count",
        s=("sum", "C"),
        lo=("min", "B"),
        mean=("avg", "C"),
        uniq=("count_distinct", "B"),
    ) == oracle_group_by(
        rows,
        attrs,
        ("A",),
        n="count",
        s=("sum", "C"),
        lo=("min", "B"),
        mean=("avg", "C"),
        uniq=("count_distinct", "B"),
    )
    assert builder.group_by("A", "B").count() == {
        key: values["n"]
        for key, values in oracle_group_by(
            rows, attrs, ("A", "B"), n="count"
        ).items()
    }


@pytest.mark.parametrize("algorithm", ALGORITHMS)
@pytest.mark.parametrize("shape", ["triangle", "path"])
def test_aggregates_match_oracle_per_algorithm(algorithm, shape):
    relations = _triangle() if shape == "triangle" else _path()
    if algorithm == "lw" and shape == "path":
        pytest.skip("lw requires a Loomis-Whitney instance")
    _assert_aggregates_match(
        Q(*relations).using(algorithm=algorithm)
    )


@pytest.mark.parametrize("backend", BACKENDS)
def test_aggregates_match_oracle_per_backend(backend):
    for relations in (_triangle(), _path()):
        _assert_aggregates_match(Q(*relations).using(backend=backend))


@pytest.mark.parametrize("mode", ["serial", "thread", "process"])
def test_aggregates_match_oracle_sharded(mode):
    _assert_aggregates_match(
        Q(*_triangle()).using(shards=3, mode=mode)
    )


def test_aggregates_match_oracle_batched():
    # A batch_size context changes row delivery, never aggregate values.
    _assert_aggregates_match(Q(*_path()).using(batch_size=7))


def test_aggregates_agree_with_async_stream():
    builder = Q(*_triangle())
    rows = []

    async def drain():
        async for row in builder.astream(batch_size=16):
            rows.append(row)

    import asyncio

    asyncio.run(drain())
    assert builder.count() == oracle_count(rows)
    assert builder.sum("B") == oracle_sum(
        rows, builder.output_attributes, "B"
    )
    assert drain_async is not None  # imported for parity with the builder


@pytest.mark.parametrize("algorithm", ["generic", "leapfrog", "nprr"])
def test_aggregates_with_filters_and_bindings(algorithm):
    builder = (
        Q(*_triangle())
        .using(algorithm=algorithm)
        .where(A=4)
        .where_in("B", tuple(range(0, 9, 2)))
    )
    _assert_aggregates_match(builder)


def test_aggregates_over_projection():
    builder = Q(*_triangle()).select("A", "B")
    rows = list(builder.stream())
    attrs = builder.output_attributes
    assert builder.count() == oracle_count(rows)
    assert builder.sum("B") == oracle_sum(rows, attrs, "B")
    assert builder.group_by("A").count() == {
        key: values["n"]
        for key, values in oracle_group_by(
            rows, attrs, ("A",), n="count"
        ).items()
    }


def test_aggregates_on_empty_join():
    r = Relation("R", ("A", "B"), [(1, 2)])
    s = Relation("S", ("B", "C"), [(9, 9)])
    t = Relation("T", ("A", "C"), [(1, 9)])
    builder = Q(r, s, t)
    assert builder.count() == 0
    assert builder.sum("C") == 0
    assert builder.min("C") is None
    assert builder.max("C") is None
    assert builder.group_by("A").count() == {}


def test_aggregates_with_string_values():
    r = Relation("R", ("A", "B"), [("x", "p"), ("y", "p"), ("y", "q")])
    s = Relation("S", ("B", "C"), [("p", "u"), ("q", "v"), ("q", "w")])
    builder = Q(r, s)
    rows = list(builder.stream())
    attrs = builder.output_attributes
    assert builder.count() == oracle_count(rows)
    assert builder.min("C") == oracle_min(rows, attrs, "C")
    assert builder.max("C") == oracle_max(rows, attrs, "C")
    assert builder.group_by("A").count() == {
        key: values["n"]
        for key, values in oracle_group_by(
            rows, attrs, ("A",), n="count"
        ).items()
    }


def test_count_with_feedback_still_records_observations():
    # Aggregates under feedback deliberately run over the recorded row
    # stream (not the fold), so the feedback store keeps learning even
    # from aggregate-only workloads.  Telemetry recording is native to
    # "generic"/"leapfrog" only, so pin the algorithm.
    from repro.feedback.config import FeedbackConfig
    from repro.feedback.telemetry import feedback_scope
    from repro.stats.provider import StatsProvider

    provider = StatsProvider()
    builder = Q(*_triangle()).using(
        algorithm="generic", stats=provider, feedback=FeedbackConfig()
    )
    compiled = builder._compile()
    scope = feedback_scope(compiled.filters)
    assert not provider.observed_levels(compiled.residual, scope)
    rows = list(builder.stream())
    assert builder.count() == len(rows)
    observed = provider.observed_levels(compiled.residual, scope)
    assert observed, "aggregate runs under feedback must record telemetry"
