"""Unit tests for the aggregate spec protocol (repro.aggregate.specs)."""

from __future__ import annotations

import pickle

import pytest

from repro.aggregate.specs import (
    Avg,
    Count,
    CountDistinct,
    GroupBy,
    Max,
    Min,
    Sum,
    as_spec,
    grouped,
)
from repro.errors import QueryError


def test_count_protocol():
    spec = Count()
    state = spec.start()
    state = spec.add(state, (), 3)
    state = spec.add(state, (), 1)
    assert spec.finish(state) == 4
    assert spec.merge(2, 5) == 7
    assert spec.needs == ()
    assert spec.multiplicity_sensitive


def test_sum_scales_by_multiplicity():
    spec = Sum("A")
    state = spec.add(spec.start(), (10,), 3)
    assert spec.finish(state) == 30
    assert spec.needs == ("A",)


def test_min_max_ignore_multiplicity_and_handle_empty():
    low, high = Min("A"), Max("A")
    assert not low.multiplicity_sensitive
    assert not high.multiplicity_sensitive
    assert low.finish(low.start()) is None
    assert high.finish(high.start()) is None
    state = low.add(low.start(), (5,), 100)
    state = low.add(state, (3,), 1)
    assert low.finish(state) == 3
    assert low.merge(None, 7) == 7
    assert high.merge(4, None) == 4
    assert low.merge(2, 9) == 2
    assert high.merge(2, 9) == 9


def test_group_by_needs_dedups_keys_and_inner():
    spec = grouped(("A", "B"), {"s": ("sum", "A"), "m": ("max", "C")})
    assert spec.needs == ("A", "B", "C")
    assert spec.multiplicity_sensitive


def test_group_by_add_merge_finish_round_trip():
    spec = grouped(("A",), {"n": "count", "s": ("sum", "B")})
    left = spec.add(spec.start(), (1, 10), 2)
    left = spec.add(left, (2, 5), 1)
    right = spec.add(spec.start(), (1, 7), 1)
    merged = spec.merge(left, right)
    assert spec.finish(merged) == {
        (1,): {"n": 3, "s": 27},
        (2,): {"n": 1, "s": 5},
    }
    # Keys come out sorted even when inserted out of order.
    assert list(spec.finish(merged)) == [(1,), (2,)]


def test_group_by_min_only_is_multiplicity_insensitive():
    spec = grouped(("A",), {"m": ("min", "B")})
    assert not spec.multiplicity_sensitive


def test_avg_state_is_sum_count_pair():
    spec = Avg("A")
    assert spec.needs == ("A",)
    assert spec.multiplicity_sensitive
    assert spec.finish(spec.start()) is None
    state = spec.add(spec.start(), (10,), 3)
    state = spec.add(state, (2,), 1)
    assert state == (32, 4)
    assert spec.finish(state) == 8.0
    # Merging partial states never averages averages.
    assert spec.finish(spec.merge((30, 3), (2, 1))) == 8.0


def test_count_distinct_ignores_multiplicity():
    spec = CountDistinct("A")
    assert spec.needs == ("A",)
    assert not spec.multiplicity_sensitive
    assert spec.finish(spec.start()) == 0
    state = spec.add(spec.start(), (5,), 100)
    state = spec.add(state, (5,), 1)
    state = spec.add(state, (9,), 2)
    assert spec.finish(state) == 2
    assert spec.finish(spec.merge({1, 2}, {2, 3})) == 3


def test_as_spec_accepts_all_shorthands():
    assert as_spec("count") == Count()
    assert as_spec(("sum", "A")) == Sum("A")
    assert as_spec(["min", "B"]) == Min("B")
    assert as_spec(("max", "C")) == Max("C")
    assert as_spec(("avg", "A")) == Avg("A")
    assert as_spec(("count_distinct", "B")) == CountDistinct("B")
    spec = Sum("X")
    assert as_spec(spec) is spec


def test_as_spec_rejects_unknowns():
    with pytest.raises(QueryError):
        as_spec("median")
    with pytest.raises(QueryError):
        as_spec(("median", "A"))
    with pytest.raises(QueryError):
        as_spec(42)


def test_specs_and_states_pickle():
    spec = grouped(("A",), {"n": "count", "s": ("sum", "B")})
    # Prime the cached properties first — shard workers do the same.
    _ = spec.needs, spec._inner_positions
    clone = pickle.loads(pickle.dumps(spec))
    assert clone == spec
    state = spec.add(spec.start(), (1, 10), 2)
    assert pickle.loads(pickle.dumps(state)) == state
    assert isinstance(clone, GroupBy)
