"""Statistical and property tests for uniform join sampling.

The chi-squared tests are *deterministic*: a fixed corpus, a fixed set
of seeds (``sample(1, seed=i)`` for consecutive ``i``), and a pinned
critical value — the same draws happen on every run, so the suite
cannot flake.  The critical value is the 0.9999 quantile of the
chi-squared distribution with ``|J| - 1`` degrees of freedom
(Wilson-Hilferty), far above anything a uniform sampler produces on
these seeds; a biased sampler (e.g. one that forgot the Hölder slack
rejection, making heavy values proportionally likelier) overshoots it
by an order of magnitude.

The Hypothesis properties check the exact guarantees on random small
instances: samples are distinct, drawn from the true result set, of
size exactly ``min(k, |J|)``, and deterministic for a fixed seed.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.aggregate.sampling import (
    JoinSampler,
    reservoir_sample,
    sample_query,
)
from repro.core.query import JoinQuery
from repro.errors import QueryError
from repro.query.builder import Q
from repro.relations.relation import Relation
from tests.helpers import assert_valid_sample

ALGORITHMS = ("nprr", "lw", "generic", "leapfrog", "arity2")
BACKENDS = ("trie", "sorted", "compact")


def _chi_squared_critical(df: int, z: float = 3.72) -> float:
    """Wilson-Hilferty upper quantile of chi2(df); z=3.72 ~ p=0.9999."""
    term = 1.0 - 2.0 / (9.0 * df) + z * (2.0 / (9.0 * df)) ** 0.5
    return df * term**3


def _corpus():
    """A fixed skewed triangle: small enough for thousands of draws,
    skewed enough that a proportional (non-uniform) sampler fails."""
    rng = random.Random(43)
    # One hub value (0) appears in many rows: the AGM-weighted descent
    # assigns the hub's subtree far more mass than the others, so a
    # sampler that picks children proportional to *mass* without the
    # rejection step oversamples hub rows drastically.
    def skewed(n):
        rows = {(0, rng.randrange(4)) for _ in range(n // 2)}
        rows |= {
            (rng.randrange(1, 5), rng.randrange(4)) for _ in range(n // 2)
        }
        return sorted(rows)

    return (
        Relation("R", ("A", "B"), skewed(24)),
        Relation("S", ("B", "C"), skewed(24)),
        Relation("T", ("A", "C"), skewed(24)),
    )


def _chi_squared(counts: dict, draws: int, cells: int) -> float:
    expected = draws / cells
    observed = sum(
        (count - expected) ** 2 / expected for count in counts.values()
    )
    return observed + expected * (cells - len(counts))  # never-drawn rows


def _uniformity(draw_one, rows, draws):
    """Chi-squared statistic of ``draws`` single-row samples."""
    counts: dict = {}
    for i in range(draws):
        (row,) = draw_one(i)
        counts[row] = counts.get(row, 0) + 1
    assert set(counts) <= set(rows)
    return _chi_squared(counts, draws, len(rows))


@pytest.mark.parametrize("backend", BACKENDS)
def test_sampler_uniformity_per_backend(backend):
    relations = _corpus()
    query = JoinQuery(list(relations))
    rows = list(Q(*relations).stream())
    sampler = JoinSampler(query, backend=backend)
    draws = 30 * len(rows)
    stat = _uniformity(
        lambda i: sampler.sample(1, random.Random(i)), rows, draws
    )
    assert stat < _chi_squared_critical(len(rows) - 1), (
        f"backend {backend}: chi2 {stat:.1f} over {len(rows) - 1} df"
    )


@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_sampler_uniformity_per_algorithm(algorithm):
    relations = _corpus()
    builder = Q(*relations).using(algorithm=algorithm)
    rows = list(builder.stream())
    draws = 25 * len(rows)
    stat = _uniformity(
        lambda i: builder.sample(1, seed=i), rows, draws
    )
    assert stat < _chi_squared_critical(len(rows) - 1), (
        f"algorithm {algorithm}: chi2 {stat:.1f} over {len(rows) - 1} df"
    )


def test_sampler_uniformity_with_filters():
    relations = _corpus()
    builder = Q(*relations).where_in("C", (0, 1, 2))
    rows = list(builder.stream())
    assert rows, "filtered corpus must stay non-empty"
    draws = 30 * len(rows)
    stat = _uniformity(
        lambda i: builder.sample(1, seed=i), rows, draws
    )
    assert stat < _chi_squared_critical(len(rows) - 1), (
        f"filtered: chi2 {stat:.1f} over {len(rows) - 1} df"
    )


def test_sample_without_replacement_is_distinct_and_complete():
    relations = _corpus()
    builder = Q(*relations)
    rows = list(builder.stream())
    for k in (1, 3, len(rows), len(rows) + 10):
        assert_valid_sample(builder.sample(k, seed=5), rows, k)


def test_sample_empty_join_returns_empty():
    r = Relation("R", ("A", "B"), [(1, 2)])
    s = Relation("S", ("B", "C"), [(3, 4)])
    builder = Q(r, s)
    assert builder.sample(10, seed=1) == []
    assert builder.sample(0, seed=1) == []


def test_sample_rejects_bad_sizes():
    r = Relation("R", ("A", "B"), [(1, 2)])
    with pytest.raises(QueryError):
        Q(r).sample(-1)
    with pytest.raises(QueryError):
        Q(r).sample(True)
    with pytest.raises(QueryError):
        Q(r).sample(2.0)


def test_stall_fallback_on_sparse_join():
    # AGM >> |J|: nearly every trial rejects, so the sampler falls back
    # to exact enumeration — and must still return a valid sample.
    r = Relation(
        "R", ("A", "B"), [(i, i % 2) for i in range(60)]
    )
    s = Relation(
        "S", ("B", "C"), [(i % 2 + 2, i) for i in range(60)] + [(0, 99)]
    )
    builder = Q(r, s)
    rows = list(builder.stream())
    assert 0 < len(rows) < 60
    sample = builder.sample(5, seed=2)
    assert_valid_sample(sample, rows, 5)


@st.composite
def _small_instance(draw):
    domain = draw(st.integers(min_value=1, max_value=4))
    values = st.integers(min_value=0, max_value=domain)
    pairs = st.lists(
        st.tuples(values, values), min_size=0, max_size=12, unique=True
    )
    return (
        Relation("R", ("A", "B"), draw(pairs)),
        Relation("S", ("B", "C"), draw(pairs)),
        Relation("T", ("A", "C"), draw(pairs)),
    )


@settings(max_examples=40, deadline=None, derandomize=True)
@given(instance=_small_instance(), k=st.integers(0, 15), seed=st.integers(0, 9))
def test_sample_properties_hold_on_random_instances(instance, k, seed):
    builder = Q(*instance)
    rows = list(builder.stream())
    sample = builder.sample(k, seed=seed)
    assert_valid_sample(sample, rows, k)
    assert builder.sample(k, seed=seed) == sample  # seed-deterministic


@settings(max_examples=25, deadline=None, derandomize=True)
@given(instance=_small_instance(), seed=st.integers(0, 9))
def test_sample_query_matches_builder(instance, seed):
    query = JoinQuery(list(instance))
    direct = sample_query(query, 4, seed)
    assert direct == Q(*instance).sample(4, seed=seed)


def test_reservoir_sample_is_uniform_and_deterministic():
    rows = [(i,) for i in range(10)]
    assert reservoir_sample(rows, 0, seed=1) == []
    assert reservoir_sample(rows, 20, seed=1) == rows
    first = reservoir_sample(rows, 3, seed=7)
    assert first == reservoir_sample(rows, 3, seed=7)
    assert len(first) == 3 and set(first) <= set(rows)
    # Uniformity: every row appears ~equally often across seeds.
    counts: dict = {}
    draws = 3000
    for i in range(draws):
        for row in reservoir_sample(rows, 3, seed=i):
            counts[row] = counts.get(row, 0) + 1
    expected = draws * 3 / len(rows)
    stat = sum((c - expected) ** 2 / expected for c in counts.values())
    assert stat < _chi_squared_critical(len(rows) - 1)


def test_projected_sample_uses_reservoir_over_distinct_rows():
    relations = _corpus()
    builder = Q(*relations).select("A")
    projected = list(builder.stream())
    sample = builder.sample(3, seed=4)
    assert_valid_sample(sample, projected, 3)
