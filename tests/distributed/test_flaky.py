"""Failure injection: exactly-once accounting under a hostile fleet.

``FlakyTransport`` wraps the loopback fleet and sabotages channels on a
shared script: kill the connection mid-shard, drop or duplicate ``done``
acks, delay heartbeats past the probe timeout.  Under every fault the
dispatcher must deliver the *exact* serial row multiset — no row lost to
a died worker, none duplicated by a retry or a re-sent ack — within a
bounded retry budget; faults past the budget must abort loudly with
:class:`~repro.errors.DistributedError`, never hang or return partial
rows as if complete.
"""

from collections import Counter

import pytest

from repro import execute
from repro.api import iter_join
from repro.distributed import DispatchScheduler, LoopbackTransport
from repro.distributed.wire import ConnectionClosed
from repro.errors import DistributedError
from repro.query.context import ExecutionContext
from repro.query.shards import ShardSpec
from repro.workloads import generators, queries


def skewed_query():
    return generators.random_instance(
        queries.triangle(), 250, 25, seed=17, skew=1.1
    )


class FlakyChannel:
    """A channel that injects faults per its transport's shared script."""

    def __init__(self, channel, script) -> None:
        self.channel = channel
        self.script = script
        self._replay = []

    def send(self, header, payload=b""):
        self.channel.send(header, payload)

    def settimeout(self, seconds):
        self.channel.settimeout(seconds)

    def close(self):
        self.channel.close()

    def recv(self):
        if self._replay:
            return self._replay.pop(0)
        header, payload = self.channel.recv()
        op = header.get("op")
        script = self.script
        if op == "pong" and script.delay_pong > 0:
            # A heartbeat answered too late looks exactly like a timeout.
            script.delay_pong -= 1
            self.channel.close()
            raise TimeoutError("pong delayed past the probe timeout")
        if op == "rows" and script.kill_mid_shard > 0:
            # Worker dies while streaming: rows are in flight, no ack.
            script.kill_mid_shard -= 1
            self.channel.close()
            raise ConnectionClosed("worker killed mid-shard (injected)")
        if op in ("done", "state") and script.drop_ack > 0:
            # Worker finished the shard but died before the ack landed:
            # the sharpest exactly-once case — the work happened, yet
            # the driver must discard it and re-run from zero rows.
            script.drop_ack -= 1
            self.channel.close()
            raise ConnectionClosed("ack dropped (injected)")
        if op == "done" and script.duplicate_ack > 0:
            script.duplicate_ack -= 1
            self._replay.append((dict(header), payload))
        return header, payload


class FlakyTransport:
    """A loopback worker slot with scripted faults (shared across
    reconnections, like a flaky rack: each fault fires once)."""

    def __init__(
        self,
        *,
        kill_mid_shard=0,
        drop_ack=0,
        duplicate_ack=0,
        delay_pong=0,
    ) -> None:
        self.inner = LoopbackTransport()
        self.kill_mid_shard = kill_mid_shard
        self.drop_ack = drop_ack
        self.duplicate_ack = duplicate_ack
        self.delay_pong = delay_pong

    def connect(self):
        return FlakyChannel(self.inner.connect(), self)


class RefusingTransport:
    """A slot whose worker is simply gone."""

    def connect(self):
        raise OSError("connection refused (injected)")


def run_fleet(query, transports, algorithm="generic", backend=None, **kwargs):
    scheduler = DispatchScheduler(
        transports, retry_backoff=0.002, **kwargs
    )
    context = ExecutionContext(
        algorithm=algorithm,
        backend=backend,
        shards=ShardSpec(4),
        scheduler=scheduler,
    )
    return list(execute(query, context=context)), scheduler


@pytest.mark.parametrize(
    "algorithm,backend",
    [("generic", "trie"), ("leapfrog", "compact")],
)
class TestFaultParity:
    def test_worker_killed_mid_shard_is_retried_without_row_loss(
        self, algorithm, backend
    ):
        query = skewed_query()
        serial = Counter(iter_join(query, algorithm=algorithm))
        rows, scheduler = run_fleet(
            query,
            [FlakyTransport(kill_mid_shard=2), FlakyTransport()],
            algorithm=algorithm,
            backend=backend,
        )
        assert Counter(rows) == serial  # multiset: no dup, no loss
        assert 1 <= scheduler.last_run["retries"] <= 2 * 3  # bounded

    def test_dropped_ack_never_duplicates_committed_rows(
        self, algorithm, backend
    ):
        query = skewed_query()
        serial = Counter(iter_join(query, algorithm=algorithm))
        rows, scheduler = run_fleet(
            query,
            [FlakyTransport(drop_ack=1), FlakyTransport()],
            algorithm=algorithm,
            backend=backend,
        )
        # The first attempt's work completed worker-side; a naive
        # dispatcher would ship those buffered rows AND the retry's.
        assert Counter(rows) == serial
        assert scheduler.last_run["retries"] >= 1

    def test_duplicated_ack_is_skipped_by_request_id(
        self, algorithm, backend
    ):
        query = skewed_query()
        serial = Counter(iter_join(query, algorithm=algorithm))
        rows, scheduler = run_fleet(
            query,
            [FlakyTransport(duplicate_ack=2), FlakyTransport()],
            algorithm=algorithm,
            backend=backend,
        )
        assert Counter(rows) == serial
        assert scheduler.last_run["retries"] == 0  # dups are not failures

    def test_delayed_heartbeat_sidelines_the_slot(self, algorithm, backend):
        query = skewed_query()
        serial = Counter(iter_join(query, algorithm=algorithm))
        rows, _scheduler = run_fleet(
            query,
            [FlakyTransport(delay_pong=1), FlakyTransport()],
            algorithm=algorithm,
            backend=backend,
        )
        assert Counter(rows) == serial  # the healthy slot carries the run


class TestAborts:
    def test_retry_budget_exhaustion_aborts(self):
        query = skewed_query()
        always_dying = FlakyTransport(kill_mid_shard=10_000)
        with pytest.raises(DistributedError, match="retry budget"):
            run_fleet(query, [always_dying], max_retries=2)

    def test_fully_dead_fleet_aborts(self):
        query = skewed_query()
        with pytest.raises(DistributedError, match="workers died"):
            run_fleet(
                query, [RefusingTransport(), RefusingTransport()]
            )

    def test_permanent_worker_failure_aborts(self):
        class ErrorChannel:
            def __init__(self):
                self._queue = []

            def settimeout(self, seconds):
                pass

            def close(self):
                pass

            def send(self, header, payload=b""):
                op = header.get("op")
                if op == "ping":
                    self._queue.append(
                        ({"op": "pong", "id": header.get("id")}, b"")
                    )
                else:
                    self._queue.append(
                        (
                            {
                                "op": "error",
                                "id": header.get("id"),
                                "error": {
                                    "type": "plan",
                                    "message": "injected permanent failure",
                                },
                            },
                            b"",
                        )
                    )

            def recv(self):
                if not self._queue:
                    raise ConnectionClosed("nothing to say")
                return self._queue.pop(0)

        class ErrorTransport:
            def connect(self):
                return ErrorChannel()

        with pytest.raises(DistributedError, match="permanently"):
            run_fleet(skewed_query(), [ErrorTransport()])

    def test_zero_retries_means_first_death_aborts(self):
        query = skewed_query()
        with pytest.raises(DistributedError, match="retry budget"):
            run_fleet(
                query,
                [FlakyTransport(kill_mid_shard=1)],
                max_retries=0,
            )
