"""Dispatch to a loopback fleet: parity, stealing, telemetry flow-back.

The acceptance gate for the fabric: a loopback fleet must yield *row-set
identical* results to serial ``iter_join`` across algorithms and index
backends, stealing and pre-splitting must only rearrange shard
boundaries (never rows), and worker observations must land in the same
tracer / feedback store a local run feeds.
"""

import pytest

from repro import Q, execute
from repro.api import iter_join
from repro.distributed import (
    DispatchScheduler,
    LocalPoolScheduler,
    LoopbackTransport,
    Scheduler,
)
from repro.errors import DistributedError, PlanError
from repro.feedback.config import FeedbackConfig
from repro.observe.tracing import Tracer
from repro.query.context import ExecutionContext
from repro.query.shards import ShardSpec, StealPolicy
from repro.stats.provider import StatsProvider
from repro.workloads import generators, queries
from tests.helpers import triangle_query


def hub_query():
    return generators.hub_triangle(
        light_domain=20,
        b_domain=30,
        c_domain=100,
        r_size=150,
        s_size=250,
        t_size=500,
        seed=5,
    )


def fleet(n=2, **kwargs):
    return DispatchScheduler(
        [LoopbackTransport() for _ in range(n)], **kwargs
    )


class TestLoopbackParity:
    @pytest.mark.parametrize(
        "algorithm,backend",
        [
            ("generic", "trie"),
            ("generic", "compact"),
            ("leapfrog", "sorted"),
            ("leapfrog", "compact"),
        ],
    )
    def test_rows_identical_to_serial(self, algorithm, backend):
        query = generators.random_instance(
            queries.triangle(), 250, 25, seed=11, skew=1.0
        )
        serial = sorted(
            iter_join(query, algorithm=algorithm, backend=backend)
        )
        context = ExecutionContext(
            algorithm=algorithm,
            backend=backend,
            shards=ShardSpec(4),
            scheduler=fleet(),
        )
        assert sorted(execute(query, context=context)) == serial

    def test_count_folds_through_the_fleet(self):
        query = hub_query()
        expected = len(list(iter_join(query, algorithm="generic")))
        context = ExecutionContext(
            algorithm="generic", shards=ShardSpec(4), scheduler=fleet()
        )
        assert execute(query, context=context).count() == expected

    def test_empty_result_completes_cleanly(self):
        query = triangle_query(r_rows=((9, 9),), s_rows=((1, 1),))
        context = ExecutionContext(
            algorithm="generic", shards=ShardSpec(2), scheduler=fleet()
        )
        assert execute(query, context=context).rows() == []

    def test_early_termination_drains_the_fleet(self):
        query = hub_query()
        scheduler = fleet()
        context = ExecutionContext(
            algorithm="generic", shards=ShardSpec(4), scheduler=scheduler
        )
        stream = iter(execute(query, context=context))
        next(stream)
        stream.close()  # consumer walks away mid-run
        # The board stops; a fresh run on the same scheduler still works.
        serial = sorted(iter_join(query, algorithm="generic"))
        assert sorted(execute(query, context=context)) == serial


class TestLocalPoolScheduler:
    def test_protocol_conformance(self):
        assert isinstance(LocalPoolScheduler(), Scheduler)
        assert isinstance(DispatchScheduler([LoopbackTransport()]), Scheduler)

    def test_parity_with_default_path(self):
        query = triangle_query()
        serial = sorted(iter_join(query, algorithm="generic"))
        context = ExecutionContext(
            algorithm="generic",
            shards=ShardSpec(2),
            scheduler=LocalPoolScheduler(mode="serial"),
        )
        assert sorted(execute(query, context=context)) == serial

    def test_workers_validated(self):
        with pytest.raises(PlanError):
            LocalPoolScheduler(workers=0)

    def test_context_rejects_non_schedulers(self):
        with pytest.raises(PlanError):
            ExecutionContext(scheduler=object())


class TestStealing:
    def test_within_run_stealing_splits_the_straggler(self):
        query = hub_query()
        serial = sorted(iter_join(query, algorithm="generic"))
        policy = StealPolicy(hot_factor=0.01, min_completed=1)
        scheduler = fleet()
        context = ExecutionContext(
            algorithm="generic",
            shards=ShardSpec(6, steal=policy),
            scheduler=scheduler,
        )
        assert sorted(execute(query, context=context)) == serial
        assert scheduler.last_run["steals"] >= 1
        # Stealing rearranged shard boundaries, never the output:
        assert scheduler.last_run["shards"] >= 6

    def test_predictive_presplit_carves_hub_shards(self):
        query = hub_query()
        serial = sorted(iter_join(query, algorithm="generic"))
        scheduler = fleet()
        context = ExecutionContext(
            algorithm="generic",
            shards=ShardSpec(4, predictive=True),
            scheduler=scheduler,
        )
        assert sorted(execute(query, context=context)) == serial
        assert scheduler.last_run["presplits"] >= 1
        assert scheduler.last_run["shards"] > 4

    def test_scheduler_steal_override(self):
        query = hub_query()
        scheduler = fleet(
            steal=StealPolicy(hot_factor=0.01, min_completed=1)
        )
        context = ExecutionContext(
            algorithm="generic", shards=ShardSpec(6), scheduler=scheduler
        )
        serial = sorted(iter_join(query, algorithm="generic"))
        assert sorted(execute(query, context=context)) == serial
        assert scheduler.last_run["steals"] >= 1

    def test_stats_accumulate_across_runs(self):
        query = triangle_query()
        scheduler = fleet()
        context = ExecutionContext(
            algorithm="generic", shards=ShardSpec(2), scheduler=scheduler
        )
        execute(query, context=context).rows()
        execute(query, context=context).rows()
        assert scheduler.stats["runs"] == 2
        assert scheduler.stats["shards"] >= 2


class TestTelemetryFlowBack:
    def test_worker_spans_stitch_into_the_parent_tracer(self):
        query = triangle_query()
        tracer = Tracer()
        context = ExecutionContext(
            algorithm="generic",
            shards=ShardSpec(2),
            scheduler=fleet(),
            tracer=tracer,
        )
        execute(query, context=context).rows()

        def spans(roots):
            for span in roots:
                yield span
                yield from spans(span.children)

        remote = [
            s for s in spans(tracer.roots) if s.meta.get("remote") is True
        ]
        assert remote
        assert all(s.name == "shard" for s in remote)

    def test_shard_observations_reach_the_feedback_store(self):
        query = hub_query()
        provider = StatsProvider()
        context = ExecutionContext(
            algorithm="generic",
            shards=ShardSpec(3),
            scheduler=fleet(),
            stats=provider,
            feedback=FeedbackConfig(),
        )
        serial = sorted(iter_join(query, algorithm="generic"))
        assert sorted(execute(query, context=context)) == serial
        observed = provider.observed_shards(query)
        assert observed
        assert all(obs.seconds >= 0.0 for obs in observed.values())
        # And the second (possibly re-planned) run still agrees.
        assert sorted(execute(query, context=context)) == serial


class TestValidation:
    def test_empty_fleet_rejected(self):
        with pytest.raises(DistributedError):
            DispatchScheduler([])

    def test_negative_retries_rejected(self):
        with pytest.raises(DistributedError):
            DispatchScheduler([LoopbackTransport()], max_retries=-1)

    def test_shard_spec_validation(self):
        with pytest.raises(PlanError):
            ShardSpec(0)
        with pytest.raises(PlanError):
            ShardSpec("sideways")
        with pytest.raises(PlanError):
            StealPolicy(split_factor=1)
        with pytest.raises(PlanError):
            StealPolicy(hot_factor=0.0)
        assert ShardSpec.coerce(4) == ShardSpec(4)
        assert ShardSpec.coerce(None) is None
        spec = ShardSpec(2, steal=True)
        assert spec.steal == StealPolicy()
