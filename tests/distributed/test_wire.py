"""Framing: length-prefixed JSON-header + binary-payload frames."""

import socket

import pytest

from repro.distributed.wire import ConnectionClosed, recv_frame, send_frame
from repro.errors import DistributedError


def _pair():
    left, right = socket.socketpair()
    return left, right, right.makefile("rb")


class TestFrames:
    def test_header_only_roundtrip(self):
        left, right, reader = _pair()
        try:
            send_frame(left, {"op": "ping", "id": 7})
            header, payload = recv_frame(reader)
            assert header == {"op": "ping", "id": 7}
            assert payload == b""
        finally:
            left.close(), right.close(), reader.close()

    def test_payload_roundtrip(self):
        left, right, reader = _pair()
        try:
            body = bytes(range(256)) * 10
            send_frame(left, {"op": "rows", "id": 1}, body)
            header, payload = recv_frame(reader)
            assert header["len"] == len(body)
            assert payload == body
        finally:
            left.close(), right.close(), reader.close()

    def test_frames_keep_order(self):
        left, right, reader = _pair()
        try:
            for index in range(5):
                send_frame(left, {"id": index}, b"x" * index)
            for index in range(5):
                header, payload = recv_frame(reader)
                assert header["id"] == index
                assert payload == b"x" * index
        finally:
            left.close(), right.close(), reader.close()

    def test_eof_is_connection_closed(self):
        left, right, reader = _pair()
        left.close()
        try:
            with pytest.raises(ConnectionClosed):
                recv_frame(reader)
        finally:
            right.close(), reader.close()

    def test_truncated_payload_is_connection_closed(self):
        left, right, reader = _pair()
        try:
            left.sendall(b'{"op":"rows","len":100}\n' + b"short")
            left.close()
            with pytest.raises(ConnectionClosed):
                recv_frame(reader)
        finally:
            right.close(), reader.close()

    def test_malformed_header_is_distributed_error(self):
        left, right, reader = _pair()
        try:
            left.sendall(b"this is not json\n")
            with pytest.raises(DistributedError):
                recv_frame(reader)
        finally:
            left.close(), right.close(), reader.close()
