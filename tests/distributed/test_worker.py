"""The worker protocol: ping, task streaming, fold, errors, shutdown."""

import pickle

import pytest

from repro.distributed.transport import Channel, LoopbackTransport
from repro.distributed.wire import ConnectionClosed
from repro.distributed.worker import WorkerServer
from repro.engine.parallel import ShardJob, plan_shards, _shard_queries
from repro.engine.planner import plan_join
from tests.helpers import triangle_query


def _job(query, shards=2):
    """Plan a query and package its shards exactly as shard_join does."""
    plan = plan_join(query, algorithm="generic", shards=shards)
    specs = plan_shards(query, plan.shards, plan.attribute_order[0])
    from repro.feedback.resharding import ShardPlanEntry

    entries = [
        ShardPlanEntry(
            key=((plan.attribute_order[0], spec.values),),
            query=restricted,
            weight=spec.weight,
        )
        for spec, restricted in zip(specs, _shard_queries(query, specs))
    ]
    return ShardJob(
        query=query,
        entries=entries,
        algorithm="generic",
        cover=None,
        attribute_order=plan.attribute_order,
        backend=None,
        filters=None,
        order=plan.attribute_order,
    )


def _run_task(channel, rid, task, trace=False):
    """Drive one task op; return (rows, done_header, span_payload)."""
    header = {"op": "task", "id": rid}
    if trace:
        header["trace"] = True
    channel.send(header, pickle.dumps(task))
    rows, span = [], b""
    while True:
        reply, payload = channel.recv()
        assert reply["id"] == rid
        if reply["op"] == "rows":
            rows.extend(pickle.loads(payload))
        elif reply["op"] == "done":
            return rows, reply, payload
        else:
            raise AssertionError(f"unexpected frame {reply!r}")


class TestShardWorker:
    def test_ping_pong(self):
        channel = LoopbackTransport().connect()
        try:
            channel.send({"op": "ping", "id": 3})
            header, _payload = channel.recv()
            assert header == {"op": "pong", "id": 3}
        finally:
            channel.close()

    def test_task_streams_rows_and_reports_timing(self):
        query = triangle_query()
        job = _job(query)
        serial = set()
        channel = LoopbackTransport().connect()
        try:
            for rid, task in enumerate(job.tasks(), start=1):
                rows, done, _span = _run_task(channel, rid, task)
                assert done["count"] == len(rows)
                assert done["seconds"] >= 0.0
                serial.update(rows)
        finally:
            channel.close()
        from repro.api import iter_join

        assert serial == set(iter_join(query, algorithm="generic"))

    def test_traced_task_ships_its_span_home(self):
        job = _job(triangle_query())
        channel = LoopbackTransport().connect()
        try:
            _rows, done, span_bytes = _run_task(
                channel, 9, job.tasks()[0], trace=True
            )
            assert done.get("span") is True
            span = pickle.loads(span_bytes)
            assert span.name == "shard"
            assert span.meta["remote"] is True
            assert span.meta["rows"] == done["count"]
        finally:
            channel.close()

    def test_fold_returns_pickled_state(self):
        from repro.aggregate.specs import Count

        job = _job(triangle_query(), shards=1)
        channel = LoopbackTransport().connect()
        try:
            channel.send(
                {"op": "fold", "id": 4},
                pickle.dumps((job.tasks()[0], Count())),
            )
            header, payload = channel.recv()
            assert header["op"] == "state"
            assert header["id"] == 4
            assert pickle.loads(payload) is not None
        finally:
            channel.close()

    def test_corrupt_task_is_a_typed_error_not_a_crash(self):
        channel = LoopbackTransport().connect()
        try:
            channel.send({"op": "task", "id": 5}, b"not a pickle")
            header, _payload = channel.recv()
            assert header["op"] == "error"
            assert header["id"] == 5
            assert header["error"]["type"]
            # The connection survives a failed task.
            channel.send({"op": "ping", "id": 6})
            assert channel.recv()[0]["op"] == "pong"
        finally:
            channel.close()

    def test_unknown_op_is_a_protocol_error(self):
        channel = LoopbackTransport().connect()
        try:
            channel.send({"op": "warp", "id": 7})
            header, _payload = channel.recv()
            assert header["op"] == "error"
            assert header["error"]["type"] == "protocol"
        finally:
            channel.close()

    def test_shutdown_says_bye_and_stops(self):
        transport = LoopbackTransport()
        channel = transport.connect()
        try:
            channel.send({"op": "shutdown"})
            assert channel.recv()[0]["op"] == "bye"
            assert transport.worker.stopped.is_set()
        finally:
            channel.close()


class TestWorkerServer:
    def test_tcp_roundtrip_and_stop(self):
        import socket
        import threading

        server = WorkerServer(port=0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        host, port = server.address
        channel = Channel(socket.create_connection((host, port), timeout=5))
        try:
            channel.send({"op": "ping", "id": 1})
            assert channel.recv()[0]["op"] == "pong"
            job = _job(triangle_query(), shards=1)
            rows, done, _span = _run_task(channel, 2, job.tasks()[0])
            assert done["count"] == len(rows)
        finally:
            channel.close()
            server.stop()
            thread.join(timeout=5)
        assert not thread.is_alive()

    def test_bind_failure_is_distributed_error(self):
        from repro.errors import DistributedError

        with pytest.raises(DistributedError):
            WorkerServer(host="203.0.113.1", port=1)  # TEST-NET, unroutable
