"""Unit tests for the Relation algebra."""

import pytest

from repro.errors import SchemaError
from repro.relations.relation import Relation, union_all


@pytest.fixture
def r():
    return Relation("R", ("A", "B"), [(1, 2), (1, 3), (2, 3)])


@pytest.fixture
def s():
    return Relation("S", ("B", "C"), [(2, 9), (3, 8), (5, 7)])


class TestConstruction:
    def test_basic(self, r):
        assert r.name == "R"
        assert r.attributes == ("A", "B")
        assert len(r) == 3

    def test_duplicates_collapse(self):
        rel = Relation("R", ("A",), [(1,), (1,), (2,)])
        assert len(rel) == 2

    def test_empty(self):
        rel = Relation("R", ("A", "B"))
        assert rel.is_empty()
        assert len(rel) == 0

    def test_zero_arity(self):
        rel = Relation("R", (), [()])
        assert len(rel) == 1
        assert rel.attributes == ()

    def test_duplicate_attributes_rejected(self):
        with pytest.raises(SchemaError):
            Relation("R", ("A", "A"), [])

    def test_wrong_arity_rejected(self):
        with pytest.raises(SchemaError):
            Relation("R", ("A", "B"), [(1,)])

    def test_immutable(self, r):
        with pytest.raises(AttributeError):
            r.name = "X"

    def test_from_assignments(self):
        rel = Relation.from_assignments(
            "R", ("A", "B"), [{"A": 1, "B": 2}, {"B": 4, "A": 3}]
        )
        assert (1, 2) in rel and (3, 4) in rel

    def test_with_name(self, r):
        renamed = r.with_name("R2")
        assert renamed.name == "R2"
        assert renamed.tuples == r.tuples

    def test_repr(self, r):
        assert "R" in repr(r) and "3" in repr(r)


class TestSchemaHelpers:
    def test_position(self, r):
        assert r.position("A") == 0
        assert r.position("B") == 1

    def test_position_unknown(self, r):
        with pytest.raises(SchemaError):
            r.position("Z")

    def test_positions(self, r):
        assert r.positions(("B", "A")) == (1, 0)

    def test_attribute_set(self, r):
        assert r.attribute_set == frozenset({"A", "B"})

    def test_assignment(self, r):
        assert r.assignment((1, 2)) == {"A": 1, "B": 2}

    def test_iter_assignments(self, r):
        assignments = list(r.iter_assignments())
        assert {"A": 1, "B": 2} in assignments
        assert len(assignments) == 3


class TestProjection:
    def test_project(self, r):
        p = r.project(["A"])
        assert p.attributes == ("A",)
        assert p.tuples == frozenset({(1,), (2,)})

    def test_project_reorders(self, r):
        p = r.project(["B", "A"])
        assert (2, 1) in p

    def test_project_empty_attrs(self, r):
        p = r.project([])
        assert p.tuples == frozenset({()})

    def test_project_empty_relation(self):
        rel = Relation("R", ("A", "B"))
        assert rel.project([]).is_empty()

    def test_project_unknown(self, r):
        with pytest.raises(SchemaError):
            r.project(["Z"])


class TestSection:
    def test_section_reduces_attributes(self, r):
        sec = r.section({"A": 1})
        assert sec.attributes == ("B",)
        assert sec.tuples == frozenset({(2,), (3,)})

    def test_section_missing_value(self, r):
        assert r.section({"A": 99}).is_empty()

    def test_empty_binding_is_identity(self, r):
        sec = r.section({})
        assert sec.tuples == r.tuples
        assert sec.attributes == r.attributes

    def test_full_binding(self, r):
        sec = r.section({"A": 1, "B": 2})
        assert sec.attributes == ()
        assert sec.tuples == frozenset({()})

    def test_section_unknown_attribute(self, r):
        with pytest.raises(SchemaError):
            r.section({"Z": 1})


class TestSelect:
    def test_select(self, r):
        out = r.select(lambda t: t["A"] == 1)
        assert len(out) == 2

    def test_select_equals(self, r):
        out = r.select_equals("B", 3)
        assert out.tuples == frozenset({(1, 3), (2, 3)})
        assert out.attributes == r.attributes


class TestRenameReorder:
    def test_rename(self, r):
        out = r.rename({"A": "X"})
        assert out.attributes == ("X", "B")
        assert out.tuples == r.tuples

    def test_rename_unknown(self, r):
        with pytest.raises(SchemaError):
            r.rename({"Z": "Y"})

    def test_reorder(self, r):
        out = r.reorder(("B", "A"))
        assert out.attributes == ("B", "A")
        assert (2, 1) in out

    def test_reorder_not_permutation(self, r):
        with pytest.raises(SchemaError):
            r.reorder(("A",))

    def test_reorder_roundtrip(self, r):
        assert r.reorder(("B", "A")).reorder(("A", "B")) == r


class TestSemijoin:
    def test_semijoin(self, r, s):
        out = r.semijoin(s)
        assert out.tuples == r.tuples  # all B values of r appear in s

    def test_semijoin_filters(self, r):
        s2 = Relation("S", ("B", "C"), [(2, 9)])
        out = r.semijoin(s2)
        assert out.tuples == frozenset({(1, 2)})

    def test_semijoin_no_shared_nonempty(self, r):
        other = Relation("X", ("Z",), [(1,)])
        assert r.semijoin(other).tuples == r.tuples

    def test_semijoin_no_shared_empty(self, r):
        other = Relation("X", ("Z",))
        assert r.semijoin(other).is_empty()


class TestNaturalJoin:
    def test_join(self, r, s):
        out = r.natural_join(s)
        assert out.attributes == ("A", "B", "C")
        assert (1, 2, 9) in out
        assert (1, 3, 8) in out
        assert (2, 3, 8) in out
        assert len(out) == 3

    def test_join_no_shared_is_cross(self):
        a = Relation("A", ("X",), [(1,), (2,)])
        b = Relation("B", ("Y",), [(5,), (6,)])
        out = a.natural_join(b)
        assert len(out) == 4

    def test_join_with_empty(self, r):
        empty = Relation("S", ("B", "C"))
        assert r.natural_join(empty).is_empty()

    def test_join_same_schema_is_intersection(self, r):
        other = Relation("R2", ("A", "B"), [(1, 2), (9, 9)])
        out = r.natural_join(other)
        assert out.tuples == frozenset({(1, 2)})

    def test_join_commutes_up_to_reorder(self, r, s):
        left = r.natural_join(s)
        right = s.natural_join(r)
        assert left.equivalent(right)

    def test_cross(self):
        a = Relation("A", ("X",), [(1,)])
        b = Relation("B", ("Y",), [(2,)])
        assert a.cross(b).tuples == frozenset({(1, 2)})

    def test_cross_shared_rejected(self, r, s):
        with pytest.raises(SchemaError):
            r.cross(r)


class TestEquivalence:
    def test_equivalent_ignores_order_and_name(self, r):
        other = Relation("Other", ("B", "A"), [(2, 1), (3, 1), (3, 2)])
        assert r.equivalent(other)

    def test_not_equivalent_different_tuples(self, r):
        other = Relation("R", ("A", "B"), [(1, 2)])
        assert not r.equivalent(other)

    def test_not_equivalent_different_schema(self, r, s):
        assert not r.equivalent(s)

    def test_eq_strict(self, r):
        same = Relation("X", ("A", "B"), [(1, 2), (1, 3), (2, 3)])
        assert r == same  # names do not participate in equality
        assert hash(r) == hash(same)


class TestUnionAll:
    def test_union(self):
        a = Relation("A", ("X", "Y"), [(1, 2)])
        b = Relation("B", ("Y", "X"), [(9, 8)])
        out = union_all("U", [a, b])
        assert out.attributes == ("X", "Y")
        assert out.tuples == frozenset({(1, 2), (8, 9)})

    def test_union_schema_mismatch(self):
        a = Relation("A", ("X",), [(1,)])
        b = Relation("B", ("Y",), [(2,)])
        with pytest.raises(SchemaError):
            union_all("U", [a, b])

    def test_union_empty_list(self):
        with pytest.raises(SchemaError):
            union_all("U", [])
