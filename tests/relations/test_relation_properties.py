"""Property-based tests for the Relation algebra (hypothesis)."""

import itertools

from hypothesis import given, settings, strategies as st

from repro.relations.relation import Relation

ATTRS = ("A", "B", "C")


def relations(attrs=ATTRS, max_size=12, domain=4):
    rows = st.frozensets(
        st.tuples(*[st.integers(0, domain - 1)] * len(attrs)),
        max_size=max_size,
    )
    return rows.map(lambda rs: Relation("R", attrs, rs))


@given(relations())
def test_projection_is_idempotent(rel):
    once = rel.project(["A", "B"])
    twice = once.project(["A", "B"])
    assert once == twice


@given(relations())
def test_sections_partition_the_relation(rel):
    """Union of all A-sections (re-extended) recovers the relation."""
    recovered = set()
    for value in {row[0] for row in rel.tuples}:
        for tail in rel.section({"A": value}).tuples:
            recovered.add((value,) + tail)
    assert recovered == set(rel.tuples)


@given(relations(), relations(attrs=("B", "C", "D")))
def test_join_against_definition(left, right):
    """Hash join agrees with the brute-force definition of natural join."""
    joined = left.natural_join(right)
    expected = set()
    for lrow in left.tuples:
        for rrow in right.tuples:
            if lrow[1] == rrow[0] and lrow[2] == rrow[1]:  # B and C match
                expected.add(lrow + (rrow[2],))
    assert set(joined.tuples) == expected


@given(relations(), relations(attrs=("B", "C", "D")))
def test_semijoin_is_join_projection(left, right):
    """R semijoin S == pi_{attrs(R)}(R join S)."""
    semi = left.semijoin(right)
    via_join = left.natural_join(right).project(left.attributes)
    assert set(semi.tuples) == set(via_join.tuples)


@given(relations())
def test_rename_roundtrip(rel):
    there = rel.rename({"A": "X"})
    back = there.rename({"X": "A"})
    assert back == rel


@given(relations())
def test_reorder_preserves_assignments(rel):
    reordered = rel.reorder(("C", "A", "B"))
    original = {frozenset(a.items()) for a in rel.iter_assignments()}
    after = {frozenset(a.items()) for a in reordered.iter_assignments()}
    assert original == after


@given(relations(max_size=8))
def test_project_section_commute(rel):
    """pi_C(R[A=a]) == (pi_{A,C}(R))[A=a] for every a."""
    for value in {row[0] for row in rel.tuples}:
        left = rel.section({"A": value}).project(["C"])
        right = rel.project(["A", "C"]).section({"A": value})
        assert set(left.tuples) == set(right.tuples)


@given(relations(max_size=10), relations(max_size=10))
def test_join_same_schema_is_intersection(left, right):
    joined = left.natural_join(right)
    assert set(joined.tuples) == set(left.tuples) & set(right.tuples)
