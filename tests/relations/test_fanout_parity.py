"""Cross-backend index parity: trie, sorted, and compact must agree.

``fanout_hint`` drives two decisions that must not depend on the
backend: which relation a level iterates (smallest-first) and which
base relation the sampler streams candidates from.  Historically the
sorted/compact hint was an *upper bound* (``hi - lo``, the row span)
while the trie's was exact (distinct children), so duplicate-heavy
relations made the backends disagree — same plan, different iteration
choices, different probe counts.  These tests pin the fixed contract:
the hint equals the exact number of distinct children at every node,
bit-for-bit across backends, including duplicate-heavy and
string-keyed relations; ``count`` and ``items`` parity ride along.
"""

from __future__ import annotations

import random

import pytest

from repro.relations.database import INDEX_BACKENDS, build_index
from repro.relations.relation import Relation

BACKENDS = tuple(sorted(INDEX_BACKENDS))


def _duplicate_heavy(seed=7, n=300):
    # Tiny domains => long runs of equal prefixes, the case where a
    # span-based hint overcounts hardest.
    rng = random.Random(seed)
    rows = sorted(
        {
            (rng.randrange(3), rng.randrange(4), rng.randrange(3))
            for _ in range(n)
        }
    )
    return Relation("D", ("A", "B", "C"), rows)


def _string_keyed():
    words = ("ant", "bee", "cat", "doe", "elk", "fox")
    rows = sorted(
        {
            (words[i % 3], words[j % 6], words[(i * j) % 4])
            for i in range(12)
            for j in range(12)
        }
    )
    return Relation("W", ("A", "B", "C"), rows)


def _relations():
    return [
        _duplicate_heavy(),
        _string_keyed(),
        Relation("E", ("A", "B"), []),
        Relation("One", ("A",), [(1,), (1,), (2,)]),
    ]


def _walk(indexes, nodes, depth, arity):
    """Assert hint/count/items parity at this node, then recurse."""
    hints = [index.fanout_hint(node) for index, node in zip(indexes, nodes)]
    assert len(set(hints)) == 1, f"fanout_hint diverges at depth {depth}: {hints}"
    for levels in range(arity - depth + 1):
        counts = [
            index.count(node, levels) for index, node in zip(indexes, nodes)
        ]
        assert len(set(counts)) == 1, (
            f"count(node, {levels}) diverges at depth {depth}: {counts}"
        )
    if depth == arity:
        return
    # items() iteration *order* is backend-specific (the trie yields in
    # insertion order); the value sets and everything computed from
    # them must not be.
    children = [
        dict(index.items(node)) for index, node in zip(indexes, nodes)
    ]
    values = [set(mapping) for mapping in children]
    assert all(v == values[0] for v in values), (
        f"items() value sets diverge at depth {depth}"
    )
    assert hints[0] == len(values[0]), (
        f"fanout_hint {hints[0]} != {len(values[0])} distinct children"
    )
    for value in sorted(values[0], key=repr):
        _walk(
            indexes,
            [mapping[value] for mapping in children],
            depth + 1,
            arity,
        )


@pytest.mark.parametrize(
    "relation", _relations(), ids=lambda r: r.name
)
def test_backends_agree_bit_for_bit(relation):
    order = relation.attributes
    indexes = [build_index(relation, order, kind) for kind in BACKENDS]
    roots = [index.root for index in indexes]
    _walk(indexes, roots, 0, len(order))


def test_sorted_hint_exact_under_reordered_columns():
    # A non-storage order forces the sorted index to re-sort; the lazy
    # distinct-run tallies must be computed per index order, not per
    # relation.
    relation = _duplicate_heavy(seed=11)
    for order in (("B", "A", "C"), ("C", "B", "A")):
        indexes = [build_index(relation, order, kind) for kind in BACKENDS]
        _walk(indexes, [i.root for i in indexes], 0, len(order))


def test_hint_is_zero_on_none_and_leaf_nodes():
    relation = _duplicate_heavy()
    for kind in BACKENDS:
        index = build_index(relation, relation.attributes, kind)
        assert index.fanout_hint(None) == 0
        node = index.root
        for _depth in range(len(relation.attributes)):
            _value, node = next(iter(index.items(node)))
        assert index.fanout_hint(node) == 0, kind
