"""Byte-accounting invariants of the index cache.

``Database.cache_info()`` reports ``bytes_total`` (a running counter
maintained on insert/evict/invalidate) and ``bytes_by_backend`` (summed
from the resident entries at snapshot time).  These must never drift:
the per-backend breakdown always sums to the total, and every path that
removes an entry — GreedyDual-Size eviction, relation replacement,
relation removal — gives the entry's bytes back.
"""

import pytest

from repro.relations.database import Database
from repro.relations.relation import Relation

BACKENDS = ("trie", "sorted", "compact")


def _relation(name: str, rows: int, offset: int = 0) -> Relation:
    return Relation(
        name,
        ("A", "B"),
        [(offset + i, offset + i * 2) for i in range(rows)],
    )


def _assert_consistent(db: Database) -> None:
    """The invariants every snapshot must satisfy."""
    info = db.cache_info()
    assert sum(info.bytes_by_backend.values()) == info.bytes_total
    assert all(v > 0 for v in info.bytes_by_backend.values())
    assert info.bytes_total >= 0
    assert info.entries >= len(info.bytes_by_backend) or info.entries == 0


@pytest.fixture
def db():
    return Database([_relation("R", 50), _relation("S", 30, offset=100)])


class TestInsertAccounting:
    @pytest.mark.parametrize("kind", BACKENDS)
    def test_single_insert_measures_bytes(self, db, kind):
        index = db.index("R", ("A", "B"), kind)
        info = db.cache_info()
        assert info.bytes_total == index.nbytes()
        assert info.bytes_by_backend == {kind: index.nbytes()}
        _assert_consistent(db)

    def test_mixed_backends_sum_to_total(self, db):
        expected = {}
        for kind in BACKENDS:
            expected[kind] = db.index("R", ("A", "B"), kind).nbytes()
            expected[kind] += db.index("S", ("B", "A"), kind).nbytes()
        info = db.cache_info()
        assert info.bytes_by_backend == expected
        assert info.bytes_total == sum(expected.values())
        _assert_consistent(db)

    @pytest.mark.parametrize("kind", BACKENDS)
    def test_cache_hit_does_not_recharge(self, db, kind):
        db.index("R", ("A", "B"), kind)
        before = db.cache_info()
        db.index("R", ("A", "B"), kind)
        after = db.cache_info()
        assert after.bytes_total == before.bytes_total
        assert after.bytes_by_backend == before.bytes_by_backend
        assert after.hits == before.hits + 1
        _assert_consistent(db)


class TestEvictionAccounting:
    @pytest.mark.parametrize("kind", BACKENDS)
    def test_eviction_decrements_bytes(self, kind):
        db = Database([_relation("R", 50)], index_cache_budget=1)
        first = db.index("R", ("A", "B"), kind).nbytes()
        assert db.cache_info().bytes_total == first
        # The second order evicts the first (budget 1): the victim's
        # bytes must be given back, leaving only the new entry charged.
        second = db.index("R", ("B", "A"), kind).nbytes()
        info = db.cache_info()
        assert info.evictions == 1
        assert info.entries == 1
        assert info.bytes_total == second
        assert info.bytes_by_backend == {kind: second}
        _assert_consistent(db)

    def test_byte_budget_eviction_keeps_books(self):
        db = Database([_relation("R", 200)])
        probe = db.index("R", ("A", "B"), "trie").nbytes()
        # A byte ceiling that fits roughly two resident tries.
        db = Database(
            [_relation("R", 200), _relation("S", 200, offset=1000)],
            index_cache_byte_budget=int(probe * 2.5),
        )
        for name in ("R", "S"):
            for order in (("A", "B"), ("B", "A")):
                db.index(name, order, "trie")
                info = db.cache_info()
                assert info.bytes_total <= info.byte_budget
                _assert_consistent(db)
        assert db.cache_info().evictions >= 1

    def test_churn_never_drifts(self):
        db = Database(
            [_relation("R", 40), _relation("S", 40, offset=500)],
            index_cache_budget=2,
        )
        for round_ in range(3):
            for kind in BACKENDS:
                for name in ("R", "S"):
                    db.index(name, ("A", "B"), kind)
                    _assert_consistent(db)
        info = db.cache_info()
        assert info.entries <= 2
        assert info.evictions >= len(BACKENDS) * 2 * 3 - 2


class TestInvalidationAccounting:
    def test_replace_refunds_all_backends(self, db):
        for kind in BACKENDS:
            db.index("R", ("A", "B"), kind)
            db.index("S", ("B", "A"), kind)
        survivor = db.cache_info().bytes_by_backend
        db.add(_relation("R", 5), replace=True)
        info = db.cache_info()
        # Only S's entries remain; R's bytes were refunded in full.
        assert info.entries == len(BACKENDS)
        assert info.bytes_total == sum(info.bytes_by_backend.values())
        assert all(
            info.bytes_by_backend[kind] < survivor[kind]
            for kind in BACKENDS
        )
        _assert_consistent(db)

    def test_remove_refunds_to_zero(self, db):
        for kind in BACKENDS:
            db.index("R", ("A", "B"), kind)
        db.remove("R")
        info = db.cache_info()
        assert info.entries == 0
        assert info.bytes_total == 0
        assert info.bytes_by_backend == {}

    def test_rebuild_after_replace_recharges(self, db):
        db.index("R", ("A", "B"), "compact")
        db.add(_relation("R", 10), replace=True)
        rebuilt = db.index("R", ("A", "B"), "compact").nbytes()
        info = db.cache_info()
        assert info.bytes_total == rebuilt
        assert info.bytes_by_backend == {"compact": rebuilt}
        _assert_consistent(db)
