"""Unit tests for the Database catalog and its trie cache."""

import pytest

from repro.errors import DatabaseError
from repro.relations.database import Database
from repro.relations.relation import Relation


@pytest.fixture
def db():
    return Database(
        [
            Relation("R", ("A", "B"), [(1, 2), (3, 4)]),
            Relation("S", ("B", "C"), [(2, 5)]),
        ]
    )


class TestCatalog:
    def test_lookup(self, db):
        assert len(db["R"]) == 2

    def test_unknown(self, db):
        with pytest.raises(DatabaseError):
            db["X"]

    def test_contains(self, db):
        assert "R" in db and "X" not in db

    def test_len_and_iter(self, db):
        assert len(db) == 2
        assert {rel.name for rel in db} == {"R", "S"}

    def test_names(self, db):
        assert db.names() == ["R", "S"]

    def test_duplicate_add_rejected(self, db):
        with pytest.raises(DatabaseError):
            db.add(Relation("R", ("A",), [(1,)]))

    def test_replace(self, db):
        db.add(Relation("R", ("A",), [(1,)]), replace=True)
        assert len(db["R"]) == 1

    def test_remove(self, db):
        db.remove("S")
        assert "S" not in db

    def test_remove_unknown(self, db):
        with pytest.raises(DatabaseError):
            db.remove("X")

    def test_from_mapping_renames(self):
        db = Database.from_mapping(
            {"Edges": Relation("whatever", ("A", "B"), [(1, 2)])}
        )
        assert db["Edges"].name == "Edges"


class TestStatistics:
    def test_sizes(self, db):
        assert db.sizes() == {"R": 2, "S": 1}

    def test_total_tuples(self, db):
        assert db.total_tuples() == 3


class TestTrieCache:
    def test_cache_hit(self, db):
        first = db.trie("R", ("A", "B"))
        second = db.trie("R", ("A", "B"))
        assert first is second
        assert db.cached_trie_count() == 1

    def test_cache_distinguishes_orders(self, db):
        db.trie("R", ("A", "B"))
        db.trie("R", ("B", "A"))
        assert db.cached_trie_count() == 2

    def test_replace_invalidates(self, db):
        old = db.trie("R", ("A", "B"))
        db.add(Relation("R", ("A", "B"), [(9, 9)]), replace=True)
        new = db.trie("R", ("A", "B"))
        assert new is not old
        assert len(new) == 1

    def test_remove_invalidates(self, db):
        db.trie("S", ("B", "C"))
        db.remove("S")
        assert db.cached_trie_count() == 0
