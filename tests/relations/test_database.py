"""Unit tests for the Database catalog and its trie cache."""

import pytest

from repro.errors import DatabaseError
from repro.relations.database import Database
from repro.relations.relation import Relation


@pytest.fixture
def db():
    return Database(
        [
            Relation("R", ("A", "B"), [(1, 2), (3, 4)]),
            Relation("S", ("B", "C"), [(2, 5)]),
        ]
    )


class TestCatalog:
    def test_lookup(self, db):
        assert len(db["R"]) == 2

    def test_unknown(self, db):
        with pytest.raises(DatabaseError):
            db["X"]

    def test_contains(self, db):
        assert "R" in db and "X" not in db

    def test_len_and_iter(self, db):
        assert len(db) == 2
        assert {rel.name for rel in db} == {"R", "S"}

    def test_names(self, db):
        assert db.names() == ["R", "S"]

    def test_duplicate_add_rejected(self, db):
        with pytest.raises(DatabaseError):
            db.add(Relation("R", ("A",), [(1,)]))

    def test_replace(self, db):
        db.add(Relation("R", ("A",), [(1,)]), replace=True)
        assert len(db["R"]) == 1

    def test_remove(self, db):
        db.remove("S")
        assert "S" not in db

    def test_remove_unknown(self, db):
        with pytest.raises(DatabaseError):
            db.remove("X")

    def test_from_mapping_renames(self):
        db = Database.from_mapping(
            {"Edges": Relation("whatever", ("A", "B"), [(1, 2)])}
        )
        assert db["Edges"].name == "Edges"


class TestStatistics:
    def test_sizes(self, db):
        assert db.sizes() == {"R": 2, "S": 1}

    def test_total_tuples(self, db):
        assert db.total_tuples() == 3


class TestTrieCache:
    def test_cache_hit(self, db):
        first = db.trie("R", ("A", "B"))
        second = db.trie("R", ("A", "B"))
        assert first is second
        assert db.cached_trie_count() == 1

    def test_cache_distinguishes_orders(self, db):
        db.trie("R", ("A", "B"))
        db.trie("R", ("B", "A"))
        assert db.cached_trie_count() == 2

    def test_replace_invalidates(self, db):
        old = db.trie("R", ("A", "B"))
        db.add(Relation("R", ("A", "B"), [(9, 9)]), replace=True)
        new = db.trie("R", ("A", "B"))
        assert new is not old
        assert len(new) == 1

    def test_remove_invalidates(self, db):
        db.trie("S", ("B", "C"))
        db.remove("S")
        assert db.cached_trie_count() == 0


class TestCacheBudget:
    """LRU eviction weighted by build cost (GreedyDual), cache_info()."""

    def make_db(self, budget):
        return Database(
            [
                Relation("R", ("A", "B"), [(i, i + 1) for i in range(8)]),
                Relation("S", ("B", "C"), [(i, i) for i in range(8)]),
                Relation("T", ("A", "C"), [(i, 2 * i) for i in range(8)]),
            ],
            index_cache_budget=budget,
        )

    def test_budget_must_be_positive(self):
        with pytest.raises(DatabaseError):
            Database(index_cache_budget=0)

    def test_entries_never_exceed_budget(self):
        db = self.make_db(2)
        for name in ("R", "S", "T"):
            db.trie(name, db[name].attributes)
        info = db.cache_info()
        assert info.entries == 2
        assert info.budget == 2
        assert info.evictions == 1

    def test_cache_info_counters(self):
        db = self.make_db(8)
        db.trie("R", ("A", "B"))
        db.trie("R", ("A", "B"))
        db.trie("R", ("B", "A"))
        info = db.cache_info()
        assert (info.hits, info.misses, info.evictions) == (1, 2, 0)
        assert info.entries == 2
        assert info.build_seconds >= 0.0

    def test_evicted_index_is_rebuilt_on_demand(self):
        db = self.make_db(1)
        first = db.trie("R", ("A", "B"))
        db.trie("S", ("B", "C"))  # evicts R's trie
        again = db.trie("R", ("A", "B"))
        assert again is not first
        assert len(again) == len(first)
        assert db.cache_info().evictions == 2

    def test_eviction_prefers_cheap_builds(self, monkeypatch):
        # Drive the cost clock: every build_index call costs what the
        # fake says, so eviction order is deterministic.
        import repro.relations.database as database_module

        costs = {"R": 1.0, "S": 100.0, "T": 1.0}
        clock = [0.0]
        pending = [0.0]
        real_build = database_module.build_index

        def fake_now():
            return clock[0]

        def fake_build(relation, order, kind):
            pending[0] = costs[relation.name]
            index = real_build(relation, order, kind)
            clock[0] += pending[0]
            return index

        monkeypatch.setattr(database_module, "_now", fake_now)
        monkeypatch.setattr(database_module, "build_index", fake_build)

        db = self.make_db(2)
        db.trie("R", ("A", "B"))  # cost 1
        db.trie("S", ("B", "C"))  # cost 100
        db.trie("T", ("A", "C"))  # needs room: R (cheap) is evicted
        assert db.has_cached_index("S", ("B", "C"), "trie")
        assert db.has_cached_index("T", ("A", "C"), "trie")
        assert not db.has_cached_index("R", ("A", "B"), "trie")

    def test_hit_refreshes_recency(self, monkeypatch):
        import repro.relations.database as database_module

        clock = [0.0]

        def fake_now():
            clock[0] += 1.0  # every build costs exactly 1 tick
            return clock[0]

        monkeypatch.setattr(database_module, "_now", fake_now)
        db = self.make_db(2)
        db.trie("R", ("A", "B"))
        db.trie("S", ("B", "C"))
        db.trie("T", ("A", "C"))  # evicts R (oldest, equal cost)
        assert not db.has_cached_index("R", ("A", "B"), "trie")
        # Touch S: its priority re-arms above the advanced clock...
        db.trie("S", ("B", "C"))
        db.trie("R", ("A", "B"))  # ...so T, not S, is evicted now.
        assert db.has_cached_index("S", ("B", "C"), "trie")
        assert not db.has_cached_index("T", ("A", "C"), "trie")

    def test_has_cached_index(self):
        db = self.make_db(4)
        assert not db.has_cached_index("R", ("A", "B"), "trie")
        db.trie("R", ("A", "B"))
        assert db.has_cached_index("R", ("A", "B"), "trie")
        assert not db.has_cached_index("R", ("A", "B"), "sorted")


class TestCacheByteBudget:
    """Measured-bytes accounting and the optional byte budget."""

    def make_db(self, byte_budget=None):
        return Database(
            [
                Relation(
                    "R", ("A", "B"), [(i, i + 1) for i in range(200)]
                ),
                Relation("S", ("B", "C"), [(i, i) for i in range(200)]),
                Relation(
                    "T", ("A", "C"), [(i, 2 * i) for i in range(200)]
                ),
            ],
            index_cache_byte_budget=byte_budget,
        )

    def test_byte_budget_must_be_positive(self):
        with pytest.raises(DatabaseError):
            Database(index_cache_byte_budget=0)

    def test_bytes_tracked_per_backend(self):
        db = self.make_db()
        trie = db.trie("R", ("A", "B"))
        compact = db.compact_index("S", ("B", "C"))
        flat = db.sorted_index("T", ("A", "C"))
        info = db.cache_info()
        assert info.bytes_by_backend == {
            "trie": trie.nbytes(),
            "compact": compact.nbytes(),
            "sorted": flat.nbytes(),
        }
        assert info.bytes_total == sum(info.bytes_by_backend.values())
        assert info.byte_budget is None

    def test_eviction_respects_byte_budget(self):
        probe = self.make_db()
        one = probe.compact_index("R", ("A", "B")).nbytes()
        db = self.make_db(byte_budget=2 * one + one // 2)
        for name, order in (
            ("R", ("A", "B")),
            ("S", ("B", "C")),
            ("T", ("A", "C")),
        ):
            db.compact_index(name, order)
        info = db.cache_info()
        assert info.entries == 2
        assert info.bytes_total <= info.byte_budget
        assert info.evictions >= 1

    def test_single_oversized_index_still_cached(self):
        db = self.make_db(byte_budget=1)
        index = db.compact_index("R", ("A", "B"))
        assert db.compact_index("R", ("A", "B")) is index
        assert db.cache_info().entries == 1

    def test_release_returns_bytes(self):
        db = self.make_db()
        db.compact_index("R", ("A", "B"))
        assert db.cache_info().bytes_total > 0
        db.add(
            Relation("R", ("A", "B"), [(9, 9)]), replace=True
        )
        assert db.cache_info().bytes_total == 0


class TestStatsCacheBudget:
    def test_bounded_fifo(self):
        db = Database(stats_cache_budget=2)
        db.stats_cache_put("R", ("a",), 1)
        db.stats_cache_put("R", ("b",), 2)
        db.stats_cache_put("R", ("c",), 3)
        assert db.cached_stats_count() == 2
        assert db.stats_cache_get("R", ("a",)) is None  # oldest evicted
        assert db.stats_cache_get("R", ("c",)) == 3

    def test_budget_must_be_positive(self):
        with pytest.raises(DatabaseError):
            Database(stats_cache_budget=0)
