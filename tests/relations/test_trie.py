"""Unit tests for the (ST1)-(ST3) trie index."""

import pytest

from repro.errors import SchemaError
from repro.relations.relation import Relation
from repro.relations.trie import TrieIndex


@pytest.fixture
def relation():
    return Relation(
        "R",
        ("A", "B", "C"),
        [(1, 1, 1), (1, 1, 2), (1, 2, 1), (2, 1, 1), (2, 2, 2)],
    )


@pytest.fixture
def trie(relation):
    return TrieIndex(relation, ("A", "B", "C"))


class TestConstruction:
    def test_len(self, trie):
        assert len(trie) == 5

    def test_arity(self, trie):
        assert trie.arity == 3

    def test_order_must_be_permutation(self, relation):
        with pytest.raises(SchemaError):
            TrieIndex(relation, ("A", "B"))
        with pytest.raises(SchemaError):
            TrieIndex(relation, ("A", "B", "Z"))

    def test_reordered_levels(self, relation):
        trie = TrieIndex(relation, ("C", "B", "A"))
        assert trie.contains_prefix((1, 1, 1))
        assert trie.contains_prefix((2, 1, 1))  # (C,B,A) = reversed (1,1,2)
        assert not trie.contains_prefix((9,))

    def test_empty_relation(self):
        trie = TrieIndex(Relation("R", ("A",)), ("A",))
        assert len(trie) == 0
        assert trie.count(trie.root, 1) == 0


class TestST1:
    def test_walk_root(self, trie):
        assert trie.walk(()) is trie.root

    def test_walk_prefix(self, trie):
        node = trie.walk((1,))
        assert node is not None
        assert set(node.children) == {1, 2}

    def test_walk_missing(self, trie):
        assert trie.walk((9,)) is None
        assert trie.walk((1, 9)) is None

    def test_contains_prefix(self, trie):
        assert trie.contains_prefix((1, 2))
        assert trie.contains_prefix((1, 2, 1))
        assert not trie.contains_prefix((1, 2, 2))

    def test_descend_resumes(self, trie):
        node = trie.walk((1,))
        assert trie.descend(node, (1, 2)) is not None
        assert trie.descend(node, (9,)) is None


class TestST2:
    def test_count_at_root(self, trie):
        # Distinct prefixes at each depth: A values, (A,B) pairs, tuples.
        assert trie.count(trie.root, 0) == 1
        assert trie.count(trie.root, 1) == 2
        assert trie.count(trie.root, 2) == 4
        assert trie.count(trie.root, 3) == 5

    def test_count_below_prefix(self, trie):
        node = trie.walk((1,))
        assert trie.count(node, 1) == 2  # B values under A=1
        assert trie.count(node, 2) == 3  # (B,C) pairs under A=1

    def test_count_none_node(self, trie):
        assert trie.count(None, 1) == 0

    def test_count_beyond_depth(self, trie):
        assert trie.count(trie.root, 4) == 0

    def test_prefix_count(self, trie):
        assert trie.prefix_count((1, 1), 1) == 2
        assert trie.prefix_count((9,), 1) == 0


class TestST3:
    def test_paths_full(self, trie, relation):
        assert set(trie.paths(trie.root, 3)) == relation.tuples

    def test_paths_prefix(self, trie):
        node = trie.walk((1,))
        assert set(trie.paths(node, 1)) == {(1,), (2,)}
        assert set(trie.paths(node, 2)) == {(1, 1), (1, 2), (2, 1)}

    def test_paths_zero_depth(self, trie):
        assert list(trie.paths(trie.root, 0)) == [()]

    def test_paths_none(self, trie):
        assert list(trie.paths(None, 2)) == []

    def test_paths_match_counts(self, trie):
        for depth in range(4):
            assert len(list(trie.paths(trie.root, depth))) == trie.count(
                trie.root, depth
            )

    def test_tuples_roundtrip(self, trie, relation):
        assert set(trie.tuples()) == relation.tuples

    def test_to_relation(self, trie, relation):
        assert trie.to_relation().equivalent(relation)

    def test_to_relation_reordered(self, relation):
        trie = TrieIndex(relation, ("B", "A", "C"))
        assert trie.to_relation().equivalent(relation)


class TestCounts:
    def test_counts_consistency_random(self):
        import random

        rng = random.Random(7)
        rows = {
            tuple(rng.randrange(4) for _ in range(4)) for _ in range(60)
        }
        rel = Relation("R", ("A", "B", "C", "D"), rows)
        trie = TrieIndex(rel, ("A", "B", "C", "D"))
        # Every node's counts[d] equals the number of distinct paths.
        for prefix_len in range(4):
            prefixes = {row[:prefix_len] for row in rows}
            for prefix in prefixes:
                node = trie.walk(prefix)
                for depth in range(4 - prefix_len + 1):
                    expected = len(
                        {
                            row[prefix_len : prefix_len + depth]
                            for row in rows
                            if row[:prefix_len] == prefix
                        }
                    )
                    assert trie.count(node, depth) == expected


class TestDeepTraversal:
    def test_paths_beyond_recursion_limit(self):
        """High-arity tries must traverse iteratively (explicit stack):
        a depth well past sys.getrecursionlimit() cannot rely on call
        recursion."""
        import sys

        arity = sys.getrecursionlimit() + 200
        attrs = tuple(f"A{i}" for i in range(arity))
        rows = [tuple(range(arity)), tuple(range(1, arity + 1))]
        rel = Relation("Deep", attrs, rows)
        trie = TrieIndex(rel, attrs)
        assert sorted(trie.paths(trie.root, arity)) == sorted(rows)
        assert len(trie) == 2
