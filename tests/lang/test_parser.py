"""The parser: AST shapes, normalization, and caret-positioned errors."""

import pytest

from repro.errors import ParseError
from repro.lang.nodes import Aggregate, Column, Equals, InSet, Star
from repro.lang.parser import normalize, parse, parse_statements


class TestShapes:
    def test_star_select(self):
        statement = parse("select * from R, S;")
        assert isinstance(statement.select, Star)
        assert [r.name for r in statement.relations] == ["R", "S"]

    def test_projection(self):
        statement = parse("select A, C from R;")
        assert [c.name for c in statement.select] == ["A", "C"]
        assert all(isinstance(c, Column) for c in statement.select)

    def test_conditions(self):
        statement = parse(
            "select * from R where A = 1 and B in (2, 3) and C = 'x';"
        )
        eq, inset, string_eq = statement.conditions
        assert isinstance(eq, Equals) and eq.value == 1
        assert isinstance(inset, InSet) and inset.values == (2, 3)
        assert string_eq.value == "x"

    def test_negative_literals(self):
        statement = parse("select * from R where A = -5 and B in (-1, 0);")
        assert statement.conditions[0].value == -5
        assert statement.conditions[1].values == (-1, 0)

    def test_aggregates(self):
        statement = parse(
            "select count(*), sum(A), avg(B), count(distinct C), "
            "count_distinct(D) from R;"
        )
        funcs = [a.func for a in statement.select]
        assert funcs == ["count", "sum", "avg", "count_distinct",
                         "count_distinct"]
        labels = [a.label for a in statement.select]
        assert labels[0] == "count(*)"
        assert labels[3] == "count(distinct C)"
        assert all(isinstance(a, Aggregate) for a in statement.select)

    def test_group_by(self):
        statement = parse("select A, count(*) from R group by A;")
        assert [k.name for k in statement.group_by] == ["A"]

    def test_sample_with_seed(self):
        statement = parse("select * from R sample 5 seed 7;")
        assert statement.sample == 5
        assert statement.sample_seed == 7

    def test_explain_flags(self):
        assert parse("explain select * from R").explain is True
        analyzed = parse("explain analyze select * from R")
        assert analyzed.explain and analyzed.analyze

    def test_multiple_statements_and_empty_ones(self):
        statements = parse_statements(
            "; select * from R; ; select * from S"
        )
        assert len(statements) == 2

    def test_parse_rejects_multiple_statements(self):
        with pytest.raises(ParseError, match="one statement"):
            parse("select * from R; select * from S;")
        with pytest.raises(ParseError, match="no statement"):
            parse("  -- only a comment\n")

    def test_positions_do_not_affect_equality(self):
        assert parse("select * from R") == parse("SELECT\n  *\nFROM R ;")


class TestNormalize:
    def test_case_and_whitespace_collapse(self):
        canonical = normalize("select * from R where A = 1")
        assert canonical == "select * from R where A = 1"
        assert normalize("SELECT  *\n FROM R\tWHERE A=1 ;") == canonical
        assert normalize("select * -- comment\n from R where A = 1") == (
            canonical
        )

    def test_identifier_case_is_preserved(self):
        assert normalize("select * from r") != normalize("select * from R")

    def test_literals_reserialize(self):
        assert normalize("select * from R where A = 007") == (
            "select * from R where A = 7"
        )
        assert normalize("select * from R where A = 'it''s'") == (
            "select * from R where A = 'it''s'"
        )

    def test_punctuation_spacing(self):
        assert normalize("select count( * ),sum( A )from R,S") == (
            "select count(*), sum(A) from R, S"
        )

    def test_idempotent(self):
        texts = [
            "select A, count(distinct B) from R, S group by A;",
            "explain analyze select * from R where B in (1, -2);",
            "select * from R sample 3 seed 9",
        ]
        for text in texts:
            canonical = normalize(text)
            assert normalize(canonical) == canonical
            assert parse(canonical) == parse(text)


class TestDiagnostics:
    """Parse errors carry exact positions and render caret diagnostics."""

    def test_reserved_word_as_relation(self):
        with pytest.raises(ParseError) as info:
            parse("select * from from;")
        error = info.value
        assert error.line == 1
        assert error.column == 15
        assert error.length == 4
        diagnostic = error.caret_diagnostic()
        assert diagnostic.splitlines() == [
            "parse error at line 1, column 15: expected a relation name, "
            "got reserved word 'from'",
            "  select * from from;",
            "                ^^^^",
        ]

    def test_caret_on_later_line(self):
        with pytest.raises(ParseError) as info:
            parse("select *\nfrom R\nwhere A ** 1;")
        diagnostic = info.value.caret_diagnostic()
        assert diagnostic.splitlines() == [
            "parse error at line 3, column 9: expected '=' or IN after "
            "'A', got '*'",
            "  where A ** 1;",
            "          ^",
        ]

    def test_star_cannot_mix(self):
        with pytest.raises(ParseError, match="cannot mix"):
            parse("select *, A from R;")
        with pytest.raises(ParseError, match="cannot mix"):
            parse("select A, * from R;")

    def test_count_needs_star_or_distinct(self):
        with pytest.raises(ParseError, match="'\\*' or DISTINCT"):
            parse("select count(A) from R;")

    def test_sample_count_must_be_literal(self):
        with pytest.raises(ParseError, match="literal row count"):
            parse("select * from R sample A;")

    def test_trailing_garbage(self):
        with pytest.raises(ParseError, match="expected ';'"):
            parse("select * from R nonsense")

    def test_eof_errors_render_a_caret(self):
        with pytest.raises(ParseError) as info:
            parse("select * from")
        assert "^" in info.value.caret_diagnostic()
