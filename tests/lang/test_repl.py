"""The REPL: golden sessions over StringIO — tables, meta-commands,
multi-line statements, and caret recovery without session death."""

import io

import pytest

from repro.lang.repl import Repl, render_table
from repro.query.context import ExecutionContext
from repro.relations.database import Database
from repro.relations.relation import Relation


@pytest.fixture()
def database():
    r = Relation("R", ("A", "B"), [(0, 1), (1, 2), (2, 2)])
    s = Relation("S", ("B", "C"), [(1, 10), (2, 20)])
    return Database([r, s])


def run_session(database, text, **kwargs):
    output = io.StringIO()
    repl = Repl(
        database,
        input_stream=io.StringIO(text),
        output_stream=output,
        **kwargs,
    )
    status = repl.run()
    return status, output.getvalue()


class TestRenderTable:
    def test_golden_alignment(self):
        assert render_table(("A", "BB"), [(1, 10), (200, 2)]) == (
            " A   | BB\n"
            "-----+----\n"
            " 1   | 10\n"
            " 200 | 2\n"
            "(2 rows)"
        )

    def test_separator_aligns_for_three_columns(self):
        text = render_table(("a", "bb", "c"), [(1, 2, 3)])
        header, separator, *_ = text.splitlines()
        assert [i for i, ch in enumerate(header) if ch == "|"] == [
            i for i, ch in enumerate(separator) if ch == "+"
        ]

    def test_singular_trailer_and_none_cells(self):
        text = render_table(("x",), [(None,)])
        assert text.endswith("(1 row)")
        assert " \n" not in text + "\n"  # None renders empty, no padding


class TestSessions:
    def test_golden_query_session(self, database):
        status, output = run_session(
            database, "select A, C from R, S where A = 0;\n"
        )
        assert status == 0
        assert output == (
            " A | C\n"
            "---+----\n"
            " 0 | 10\n"
            "(1 row)\n"
        )

    def test_multi_line_statement(self, database):
        _, output = run_session(
            database, "select count(*)\nfrom R, S\n;\n"
        )
        assert "count(*)" in output
        assert "(1 row)" in output

    def test_trailing_statement_runs_at_eof(self, database):
        _, output = run_session(database, "select count(*) from R")
        assert "(1 row)" in output

    def test_describe_lists_relations(self, database):
        _, output = run_session(database, "\\d\n")
        assert output == (
            " name | attributes | rows\n"
            "------+------------+------\n"
            " R    | A, B       | 3\n"
            " S    | B, C       | 2\n"
            "(2 rows)\n"
        )

    def test_timing_toggle(self, database):
        _, output = run_session(
            database, "\\timing\nselect count(*) from R;\n"
        )
        assert "Timing is on." in output
        assert "Time: " in output and " ms" in output

    def test_meta_commands_work_mid_statement(self, database):
        _, output = run_session(
            database, "select count(*)\n\\timing\nfrom R;\n"
        )
        assert "Timing is on." in output
        assert "(1 row)" in output  # the buffered statement still ran

    def test_quit_stops_reading(self, database):
        status, output = run_session(
            database, "\\q\nselect nonsense;\n"
        )
        assert status == 0
        assert output == ""

    def test_parse_error_recovers(self, database):
        _, output = run_session(
            database,
            "select * from from;\nselect count(*) from R;\n",
        )
        assert "parse error at line 1, column 15" in output
        assert "^^^^" in output
        assert "(1 row)" in output  # the session survived

    def test_compile_error_recovers(self, database):
        _, output = run_session(
            database, "select * from Zed;\nselect count(*) from R;\n"
        )
        assert "compile error" in output
        assert "unknown relation 'Zed'" in output
        assert "(1 row)" in output

    def test_help_and_unknown_meta(self, database):
        _, output = run_session(database, "\\help\n\\frobnicate\n")
        assert "Meta-commands:" in output
        assert "unknown meta-command \\frobnicate" in output

    def test_interactive_mode_prompts(self, database):
        _, output = run_session(
            database,
            "select count(*)\nfrom R;\n",
            interactive=True,
        )
        assert "repro> " in output
        assert "   ...> " in output

    def test_context_algorithm_applies(self, database):
        _, output = run_session(
            database,
            "explain select * from R, S;\n",
            context=ExecutionContext(algorithm="leapfrog"),
        )
        assert "leapfrog" in output
