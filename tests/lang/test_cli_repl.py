"""The ``repl`` subcommand: a scripted session over CSV files."""

import io

import pytest

from repro.__main__ import main


@pytest.fixture
def triangle_files(tmp_path):
    (tmp_path / "R.csv").write_text("A,B\n0,1\n1,2\n2,0\n")
    (tmp_path / "S.csv").write_text("B,C\n1,5\n2,6\n0,7\n")
    (tmp_path / "T.csv").write_text("A,C\n0,5\n1,6\n2,7\n")
    return [str(tmp_path / f"{n}.csv") for n in ("R", "S", "T")]


def run_repl(monkeypatch, files, script, extra_args=()):
    monkeypatch.setattr("sys.stdin", io.StringIO(script))
    return main(["repl", *files, *extra_args])


class TestReplCommand:
    def test_golden_session(self, triangle_files, monkeypatch, capsys):
        status = run_repl(
            monkeypatch,
            triangle_files,
            "select * from R, S, T;\n",
        )
        assert status == 0
        lines = capsys.readouterr().out.splitlines()
        assert lines[0] == " A | B | C"
        assert lines[1] == "---+---+---"
        assert sorted(lines[2:5]) == [
            " 0 | 1 | 5",
            " 1 | 2 | 6",
            " 2 | 0 | 7",
        ]
        assert lines[5] == "(3 rows)"

    def test_describe_and_aggregate(self, triangle_files, monkeypatch,
                                    capsys):
        status = run_repl(
            monkeypatch,
            triangle_files,
            "\\d\nselect count(*), avg(C) from R, S, T;\n",
        )
        assert status == 0
        out = capsys.readouterr().out
        assert " R    | A, B       | 3" in out
        assert "count(*) | avg(C)" in out
        assert " 3        | 6.0" in out

    def test_algorithm_flag_reaches_the_plan(self, triangle_files,
                                             monkeypatch, capsys):
        status = run_repl(
            monkeypatch,
            triangle_files,
            "explain select * from R, S, T;\n",
            extra_args=["--algorithm", "leapfrog"],
        )
        assert status == 0
        assert "leapfrog" in capsys.readouterr().out

    def test_errors_do_not_exit_nonzero(self, triangle_files,
                                        monkeypatch, capsys):
        status = run_repl(
            monkeypatch, triangle_files, "select * from Missing;\n"
        )
        assert status == 0
        out = capsys.readouterr().out
        assert "unknown relation 'Missing'" in out
        assert "^" in out
