"""The lexer: token types, positions, literals, comments, errors."""

import pytest

from repro.errors import ParseError
from repro.lang.lexer import KEYWORDS, Token, tokenize


def types(source):
    return [t.type for t in tokenize(source)]


class TestTokens:
    def test_stream_ends_with_eof(self):
        tokens = tokenize("select *")
        assert tokens[-1].type == "eof"
        assert types("") == ["eof"]

    def test_keywords_lex_case_insensitively(self):
        for spelling in ("select", "SELECT", "Select", "sElEcT"):
            (token, _eof) = tokenize(spelling)
            assert token.type == "keyword"
            assert token.value == "select"
            assert token.text == spelling

    def test_identifiers_stay_case_sensitive(self):
        upper, lower, _eof = tokenize("Edges edges")
        assert upper.type == lower.type == "ident"
        assert upper.value == "Edges"
        assert lower.value == "edges"

    def test_every_keyword_is_reserved(self):
        for word in KEYWORDS:
            (token, _eof) = tokenize(word.upper())
            assert token.type == "keyword", word

    def test_integers_carry_int_values(self):
        (token, _eof) = tokenize("042")
        assert token.type == "int"
        assert token.value == 42
        assert token.text == "042"

    def test_strings_unescape_doubled_quotes(self):
        (token, _eof) = tokenize("'it''s'")
        assert token.type == "string"
        assert token.value == "it's"

    def test_comments_vanish(self):
        assert types("select -- the rest\n*") == ["keyword", "punct", "eof"]

    def test_punctuation(self):
        tokens = tokenize("*,()=;-")
        assert [t.value for t in tokens[:-1]] == list("*,()=;-")


class TestPositions:
    def test_columns_are_one_based(self):
        first, second, _eof = tokenize("ab cd")
        assert (first.line, first.column) == (1, 1)
        assert (second.line, second.column) == (1, 4)

    def test_newlines_advance_lines(self):
        tokens = tokenize("select\n  R")
        assert (tokens[1].line, tokens[1].column) == (2, 3)

    def test_length_is_lexeme_length(self):
        (token, eof) = tokenize("'ab''cd'")
        assert token.length == len("'ab''cd'")
        assert eof.length == 1  # never zero, so carets always render


class TestErrors:
    def test_unexpected_character_points_at_itself(self):
        with pytest.raises(ParseError) as info:
            tokenize("select @")
        assert info.value.column == 8
        assert "@" in str(info.value)

    def test_unterminated_string(self):
        with pytest.raises(ParseError, match="unterminated"):
            tokenize("select 'oops")

    def test_string_cannot_span_lines(self):
        with pytest.raises(ParseError, match="unterminated"):
            tokenize("select 'a\nb'")

    def test_describe_reads_naturally(self):
        assert tokenize("")[0].describe() == "end of input"
        assert tokenize("R")[0].describe() == "'R'"
        assert Token("int", 7, "7", 1, 1).describe() == "'7'"
