"""The compiler: statements lower onto the exact ``Q`` chain a Python
caller would write, and semantic errors carry caret positions."""

import pytest

from repro.errors import CompileError
from repro.lang import compile_query, parse
from repro.query.builder import Q
from repro.query.context import ExecutionContext
from repro.relations.database import Database
from repro.relations.relation import Relation


@pytest.fixture()
def database():
    r = Relation("R", ("A", "B"), [(i, i % 3) for i in range(9)])
    s = Relation("S", ("B", "C"), [(i % 3, i) for i in range(9)])
    t = Relation("T", ("A", "C"), [(i, i) for i in range(9)])
    return Database([r, s, t])


def relations(database, *names):
    return [database[name] for name in names]


class TestLowering:
    def test_rows_match_builder_stream(self, database):
        compiled = compile_query("select * from R, S, T;", database)
        assert compiled.kind == "rows"
        expected = list(
            Q(*relations(database, "R", "S", "T")).on(database).stream()
        )
        assert sorted(compiled.run().rows) == sorted(expected)
        assert compiled.columns == ("A", "B", "C")

    def test_where_and_projection(self, database):
        compiled = compile_query(
            "select C from R, S where A = 1 and B in (0, 1);", database
        )
        oracle = (
            Q(*relations(database, "R", "S"))
            .where(A=1)
            .where_in("B", (0, 1))
            .select("C")
            .on(database)
        )
        assert sorted(compiled.run().rows) == sorted(oracle.stream())
        assert compiled.columns == ("C",)

    def test_aggregates_one_row(self, database):
        compiled = compile_query(
            "select count(*), sum(C), min(C), max(C), avg(C), "
            "count(distinct B) from R, S;",
            database,
        )
        assert compiled.kind == "aggregate"
        oracle = Q(*relations(database, "R", "S")).on(database)
        assert compiled.run().rows == [(
            oracle.count(),
            oracle.sum("C"),
            oracle.min("C"),
            oracle.max("C"),
            oracle.avg("C"),
            oracle.count_distinct("B"),
        )]
        assert compiled.columns[-1] == "count(distinct B)"

    def test_group_by_rows(self, database):
        compiled = compile_query(
            "select B, count(*), avg(C) from R, S group by B;", database
        )
        assert compiled.kind == "group"
        assert compiled.columns == ("B", "count(*)", "avg(C)")
        grouped = (
            Q(*relations(database, "R", "S"))
            .on(database)
            .group_by("B")
            .agg(n="count", mean=("avg", "C"))
        )
        expected = set()
        for key, values in grouped.items():
            key = key if isinstance(key, tuple) else (key,)
            expected.add((*key, values["n"], values["mean"]))
        assert set(compiled.run().rows) == expected

    def test_group_key_missing_from_select_is_appended(self, database):
        compiled = compile_query(
            "select count(*) from R, S group by B;", database
        )
        assert compiled.columns == ("B", "count(*)")

    def test_sample_is_seed_stable(self, database):
        compiled = compile_query(
            "select * from R, S sample 3 seed 11;", database
        )
        assert compiled.kind == "sample"
        oracle = Q(*relations(database, "R", "S")).on(database)
        assert compiled.run().rows == oracle.sample(3, seed=11)

    def test_explain_returns_plan_text(self, database):
        compiled = compile_query("explain select * from R, S;", database)
        assert compiled.kind == "explain"
        result = compiled.run()
        assert result.rows == []
        assert "R" in result.text and "S" in result.text

    def test_explain_analyze_measures(self, database):
        compiled = compile_query(
            "explain analyze select * from R, S;", database
        )
        assert compiled.kind == "explain_analyze"
        assert compiled.run().text

    def test_context_options_flow_through(self, database):
        context = ExecutionContext(algorithm="leapfrog")
        compiled = compile_query("select * from R, S;", database, context)
        assert compiled.builder.context.algorithm == "leapfrog"
        assert compiled.builder.context.database is database

    def test_run_against_prepared_query(self, database):
        compiled = compile_query("select * from R, S;", database)
        prepared = compiled.builder.prepare()
        assert sorted(compiled.run(prepared).rows) == sorted(
            compiled.run().rows
        )

    def test_normalized_is_the_cache_key(self, database):
        compiled = compile_query("SELECT  * FROM R , S ;", database)
        assert compiled.normalized == "select * from R, S"


class TestCompileErrors:
    def test_unknown_relation_names_catalog(self, database):
        with pytest.raises(CompileError) as info:
            compile_query("select * from R, Z;", database)
        error = info.value
        assert "unknown relation 'Z'" in str(error)
        assert "R, S, T" in str(error)
        assert error.column == 18
        assert "^" in error.caret_diagnostic()

    def test_duplicate_relation(self, database):
        with pytest.raises(CompileError, match="named twice"):
            compile_query("select * from R, R;", database)

    def test_unknown_attribute_in_where(self, database):
        with pytest.raises(CompileError) as info:
            compile_query("select * from R where Z = 1;", database)
        assert "unknown attribute 'Z'" in str(info.value)
        assert "A, B" in str(info.value)

    def test_unknown_attribute_in_select(self, database):
        with pytest.raises(CompileError, match="SELECT names unknown"):
            compile_query("select Z from R;", database)

    def test_plain_column_with_aggregate_needs_group_by(self, database):
        with pytest.raises(CompileError) as info:
            compile_query("select A, count(*) from R;", database)
        assert "requires GROUP BY" in str(info.value)
        assert info.value.column == 8  # points at A, not at count(*)

    def test_grouped_column_must_be_a_key(self, database):
        with pytest.raises(CompileError, match="neither aggregated nor"):
            compile_query(
                "select A, count(*) from R, S group by B;", database
            )

    def test_group_by_without_aggregate(self, database):
        with pytest.raises(CompileError, match="at least one aggregate"):
            compile_query("select A from R group by A;", database)

    def test_sample_rejects_aggregates_and_group_by(self, database):
        with pytest.raises(CompileError, match="SAMPLE does not combine"):
            compile_query("select count(*) from R sample 2;", database)
        with pytest.raises(CompileError, match="SAMPLE does not combine"):
            compile_query(
                "select B, count(*) from R group by B sample 2;", database
            )

    def test_sample_needs_positive_count(self, database):
        with pytest.raises(CompileError, match="positive row count"):
            compile_query("select * from R sample 0;", database)

    def test_caret_points_at_original_spelling(self, database):
        # The diagnostic renders against the text as typed, not the
        # normalized form — columns must line up with the user's input.
        with pytest.raises(CompileError) as info:
            compile_query("SELECT  *  FROM  Nope;", database)
        diagnostic = info.value.caret_diagnostic()
        lines = diagnostic.splitlines()
        assert lines[1] == "  SELECT  *  FROM  Nope;"
        assert lines[2] == "                   ^^^^"
