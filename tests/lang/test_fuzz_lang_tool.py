"""The language fuzzer's harness: seeded replay and clean short runs."""

import importlib.util
import pathlib

import pytest

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent.parent
TOOL = REPO_ROOT / "tools" / "fuzz_lang.py"


@pytest.fixture(scope="module")
def fuzz():
    spec = importlib.util.spec_from_file_location("fuzz_lang", TOOL)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestReplay:
    def test_short_run_passes(self, fuzz, capsys):
        assert fuzz.main(["--iterations", "30", "--seed", "3"]) == 0
        assert "no disagreements" in capsys.readouterr().out

    def test_replay_is_self_contained(self, fuzz, capsys):
        assert fuzz.main(["--replay", "123456789"]) == 0
        assert "seed 123456789 passes" in capsys.readouterr().out

    def test_instances_are_seed_deterministic(self, fuzz):
        import random

        first = fuzz.random_catalog(random.Random(42))
        second = fuzz.random_catalog(random.Random(42))
        assert [r.tuples for r in first] == [r.tuples for r in second]
        text_a, _ = fuzz.random_statement(random.Random(7), first)
        text_b, _ = fuzz.random_statement(random.Random(7), second)
        assert text_a == text_b


class TestGenerators:
    def test_statements_parse_and_respell_normalizes(self, fuzz):
        import random

        from repro.lang import normalize, parse

        rng = random.Random(11)
        database = fuzz.random_catalog(rng)
        for _ in range(50):
            text, _spec = fuzz.random_statement(rng, database)
            parse(text)
            assert normalize(fuzz.respell(rng, text)) == normalize(text)

    def test_mutations_never_crash_differently(self, fuzz):
        import random

        from repro.errors import LangError
        from repro.lang import compile_query

        rng = random.Random(13)
        database = fuzz.random_catalog(rng)
        for _ in range(100):
            text, _spec = fuzz.random_statement(rng, database)
            mutated = fuzz.mutate(rng, text)
            try:
                compile_query(mutated, database).run()
            except LangError as error:
                assert "^" in error.caret_diagnostic()
