"""Shared builders and the brute-force aggregate oracle for the test suite.

The oracle functions compute every aggregate the query layer offers by
plain Python over a *materialized* row list — no folds, no pruning, no
specs — so tests can assert exact equality between the engine's
``count()`` / ``sum()`` / ``group_by().agg()`` / ``sample()`` results
and an implementation too simple to share a bug with them.
"""

from __future__ import annotations

from repro.core.query import JoinQuery
from repro.relations.relation import Relation


def triangle_query(
    r_rows=((0, 1), (1, 2), (2, 0)),
    s_rows=((1, 5), (2, 6), (0, 7)),
    t_rows=((0, 5), (1, 6), (2, 7)),
) -> JoinQuery:
    """A small triangle query with configurable contents."""
    return JoinQuery(
        [
            Relation("R", ("A", "B"), r_rows),
            Relation("S", ("B", "C"), s_rows),
            Relation("T", ("A", "C"), t_rows),
        ]
    )


def two_path_query() -> JoinQuery:
    """R(A,B) join S(B,C) — the simplest two-relation query."""
    return JoinQuery(
        [
            Relation("R", ("A", "B"), [(1, 10), (2, 10), (3, 30)]),
            Relation("S", ("B", "C"), [(10, 7), (30, 8), (40, 9)]),
        ]
    )


def single_relation_query() -> JoinQuery:
    """A one-relation query (degenerate but legal)."""
    return JoinQuery([Relation("R", ("A", "B"), [(1, 2), (3, 4)])])


# ---------------------------------------------------------------------------
# The brute-force aggregate oracle
# ---------------------------------------------------------------------------


def oracle_count(rows) -> int:
    """``COUNT(*)`` the dumb way: materialize and measure."""
    return len(list(rows))


def oracle_sum(rows, attributes, attribute):
    """``SUM(attribute)``; 0 on an empty result (Python convention)."""
    position = tuple(attributes).index(attribute)
    return sum(row[position] for row in rows)


def oracle_min(rows, attributes, attribute):
    """``MIN(attribute)``; None on an empty result."""
    position = tuple(attributes).index(attribute)
    return min((row[position] for row in rows), default=None)


def oracle_max(rows, attributes, attribute):
    """``MAX(attribute)``; None on an empty result."""
    position = tuple(attributes).index(attribute)
    return max((row[position] for row in rows), default=None)


def oracle_avg(rows, attributes, attribute):
    """``AVG(attribute)``; None on an empty result."""
    position = tuple(attributes).index(attribute)
    column = [row[position] for row in rows]
    return sum(column) / len(column) if column else None


def oracle_count_distinct(rows, attributes, attribute) -> int:
    """``COUNT(DISTINCT attribute)``; 0 on an empty result."""
    position = tuple(attributes).index(attribute)
    return len({row[position] for row in rows})


def oracle_group_by(rows, attributes, keys, **aggregates):
    """Grouped aggregates in the engine's output shape.

    ``aggregates`` maps output names to ``"count"`` or ``(kind,
    attribute)`` pairs with kind in ``sum`` / ``min`` / ``max`` /
    ``avg`` / ``count_distinct`` — the same shorthand
    :meth:`GroupedQuery.agg` accepts.  Returns
    ``{key tuple: {name: value}}`` with keys sorted, matching
    :meth:`repro.aggregate.specs.GroupBy.finish` exactly.
    """
    attributes = tuple(attributes)
    key_positions = tuple(attributes.index(a) for a in keys)
    groups: dict[tuple, list] = {}
    for row in rows:
        groups.setdefault(
            tuple(row[p] for p in key_positions), []
        ).append(row)
    result = {}
    for key in sorted(groups):
        members = groups[key]
        values = {}
        for name, what in aggregates.items():
            if what == "count":
                values[name] = len(members)
            else:
                kind, attribute = what
                position = attributes.index(attribute)
                column = [row[position] for row in members]
                if kind == "sum":
                    values[name] = sum(column)
                elif kind == "min":
                    values[name] = min(column)
                elif kind == "max":
                    values[name] = max(column)
                elif kind == "avg":
                    values[name] = sum(column) / len(column)
                elif kind == "count_distinct":
                    values[name] = len(set(column))
                else:  # pragma: no cover - test-author error
                    raise ValueError(f"unknown oracle aggregate {what!r}")
        result[key] = values
    return result


def assert_valid_sample(sample, rows, k) -> None:
    """A sample is valid iff: distinct rows, every one a result row, and
    exactly ``min(k, |distinct result|)`` of them."""
    universe = set(rows)
    assert len(sample) == len(set(sample)), "sample has duplicate rows"
    assert set(sample) <= universe, "sample contains non-result rows"
    assert len(sample) == min(k, len(universe)), (
        f"sample size {len(sample)} != min({k}, {len(universe)})"
    )
