"""Shared builders for the test suite."""

from __future__ import annotations

from repro.core.query import JoinQuery
from repro.relations.relation import Relation


def triangle_query(
    r_rows=((0, 1), (1, 2), (2, 0)),
    s_rows=((1, 5), (2, 6), (0, 7)),
    t_rows=((0, 5), (1, 6), (2, 7)),
) -> JoinQuery:
    """A small triangle query with configurable contents."""
    return JoinQuery(
        [
            Relation("R", ("A", "B"), r_rows),
            Relation("S", ("B", "C"), s_rows),
            Relation("T", ("A", "C"), t_rows),
        ]
    )


def two_path_query() -> JoinQuery:
    """R(A,B) join S(B,C) — the simplest two-relation query."""
    return JoinQuery(
        [
            Relation("R", ("A", "B"), [(1, 10), (2, 10), (3, 30)]),
            Relation("S", ("B", "C"), [(10, 7), (30, 8), (40, 9)]),
        ]
    )


def single_relation_query() -> JoinQuery:
    """A one-relation query (degenerate but legal)."""
    return JoinQuery([Relation("R", ("A", "B"), [(1, 2), (3, 4)])])
