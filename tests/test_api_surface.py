"""The public API surface matches its checked-in snapshot.

The kwargs-drift regression gate: ``tools/check_api_surface.py``
snapshots every ``repro.__all__`` export's signature; this test (and
the CI docs job) fails when the live package diverges, so signature
changes are always an explicit, reviewed ``--update`` commit.
"""

import importlib.util
import pathlib

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
TOOL = REPO_ROOT / "tools" / "check_api_surface.py"


def _load_tool():
    spec = importlib.util.spec_from_file_location("check_api_surface", TOOL)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_snapshot_exists():
    assert (REPO_ROOT / "tools" / "api_surface.json").exists()


def test_live_surface_matches_snapshot():
    tool = _load_tool()
    import json

    snapshot = json.loads(
        (REPO_ROOT / "tools" / "api_surface.json").read_text()
    )
    problems = tool.diff(snapshot, tool.current_surface())
    assert not problems, "\n".join(problems)


def test_frozen_shims_match_their_table():
    # The deprecated entry points have no --update path: the tool's
    # FROZEN_SHIMS table must match the live package verbatim.
    tool = _load_tool()
    assert tool.check_frozen_shims() == []


def test_frozen_shim_drift_is_reported():
    tool = _load_tool()
    tool.FROZEN_SHIMS = dict(tool.FROZEN_SHIMS, join="(relations)")
    problems = tool.check_frozen_shims()
    assert len(problems) == 1
    assert "repro.join" in problems[0]


def test_diff_reports_changes():
    tool = _load_tool()
    live = tool.current_surface()
    mutated = dict(live)
    mutated["join"] = "(relations)"  # pretend the signature shrank
    del mutated["iter_join"]
    mutated["brand_new"] = "(x)"
    problems = tool.diff(mutated, live)
    kinds = {p.split(":")[0] for p in problems}
    assert kinds == {"added", "removed", "changed"}
