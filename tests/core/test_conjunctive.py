"""Unit tests for full conjunctive queries (Section 7.3)."""

import pytest

from repro.core.conjunctive import Atom, ConjunctiveQuery, Const, Var
from repro.errors import QueryError
from repro.relations.database import Database
from repro.relations.relation import Relation


@pytest.fixture
def db():
    return Database(
        [
            Relation(
                "E",
                ("Src", "Dst"),
                [(1, 2), (2, 3), (3, 1), (1, 1), (2, 1)],
            ),
            Relation("L", ("Node", "Tag"), [(1, "a"), (2, "b"), (3, "a")]),
        ]
    )


class TestValidation:
    def test_full_query_ok(self):
        ConjunctiveQuery(
            ["x", "y"], [Atom("E", (Var("x"), Var("y")))]
        )

    def test_missing_head_var_rejected(self):
        with pytest.raises(QueryError):
            ConjunctiveQuery(["x"], [Atom("E", (Var("x"), Var("y")))])

    def test_extra_head_var_rejected(self):
        with pytest.raises(QueryError):
            ConjunctiveQuery(
                ["x", "z"], [Atom("E", (Var("x"), Var("x")))]
            )

    def test_duplicate_head_rejected(self):
        with pytest.raises(QueryError):
            ConjunctiveQuery(
                ["x", "x"], [Atom("E", (Var("x"), Var("x")))]
            )

    def test_empty_body_rejected(self):
        with pytest.raises(QueryError):
            ConjunctiveQuery([], [])

    def test_arity_mismatch_detected_at_reduce(self, db):
        cq = ConjunctiveQuery(["x"], [Atom("E", (Var("x"),))])
        with pytest.raises(QueryError):
            cq.reduce(db)

    def test_str_forms(self):
        cq = ConjunctiveQuery(
            ["x"], [Atom("E", (Var("x"), Const(3)))]
        )
        assert "E(x, 3)" in str(cq)


class TestReduction:
    def test_repeated_variable(self, db):
        """E(x, x) keeps only the diagonal."""
        cq = ConjunctiveQuery(["x"], [Atom("E", (Var("x"), Var("x")))])
        out = cq.evaluate(db)
        assert set(out.tuples) == {(1,)}

    def test_constant_selection(self, db):
        cq = ConjunctiveQuery(["x"], [Atom("E", (Var("x"), Const(1)))])
        out = cq.evaluate(db)
        assert set(out.tuples) == {(3,), (1,), (2,)}

    def test_constant_no_match(self, db):
        cq = ConjunctiveQuery(["x"], [Atom("E", (Var("x"), Const(99)))])
        assert cq.evaluate(db).is_empty()

    def test_repeated_subgoal_multiset_edges(self, db):
        """E(x,y) AND E(y,x): the same relation twice, distinct edges."""
        cq = ConjunctiveQuery(
            ["x", "y"],
            [
                Atom("E", (Var("x"), Var("y"))),
                Atom("E", (Var("y"), Var("x"))),
            ],
        )
        out = cq.evaluate(db)
        assert set(out.tuples) == {(1, 1), (1, 2), (2, 1)}

    def test_reduced_names_distinct(self, db):
        cq = ConjunctiveQuery(
            ["x", "y"],
            [
                Atom("E", (Var("x"), Var("y"))),
                Atom("E", (Var("y"), Var("x"))),
            ],
        )
        reduced = cq.reduce(db)
        assert reduced.edge_ids == ("E@0", "E@1")


class TestEvaluation:
    def test_triangle_in_graph(self, db):
        cq = ConjunctiveQuery(
            ["x", "y", "z"],
            [
                Atom("E", (Var("x"), Var("y"))),
                Atom("E", (Var("y"), Var("z"))),
                Atom("E", (Var("z"), Var("x"))),
            ],
        )
        out = cq.evaluate(db)
        assert (1, 2, 3) in out
        assert (2, 3, 1) in out
        assert (1, 1, 1) in out

    def test_join_with_labels(self, db):
        cq = ConjunctiveQuery(
            ["x", "y", "t"],
            [
                Atom("E", (Var("x"), Var("y"))),
                Atom("L", (Var("x"), Var("t"))),
            ],
        )
        out = cq.evaluate(db)
        assert (1, 2, "a") in out
        assert (2, 3, "b") in out

    def test_head_order_respected(self, db):
        cq = ConjunctiveQuery(
            ["y", "x"], [Atom("E", (Var("x"), Var("y")))]
        )
        out = cq.evaluate(db)
        assert out.attributes == ("y", "x")
        assert (2, 1) in out  # edge (1, 2) flipped

    def test_matches_bruteforce(self, db):
        """Reduction + NPRR equals direct substitution semantics."""
        cq = ConjunctiveQuery(
            ["x", "y", "t"],
            [
                Atom("E", (Var("x"), Var("y"))),
                Atom("E", (Var("y"), Var("x"))),
                Atom("L", (Var("y"), Var("t"))),
            ],
        )
        out = cq.evaluate(db)
        edges = db["E"].tuples
        labels = db["L"].tuples
        expected = {
            (x, y, t)
            for (x, y) in edges
            for (node, t) in labels
            if (y, x) in edges and node == y
        }
        assert set(out.tuples) == expected
