"""Unit tests for Leapfrog Triejoin and its sorted trie iterator."""

import itertools

import pytest

from repro.baselines.naive import naive_join
from repro.core.leapfrog import (
    LeapfrogTriejoin,
    SortedTrieIterator,
    leapfrog_join,
)
from repro.core.query import JoinQuery
from repro.errors import QueryError
from repro.relations.relation import Relation
from repro.workloads import generators, instances, queries

from tests.helpers import triangle_query, two_path_query


@pytest.fixture
def iterator():
    rel = Relation(
        "R", ("A", "B"), [(1, 1), (1, 3), (2, 2), (4, 1), (4, 5), (4, 9)]
    )
    return SortedTrieIterator(rel, ("A", "B"))


class TestSortedTrieIterator:
    def test_level_one_keys(self, iterator):
        iterator.open()
        keys = []
        while not iterator.at_end:
            keys.append(iterator.key())
            iterator.next()
        assert keys == [1, 2, 4]

    def test_level_two_keys(self, iterator):
        iterator.open()           # at A = 1
        iterator.seek(4)          # jump to A = 4
        assert iterator.key() == 4
        iterator.open()           # descend into B values of A = 4
        keys = []
        while not iterator.at_end:
            keys.append(iterator.key())
            iterator.next()
        assert keys == [1, 5, 9]

    def test_up_restores_position(self, iterator):
        iterator.open()
        assert iterator.key() == 1
        iterator.open()
        iterator.up()
        assert iterator.key() == 1
        iterator.next()
        assert iterator.key() == 2

    def test_seek_exact_and_past(self, iterator):
        iterator.open()
        iterator.seek(2)
        assert iterator.key() == 2
        iterator.seek(3)
        assert iterator.key() == 4
        iterator.seek(100)
        assert iterator.at_end

    def test_seek_no_backward_motion(self, iterator):
        iterator.open()
        iterator.seek(4)
        iterator.seek(1)  # seeks are monotone; stays at 4
        assert iterator.key() == 4

    def test_empty_relation(self):
        it = SortedTrieIterator(Relation("R", ("A",), []), ("A",))
        assert it.at_end

    def test_galloping_long_runs(self):
        rows = [(0, b) for b in range(500)] + [(1, 0)]
        it = SortedTrieIterator(Relation("R", ("A", "B"), rows), ("A", "B"))
        it.open()
        assert it.key() == 0
        it.next()
        assert it.key() == 1


class TestLeapfrogJoin:
    def test_triangle(self):
        q = triangle_query()
        assert leapfrog_join(q).equivalent(naive_join(q))

    def test_two_path(self):
        q = two_path_query()
        assert leapfrog_join(q).equivalent(naive_join(q))

    @pytest.mark.parametrize("seed", range(6))
    def test_random_hypergraphs(self, seed):
        h = generators.random_hypergraph(4, 4, 3, seed=seed)
        q = generators.random_instance(h, 25, 4, seed=seed + 70)
        assert leapfrog_join(q).equivalent(naive_join(q))

    def test_example_22(self):
        assert leapfrog_join(instances.triangle_hard_instance(16)).is_empty()

    def test_all_attribute_orders(self):
        q = generators.random_instance(queries.triangle(), 30, 6, seed=2)
        base = naive_join(q)
        for order in itertools.permutations(("A", "B", "C")):
            assert leapfrog_join(q, attribute_order=order).equivalent(base)

    def test_empty_relation_early_exit(self):
        q = JoinQuery(
            [
                Relation("R", ("A", "B"), []),
                Relation("S", ("B", "C"), [(1, 2)]),
            ]
        )
        assert leapfrog_join(q).is_empty()

    def test_bad_order_rejected(self):
        with pytest.raises(QueryError):
            leapfrog_join(triangle_query(), attribute_order=("A",))

    def test_single_relation(self):
        q = JoinQuery([Relation("R", ("A", "B"), [(2, 1), (1, 2)])])
        assert leapfrog_join(q).equivalent(q.relation("R"))

    def test_duplicate_heavy_keys(self):
        """Runs of equal keys on multiple levels."""
        r = Relation("R", ("A", "B"), [(0, b) for b in range(20)])
        s = Relation("S", ("B", "C"), [(b, 0) for b in range(20)])
        q = JoinQuery([r, s])
        assert leapfrog_join(q).equivalent(naive_join(q))
