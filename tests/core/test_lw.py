"""Unit tests for Algorithm 1 (Loomis-Whitney instances) and Example 4.2."""

import pytest

from repro.baselines.naive import naive_join
from repro.core.lw import LWJoin, lw_join, triangle_join
from repro.core.query import JoinQuery
from repro.errors import QueryError
from repro.relations.relation import Relation
from repro.workloads import generators, instances, queries

from tests.helpers import triangle_query, two_path_query


class TestAlgorithm1:
    def test_triangle(self):
        q = triangle_query()
        assert lw_join(q).equivalent(naive_join(q))

    @pytest.mark.parametrize("n", [2, 3, 4, 5])
    @pytest.mark.parametrize("seed", [0, 1])
    def test_lw_random(self, n, seed):
        q = generators.random_instance(queries.lw_query(n), 30, 4, seed=seed)
        assert lw_join(q).equivalent(naive_join(q))

    def test_example_22_empty(self):
        q = instances.triangle_hard_instance(12)
        assert lw_join(q).is_empty()

    def test_lw_hard_instance(self):
        q = instances.lw_hard_instance(4, 16)
        assert lw_join(q).equivalent(naive_join(q))

    def test_grid_instance(self):
        q = instances.grid_instance(queries.lw_query(3), 3)
        out = lw_join(q)
        assert len(out) == 27

    def test_empty_relation_shortcut(self):
        q = JoinQuery(
            [
                Relation("R", ("A", "B"), []),
                Relation("S", ("B", "C"), [(1, 1)]),
                Relation("T", ("A", "C"), [(1, 1)]),
            ]
        )
        assert lw_join(q).is_empty()

    def test_non_lw_rejected(self):
        with pytest.raises(QueryError):
            lw_join(two_path_query())
        q = generators.random_instance(queries.cycle_query(4), 10, 3, seed=0)
        with pytest.raises(QueryError):
            LWJoin(q)

    def test_bound(self):
        q = instances.grid_instance(queries.lw_query(3), 4)
        # Each relation has 16 tuples; P = (16^3)^(1/2) = 64 = output.
        assert LWJoin(q).bound() == pytest.approx(64.0)

    def test_n2_instance(self):
        """n=2: edges are the two singletons; join is the cross product."""
        q = JoinQuery(
            [
                Relation("R1", ("A2",), [(1,), (2,)]),
                Relation("R2", ("A1",), [(7,), (8,), (9,)]),
            ]
        )
        assert q.is_lw_instance()
        assert len(lw_join(q)) == 6

    def test_output_attribute_order(self):
        q = triangle_query()
        assert lw_join(q).attributes == q.attributes


class TestTriangleJoin:
    def test_matches_naive(self):
        q = triangle_query()
        out = triangle_join(q.relation("R"), q.relation("S"), q.relation("T"))
        assert out.equivalent(naive_join(q))

    @pytest.mark.parametrize("seed", range(6))
    def test_random(self, seed):
        q = generators.random_instance(queries.triangle(), 50, 8, seed=seed)
        out = triangle_join(q.relation("R"), q.relation("S"), q.relation("T"))
        assert out.equivalent(naive_join(q))

    def test_skewed_heavy_keys(self):
        """A hub B-value with huge fanout exercises the heavy branch."""
        r_rows = [(a, 0) for a in range(40)] + [(0, b) for b in range(1, 5)]
        s_rows = [(0, c) for c in range(40)] + [(b, 0) for b in range(1, 5)]
        t_rows = [(a, c) for a in range(8) for c in range(8)]
        q = JoinQuery(
            [
                Relation("R", ("A", "B"), r_rows),
                Relation("S", ("B", "C"), s_rows),
                Relation("T", ("A", "C"), t_rows),
            ]
        )
        out = triangle_join(q.relation("R"), q.relation("S"), q.relation("T"))
        assert out.equivalent(naive_join(q))

    def test_example_22(self):
        q = instances.triangle_hard_instance(20)
        out = triangle_join(q.relation("R"), q.relation("S"), q.relation("T"))
        assert out.is_empty()

    def test_empty_side(self):
        r = Relation("R", ("A", "B"), [])
        s = Relation("S", ("B", "C"), [(1, 2)])
        t = Relation("T", ("A", "C"), [(1, 2)])
        assert triangle_join(r, s, t).is_empty()

    def test_arbitrary_attribute_names(self):
        r = Relation("R", ("X", "Y"), [(1, 2)])
        s = Relation("S", ("Y", "Z"), [(2, 3)])
        t = Relation("T", ("X", "Z"), [(1, 3)])
        out = triangle_join(r, s, t)
        assert len(out) == 1
        assert set(out.attributes) == {"X", "Y", "Z"}

    def test_non_triangle_rejected(self):
        r = Relation("R", ("A", "B"), [])
        s = Relation("S", ("B", "C"), [])
        with pytest.raises(QueryError):
            triangle_join(r, s, r)

    def test_ternary_relation_rejected(self):
        r = Relation("R", ("A", "B", "C"), [])
        s = Relation("S", ("B", "C"), [])
        t = Relation("T", ("A", "C"), [])
        with pytest.raises(QueryError):
            triangle_join(r, s, t)
