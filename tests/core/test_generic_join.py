"""Unit tests for the Generic Join extension."""

import itertools

import pytest

from repro.baselines.naive import naive_join
from repro.core.generic_join import GenericJoin, generic_join
from repro.core.query import JoinQuery
from repro.errors import QueryError
from repro.relations.database import Database
from repro.relations.relation import Relation
from repro.workloads import generators, instances, queries

from tests.helpers import triangle_query, two_path_query


class TestCorrectness:
    def test_triangle(self):
        q = triangle_query()
        assert generic_join(q).equivalent(naive_join(q))

    def test_two_path(self):
        q = two_path_query()
        assert generic_join(q).equivalent(naive_join(q))

    @pytest.mark.parametrize("seed", range(6))
    def test_random_hypergraphs(self, seed):
        h = generators.random_hypergraph(4, 4, 3, seed=seed)
        q = generators.random_instance(h, 25, 4, seed=seed + 40)
        assert generic_join(q).equivalent(naive_join(q))

    def test_example_22(self):
        assert generic_join(instances.triangle_hard_instance(16)).is_empty()

    def test_lw_hard(self):
        q = instances.lw_hard_instance(3, 13)
        assert generic_join(q).equivalent(naive_join(q))

    def test_empty_relation(self):
        q = JoinQuery(
            [
                Relation("R", ("A", "B"), []),
                Relation("S", ("B", "C"), [(1, 2)]),
            ]
        )
        assert generic_join(q).is_empty()


class TestAttributeOrders:
    def test_all_orders_agree(self):
        q = generators.random_instance(queries.triangle(), 35, 6, seed=9)
        base = naive_join(q)
        for order in itertools.permutations(("A", "B", "C")):
            assert generic_join(q, attribute_order=order).equivalent(base)

    def test_bad_order_rejected(self):
        q = triangle_query()
        with pytest.raises(QueryError):
            generic_join(q, attribute_order=("A", "B"))
        with pytest.raises(QueryError):
            generic_join(q, attribute_order=("A", "B", "Z"))


class TestDatabaseIntegration:
    def test_uses_cached_tries(self):
        q = triangle_query()
        db = Database(list(q.relations.values()))
        GenericJoin(q, database=db).execute()
        assert db.cached_trie_count() == 3
