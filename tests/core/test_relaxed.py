"""Unit tests for relaxed joins (Section 7.2, Algorithm 6)."""

import pytest

from repro.core.query import JoinQuery
from repro.core.relaxed import (
    RelaxedJoin,
    bfs_representatives,
    bfs_support,
    candidate_sets,
    expected_bound_terms,
    minimal_candidate_sets,
    relaxed_join,
    relaxed_join_reference,
)
from repro.errors import QueryError
from repro.relations.relation import Relation
from repro.workloads import generators, instances, queries

from tests.helpers import triangle_query


class TestCandidateSets:
    def test_r_zero_is_full_query(self):
        q = triangle_query()
        assert candidate_sets(q, 0) == [frozenset({"R", "S", "T"})]

    def test_r_one_triangle(self):
        q = triangle_query()
        sets = candidate_sets(q, 1)
        # Any two triangle edges cover {A,B,C}; plus the full set.
        assert frozenset({"R", "S"}) in sets
        assert frozenset({"R", "T"}) in sets
        assert frozenset({"S", "T"}) in sets
        assert frozenset({"R", "S", "T"}) in sets
        assert len(sets) == 4

    def test_coverage_filter(self):
        """Subsets that do not cover every attribute are excluded."""
        q = JoinQuery(
            [
                Relation("R", ("A", "B"), []),
                Relation("S", ("B", "C"), []),
                Relation("U", ("C", "D"), []),
            ]
        )
        sets = candidate_sets(q, 1)
        assert frozenset({"R", "S"}) not in sets  # misses D
        assert frozenset({"R", "U"}) in sets

    def test_minimal_sets(self):
        q = triangle_query()
        minimal = minimal_candidate_sets(q, 1)
        assert frozenset({"R", "S", "T"}) not in minimal
        assert len(minimal) == 3

    def test_invalid_relaxation(self):
        q = triangle_query()
        with pytest.raises(QueryError):
            candidate_sets(q, -1)
        with pytest.raises(QueryError):
            candidate_sets(q, 4)


class TestBFSMachinery:
    def test_bfs_support_subset(self):
        q = triangle_query()
        support = bfs_support(q, frozenset({"R", "S", "T"}))
        assert support <= {"R", "S", "T"}
        assert support  # non-empty

    def test_bfs_deterministic(self):
        q = triangle_query()
        a = bfs_support(q, frozenset({"R", "S"}))
        b = bfs_support(q, frozenset({"R", "S"}))
        assert a == b

    def test_representatives_unique_by_support(self):
        q = triangle_query()
        reps = bfs_representatives(q, 1)
        supports = [support for _s, support, _c in reps]
        assert len(supports) == len(set(supports))

    def test_lower_bound_instance_c_star(self):
        """The paper's instance: C*(q, r=n) = {{E4}, {E1,E2,E3}}."""
        q = instances.relaxed_lower_bound_instance(3, 4)
        reps = bfs_representatives(q, 3)
        supports = {support for _s, support, _c in reps}
        assert supports == {
            frozenset({"E4"}),
            frozenset({"E1", "E2", "E3"}),
        }


class TestAlgorithm6:
    def test_r_zero_equals_plain_join(self):
        from repro.baselines.naive import naive_join

        q = generators.random_instance(queries.triangle(), 25, 5, seed=8)
        assert relaxed_join(q, 0).equivalent(naive_join(q))

    @pytest.mark.parametrize("seed", range(5))
    @pytest.mark.parametrize("r", [0, 1, 2, 3])
    def test_matches_reference_on_triangles(self, seed, r):
        q = generators.random_instance(queries.triangle(), 20, 4, seed=seed)
        assert relaxed_join(q, r).equivalent(relaxed_join_reference(q, r))

    @pytest.mark.parametrize("r", [1, 2])
    def test_matches_reference_on_paths(self, r):
        q = generators.random_instance(queries.path_query(3), 15, 3, seed=2)
        assert relaxed_join(q, r).equivalent(relaxed_join_reference(q, r))

    def test_relaxation_monotone(self):
        q = generators.random_instance(queries.triangle(), 20, 4, seed=3)
        sizes = [len(relaxed_join(q, r)) for r in range(4)]
        assert sizes == sorted(sizes)

    def test_output_on_all_attributes(self):
        q = triangle_query()
        out = relaxed_join(q, 1)
        assert out.attributes == q.attributes


class TestTheorem76:
    def test_lower_bound_instance_tight(self):
        """|q_r| = N + N^n meets sum LPOpt(S) exactly at r = n."""
        n, size = 3, 4
        q = instances.relaxed_lower_bound_instance(n, size)
        join = RelaxedJoin(q, n)
        out = join.execute()
        assert len(out) == size + size**n
        assert join.bound() == pytest.approx(size + size**n, rel=1e-6)

    def test_bound_holds_generally(self):
        for seed in range(4):
            q = generators.random_instance(queries.triangle(), 20, 4, seed=seed)
            for r in (1, 2):
                join = RelaxedJoin(q, r)
                assert len(join.execute()) <= join.bound() + 1e-6

    def test_expected_bound_terms(self):
        q = instances.relaxed_lower_bound_instance(3, 4)
        terms = expected_bound_terms(q, 3)
        values = sorted(round(v) for _s, v in terms)
        assert values == [4, 64]

    def test_below_n_relaxation_drops_heavy_relation(self):
        """For 0 < r < n the heavy relation's tuples agree with only one
        edge (< m - r), so q_r is just [N]^n — Definition 7.4 evaluated
        strictly (see EXPERIMENTS.md note on the paper's 'any r > 0')."""
        q = instances.relaxed_lower_bound_instance(3, 3)
        out = relaxed_join(q, 1)
        assert len(out) == 3**3
        assert relaxed_join_reference(q, 1).equivalent(out)
