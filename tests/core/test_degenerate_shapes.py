"""Degenerate query shapes across all algorithms.

These shapes stress the corner cases of Algorithm 3/4/5 that the paper's
pseudocode leaves implicit: edges contained in other edges, attributes
covered only by the anchor, singleton-only queries, duplicated attribute
sets, and queries whose QP nodes have nil children.
"""

import pytest

from repro.baselines.naive import naive_join
from repro.core.generic_join import generic_join
from repro.core.leapfrog import leapfrog_join
from repro.core.nprr import nprr_join
from repro.core.query import JoinQuery
from repro.relations.relation import Relation

ALGORITHMS = (nprr_join, generic_join, leapfrog_join)


def assert_consistent(query):
    baseline = naive_join(query)
    for algorithm in ALGORITHMS:
        assert algorithm(query).equivalent(baseline), algorithm.__name__
    return baseline


class TestContainedEdges:
    def test_edge_inside_edge(self):
        """R(A) subset of S(A,B): the rc-with-orphan path of Algorithm 4."""
        q = JoinQuery(
            [
                Relation("R", ("A",), [(1,), (2,), (5,)]),
                Relation("S", ("A", "B"), [(1, 7), (2, 8), (3, 9)]),
            ]
        )
        out = assert_consistent(q)
        assert set(out.tuples) == {(1, 7), (2, 8)}

    def test_chain_of_containment(self):
        q = JoinQuery(
            [
                Relation("R", ("A",), [(1,), (2,)]),
                Relation("S", ("A", "B"), [(1, 5), (2, 6), (3, 7)]),
                Relation("T", ("A", "B", "C"), [(1, 5, 0), (2, 9, 0)]),
            ]
        )
        out = assert_consistent(q)
        assert set(out.tuples) == {(1, 5, 0)}

    def test_duplicate_attribute_sets(self):
        """Two relations over identical attributes (intersection)."""
        q = JoinQuery(
            [
                Relation("R1", ("A", "B"), [(1, 2), (3, 4), (5, 6)]),
                Relation("R2", ("A", "B"), [(1, 2), (5, 6), (7, 8)]),
            ]
        )
        out = assert_consistent(q)
        assert set(out.tuples) == {(1, 2), (5, 6)}

    def test_triple_duplicates_with_anchor_only_attribute(self):
        """The both-children-nil QP node: anchors cover an attribute no
        earlier edge touches."""
        q = JoinQuery(
            [
                Relation("R1", ("B",), [(1,), (2,)]),
                Relation("R2", ("B",), [(2,), (3,)]),
                Relation("R3", ("A", "B"), [(9, 2), (8, 3), (7, 1)]),
            ]
        )
        out = assert_consistent(q)
        assert set(out.reorder(("A", "B")).tuples) == {(9, 2)}


class TestSingletons:
    def test_all_singletons(self):
        q = JoinQuery(
            [
                Relation("R", ("A",), [(1,), (2,)]),
                Relation("S", ("B",), [(5,)]),
                Relation("T", ("C",), [(7,), (8,), (9,)]),
            ]
        )
        out = assert_consistent(q)
        assert len(out) == 6  # cross product

    def test_singleton_filters_big_edge(self):
        q = JoinQuery(
            [
                Relation("Big", ("A", "B", "C"), [
                    (a, b, c) for a in range(3) for b in range(3) for c in range(3)
                ]),
                Relation("FA", ("A",), [(0,), (1,)]),
                Relation("FB", ("B",), [(2,)]),
                Relation("FC", ("C",), [(0,), (2,)]),
            ]
        )
        out = assert_consistent(q)
        assert len(out) == 2 * 1 * 2

    def test_same_singleton_repeated(self):
        q = JoinQuery(
            [
                Relation("R1", ("A",), [(1,), (2,), (3,)]),
                Relation("R2", ("A",), [(2,), (3,), (4,)]),
                Relation("R3", ("A",), [(3,), (4,), (5,)]),
            ]
        )
        out = assert_consistent(q)
        assert set(out.tuples) == {(3,)}


class TestWideAndSkinny:
    def test_one_wide_edge_covers_all(self):
        """The anchor contains the whole universe: lc(root) is nil."""
        q = JoinQuery(
            [
                Relation("R", ("A", "B"), [(1, 2), (3, 4)]),
                Relation("Wide", ("A", "B", "C"), [(1, 2, 9), (3, 9, 9)]),
            ]
        )
        out = assert_consistent(q)
        assert set(out.tuples) == {(1, 2, 9)}

    def test_star_of_binaries_plus_core(self):
        q = JoinQuery(
            [
                Relation("Core", ("A", "B", "C"), [
                    (a, a + 1, a + 2) for a in range(5)
                ]),
                Relation("EA", ("A", "X"), [(a, a * 10) for a in range(5)]),
                Relation("EB", ("B", "Y"), [(b, b * 10) for b in range(1, 6)]),
            ]
        )
        out = assert_consistent(q)
        assert len(out) == 5

    def test_disjoint_binary_pairs(self):
        q = JoinQuery(
            [
                Relation("R", ("A", "B"), [(1, 2), (3, 4)]),
                Relation("S", ("C", "D"), [(5, 6)]),
            ]
        )
        out = assert_consistent(q)
        assert len(out) == 2

    @pytest.mark.parametrize("seed", range(4))
    def test_random_contained_shapes(self, seed):
        import random

        rng = random.Random(seed)
        big = Relation(
            "Big",
            ("A", "B", "C", "D"),
            {
                tuple(rng.randrange(3) for _ in range(4))
                for _ in range(25)
            },
        )
        mid = Relation(
            "Mid",
            ("B", "C"),
            {tuple(rng.randrange(3) for _ in range(2)) for _ in range(6)},
        )
        small = Relation("Small", ("C",), {(rng.randrange(3),) for _ in range(2)})
        assert_consistent(JoinQuery([big, mid, small]))
