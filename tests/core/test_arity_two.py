"""Unit tests for Theorem 7.3: arity-2 joins, Cycle Lemma, Lemma 7.2."""

from fractions import Fraction

import pytest

from repro.baselines.naive import naive_join
from repro.core.arity_two import (
    ArityTwoJoin,
    arity_two_join,
    cycle_join,
    decompose_support,
    is_half_integral,
)
from repro.core.query import JoinQuery
from repro.errors import QueryError
from repro.hypergraph.agm import optimal_fractional_cover
from repro.hypergraph.covers import FractionalCover
from repro.relations.relation import Relation
from repro.workloads import generators, instances, queries

from tests.helpers import triangle_query


class TestHalfIntegrality:
    def test_detects_half_integral(self):
        assert is_half_integral(
            FractionalCover({"R": 1, "S": Fraction(1, 2), "T": 0})
        )
        assert not is_half_integral(FractionalCover({"R": Fraction(1, 3)}))

    @pytest.mark.parametrize("seed", range(15))
    def test_lemma_72_on_random_graphs(self, seed):
        """Exact LP vertices of graph cover polyhedra are half-integral
        with star + odd-cycle support structure."""
        h = generators.random_hypergraph(6, 7, 2, seed=seed)
        q = generators.random_instance(h, 20, 5, seed=seed)
        cover = optimal_fractional_cover(q.hypergraph, q.sizes())
        assert is_half_integral(cover)
        ones, halves, _zeros = decompose_support(q.hypergraph, cover)
        for component in halves:
            order = component.is_cycle()
            assert order is not None
            assert len(order) % 2 == 1  # odd cycles only

    @pytest.mark.parametrize("k", [3, 5, 7])
    def test_odd_cycle_gets_half_cover(self, k):
        q = generators.random_instance(queries.cycle_query(k), 30, 5, seed=1)
        cover = optimal_fractional_cover(q.hypergraph, q.sizes())
        assert all(w == Fraction(1, 2) for w in cover.weights.values())

    def test_decompose_rejects_non_half_integral(self):
        h = queries.triangle()
        with pytest.raises(QueryError):
            decompose_support(h, FractionalCover.uniform(h, Fraction(1, 3)))


class TestCycleJoin:
    @pytest.mark.parametrize("k", [2, 3, 4, 5, 6, 7, 8])
    @pytest.mark.parametrize("seed", [0, 1])
    def test_matches_naive(self, k, seed):
        q = generators.random_instance(queries.cycle_query(k), 35, 5, seed=seed)
        order = [f"A{i}" for i in range(1, k + 1)]
        rels = [q.relation(f"R{i}") for i in range(1, k + 1)]
        out = cycle_join(rels, order)
        assert out.equivalent(naive_join(q))

    @pytest.mark.parametrize("k", [4, 5, 6, 7])
    def test_hard_cycle_instances(self, k):
        q = instances.cycle_hard_instance(k, 24)
        order = [f"A{i}" for i in range(1, k + 1)]
        rels = [q.relation(f"R{i}") for i in range(1, k + 1)]
        assert cycle_join(rels, order).equivalent(naive_join(q))

    def test_odd_cycle_orientation_swap(self):
        """Force prod(odd) > prod(even) so the reversal branch runs."""
        big = [(a, b) for a in range(12) for b in range(12)]
        small = [(a, a) for a in range(12)]
        rels = [
            Relation("R1", ("A1", "A2"), big),     # odd class: huge
            Relation("R2", ("A2", "A3"), small),
            Relation("R3", ("A3", "A4"), big),     # odd class: huge
            Relation("R4", ("A4", "A5"), small),
            Relation("R5", ("A5", "A1"), small),
        ]
        q = JoinQuery(rels)
        out = cycle_join(rels, ["A1", "A2", "A3", "A4", "A5"])
        assert out.equivalent(naive_join(q))

    def test_empty_relation(self):
        rels = [
            Relation("R1", ("A1", "A2"), []),
            Relation("R2", ("A2", "A3"), [(1, 2)]),
            Relation("R3", ("A3", "A1"), [(2, 1)]),
        ]
        assert cycle_join(rels, ["A1", "A2", "A3"]).is_empty()

    def test_two_cycle_parallel_edges(self):
        r1 = Relation("R1", ("A", "B"), [(1, 2), (3, 4), (5, 6)])
        r2 = Relation("R2", ("A", "B"), [(1, 2), (5, 6), (7, 8)]).reorder(("B", "A"))
        out = cycle_join([r1, r2], ["A", "B"])
        assert set(out.reorder(("A", "B")).tuples) == {(1, 2), (5, 6)}

    def test_size_mismatch_rejected(self):
        with pytest.raises(QueryError):
            cycle_join([Relation("R", ("A", "B"), [])], ["A"])


class TestArityTwoJoin:
    @pytest.mark.parametrize("k", [3, 4, 5, 6, 7])
    def test_cycles(self, k):
        q = generators.random_instance(queries.cycle_query(k), 35, 5, seed=k)
        assert arity_two_join(q).equivalent(naive_join(q))

    @pytest.mark.parametrize("k", [1, 2, 4])
    def test_stars(self, k):
        q = generators.random_instance(queries.star_query(k), 35, 5, seed=k)
        assert arity_two_join(q).equivalent(naive_join(q))

    def test_paths(self):
        q = generators.random_instance(queries.path_query(4), 35, 5, seed=3)
        assert arity_two_join(q).equivalent(naive_join(q))

    @pytest.mark.parametrize("seed", range(10))
    def test_random_graphs(self, seed):
        h = generators.random_hypergraph(5, 6, 2, seed=seed)
        q = generators.random_instance(h, 25, 4, seed=seed + 30)
        assert arity_two_join(q).equivalent(naive_join(q))

    def test_triangle(self):
        q = triangle_query()
        assert arity_two_join(q).equivalent(naive_join(q))

    def test_singleton_edges(self):
        q = JoinQuery(
            [
                Relation("R", ("A",), [(1,), (2,), (3,)]),
                Relation("S", ("A", "B"), [(2, 5), (3, 6), (9, 9)]),
            ]
        )
        assert arity_two_join(q).equivalent(naive_join(q))

    def test_disconnected_components_cross_product(self):
        q = JoinQuery(
            [
                Relation("R", ("A", "B"), [(1, 2), (3, 4)]),
                Relation("S", ("C", "D"), [(5, 6)]),
            ]
        )
        out = arity_two_join(q)
        assert len(out) == 2
        assert out.equivalent(naive_join(q))

    def test_zero_weight_edges_filter(self):
        """A dense extra edge gets weight 0 and acts as a pure filter."""
        big = [(a, b) for a in range(6) for b in range(6)]
        q = JoinQuery(
            [
                Relation("R", ("A", "B"), [(1, 2), (2, 3)]),
                Relation("S", ("B", "C"), [(2, 7), (3, 8)]),
                Relation("F", ("A", "C"), big),
            ]
        )
        assert arity_two_join(q).equivalent(naive_join(q))

    def test_empty_relation(self):
        q = JoinQuery(
            [
                Relation("R", ("A", "B"), []),
                Relation("S", ("B", "C"), [(1, 2)]),
            ]
        )
        assert arity_two_join(q).is_empty()

    def test_high_arity_rejected(self):
        q = generators.random_instance(queries.lw_query(4), 10, 3, seed=0)
        with pytest.raises(QueryError):
            ArityTwoJoin(q)

    def test_non_half_integral_cover_rejected(self):
        q = triangle_query()
        with pytest.raises(QueryError):
            ArityTwoJoin(q, cover=FractionalCover.uniform(q.hypergraph, Fraction(2, 3)))

    def test_explicit_cover(self):
        q = triangle_query()
        cover = FractionalCover({"R": 1, "S": 1, "T": 0})
        assert arity_two_join(q, cover=cover).equivalent(naive_join(q))

    def test_bound(self):
        q = generators.random_instance(queries.cycle_query(3), 16, 4, seed=5)
        join = ArityTwoJoin(q)
        sizes = q.sizes()
        expected = (sizes["R1"] * sizes["R2"] * sizes["R3"]) ** 0.5
        assert join.bound() == pytest.approx(expected, rel=1e-6)
