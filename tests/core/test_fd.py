"""Unit tests for functional dependencies (Section 7.3)."""

import pytest

from repro.baselines.naive import naive_join
from repro.core.fd import (
    FunctionalDependency,
    closure,
    expand_query,
    expand_relation,
    fd_aware_bound,
    fd_aware_join,
    fd_graph,
    validate_fds,
)
from repro.core.query import JoinQuery
from repro.errors import FunctionalDependencyError, QueryError
from repro.relations.relation import Relation
from repro.workloads import instances


@pytest.fixture
def fanout():
    return instances.fd_fanout_instance(3, 8)


class TestClosure:
    def test_direct(self):
        fds = [FunctionalDependency("R", "A", "B")]
        assert closure({"A"}, fds) == {"A", "B"}

    def test_transitive(self):
        fds = [
            FunctionalDependency("R", "A", "B"),
            FunctionalDependency("S", "B", "C"),
        ]
        assert closure({"A"}, fds) == {"A", "B", "C"}

    def test_unreachable(self):
        fds = [FunctionalDependency("R", "B", "C")]
        assert closure({"A"}, fds) == {"A"}

    def test_fd_graph(self):
        fds = [
            FunctionalDependency("R", "A", "B"),
            FunctionalDependency("S", "A", "C"),
        ]
        graph = fd_graph(fds)
        assert len(graph["A"]) == 2


class TestValidation:
    def test_accepts_satisfied(self, fanout):
        query, fds = fanout
        validate_fds(query, fds)

    def test_rejects_violation(self):
        query = JoinQuery(
            [Relation("R", ("A", "B"), [(1, 2), (1, 3)])]
        )
        with pytest.raises(FunctionalDependencyError):
            validate_fds(query, [FunctionalDependency("R", "A", "B")])

    def test_rejects_unknown_attribute(self):
        query = JoinQuery([Relation("R", ("A", "B"), [])])
        with pytest.raises(QueryError):
            validate_fds(query, [FunctionalDependency("R", "A", "Z")])


class TestExpansion:
    def test_expand_relation_adds_columns(self, fanout):
        query, fds = fanout
        expanded = expand_relation(query.relation("R1"), query, fds)
        assert set(expanded.attributes) == {"A", "B1", "B2", "B3"}
        assert len(expanded) == len(query.relation("R1"))

    def test_expand_values_follow_maps(self):
        query = JoinQuery(
            [
                Relation("R", ("A", "B"), [(1, 10), (2, 20)]),
                Relation("S", ("B", "C"), [(10, 5), (20, 6)]),
            ]
        )
        fds = [FunctionalDependency("S", "B", "C")]
        expanded = expand_relation(query.relation("R"), query, fds)
        assert set(expanded.tuples) == {(1, 10, 5), (2, 20, 6)}

    def test_unmatched_source_tuples_dropped(self):
        query = JoinQuery(
            [
                Relation("R", ("A", "B"), [(1, 10), (2, 99)]),
                Relation("S", ("B", "C"), [(10, 5)]),
            ]
        )
        fds = [FunctionalDependency("S", "B", "C")]
        expanded = expand_relation(query.relation("R"), query, fds)
        assert set(expanded.tuples) == {(1, 10, 5)}

    def test_expand_query_hypergraph(self, fanout):
        query, fds = fanout
        expanded = expand_query(query, fds)
        closure_r1 = expanded.hypergraph.edges["R1"]
        assert closure_r1 == frozenset({"A", "B1", "B2", "B3"})
        # S relations have no outgoing FDs: unchanged.
        assert expanded.hypergraph.edges["S1"] == frozenset({"B1", "C"})


class TestFDAwareJoin:
    def test_preserves_join(self, fanout):
        query, fds = fanout
        assert fd_aware_join(query, fds).equivalent(naive_join(query))

    def test_chain_fds(self):
        query = JoinQuery(
            [
                Relation("R", ("A", "B"), [(a, a + 10) for a in range(5)]),
                Relation("S", ("B", "C"), [(b + 10, b % 2) for b in range(5)]),
                Relation("T", ("A", "C"), [(a, a % 2) for a in range(5)]),
            ]
        )
        fds = [
            FunctionalDependency("R", "A", "B"),
            FunctionalDependency("S", "B", "C"),
        ]
        assert fd_aware_join(query, fds).equivalent(naive_join(query))

    def test_no_fds_is_plain_join(self):
        query = JoinQuery(
            [
                Relation("R", ("A", "B"), [(1, 2)]),
                Relation("S", ("B", "C"), [(2, 3)]),
            ]
        )
        assert fd_aware_join(query, []).equivalent(naive_join(query))

    def test_output_attribute_order(self, fanout):
        query, fds = fanout
        assert fd_aware_join(query, fds).attributes == query.attributes


class TestBounds:
    def test_paper_gap_nk_vs_n2(self):
        """The Section 7.3 example: N^k unaware vs N^2 aware."""
        size = 10
        for k in (2, 3, 4):
            query, fds = instances.fd_fanout_instance(k, size)
            unaware, aware = fd_aware_bound(query, fds)
            assert unaware == pytest.approx(float(size**k), rel=1e-4)
            assert aware == pytest.approx(float(size**2), rel=1e-4)

    def test_aware_never_worse(self):
        query, fds = instances.fd_fanout_instance(3, 6)
        unaware, aware = fd_aware_bound(query, fds)
        assert aware <= unaware + 1e-9
