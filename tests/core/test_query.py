"""Unit tests for JoinQuery."""

import pytest

from repro.core.query import JoinQuery
from repro.errors import QueryError
from repro.hypergraph.covers import FractionalCover
from repro.relations.database import Database
from repro.relations.relation import Relation
from repro.workloads import queries

from tests.helpers import triangle_query


class TestConstruction:
    def test_basic(self):
        q = triangle_query()
        assert q.edge_ids == ("R", "S", "T")
        assert q.attributes == ("A", "B", "C")
        assert len(q) == 3

    def test_attribute_order_first_seen(self):
        q = JoinQuery(
            [
                Relation("S", ("B", "C"), []),
                Relation("R", ("A", "B"), []),
            ]
        )
        assert q.attributes == ("B", "C", "A")

    def test_empty_rejected(self):
        with pytest.raises(QueryError):
            JoinQuery([])

    def test_duplicate_names_rejected(self):
        r = Relation("R", ("A",), [(1,)])
        with pytest.raises(QueryError):
            JoinQuery([r, r])

    def test_self_join_via_rename(self):
        r = Relation("E", ("A", "B"), [(1, 2), (2, 3)])
        q = JoinQuery([r, r.with_name("E2").rename({"A": "B", "B": "C"})])
        assert len(q) == 2
        assert q.attributes == ("A", "B", "C")

    def test_immutable(self):
        q = triangle_query()
        with pytest.raises(AttributeError):
            q.relations = {}


class TestAccessors:
    def test_relation_lookup(self):
        q = triangle_query()
        assert q.relation("R").name == "R"
        with pytest.raises(QueryError):
            q.relation("X")

    def test_sizes(self):
        q = triangle_query()
        assert q.sizes() == {"R": 3, "S": 3, "T": 3}
        assert q.total_input_size() == 9

    def test_is_lw_instance(self):
        assert triangle_query().is_lw_instance()

    def test_empty_output(self):
        out = triangle_query().empty_output()
        assert out.attributes == ("A", "B", "C")
        assert out.is_empty()

    def test_validate_cover(self):
        q = triangle_query()
        q.validate_cover(FractionalCover.all_ones(q.hypergraph))
        from repro.errors import CoverError

        with pytest.raises(CoverError):
            q.validate_cover(FractionalCover.uniform(q.hypergraph, 0))


class TestConstructors:
    def test_from_database(self):
        db = Database(
            [
                Relation("R", ("A", "B"), [(1, 2)]),
                Relation("S", ("B", "C"), [(2, 3)]),
            ]
        )
        q = JoinQuery.from_database(db, ["R", "S"])
        assert q.edge_ids == ("R", "S")

    def test_from_hypergraph(self):
        h = queries.triangle()
        rels = {
            "R": Relation("x", ("A", "B"), [(1, 2)]),
            "S": Relation("y", ("B", "C"), [(2, 3)]),
            "T": Relation("z", ("A", "C"), [(1, 3)]),
        }
        q = JoinQuery.from_hypergraph(h, rels)
        assert q.edge_ids == ("R", "S", "T")
        assert q.relation("R").name == "R"

    def test_from_hypergraph_missing_relation(self):
        h = queries.triangle()
        with pytest.raises(QueryError):
            JoinQuery.from_hypergraph(h, {})

    def test_from_hypergraph_schema_mismatch(self):
        h = queries.triangle()
        rels = {
            "R": Relation("R", ("A", "Z"), []),
            "S": Relation("S", ("B", "C"), []),
            "T": Relation("T", ("A", "C"), []),
        }
        with pytest.raises(QueryError):
            JoinQuery.from_hypergraph(h, rels)
