"""Unit tests for the query-plan tree (Algorithms 3 and 4).

Includes the paper-figure reproductions: the Section 5.2 worked example
must yield the total order 1, 4, 2, 5, 3, 6 and the Figure 1/2 tree
shapes.
"""

import pytest

from repro.core.qptree import QPTree
from repro.errors import QueryError
from repro.hypergraph.hypergraph import Hypergraph
from repro.workloads import generators, queries


class TestPaperExamples:
    def test_section_52_total_order(self):
        """The worked example's total order is 1, 4, 2, 5, 3, 6."""
        tree = QPTree(queries.paper_example_52())
        assert tree.total_order == ("1", "4", "2", "5", "3", "6")

    def test_section_52_root_split(self):
        """Root anchored at e (the last edge); children universes
        {1,2,4} and {3,5,6} as in Figure 1."""
        tree = QPTree(queries.paper_example_52())
        root = tree.root
        assert tree.anchor(root) == "e"
        assert root.left.universe == frozenset({"1", "2", "4"})
        assert root.right.universe == frozenset({"3", "5", "6"})

    def test_section_52_left_leaf(self):
        """The leftmost leaf is the 'abc' node with universe {1}."""
        tree = QPTree(queries.paper_example_52())
        node = tree.root.left
        assert tree.anchor(node) == "d"
        leaf = node.left
        assert leaf.universe == frozenset({"1"})
        assert leaf.is_leaf
        assert leaf.label == 3  # edges a, b, c all contain attribute 1

    def test_figure2_shape(self):
        """Figure 2: root k=5 with universes {1,2,4} / {3,5,6} (using the
        paper's attribute names A1..A6)."""
        tree = QPTree(queries.paper_figure2())
        root = tree.root
        assert root.label == 5
        assert root.left.universe == frozenset({"A1", "A2", "A4"})
        assert root.right.universe == frozenset({"A3", "A5", "A6"})
        assert root.left.label == 4 and root.right.label == 4

    def test_render_mentions_total_order(self):
        tree = QPTree(queries.paper_example_52())
        text = tree.render()
        assert "total order: 1, 4, 2, 5, 3, 6" in text
        assert "anchor=e" in text


class TestProposition55:
    @pytest.mark.parametrize("builder", [
        queries.triangle,
        lambda: queries.lw_query(4),
        lambda: queries.lw_query(5),
        lambda: queries.cycle_query(6),
        queries.paper_example_52,
        queries.paper_figure2,
        lambda: queries.star_query(4),
        lambda: queries.relaxed_lower_bound_query(3),
    ])
    def test_to1_to2(self, builder):
        tree = QPTree(builder())
        assert tree.check_to1()
        assert tree.check_to2()

    @pytest.mark.parametrize("seed", range(12))
    def test_to1_to2_random(self, seed):
        h = generators.random_hypergraph(5, 5, 3, seed=seed)
        tree = QPTree(h)
        assert tree.check_to1()
        assert tree.check_to2()

    @pytest.mark.parametrize("seed", range(6))
    def test_total_order_is_permutation(self, seed):
        h = generators.random_hypergraph(6, 4, 4, seed=seed)
        tree = QPTree(h)
        assert sorted(tree.total_order) == sorted(h.vertices)


class TestEdgeOrder:
    def test_default_is_hypergraph_order(self):
        h = queries.triangle()
        tree = QPTree(h)
        assert tree.edge_order == ("R", "S", "T")

    def test_custom_order_changes_anchor(self):
        h = queries.triangle()
        tree = QPTree(h, edge_order=("T", "S", "R"))
        assert tree.anchor(tree.root) == "R"

    def test_bad_order_rejected(self):
        h = queries.triangle()
        with pytest.raises(QueryError):
            QPTree(h, edge_order=("R", "S"))
        with pytest.raises(QueryError):
            QPTree(h, edge_order=("R", "S", "X"))

    def test_uncovered_vertex_rejected(self):
        h = Hypergraph(("A", "B"), {"R": ("A",)})
        with pytest.raises(QueryError):
            QPTree(h)


class TestCornerCases:
    def test_single_relation(self):
        h = Hypergraph(("A", "B"), {"R": ("A", "B")})
        tree = QPTree(h)
        assert tree.root.is_leaf
        assert tree.total_order == ("A", "B")

    def test_all_edges_contain_universe(self):
        """k > 1 but every edge holds all attributes: the root is a leaf."""
        h = Hypergraph(
            ("A", "B"),
            {"R1": ("A", "B"), "R2": ("A", "B"), "R3": ("A", "B")},
        )
        tree = QPTree(h)
        assert tree.root.is_leaf
        assert tree.root.label == 3

    def test_orphan_attributes_still_ordered(self):
        """Attributes covered only by the anchor edge must appear in the
        total order (the robustness case of Algorithm 4)."""
        h = Hypergraph(
            ("A", "B"),
            {"R1": ("B",), "R2": ("B",), "R3": ("A", "B")},
        )
        tree = QPTree(h)
        assert sorted(tree.total_order) == ["A", "B"]

    def test_singleton_edges(self):
        h = queries.relaxed_lower_bound_query(3)
        tree = QPTree(h)
        assert sorted(tree.total_order) == ["A1", "A2", "A3"]

    def test_helpers(self):
        tree = QPTree(queries.triangle())
        assert tree.rank(tree.total_order[0]) == 0
        assert tree.sort_by_total_order(("C", "A", "B")) == tree.total_order
        order = tree.relation_order("R")
        assert set(order) == {"A", "B"}
        assert tree.rank(order[0]) < tree.rank(order[1])
