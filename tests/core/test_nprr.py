"""Unit tests for Algorithm 2 (NPRR / Recursive-Join)."""

from fractions import Fraction

import pytest

from repro.baselines.naive import naive_join
from repro.core.nprr import NPRRJoin, nprr_join
from repro.core.query import JoinQuery
from repro.errors import QueryError
from repro.hypergraph.covers import FractionalCover
from repro.relations.database import Database
from repro.relations.relation import Relation
from repro.workloads import generators, instances, queries

from tests.helpers import single_relation_query, triangle_query, two_path_query


class TestBasicCorrectness:
    def test_triangle(self):
        q = triangle_query()
        assert nprr_join(q).equivalent(naive_join(q))

    def test_two_path(self):
        q = two_path_query()
        out = nprr_join(q)
        assert out.equivalent(naive_join(q))
        assert out.attributes == ("A", "B", "C")

    def test_single_relation(self):
        q = single_relation_query()
        assert nprr_join(q).equivalent(q.relation("R"))

    def test_empty_input_relation(self):
        q = JoinQuery(
            [
                Relation("R", ("A", "B"), []),
                Relation("S", ("B", "C"), [(1, 2)]),
            ]
        )
        assert nprr_join(q).is_empty()

    def test_empty_output_nonempty_inputs(self):
        q = instances.triangle_hard_instance(8)
        out = nprr_join(q)
        assert out.is_empty()

    def test_cross_product_query(self):
        q = JoinQuery(
            [
                Relation("R", ("A",), [(1,), (2,)]),
                Relation("S", ("B",), [(5,), (6,)]),
            ]
        )
        assert len(nprr_join(q)) == 4

    def test_output_schema_order(self):
        q = triangle_query()
        assert nprr_join(q).attributes == q.attributes


class TestPaperInstances:
    def test_example_22_is_empty(self):
        for n in (4, 10, 30):
            q = instances.triangle_hard_instance(n)
            assert nprr_join(q).is_empty()

    def test_lw_hard_instance_output(self):
        """Lemma 6.1: |join| = N + (N-1)/(n-1) (realized sizes)."""
        q = instances.lw_hard_instance(3, 21)
        out = nprr_join(q)
        n_realized = q.sizes()["R1"]
        m = (21 - 1) // 2
        assert n_realized == 1 + 2 * m
        assert len(out) == n_realized + m

    def test_beyond_lw_instance(self):
        q = instances.beyond_lw_instance(15)
        assert nprr_join(q).equivalent(naive_join(q))

    def test_grid_instance_meets_bound(self):
        """On the AGM-tight grid the output equals side^n exactly."""
        q = instances.grid_instance(queries.triangle(), 4)
        assert len(nprr_join(q)) == 4**3

    def test_paper_example_52_query(self):
        q = generators.random_instance(queries.paper_example_52(), 60, 3, seed=11)
        assert nprr_join(q).equivalent(naive_join(q))

    def test_figure2_query(self):
        q = generators.random_instance(queries.paper_figure2(), 60, 3, seed=12)
        assert nprr_join(q).equivalent(naive_join(q))


class TestCovers:
    def test_explicit_uniform_cover(self):
        q = triangle_query()
        cover = FractionalCover.uniform(q.hypergraph, Fraction(1, 2))
        assert nprr_join(q, cover=cover).equivalent(naive_join(q))

    def test_all_ones_cover(self):
        q = triangle_query()
        cover = FractionalCover.all_ones(q.hypergraph)
        assert nprr_join(q, cover=cover).equivalent(naive_join(q))

    def test_asymmetric_cover(self):
        q = triangle_query()
        cover = FractionalCover({"R": 1, "S": 1, "T": 0})
        assert nprr_join(q, cover=cover).equivalent(naive_join(q))

    def test_invalid_cover_rejected(self):
        q = triangle_query()
        from repro.errors import CoverError

        with pytest.raises(CoverError):
            nprr_join(q, cover=FractionalCover.uniform(q.hypergraph, 0))

    def test_weight_above_one(self):
        q = triangle_query()
        cover = FractionalCover({"R": 2, "S": Fraction(3, 2), "T": 1})
        assert nprr_join(q, cover=cover).equivalent(naive_join(q))

    @pytest.mark.parametrize("seed", range(5))
    def test_cover_choice_never_changes_output(self, seed):
        q = generators.random_instance(queries.lw_query(4), 30, 4, seed=seed)
        base = naive_join(q)
        for cover in (
            FractionalCover.all_ones(q.hypergraph),
            FractionalCover.loomis_whitney(q.hypergraph),
            None,
        ):
            assert nprr_join(q, cover=cover).equivalent(base)


class TestComparisonModes:
    @pytest.mark.parametrize("mode", ["auto", "exact", "float"])
    def test_modes_agree(self, mode):
        q = generators.random_instance(queries.triangle(), 40, 6, seed=3)
        cover = FractionalCover.uniform(q.hypergraph, Fraction(1, 2))
        out = nprr_join(q, cover=cover, comparison=mode)
        assert out.equivalent(naive_join(q))

    def test_unknown_mode_rejected(self):
        with pytest.raises(QueryError):
            NPRRJoin(triangle_query(), comparison="nonsense")


class TestEdgeOrders:
    @pytest.mark.parametrize(
        "order",
        [
            ("R", "S", "T"),
            ("T", "S", "R"),
            ("S", "R", "T"),
        ],
    )
    def test_any_edge_order_works(self, order):
        q = generators.random_instance(queries.triangle(), 40, 6, seed=4)
        out = nprr_join(q, edge_order=order)
        assert out.equivalent(naive_join(q))

    def test_all_orders_on_figure2(self):
        import itertools

        q = generators.random_instance(queries.paper_figure2(), 25, 3, seed=5)
        base = naive_join(q)
        for order in itertools.islice(
            itertools.permutations(q.edge_ids), 12
        ):
            assert nprr_join(q, edge_order=order).equivalent(base)


class TestDatabaseIntegration:
    def test_trie_cache_reused(self):
        q = triangle_query()
        db = Database(list(q.relations.values()))
        executor = NPRRJoin(q, database=db)
        executor.execute()
        cached = db.cached_trie_count()
        assert cached == 3
        NPRRJoin(q, database=db).execute()
        assert db.cached_trie_count() == cached  # no rebuild


class TestStatistics:
    def test_stats_populated(self):
        q = generators.random_instance(queries.triangle(), 50, 6, seed=6)
        executor = NPRRJoin(q)
        executor.execute()
        stats = executor.stats.as_dict()
        assert stats["recursive_calls"] > 0
        assert stats["case_a"] + stats["case_b"] > 0

    def test_stats_reset_between_runs(self):
        q = triangle_query()
        executor = NPRRJoin(q)
        executor.execute()
        first = executor.stats.recursive_calls
        executor.execute()
        assert executor.stats.recursive_calls == first


class TestLinearTimeOnHardInstance:
    def test_example_22_work_is_linear(self):
        """Lemma 6.2's flavor: on I_N the NPRR executor touches O(N)
        tuples, not Omega(N^2) — measured by its own counters."""
        small = instances.triangle_hard_instance(100)
        large = instances.triangle_hard_instance(400)
        ex_small = NPRRJoin(small)
        ex_small.execute()
        ex_large = NPRRJoin(large)
        ex_large.execute()
        work_small = ex_small.stats.tuples_emitted + ex_small.stats.comparisons
        work_large = ex_large.stats.tuples_emitted + ex_large.stats.comparisons
        # 4x the input should cost about 4x the work; allow 2x slack vs 16x
        # for a quadratic algorithm.
        assert work_large <= 8 * max(1, work_small)
