"""Tests for subgraph pattern matching."""

import itertools

import pytest

from repro.core.patterns import (
    DIAMOND,
    SQUARE,
    TRIANGLE,
    TWO_PATH,
    count_pattern,
    find_pattern,
    pattern_bound,
    pattern_query,
)
from repro.errors import QueryError
from repro.relations.relation import Relation


@pytest.fixture
def toy_graph():
    # A directed triangle 0->1->2->0 plus a tail 2->3.
    return [(0, 1), (1, 2), (2, 0), (2, 3)]


def brute_force_matches(edges, pattern):
    edge_set = set(edges)
    variables = []
    for src, dst in pattern:
        for var in (src, dst):
            if var not in variables:
                variables.append(var)
    vertices = {v for e in edges for v in e}
    out = set()
    for values in itertools.product(vertices, repeat=len(variables)):
        binding = dict(zip(variables, values))
        if all(
            (binding[src], binding[dst]) in edge_set for src, dst in pattern
        ):
            out.add(tuple(binding[v] for v in variables))
    return out


class TestFindPattern:
    def test_triangle_rotations(self, toy_graph):
        matches = find_pattern(toy_graph, TRIANGLE)
        assert set(matches.tuples) == {(0, 1, 2), (1, 2, 0), (2, 0, 1)}

    def test_two_path(self, toy_graph):
        matches = find_pattern(toy_graph, TWO_PATH)
        assert set(matches.tuples) == brute_force_matches(toy_graph, TWO_PATH)

    @pytest.mark.parametrize("pattern", [TRIANGLE, SQUARE, DIAMOND, TWO_PATH])
    def test_matches_bruteforce_random(self, pattern):
        import random

        rng = random.Random(3)
        edges = {
            (rng.randrange(8), rng.randrange(8)) for _ in range(30)
        }
        matches = find_pattern(edges, pattern)
        assert set(matches.tuples) == brute_force_matches(edges, pattern)

    @pytest.mark.parametrize("algorithm", ["nprr", "generic", "leapfrog"])
    def test_algorithms_agree(self, toy_graph, algorithm):
        matches = find_pattern(toy_graph, TRIANGLE, algorithm=algorithm)
        assert len(matches) == 3

    def test_relation_input(self, toy_graph):
        rel = Relation("Follows", ("src", "dst"), toy_graph)
        matches = find_pattern(rel, TRIANGLE)
        assert len(matches) == 3

    def test_column_order_is_variable_order(self, toy_graph):
        matches = find_pattern(toy_graph, DIAMOND)
        assert matches.attributes == ("x", "y", "z", "w")

    def test_homomorphic_semantics(self):
        """A single undirected-style edge pair matches the square pattern
        with repeated vertices (homomorphism, not isomorphism)."""
        edges = [(0, 1), (1, 0)]
        matches = find_pattern(edges, SQUARE)
        assert (0, 1, 0, 1) in matches

    def test_injective_filter(self):
        edges = [(0, 1), (1, 0)]
        matches = find_pattern(edges, SQUARE).select(
            lambda t: len(set(t.values())) == len(t)
        )
        assert matches.is_empty()


class TestCountAndBound:
    def test_count(self, toy_graph):
        assert count_pattern(toy_graph, TRIANGLE) == 3

    def test_bound_shape(self, toy_graph):
        bound = pattern_bound(toy_graph, TRIANGLE)
        assert bound == pytest.approx(len(toy_graph) ** 1.5, rel=1e-4)

    def test_square_bound(self, toy_graph):
        bound = pattern_bound(toy_graph, SQUARE)
        assert bound == pytest.approx(len(toy_graph) ** 2, rel=1e-4)

    def test_count_never_exceeds_bound(self):
        import random

        rng = random.Random(5)
        edges = {(rng.randrange(10), rng.randrange(10)) for _ in range(40)}
        for pattern in (TRIANGLE, SQUARE, DIAMOND):
            assert count_pattern(edges, pattern) <= pattern_bound(
                edges, pattern
            ) + 1e-6


class TestValidation:
    def test_empty_pattern_rejected(self, toy_graph):
        with pytest.raises(QueryError):
            pattern_query(toy_graph, [])

    def test_self_loop_rejected(self, toy_graph):
        with pytest.raises(QueryError):
            pattern_query(toy_graph, [("x", "x")])

    def test_ternary_relation_rejected(self):
        rel = Relation("R", ("a", "b", "c"), [])
        with pytest.raises(QueryError):
            pattern_query(rel, TRIANGLE)
