"""Property-based tests for Algorithm 2 (hypothesis).

The two central invariants:
* NPRR output == the definitional join, for arbitrary instances;
* the output size never exceeds the AGM bound of any valid cover.
"""

import math
from fractions import Fraction

from hypothesis import given, settings, strategies as st

from repro.baselines.naive import naive_join
from repro.core.nprr import nprr_join
from repro.core.query import JoinQuery
from repro.hypergraph.agm import agm_log_bound, optimal_fractional_cover
from repro.hypergraph.covers import FractionalCover
from repro.relations.relation import Relation


def triangle_instances(domain=4, max_size=14):
    def rows():
        return st.frozensets(
            st.tuples(st.integers(0, domain - 1), st.integers(0, domain - 1)),
            max_size=max_size,
        )

    return st.tuples(rows(), rows(), rows()).map(
        lambda rst: JoinQuery(
            [
                Relation("R", ("A", "B"), rst[0]),
                Relation("S", ("B", "C"), rst[1]),
                Relation("T", ("A", "C"), rst[2]),
            ]
        )
    )


def lw4_instances(domain=3, max_size=10):
    def rows():
        return st.frozensets(
            st.tuples(*[st.integers(0, domain - 1)] * 3),
            max_size=max_size,
        )

    attrs = [
        ("A2", "A3", "A4"),
        ("A1", "A3", "A4"),
        ("A1", "A2", "A4"),
        ("A1", "A2", "A3"),
    ]
    return st.tuples(rows(), rows(), rows(), rows()).map(
        lambda rs: JoinQuery(
            [
                Relation(f"R{i+1}", attrs[i], rs[i])
                for i in range(4)
            ]
        )
    )


def chain_instances(domain=4, max_size=12):
    def rows():
        return st.frozensets(
            st.tuples(st.integers(0, domain - 1), st.integers(0, domain - 1)),
            max_size=max_size,
        )

    return st.tuples(rows(), rows(), rows()).map(
        lambda rst: JoinQuery(
            [
                Relation("R", ("A", "B"), rst[0]),
                Relation("S", ("B", "C"), rst[1]),
                Relation("U", ("C", "D"), rst[2]),
            ]
        )
    )


@given(triangle_instances())
@settings(max_examples=60, deadline=None)
def test_nprr_equals_naive_on_triangles(query):
    assert nprr_join(query).equivalent(naive_join(query))


@given(lw4_instances())
@settings(max_examples=30, deadline=None)
def test_nprr_equals_naive_on_lw4(query):
    assert nprr_join(query).equivalent(naive_join(query))


@given(chain_instances())
@settings(max_examples=40, deadline=None)
def test_nprr_equals_naive_on_chains(query):
    assert nprr_join(query).equivalent(naive_join(query))


@given(triangle_instances())
@settings(max_examples=40, deadline=None)
def test_output_respects_agm_bound(query):
    """|J| <= prod N_e^{x_e} for the half cover (inequality (2))."""
    out = nprr_join(query)
    cover = FractionalCover.uniform(query.hypergraph, Fraction(1, 2))
    log_bound = agm_log_bound(query.hypergraph, query.sizes(), cover)
    if len(out):
        assert math.log(len(out)) <= log_bound + 1e-9


@given(triangle_instances())
@settings(max_examples=30, deadline=None)
def test_output_respects_optimal_bound(query):
    out = nprr_join(query)
    cover = optimal_fractional_cover(query.hypergraph, query.sizes())
    log_bound = agm_log_bound(query.hypergraph, query.sizes(), cover)
    if len(out):
        assert math.log(len(out)) <= log_bound + 1e-9


@given(triangle_instances(), st.permutations(["R", "S", "T"]))
@settings(max_examples=40, deadline=None)
def test_edge_order_invariance(query, order):
    base = nprr_join(query)
    assert nprr_join(query, edge_order=tuple(order)).equivalent(base)
