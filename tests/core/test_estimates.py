"""Tests for the cardinality estimation module."""

import math

import pytest

from repro.baselines.naive import naive_join
from repro.core.estimates import (
    agm_estimate,
    estimate_report,
    integral_cover_bound,
    product_bound,
    subquery_estimates,
)
from repro.core.query import JoinQuery
from repro.relations.relation import Relation
from repro.workloads import generators, instances, queries

from tests.helpers import triangle_query


class TestWholeQueryEstimates:
    def test_triangle_hierarchy(self):
        """product >= integral >= AGM >= truth, with the known values."""
        n = 16
        q = instances.triangle_hard_instance(n)
        product = product_bound(q)
        integral = integral_cover_bound(q)
        agm = agm_estimate(q)
        assert product.bound == pytest.approx(n**3, rel=1e-9)
        assert integral.bound == pytest.approx(n**2, rel=1e-4)
        assert agm.bound == pytest.approx(n**1.5, rel=1e-4)
        assert len(naive_join(q)) <= agm.bound

    def test_agm_upper_bounds_truth_random(self):
        for seed in range(6):
            q = generators.random_instance(queries.triangle(), 40, 6, seed=seed)
            assert len(naive_join(q)) <= agm_estimate(q).bound + 1e-6

    def test_empty_relation_gives_zero(self):
        q = JoinQuery(
            [
                Relation("R", ("A", "B"), []),
                Relation("S", ("B", "C"), [(1, 2)]),
            ]
        )
        assert product_bound(q).bound == 0.0
        assert agm_estimate(q).bound == 0.0

    def test_certificate_attached(self):
        q = triangle_query()
        estimate = agm_estimate(q)
        assert estimate.cover is not None
        estimate.cover.validate(q.hypergraph)

    def test_single_relation(self):
        q = JoinQuery([Relation("R", ("A",), [(1,), (2,)])])
        assert agm_estimate(q).bound == pytest.approx(2.0, rel=1e-6)


class TestSubqueryEstimates:
    def test_triangle_subsets(self):
        q = triangle_query()
        estimates = subquery_estimates(q)
        assert frozenset({"R", "S"}) in estimates
        assert frozenset({"R", "S", "T"}) in estimates
        assert len(estimates) == 4  # 3 pairs + the full query

    def test_disconnected_subsets_skipped(self):
        q = JoinQuery(
            [
                Relation("R", ("A", "B"), [(1, 2)]),
                Relation("S", ("B", "C"), [(2, 3)]),
                Relation("U", ("D", "E"), [(4, 5)]),
            ]
        )
        estimates = subquery_estimates(q)
        assert frozenset({"R", "U"}) not in estimates
        assert frozenset({"R", "S"}) in estimates

    def test_each_subquery_bound_holds(self):
        q = generators.random_instance(queries.lw_query(3), 30, 5, seed=2)
        for subset, estimate in subquery_estimates(q).items():
            sub = JoinQuery([q.relation(eid) for eid in sorted(subset)])
            assert len(naive_join(sub)) <= estimate.bound + 1e-6

    def test_pairwise_estimates_match_known_blowup(self):
        n = 20
        q = instances.triangle_hard_instance(n)
        estimates = subquery_estimates(q)
        pair = estimates[frozenset({"R", "S"})]
        # Pairwise bound is N^2 (cover 1,1) but the true pair join is
        # N^2/4 + N/2: the bound correctly anticipates the blowup the
        # full-query bound N^{3/2} rules out.
        assert pair.bound == pytest.approx(n**2, rel=1e-4)
        full = estimates[frozenset({"R", "S", "T"})]
        assert full.bound == pytest.approx(n**1.5, rel=1e-4)


class TestReport:
    def test_report_mentions_all_methods(self):
        text = estimate_report(triangle_query())
        assert "product" in text
        assert "integral cover" in text
        assert "AGM fractional cover" in text
        assert "beats integral" in text

    def test_report_without_gap(self):
        q = JoinQuery(
            [
                Relation("R", ("A", "B"), [(1, 2)]),
                Relation("S", ("B", "C"), [(2, 3)]),
            ]
        )
        text = estimate_report(q)
        assert "beats integral" not in text  # integral is optimal on paths
