"""Unit tests for the 3SAT reduction (Section 7.1's impossibility proof)."""

import itertools

import pytest

from repro.core.sat import (
    clause_relation,
    count_models,
    formula_to_query,
    formula_variables,
    is_satisfiable,
    satisfying_assignments,
)
from repro.errors import QueryError


def brute_force_models(clauses):
    variables = formula_variables(clauses)
    count = 0
    for bits in itertools.product((0, 1), repeat=len(variables)):
        assignment = dict(zip(variables, bits))
        if all(
            any((assignment[abs(l)] == 1) == (l > 0) for l in clause)
            for clause in clauses
        ):
            count += 1
    return count


class TestClauseRelation:
    def test_three_literals_seven_rows(self):
        rel = clause_relation((1, 2, 3), 0)
        assert len(rel) == 7
        assert (0, 0, 0) not in rel  # the falsifying assignment

    def test_negative_literals(self):
        rel = clause_relation((-1, -2), 0)
        assert len(rel) == 3
        assert (1, 1) not in rel

    def test_unit_clause(self):
        rel = clause_relation((1,), 0)
        assert set(rel.tuples) == {(1,)}

    def test_repeated_variable(self):
        # (x1 or x1) behaves like a unit clause.
        rel = clause_relation((1, 1), 0)
        assert set(rel.tuples) == {(1,)}

    def test_tautological_clause(self):
        # (x1 or not x1) keeps both assignments.
        rel = clause_relation((1, -1), 0)
        assert len(rel) == 2

    def test_zero_literal_rejected(self):
        with pytest.raises(QueryError):
            clause_relation((0,), 0)


class TestSatisfiability:
    def test_satisfiable(self):
        assert is_satisfiable([(1, 2, 3), (-1, 2, -3)])

    def test_unsatisfiable(self):
        assert not is_satisfiable([(1,), (-1,)])

    def test_unsat_3cnf(self):
        # All 8 sign patterns over 3 variables: unsatisfiable.
        clauses = [
            tuple(v * s for v, s in zip((1, 2, 3), signs))
            for signs in itertools.product((1, -1), repeat=3)
        ]
        assert not is_satisfiable(clauses)

    def test_unique_sat(self):
        """A formula forcing the single assignment x1=1, x2=0."""
        clauses = [(1,), (-2,)]
        sat = satisfying_assignments(clauses)
        assert len(sat) == 1
        row = dict(zip(sat.attributes, next(iter(sat.tuples))))
        assert row == {"x1": 1, "x2": 0}

    @pytest.mark.parametrize(
        "clauses",
        [
            [(1, 2, 3)],
            [(1, 2), (-1, 3), (-2, -3)],
            [(1, -2, 3), (2, 3, -4), (-1, -3, 4), (1, 2, 4)],
            [(1,), (-1, 2), (-2, 3)],
        ],
    )
    def test_model_counts_match_bruteforce(self, clauses):
        assert count_models(clauses) == brute_force_models(clauses)

    def test_empty_formula_rejected(self):
        with pytest.raises(QueryError):
            formula_to_query([])

    def test_query_shape(self):
        query = formula_to_query([(1, 2), (-2, 3)])
        assert query.edge_ids == ("C0", "C1")
        assert set(query.attributes) == {"x1", "x2", "x3"}
