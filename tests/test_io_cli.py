"""Tests for CSV I/O and the command-line interface."""

import pytest

from repro.__main__ import main
from repro.errors import SchemaError
from repro.io import load_database_csv, load_relation_csv, save_relation_csv
from repro.relations.relation import Relation


@pytest.fixture
def triangle_files(tmp_path):
    (tmp_path / "R.csv").write_text("A,B\n0,1\n1,2\n2,0\n")
    (tmp_path / "S.csv").write_text("B,C\n1,5\n2,6\n0,7\n")
    (tmp_path / "T.csv").write_text("A,C\n0,5\n1,6\n2,7\n")
    return [str(tmp_path / f"{n}.csv") for n in ("R", "S", "T")]


class TestLoad:
    def test_basic(self, tmp_path):
        path = tmp_path / "R.csv"
        path.write_text("A,B\n1,2\n3,4\n")
        rel = load_relation_csv(path)
        assert rel.name == "R"
        assert rel.attributes == ("A", "B")
        assert set(rel.tuples) == {(1, 2), (3, 4)}

    def test_auto_types_int(self, tmp_path):
        path = tmp_path / "R.csv"
        path.write_text("A\n1\n2\n")
        rel = load_relation_csv(path)
        assert all(isinstance(row[0], int) for row in rel.tuples)

    def test_auto_types_string(self, tmp_path):
        path = tmp_path / "R.csv"
        path.write_text("A,B\n1,x\n2,y\n")
        rel = load_relation_csv(path)
        assert set(rel.tuples) == {(1, "x"), (2, "y")}

    def test_type_override(self, tmp_path):
        path = tmp_path / "R.csv"
        path.write_text("A\n1\n2\n")
        rel = load_relation_csv(path, types={"A": str})
        assert set(rel.tuples) == {("1",), ("2",)}

    def test_explicit_name(self, tmp_path):
        path = tmp_path / "data.csv"
        path.write_text("A\n1\n")
        assert load_relation_csv(path, name="Mine").name == "Mine"

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "R.csv"
        path.write_text("")
        with pytest.raises(SchemaError):
            load_relation_csv(path)

    def test_ragged_row_rejected(self, tmp_path):
        path = tmp_path / "R.csv"
        path.write_text("A,B\n1\n")
        with pytest.raises(SchemaError):
            load_relation_csv(path)

    def test_load_database(self, triangle_files):
        relations = load_database_csv(triangle_files)
        assert [r.name for r in relations] == ["R", "S", "T"]


class TestSaveRoundtrip:
    def test_roundtrip(self, tmp_path):
        rel = Relation("R", ("A", "B"), [(1, 2), (3, 4), (5, 6)])
        path = tmp_path / "out.csv"
        save_relation_csv(rel, path)
        again = load_relation_csv(path, name="R")
        assert again == rel

    def test_deterministic_output(self, tmp_path):
        rel = Relation("R", ("A",), [(3,), (1,), (2,)])
        p1, p2 = tmp_path / "a.csv", tmp_path / "b.csv"
        save_relation_csv(rel, p1)
        save_relation_csv(rel, p2)
        assert p1.read_text() == p2.read_text()


class TestCLI:
    def test_join_stdout(self, triangle_files, capsys):
        assert main(["join", *triangle_files]) == 0
        out = capsys.readouterr().out
        assert "A,B,C" in out
        assert "0,1,5" in out

    def test_join_output_file(self, triangle_files, tmp_path, capsys):
        out_path = tmp_path / "result.csv"
        assert main(["join", *triangle_files, "-o", str(out_path)]) == 0
        result = load_relation_csv(out_path, name="J")
        assert len(result) == 3

    @pytest.mark.parametrize("algorithm", ["nprr", "lw", "generic"])
    def test_join_algorithms(self, triangle_files, capsys, algorithm):
        assert main(["join", *triangle_files, "--algorithm", algorithm]) == 0
        assert "0,1,5" in capsys.readouterr().out

    def test_bound(self, triangle_files, capsys):
        assert main(["bound", *triangle_files]) == 0
        out = capsys.readouterr().out
        assert "AGM bound: 5.196" in out
        assert "x[R] = 1/2" in out
        assert "certified worst case" in out

    def test_explain(self, triangle_files, capsys):
        assert main(["explain", *triangle_files]) == 0
        out = capsys.readouterr().out
        assert "total order:" in out
        assert "anchor=T" in out

    def test_explain_shows_plan(self, triangle_files, capsys):
        assert main(["explain", *triangle_files]) == 0
        out = capsys.readouterr().out
        assert "algorithm:" in out
        assert "attribute order:" in out
        assert "index backend:" in out
        assert "AGM bound" in out

    def test_explain_algorithm_override(self, triangle_files, capsys):
        assert main(
            ["explain", *triangle_files, "--algorithm", "leapfrog"]
        ) == 0
        out = capsys.readouterr().out
        assert "algorithm: leapfrog" in out
        assert "index backend: sorted" in out

    def test_explain_stats_flag(self, triangle_files, capsys):
        assert main(
            ["explain", *triangle_files, "--algorithm", "generic", "--stats"]
        ) == 0
        out = capsys.readouterr().out
        assert "statistics:" in out
        assert "distinct counts:" in out
        assert "selectivity: P(match in" in out

    def test_explain_without_stats_flag_omits_block(
        self, triangle_files, capsys
    ):
        assert main(
            ["explain", *triangle_files, "--algorithm", "generic"]
        ) == 0
        assert "statistics:" not in capsys.readouterr().out

    def test_join_stream(self, triangle_files, capsys):
        assert main(["join", *triangle_files, "--stream"]) == 0
        out = capsys.readouterr().out
        lines = [line for line in out.strip().splitlines() if line]
        assert lines[0] == "A,B,C"
        assert sorted(lines[1:]) == ["0,1,5", "1,2,6", "2,0,7"]

    def test_join_stream_to_file(self, triangle_files, tmp_path, capsys):
        out_path = tmp_path / "streamed.csv"
        assert main(
            ["join", *triangle_files, "--stream", "-o", str(out_path)]
        ) == 0
        result = load_relation_csv(out_path, name="J")
        assert len(result) == 3

    def test_join_backend_override(self, triangle_files, capsys):
        assert main(
            ["join", *triangle_files, "--algorithm", "generic",
             "--backend", "sorted"]
        ) == 0
        assert "0,1,5" in capsys.readouterr().out

    def test_join_shards(self, triangle_files, capsys):
        assert main(["join", *triangle_files, "--shards", "2"]) == 0
        out = capsys.readouterr().out
        lines = [line for line in out.strip().splitlines() if line]
        assert lines[0] == "A,B,C"
        assert sorted(lines[1:]) == ["0,1,5", "1,2,6", "2,0,7"]

    def test_join_shards_auto(self, triangle_files, capsys):
        assert main(["join", *triangle_files, "--shards", "auto"]) == 0
        out = capsys.readouterr().out
        assert sorted(
            line for line in out.strip().splitlines()[1:] if line
        ) == ["0,1,5", "1,2,6", "2,0,7"]

    def test_join_shards_to_file(self, triangle_files, tmp_path, capsys):
        out_path = tmp_path / "sharded.csv"
        assert main(
            ["join", *triangle_files, "--shards", "2", "-o", str(out_path)]
        ) == 0
        result = load_relation_csv(out_path, name="J")
        assert len(result) == 3
        assert "3 tuples" in capsys.readouterr().out

    def test_join_batch_implies_stream_format(self, triangle_files, capsys):
        assert main(["join", *triangle_files, "--batch", "2"]) == 0
        out = capsys.readouterr().out
        lines = [line for line in out.strip().splitlines() if line]
        assert lines[0] == "A,B,C"
        assert sorted(lines[1:]) == ["0,1,5", "1,2,6", "2,0,7"]

    def test_join_batch_and_shards_to_file(
        self, triangle_files, tmp_path, capsys
    ):
        out_path = tmp_path / "combo.csv"
        assert main(
            ["join", *triangle_files, "--shards", "2", "--batch", "2",
             "-o", str(out_path)]
        ) == 0
        result = load_relation_csv(out_path, name="J")
        assert len(result) == 3

    @pytest.mark.parametrize("flag,value", [
        ("--shards", "0"), ("--shards", "-1"), ("--shards", "many"),
        ("--batch", "0"), ("--batch", "-3"), ("--batch", "x"),
    ])
    def test_invalid_parallel_flags_are_usage_errors(
        self, triangle_files, tmp_path, capsys, flag, value
    ):
        # A clean argparse usage error (exit 2) — never a traceback
        # after -o has already opened/truncated the output file.
        out_path = tmp_path / "untouched.csv"
        with pytest.raises(SystemExit) as excinfo:
            main(["join", *triangle_files, flag, value, "-o", str(out_path)])
        assert excinfo.value.code == 2
        assert not out_path.exists()


class TestCLIGoldenOutput:
    """Exact-output tests for the formats scripts depend on.

    ``explain`` output is fully deterministic (plan text plus the
    Algorithm 3 query-plan tree); ``join --stream`` guarantees the
    header line, one comma-joined line per result row, and nothing else
    — row *order* is the engine's streaming order, so rows are compared
    as a sorted list.
    """

    EXPLAIN_GOLDEN = """\
query: JoinQuery(R(A,B) * S(B,C) * T(A,C))
algorithm: lw
attribute order: A, B, C
index backend: none
shards: 1
batch size: row-at-a-time
estimated output (AGM bound): 5.196 tuples
relation sizes: R=3, S=3, T=3
decisions:
  - query is a Loomis-Whitney instance: Algorithm 1 (lw) runs in the LW bound (Theorem 4.1)
  - lw derives its own order; keeping query order
  - lw builds no per-order indexes

Algorithm 2 query-plan tree (for --algorithm nprr):
[k=3] univ={B,A,C} anchor=T
    L: [k=2] univ={B} leaf
    R: [k=2] univ={A,C} anchor=S
        L: [k=1] univ={A} leaf
total order: B, A, C
"""

    def test_explain_golden(self, triangle_files, capsys):
        assert main(["explain", *triangle_files]) == 0
        assert capsys.readouterr().out == self.EXPLAIN_GOLDEN

    def test_explain_leapfrog_golden_plan_block(self, triangle_files, capsys):
        assert main(
            ["explain", *triangle_files, "--algorithm", "leapfrog"]
        ) == 0
        out = capsys.readouterr().out
        plan_block = out.split("\n\n")[0].splitlines()
        assert plan_block == [
            "query: JoinQuery(R(A,B) * S(B,C) * T(A,C))",
            "algorithm: leapfrog",
            "attribute order: A, B, C",
            "index backend: sorted",
            "shards: 1",
            "batch size: row-at-a-time",
            "estimated output (AGM bound): 5.196 tuples",
            "relation sizes: R=3, S=3, T=3",
            "decisions:",
            "  - algorithm 'leapfrog' fixed by caller",
            "  - attribute order by sampled selectivity descent: "
            "A(~3), B(~3), C(~3)",
            "  - sorted flat-array backend: leapfrog seeks need sorted runs",
        ]

    def test_stream_golden(self, triangle_files, capsys):
        assert main(["join", *triangle_files, "--stream"]) == 0
        out = capsys.readouterr().out
        lines = out.splitlines()
        assert lines[0] == "A,B,C"
        assert sorted(lines[1:]) == ["0,1,5", "1,2,6", "2,0,7"]
        assert out.endswith("\n")
        assert len(lines) == 4  # header + 3 rows, no trailer

    def test_stream_to_file_golden(self, triangle_files, tmp_path, capsys):
        out_path = tmp_path / "streamed.csv"
        assert main(
            ["join", *triangle_files, "--stream", "-o", str(out_path)]
        ) == 0
        content = out_path.read_text()
        lines = content.splitlines()
        assert lines[0] == "A,B,C"
        assert sorted(lines[1:]) == ["0,1,5", "1,2,6", "2,0,7"]
        assert capsys.readouterr().out == f"3 tuples -> {out_path}\n"


class TestCLIQueryLayer:
    """The query-layer clauses: --where / --where-in / --select."""

    def test_where_filters_rows(self, triangle_files, capsys):
        assert main(["join", *triangle_files, "--where", "A=0"]) == 0
        out = capsys.readouterr().out
        lines = [line for line in out.strip().splitlines() if line]
        assert lines == ["A,B,C", "0,1,5"]

    def test_where_select_projects(self, triangle_files, capsys):
        assert main(
            ["join", *triangle_files, "--where", "A=0", "--select", "B,C"]
        ) == 0
        out = capsys.readouterr().out
        assert out.splitlines() == ["B,C", "1,5"]

    def test_where_in_keeps_members(self, triangle_files, capsys):
        assert main(
            ["join", *triangle_files, "--where-in", "C=5,6"]
        ) == 0
        lines = [
            line for line in capsys.readouterr().out.strip().splitlines()
        ]
        assert lines[0] == "A,B,C"
        assert sorted(lines[1:]) == ["0,1,5", "1,2,6"]

    def test_where_composes_with_stream_and_shards(
        self, triangle_files, capsys
    ):
        assert main(
            ["join", *triangle_files, "--where-in", "C=5,7",
             "--stream", "--shards", "2"]
        ) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert lines[0] == "A,B,C"
        assert sorted(lines[1:]) == ["0,1,5", "2,0,7"]

    def test_select_header_in_output_file(
        self, triangle_files, tmp_path, capsys
    ):
        out_path = tmp_path / "projected.csv"
        assert main(
            ["join", *triangle_files, "--select", "C,A",
             "--stream", "-o", str(out_path)]
        ) == 0
        lines = out_path.read_text().splitlines()
        assert lines[0] == "C,A"
        assert sorted(lines[1:]) == ["5,0", "6,1", "7,2"]

    def test_string_values_coerce_like_csv(self, tmp_path, capsys):
        (tmp_path / "R.csv").write_text("A,B\nx,1\ny,2\n")
        (tmp_path / "S.csv").write_text("B,C\n1,5\n2,6\n")
        files = [str(tmp_path / "R.csv"), str(tmp_path / "S.csv")]
        assert main(["join", *files, "--where", "A=x"]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert lines == ["A,B,C", "x,1,5"]

    def test_mixed_column_values_stay_strings(self, tmp_path, capsys):
        # Column A holds '1' and 'x' -> the loader types the whole
        # column as strings; --where A=1 must compare as the string
        # '1' (matching the loaded data), not the int 1.
        (tmp_path / "R.csv").write_text("A,B\n1,7\nx,8\n")
        (tmp_path / "S.csv").write_text("B,C\n7,5\n8,6\n")
        files = [str(tmp_path / "R.csv"), str(tmp_path / "S.csv")]
        assert main(["join", *files, "--where", "A=1"]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert lines == ["A,B,C", "1,7,5"]

    def test_mixed_column_where_in_stays_strings(self, tmp_path, capsys):
        (tmp_path / "R.csv").write_text("A,B\n1,7\nx,8\n")
        (tmp_path / "S.csv").write_text("B,C\n7,5\n8,6\n")
        files = [str(tmp_path / "R.csv"), str(tmp_path / "S.csv")]
        assert main(["join", *files, "--where-in", "A=1,x"]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert lines[0] == "A,B,C"
        assert sorted(lines[1:]) == ["1,7,5", "x,8,6"]

    def test_malformed_where_is_usage_error(self, triangle_files):
        with pytest.raises(SystemExit) as excinfo:
            main(["join", *triangle_files, "--where", "A"])
        assert excinfo.value.code == 2

    def test_unknown_where_attribute_is_clean_error(
        self, triangle_files, capsys
    ):
        # A typo'd attribute exits 2 with a message — no traceback.
        assert main(["join", *triangle_files, "--where", "Z=1"]) == 2
        err = capsys.readouterr().err
        assert "error:" in err and "Z" in err

    def test_conflicting_where_is_clean_error(self, triangle_files, capsys):
        assert main(
            ["join", *triangle_files, "--where", "A=0", "--where", "A=1"]
        ) == 2
        assert "already bound" in capsys.readouterr().err

    def test_malformed_where_in_is_usage_error(self, triangle_files):
        with pytest.raises(SystemExit) as excinfo:
            main(["join", *triangle_files, "--where-in", "B="])
        assert excinfo.value.code == 2

    EXPLAIN_WHERE_GOLDEN = """\
query: JoinQuery(R(B) * S(B,C) * T(C))
algorithm: arity2
attribute order: B, C
bound attributes: A=0 (levels eliminated by sectioning)
residual filters: B in {1, 2}
select: C (streamed projection)
index backend: none
shards: 1
batch size: row-at-a-time
estimated output (AGM bound): 1.000 tuples
relation sizes: R=1, S=3, T=1
fractional cover: x[R]=1, x[S]=0, x[T]=1
decisions:
  - every relation has arity <= 2: Theorem 7.3's decomposition (arity2) has O(m) query complexity
  - arity2 derives its own order; keeping query order
  - arity2 builds no per-order indexes
"""

    def test_explain_where_golden_plan_block(self, triangle_files, capsys):
        assert main(
            ["explain", *triangle_files, "--where", "A=0",
             "--where-in", "B=1,2", "--select", "C"]
        ) == 0
        out = capsys.readouterr().out
        assert out.split("\n\n")[0] + "\n" == self.EXPLAIN_WHERE_GOLDEN

    def test_explain_all_bound_guard_plan(self, triangle_files, capsys):
        assert main(
            ["explain", *triangle_files, "--where", "A=0",
             "--where", "B=1", "--where", "C=5"]
        ) == 0
        out = capsys.readouterr().out
        assert "algorithm: none" in out
        assert "bound attributes: A=0, B=1, C=5" in out
        assert "membership guards" in out

    def test_explain_unmodified_without_clauses(self, triangle_files, capsys):
        # The pushdown lines only appear when clauses are given — the
        # legacy golden output (TestCLIGoldenOutput) stays byte-exact.
        assert main(["explain", *triangle_files]) == 0
        out = capsys.readouterr().out
        assert "bound attributes:" not in out
        assert "residual filters:" not in out
        assert "select:" not in out


class TestCLIFeedback:
    """``--feedback``: record on join, plan from observations on explain.

    The tiny triangle is all-binary, so ``auto`` would dispatch to
    arity2 (no per-level telemetry); every test pins ``generic``, the
    order-sensitive executor the feedback loop instruments.
    """

    FEEDBACK_STATS_GOLDEN = """\
statistics:
  source: feedback
  distinct counts: A=3, B=3, C=3
  order estimates: A~3, B~3, C~3
  observed vs sampled (per chosen attribute):
    A: estimate without feedback ~3, with feedback ~3
    B: estimate without feedback ~3, with feedback ~3
    C: estimate without feedback ~3, with feedback ~3
  observed levels (last recorded run):
    A @ level 0: partials=1 candidates=3 matches=3 selectivity=1.000 fan-out=3
    B @ level 1: partials=3 candidates=3 matches=3 selectivity=1.000 fan-out=1
    C @ level 2: partials=3 candidates=3 matches=3 selectivity=1.000 fan-out=1
"""

    def test_join_feedback_output_unchanged(self, triangle_files, capsys):
        assert main(
            ["join", *triangle_files, "--algorithm", "generic"]
        ) == 0
        plain = capsys.readouterr().out
        assert main(
            ["join", *triangle_files, "--algorithm", "generic",
             "--feedback"]
        ) == 0
        assert capsys.readouterr().out == plain

    def test_explain_feedback_without_observations_notes_it(
        self, tmp_path, capsys
    ):
        # Distinct data from every other feedback test: the process-wide
        # provider keys observations by relation value, and this test
        # needs a query nothing has executed.
        (tmp_path / "U.csv").write_text("A,B\n0,1\n1,9\n")
        (tmp_path / "V.csv").write_text("B,C\n1,5\n9,8\n")
        files = [str(tmp_path / "U.csv"), str(tmp_path / "V.csv")]
        assert main(
            ["explain", *files, "--algorithm", "generic", "--feedback"]
        ) == 0
        out = capsys.readouterr().out
        assert "no observations recorded" in out

    def test_explain_feedback_golden_stats_block(
        self, triangle_files, capsys
    ):
        # A recorded run first, then the observed-vs-sampled table.
        assert main(
            ["join", *triangle_files, "--algorithm", "generic",
             "--feedback"]
        ) == 0
        capsys.readouterr()
        assert main(
            ["explain", *triangle_files, "--algorithm", "generic",
             "--feedback", "--stats"]
        ) == 0
        out = capsys.readouterr().out
        assert "attribute order by observed-feedback descent" in out
        start = out.index("statistics:")
        block = out[start:start + len(self.FEEDBACK_STATS_GOLDEN)]
        assert block == self.FEEDBACK_STATS_GOLDEN

    def test_explain_without_feedback_flag_ignores_observations(
        self, triangle_files, capsys
    ):
        assert main(
            ["join", *triangle_files, "--algorithm", "generic",
             "--feedback"]
        ) == 0
        capsys.readouterr()
        assert main(
            ["explain", *triangle_files, "--algorithm", "generic",
             "--stats"]
        ) == 0
        out = capsys.readouterr().out
        assert "source: sampled" in out
        assert "observed levels" not in out

    def test_stream_and_shards_accept_feedback(
        self, triangle_files, capsys
    ):
        assert main(
            ["join", *triangle_files, "--algorithm", "generic",
             "--feedback", "--stream"]
        ) == 0
        streamed = capsys.readouterr().out
        assert sorted(streamed.splitlines()[1:]) == [
            "0,1,5", "1,2,6", "2,0,7"
        ]
        assert main(
            ["join", *triangle_files, "--algorithm", "generic",
             "--feedback", "--shards", "2"]
        ) == 0
        sharded = capsys.readouterr().out
        assert sorted(sharded.splitlines()[1:]) == [
            "0,1,5", "1,2,6", "2,0,7"
        ]
