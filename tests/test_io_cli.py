"""Tests for CSV I/O and the command-line interface."""

import pytest

from repro.__main__ import main
from repro.errors import SchemaError
from repro.io import load_database_csv, load_relation_csv, save_relation_csv
from repro.relations.relation import Relation


@pytest.fixture
def triangle_files(tmp_path):
    (tmp_path / "R.csv").write_text("A,B\n0,1\n1,2\n2,0\n")
    (tmp_path / "S.csv").write_text("B,C\n1,5\n2,6\n0,7\n")
    (tmp_path / "T.csv").write_text("A,C\n0,5\n1,6\n2,7\n")
    return [str(tmp_path / f"{n}.csv") for n in ("R", "S", "T")]


class TestLoad:
    def test_basic(self, tmp_path):
        path = tmp_path / "R.csv"
        path.write_text("A,B\n1,2\n3,4\n")
        rel = load_relation_csv(path)
        assert rel.name == "R"
        assert rel.attributes == ("A", "B")
        assert set(rel.tuples) == {(1, 2), (3, 4)}

    def test_auto_types_int(self, tmp_path):
        path = tmp_path / "R.csv"
        path.write_text("A\n1\n2\n")
        rel = load_relation_csv(path)
        assert all(isinstance(row[0], int) for row in rel.tuples)

    def test_auto_types_string(self, tmp_path):
        path = tmp_path / "R.csv"
        path.write_text("A,B\n1,x\n2,y\n")
        rel = load_relation_csv(path)
        assert set(rel.tuples) == {(1, "x"), (2, "y")}

    def test_type_override(self, tmp_path):
        path = tmp_path / "R.csv"
        path.write_text("A\n1\n2\n")
        rel = load_relation_csv(path, types={"A": str})
        assert set(rel.tuples) == {("1",), ("2",)}

    def test_explicit_name(self, tmp_path):
        path = tmp_path / "data.csv"
        path.write_text("A\n1\n")
        assert load_relation_csv(path, name="Mine").name == "Mine"

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "R.csv"
        path.write_text("")
        with pytest.raises(SchemaError):
            load_relation_csv(path)

    def test_ragged_row_rejected(self, tmp_path):
        path = tmp_path / "R.csv"
        path.write_text("A,B\n1\n")
        with pytest.raises(SchemaError):
            load_relation_csv(path)

    def test_load_database(self, triangle_files):
        relations = load_database_csv(triangle_files)
        assert [r.name for r in relations] == ["R", "S", "T"]


class TestSaveRoundtrip:
    def test_roundtrip(self, tmp_path):
        rel = Relation("R", ("A", "B"), [(1, 2), (3, 4), (5, 6)])
        path = tmp_path / "out.csv"
        save_relation_csv(rel, path)
        again = load_relation_csv(path, name="R")
        assert again == rel

    def test_deterministic_output(self, tmp_path):
        rel = Relation("R", ("A",), [(3,), (1,), (2,)])
        p1, p2 = tmp_path / "a.csv", tmp_path / "b.csv"
        save_relation_csv(rel, p1)
        save_relation_csv(rel, p2)
        assert p1.read_text() == p2.read_text()


class TestCLI:
    def test_join_stdout(self, triangle_files, capsys):
        assert main(["join", *triangle_files]) == 0
        out = capsys.readouterr().out
        assert "A,B,C" in out
        assert "0,1,5" in out

    def test_join_output_file(self, triangle_files, tmp_path, capsys):
        out_path = tmp_path / "result.csv"
        assert main(["join", *triangle_files, "-o", str(out_path)]) == 0
        result = load_relation_csv(out_path, name="J")
        assert len(result) == 3

    @pytest.mark.parametrize("algorithm", ["nprr", "lw", "generic"])
    def test_join_algorithms(self, triangle_files, capsys, algorithm):
        assert main(["join", *triangle_files, "--algorithm", algorithm]) == 0
        assert "0,1,5" in capsys.readouterr().out

    def test_bound(self, triangle_files, capsys):
        assert main(["bound", *triangle_files]) == 0
        out = capsys.readouterr().out
        assert "AGM bound: 5.196" in out
        assert "x[R] = 1/2" in out
        assert "certified worst case" in out

    def test_explain(self, triangle_files, capsys):
        assert main(["explain", *triangle_files]) == 0
        out = capsys.readouterr().out
        assert "total order:" in out
        assert "anchor=T" in out

    def test_explain_shows_plan(self, triangle_files, capsys):
        assert main(["explain", *triangle_files]) == 0
        out = capsys.readouterr().out
        assert "algorithm:" in out
        assert "attribute order:" in out
        assert "index backend:" in out
        assert "AGM bound" in out

    def test_explain_algorithm_override(self, triangle_files, capsys):
        assert main(
            ["explain", *triangle_files, "--algorithm", "leapfrog"]
        ) == 0
        out = capsys.readouterr().out
        assert "algorithm: leapfrog" in out
        assert "index backend: sorted" in out

    def test_join_stream(self, triangle_files, capsys):
        assert main(["join", *triangle_files, "--stream"]) == 0
        out = capsys.readouterr().out
        lines = [line for line in out.strip().splitlines() if line]
        assert lines[0] == "A,B,C"
        assert sorted(lines[1:]) == ["0,1,5", "1,2,6", "2,0,7"]

    def test_join_stream_to_file(self, triangle_files, tmp_path, capsys):
        out_path = tmp_path / "streamed.csv"
        assert main(
            ["join", *triangle_files, "--stream", "-o", str(out_path)]
        ) == 0
        result = load_relation_csv(out_path, name="J")
        assert len(result) == 3

    def test_join_backend_override(self, triangle_files, capsys):
        assert main(
            ["join", *triangle_files, "--algorithm", "generic",
             "--backend", "sorted"]
        ) == 0
        assert "0,1,5" in capsys.readouterr().out
