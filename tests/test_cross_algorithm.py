"""The integration suite: every join implementation agrees on every shape.

This is the library's strongest correctness argument — seven independent
join implementations (definitional, binary hash/sort-merge, join-project,
NPRR, LW, Generic Join, Leapfrog Triejoin, arity-2 decomposition) must
produce identical outputs across the paper's instance families and random
workloads.
"""

import pytest

from repro.baselines.hash_join import hash_join
from repro.baselines.join_project import agm_join_project
from repro.baselines.naive import naive_join
from repro.baselines.sort_merge import chain_sort_merge
from repro.core.arity_two import arity_two_join
from repro.core.generic_join import generic_join
from repro.core.leapfrog import leapfrog_join
from repro.core.lw import lw_join
from repro.core.nprr import nprr_join
from repro.workloads import generators, instances, queries

GENERAL_ALGORITHMS = [
    nprr_join,
    generic_join,
    leapfrog_join,
    hash_join,
    chain_sort_merge,
    lambda q: agm_join_project(q)[0],
]


def assert_all_agree(query, include=()):  # pragma: no cover - helper
    baseline = naive_join(query)
    for algorithm in list(GENERAL_ALGORITHMS) + list(include):
        result = algorithm(query)
        assert result.equivalent(baseline), (
            f"{getattr(algorithm, '__name__', algorithm)} disagrees: "
            f"{len(result)} vs {len(baseline)} tuples"
        )


class TestTriangles:
    @pytest.mark.parametrize("seed", range(8))
    def test_random(self, seed):
        q = generators.random_instance(queries.triangle(), 45, 7, seed=seed)
        assert_all_agree(q, include=[lw_join, arity_two_join])

    @pytest.mark.parametrize("seed", range(4))
    def test_skewed(self, seed):
        q = generators.random_instance(
            queries.triangle(), 60, 12, seed=seed, skew=1.4
        )
        assert_all_agree(q, include=[lw_join, arity_two_join])

    @pytest.mark.parametrize("n", [4, 12, 24])
    def test_example_22(self, n):
        q = instances.triangle_hard_instance(n)
        assert_all_agree(q, include=[lw_join, arity_two_join])

    def test_tripartite(self):
        q = generators.tripartite_triangle_instance(15, 60, seed=3, hub=True)
        assert_all_agree(q, include=[lw_join, arity_two_join])


class TestLWInstances:
    @pytest.mark.parametrize("n", [3, 4, 5])
    @pytest.mark.parametrize("seed", [0, 1])
    def test_random(self, n, seed):
        q = generators.random_instance(queries.lw_query(n), 30, 4, seed=seed)
        assert_all_agree(q, include=[lw_join])

    @pytest.mark.parametrize("n", [3, 4])
    def test_hard(self, n):
        q = instances.lw_hard_instance(n, 13)
        assert_all_agree(q, include=[lw_join])

    @pytest.mark.parametrize("n", [3, 4])
    def test_grid(self, n):
        q = instances.grid_instance(queries.lw_query(n), 3)
        assert_all_agree(q, include=[lw_join])


class TestGraphQueries:
    @pytest.mark.parametrize("k", [3, 4, 5, 6])
    def test_cycles(self, k):
        q = generators.random_instance(queries.cycle_query(k), 40, 6, seed=k)
        assert_all_agree(q, include=[arity_two_join])

    @pytest.mark.parametrize("k", [4, 5])
    def test_hard_cycles(self, k):
        q = instances.cycle_hard_instance(k, 16)
        assert_all_agree(q, include=[arity_two_join])

    @pytest.mark.parametrize("k", [2, 4])
    def test_stars(self, k):
        q = generators.random_instance(queries.star_query(k), 30, 5, seed=k)
        assert_all_agree(q, include=[arity_two_join])

    def test_clique4(self):
        q = generators.random_instance(queries.clique_query(4), 40, 6, seed=9)
        assert_all_agree(q, include=[arity_two_join])

    @pytest.mark.parametrize("seed", range(6))
    def test_random_graphs(self, seed):
        h = generators.random_hypergraph(5, 6, 2, seed=seed)
        q = generators.random_instance(h, 25, 4, seed=seed + 11)
        assert_all_agree(q, include=[arity_two_join])


class TestGeneralHypergraphs:
    @pytest.mark.parametrize("seed", range(8))
    def test_random(self, seed):
        h = generators.random_hypergraph(5, 4, 4, seed=seed)
        q = generators.random_instance(h, 25, 3, seed=seed + 23)
        assert_all_agree(q)

    def test_paper_example_52(self):
        q = generators.random_instance(queries.paper_example_52(), 50, 3, seed=1)
        assert_all_agree(q)

    def test_figure2(self):
        q = generators.random_instance(queries.paper_figure2(), 50, 3, seed=2)
        assert_all_agree(q)

    def test_beyond_lw(self):
        q = instances.beyond_lw_instance(13)
        assert_all_agree(q)

    def test_fd_fanout_plain(self):
        q, _fds = instances.fd_fanout_instance(2, 8)
        assert_all_agree(q, include=[arity_two_join])
