"""The ExecutionContext-first API: execute(), ResultStream, shims.

Two contracts:

* ``execute(query, context=...)`` is the one entry point; every
  consumption style is a view on its :class:`ResultStream`, and views
  agree with each other and with the legacy functions.
* The legacy mode-specific entry points are *frozen*: same signatures,
  same results, plus a :class:`DeprecationWarning` — and nothing else.
"""

import asyncio
import inspect
import warnings

import pytest

from repro import ExecutionContext, Q, ResultStream, ShardSpec, execute
from repro.api import (
    aiter_join,
    count_join,
    iter_join,
    join,
    join_batched,
    sample_join,
    shard_join,
)
from repro.errors import QueryError
from tests.helpers import triangle_query

QUERY = triangle_query(
    r_rows=tuple((i % 5, j) for i in range(10) for j in range(4)),
    s_rows=tuple((j, k) for j in range(4) for k in range(6)),
    t_rows=tuple((a, k) for a in range(5) for k in range(6)),
)
SERIAL = sorted(iter_join(QUERY))


class TestExecute:
    def test_returns_a_result_stream(self):
        stream = execute(QUERY)
        assert isinstance(stream, ResultStream)
        assert stream.attributes == ("A", "B", "C")

    def test_views_agree(self):
        stream = execute(QUERY)
        assert sorted(stream) == SERIAL
        assert sorted(stream.rows()) == SERIAL
        assert sorted(stream.relation("J").tuples) == SERIAL
        batched = [row for batch in stream.batches(7) for row in batch]
        assert sorted(batched) == SERIAL
        assert stream.count() == len(SERIAL)
        assert len(stream.sample(3, seed=2)) == 3
        assert stream.plan().algorithm in ("generic", "leapfrog", "lw",
                                           "nprr", "arity2")

    def test_async_view(self):
        async def drain():
            return [row async for row in execute(QUERY).astream(16)]

        assert sorted(asyncio.run(drain())) == SERIAL

    def test_accepts_builders_and_keeps_their_clauses(self):
        q = Q(QUERY).where(A=1).select("A", "C")
        expected = sorted(q.stream())
        assert sorted(execute(q)) == expected

    def test_context_and_options_are_exclusive(self):
        with pytest.raises(QueryError):
            execute(QUERY, context=ExecutionContext(), mode="serial")

    def test_options_overlay_the_context(self):
        stream = execute(QUERY, shards=ShardSpec(2), mode="serial")
        assert stream.builder.context.shards == ShardSpec(2)
        assert sorted(stream) == SERIAL

    def test_bad_algorithm_rejected_before_query_construction(self):
        with pytest.raises(QueryError):
            execute(None, algorithm="quantum")
        with pytest.raises(QueryError):
            execute(None, context=ExecutionContext(algorithm="quantum"))

    def test_shard_spec_batch_size_feeds_batches(self):
        stream = execute(
            QUERY, shards=ShardSpec(2, batch_size=13), mode="serial"
        )
        sizes = [len(batch) for batch in stream.batches()]
        assert all(size == 13 for size in sizes[:-1])
        assert sorted(r for b in stream.batches() for r in b) == SERIAL

    def test_result_stream_is_immutable_and_reusable(self):
        stream = execute(QUERY)
        with pytest.raises(AttributeError):
            stream.builder = None
        assert sorted(stream) == SERIAL
        assert sorted(stream) == SERIAL  # fresh execution, same rows


class TestDeprecatedShims:
    def test_each_shim_warns_and_agrees(self):
        with pytest.warns(DeprecationWarning, match="repro.join"):
            materialized = join(QUERY)
        assert sorted(materialized.tuples) == SERIAL

        with pytest.warns(DeprecationWarning, match="join_batched"):
            batched = join_batched(QUERY, batch_size=8)
        assert sorted(r for b in batched for r in b) == SERIAL

        with pytest.warns(DeprecationWarning, match="shard_join"):
            sharded = shard_join(QUERY, shards=2, mode="serial")
        assert sorted(sharded) == SERIAL

        with pytest.warns(DeprecationWarning, match="aiter_join"):
            stream = aiter_join(QUERY)

        async def drain():
            return [row async for row in stream]

        assert sorted(asyncio.run(drain())) == SERIAL

    def test_streaming_and_aggregate_entry_points_stay_quiet(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            assert sorted(iter_join(QUERY)) == SERIAL
            assert count_join(QUERY) == len(SERIAL)
            assert len(sample_join(QUERY, 2, seed=1)) == 2
            assert sorted(execute(QUERY)) == SERIAL

    def test_shim_signatures_are_frozen(self):
        """The deprecation must not change any callable's shape."""
        frozen = {
            join: (
                "relations", "algorithm", "cover", "name",
                "attribute_order", "backend", "database", "feedback",
            ),
            join_batched: (
                "relations", "batch_size", "algorithm", "cover",
                "attribute_order", "backend", "database", "feedback",
            ),
            shard_join: (
                "relations", "shards", "algorithm", "cover",
                "attribute_order", "backend", "mode", "workers",
                "database", "feedback",
            ),
            aiter_join: (
                "relations", "algorithm", "cover", "attribute_order",
                "backend", "shards", "batch_size", "database", "feedback",
            ),
        }
        for function, parameters in frozen.items():
            found = tuple(inspect.signature(function).parameters)
            assert found == parameters, function.__name__
