"""ExecutionContext: the single carrier of execution options."""

import pytest

from repro.api import (
    aiter_join,
    explain,
    iter_join,
    join,
    join_batched,
    shard_join,
)
from repro.engine.planner import plan_join
from repro.errors import PlanError, QueryError
from repro.query.builder import Q
from repro.query.context import ExecutionContext
from repro.query.shards import ShardSpec
from repro.relations.database import Database
from repro.stats import StatsConfig

from tests.helpers import triangle_query


class TestContextObject:
    def test_defaults_mirror_bare_join(self):
        context = ExecutionContext()
        assert context.algorithm == "auto"
        assert context.shards is None
        assert context.batch_size is None
        assert not context.parallel

    def test_replace_derives_without_mutation(self):
        base = ExecutionContext(shards="auto")
        serial = base.replace(shards=None)
        assert base.shards == ShardSpec("auto")
        assert serial.shards is None

    def test_bare_shards_coerced_to_spec(self):
        assert ExecutionContext(shards=4).shards == ShardSpec(4)
        spec = ShardSpec(4, predictive=True)
        assert ExecutionContext(shards=spec).shards is spec

    def test_frozen(self):
        with pytest.raises(AttributeError):
            ExecutionContext().algorithm = "generic"

    def test_hashable(self):
        assert len({ExecutionContext(), ExecutionContext()}) == 1

    def test_mode_validated_eagerly(self):
        with pytest.raises(PlanError):
            ExecutionContext(mode="sideways")

    def test_describe_lists_non_defaults(self):
        text = ExecutionContext(algorithm="generic", shards=4).describe()
        assert "algorithm='generic'" in text
        assert "shards=ShardSpec(4)" in text
        assert "batch_size" not in text


class TestPlannerConsumesContext:
    def test_context_overrides_kwargs(self):
        query = triangle_query()
        plan = plan_join(
            query, context=ExecutionContext(algorithm="generic", shards=2)
        )
        assert plan.algorithm == "generic"
        assert plan.shards == 2

    def test_stats_config_accepted_directly(self):
        query = triangle_query()
        plan = plan_join(
            query,
            context=ExecutionContext(
                algorithm="generic", stats=StatsConfig(sample_size=0)
            ),
        )
        assert plan.statistics is not None
        assert plan.statistics.source == "heuristic"

    def test_unknown_algorithm_rejected(self):
        with pytest.raises(QueryError):
            plan_join(
                triangle_query(),
                context=ExecutionContext(algorithm="bogus"),
            )


class TestApiWrappersDelegate:
    """The legacy entry points are thin wrappers: same results, same
    validation, via builder + context."""

    def test_join_parity(self):
        query = triangle_query()
        assert sorted(join(query).tuples) == sorted(iter_join(query))

    def test_join_batched_parity(self):
        query = triangle_query()
        rows = [r for batch in join_batched(query, batch_size=2) for r in batch]
        assert sorted(rows) == sorted(join(query).tuples)

    def test_shard_join_parity(self):
        query = triangle_query()
        assert sorted(shard_join(query, shards=2)) == sorted(
            join(query).tuples
        )

    def test_aiter_join_parity(self):
        import asyncio

        query = triangle_query()

        async def collect():
            return [row async for row in aiter_join(query)]

        assert sorted(asyncio.run(collect())) == sorted(join(query).tuples)

    def test_explain_records_context_options(self):
        query = triangle_query()
        plan = explain(query, algorithm="generic", backend="sorted")
        assert plan.algorithm == "generic"
        assert plan.backend == "sorted"

    def test_eager_validation_preserved(self):
        query = triangle_query()
        with pytest.raises(QueryError):
            join(query, algorithm="nope")
        with pytest.raises(PlanError):
            join_batched(query, batch_size=0)
        with pytest.raises(PlanError):
            shard_join(query, mode="sideways")
        with pytest.raises(PlanError):
            iter_join(query, algorithm="lw", backend="sorted")


class TestBuilderHonorsContext:
    def test_database_used_for_unbound_queries(self):
        query = triangle_query()
        db = Database(query.relations.values())
        builder = Q(db["R"], db["S"], db["T"]).using(
            database=db, algorithm="generic"
        )
        before = db.cache_info()
        list(builder.stream())
        middle = db.cache_info()
        assert middle.misses > before.misses  # cold: builds went to cache
        list(builder.stream())
        after = db.cache_info()
        assert after.misses == middle.misses  # warm: pure hits
        assert after.hits > middle.hits

    def test_sections_bypass_cache_untouched_relations_use_it(self):
        # Equality pushdown sections R and T (they contain A); those
        # ad-hoc sections must NOT be served from (or stored in) the
        # catalog cache under the full relations' names.  S does not
        # contain A, stays the catalogued object, and keeps using the
        # shared cache.
        query = triangle_query()
        db = Database(query.relations.values())
        builder = (
            Q(db["R"], db["S"], db["T"])
            .using(database=db, algorithm="generic")
            .where(A=0)
        )
        before = db.cache_info()
        rows = sorted(builder.stream())
        middle = db.cache_info()
        assert middle.misses == before.misses + 1  # S only
        sorted(builder.stream())
        after = db.cache_info()
        assert after.misses == middle.misses
        assert after.hits == middle.hits + 1  # S served from cache
        assert db.cached_index_count() == 1
        assert rows == sorted(
            join(query).select_equals("A", 0).tuples
        )

    def test_shards_route_through_parallel_driver(self):
        query = triangle_query()
        rows = sorted(Q(query).using(shards=2, mode="serial").stream())
        assert rows == sorted(join(query).tuples)
