"""PreparedQuery: plan-once/run-many, zero warm builds, rebinding."""

import pickle

import pytest

from repro.api import join
from repro.errors import QueryError
from repro.query.builder import Q
from repro.relations.database import Database
from repro.relations.relation import Relation
from repro.workloads import generators, queries


def instance(seed=21):
    return generators.random_instance(queries.triangle(), 80, 9, seed=seed)


def catalogued(seed=21):
    query = instance(seed)
    db = Database(query.relations.values())
    return db, Q(db["R"], db["S"], db["T"]).on(db)


class TestPreparedExecution:
    def test_run_matches_unprepared(self):
        query = instance()
        prepared = Q(query).using(algorithm="generic").prepare()
        assert sorted(prepared.stream()) == sorted(join(query).tuples)

    def test_repeated_runs_agree(self):
        _db, builder = catalogued()
        prepared = builder.using(algorithm="generic").prepare()
        first = sorted(prepared.stream())
        assert all(sorted(prepared.stream()) == first for _ in range(3))

    def test_zero_index_builds_after_prepare(self):
        db, builder = catalogued()
        prepared = builder.using(algorithm="generic").prepare()
        before = db.cache_info()
        for _ in range(5):
            list(prepared.stream())
        after = db.cache_info()
        assert after.misses == before.misses
        assert after.hits == before.hits  # executor holds its indexes

    def test_zero_index_builds_on_warm_database(self):
        # The acceptance criterion: warm the catalog, then prepare+run
        # without a single index build.
        db, builder = catalogued()
        builder = builder.using(algorithm="generic")
        db.warm([builder])
        before = db.cache_info()
        prepared = db.prepare(builder)
        rows = sorted(prepared.run("J").tuples)
        after = db.cache_info()
        assert after.misses == before.misses, "a warm run built an index"
        assert rows == sorted(join(builder.query).tuples)

    def test_prepared_with_pushdown(self):
        query = instance()
        full = join(query)
        value = sorted(full.tuples)[0][0]
        prepared = (
            Q(query).where(A=value).select("B", "C").prepare()
        )
        expected = sorted(
            full.select_equals("A", value).project(("B", "C")).tuples
        )
        assert sorted(prepared.stream()) == expected
        assert prepared.output_attributes == ("B", "C")

    def test_prepared_batches_and_count(self):
        query = instance()
        prepared = Q(query).prepare()
        total = prepared.count()
        assert total == len(join(query))
        assert sum(len(b) for b in prepared.batches(16)) == total

    def test_prepared_async(self):
        import asyncio

        query = instance()
        prepared = Q(query).prepare()

        async def collect():
            return [row async for row in prepared.astream(batch_size=8)]

        assert sorted(asyncio.run(collect())) == sorted(join(query).tuples)

    def test_prepared_parallel_context_delegates(self):
        query = instance()
        prepared = Q(query).using(shards=2, mode="thread").prepare()
        assert sorted(prepared.stream()) == sorted(join(query).tuples)

    def test_immutable(self):
        prepared = Q(instance()).prepare()
        with pytest.raises(AttributeError):
            prepared.plan = None


class TestBind:
    def test_bind_rebinds_without_replanning(self):
        query = instance()
        full = join(query)
        values = sorted({row[0] for row in full.tuples})
        prepared = Q(query).using(algorithm="generic").where(A=values[0]).prepare()
        rebound = prepared.bind(A=values[1])
        assert prepared.plan.attribute_order == rebound.plan.attribute_order
        assert prepared.plan.algorithm == rebound.plan.algorithm
        assert rebound.plan.bound == (("A", values[1]),)
        assert sorted(rebound.stream()) == sorted(
            full.select_equals("A", values[1]).tuples
        )
        # The original prepared query is untouched.
        assert sorted(prepared.stream()) == sorted(
            full.select_equals("A", values[0]).tuples
        )

    def test_bind_unknown_parameter_rejected(self):
        prepared = Q(instance()).where(A=0).prepare()
        with pytest.raises(QueryError, match="bind"):
            prepared.bind(B=1)

    def test_bind_loop_over_parameters(self):
        # The prepared-statement workload: one plan, many parameters.
        query = instance()
        full = join(query)
        prepared = Q(query).where(A=0).select("C").prepare()
        for value in sorted({row[0] for row in full.tuples})[:4]:
            expected = sorted(
                full.select_equals("A", value).project(("C",)).tuples
            )
            assert sorted(prepared.bind(A=value).stream()) == expected

    def test_bind_resurrects_degenerate_prepared_query(self):
        # Prepared while provably empty (a residual filter rejects the
        # bound value, so no plan was ever made); rebinding to a
        # satisfying value must plan fresh instead of reusing the
        # degenerate guard plan.
        r = Relation("R", ("A", "B"), [(0, 1), (1, 2)])
        s = Relation("S", ("B", "C"), [(1, 5), (2, 6)])
        prepared = (
            Q(r, s).where(A=0).where_in("A", {1}).prepare()
        )
        assert list(prepared.stream()) == []
        resurrected = prepared.bind(A=1)
        assert resurrected.plan.algorithm != "none"
        assert sorted(resurrected.stream()) == [(1, 2, 6)]

    def test_bind_statistics_not_rescanned(self):
        db, builder = catalogued()
        prepared = builder.using(algorithm="generic").where(A=1).prepare()
        cached = db.cached_stats_count()
        prepared.bind(A=2)
        assert db.cached_stats_count() == cached


class TestDescribe:
    def test_describe_shows_bound_parameters(self):
        prepared = Q(instance()).where(A=3).prepare()
        assert "bound attributes: A=3" in prepared.describe()

    def test_plans_are_picklable(self):
        prepared = Q(instance()).where(A=3).prepare()
        clone = pickle.loads(pickle.dumps(prepared.plan))
        assert clone.bound == prepared.plan.bound


class TestDatabasePrepare:
    def test_accepts_relation_sequence(self):
        query = instance()
        db = Database(query.relations.values())
        prepared = db.prepare([db["R"], db["S"], db["T"]])
        assert sorted(prepared.stream()) == sorted(join(query).tuples)

    def test_overrides_builder_database(self):
        query = instance()
        db = Database(query.relations.values())
        other = Database()
        builder = Q(db["R"], db["S"], db["T"]).on(other)
        prepared = db.prepare(builder)
        assert prepared.query.context.database is db


def test_prepared_on_degenerate_all_bound():
    r = Relation("R", ("A", "B"), [(1, 2), (3, 4)])
    prepared = Q(r).where(A=1, B=2).prepare()
    assert list(prepared.stream()) == [(1, 2)]
    missing = prepared.bind(A=3, B=2)
    assert list(missing.stream()) == []
