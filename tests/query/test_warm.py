"""Database.warm: budget-aware cross-query index and statistics warmup."""

import pytest

from repro.errors import DatabaseError
from repro.query.builder import Q
from repro.relations.database import Database, WarmReport
from repro.relations.relation import Relation
from repro.workloads import generators, queries


def catalog(seed=31):
    query = generators.random_instance(queries.triangle(), 60, 8, seed=seed)
    return Database(query.relations.values())


def generic_builder(db):
    return Q(db["R"], db["S"], db["T"]).using(algorithm="generic").on(db)


class TestWarmReport:
    def test_warm_builds_required_indexes(self):
        db = catalog()
        report = db.warm([generic_builder(db)])
        assert isinstance(report, WarmReport)
        assert report.index_builds == len(report.warmed) == 3
        assert {name for name, _o, _k in report.warmed} == {"R", "S", "T"}
        assert db.cached_index_count() == 3

    def test_warm_then_execute_hits_every_lookup(self):
        db = catalog()
        builder = generic_builder(db)
        db.warm([builder])
        before = db.cache_info()
        list(builder.stream())
        after = db.cache_info()
        assert after.misses == before.misses
        assert after.hits == before.hits + 3

    def test_second_warm_reports_already_cached(self):
        db = catalog()
        db.warm([generic_builder(db)])
        report = db.warm([generic_builder(db)])
        assert report.index_builds == 0
        assert all(reason == "already cached" for *_t, reason in report.skipped)

    def test_statistics_warmed_by_planning(self):
        db = catalog()
        report = db.warm([generic_builder(db)])
        assert report.statistics_cached > 0
        assert db.cached_stats_count() == report.statistics_cached

    def test_mixed_workload_deduplicates_requirements(self):
        db = catalog()
        report = db.warm(
            [generic_builder(db), generic_builder(db).where_in("C", {1})]
        )
        # The same (relation, order, kind) triples appear once.
        assert len(report.warmed) == len(set(report.warmed))

    def test_leapfrog_and_nprr_requirements(self):
        db = catalog()
        report = db.warm(
            [
                Q(db["R"], db["S"]).using(algorithm="leapfrog").on(db),
                Q(db["R"], db["T"]).using(algorithm="nprr").on(db),
            ]
        )
        kinds = {kind for _n, _o, kind in report.warmed}
        assert kinds == {"sorted", "trie"}

    def test_mixed_relation_backends_warm_to_zero_misses(self):
        # Force a "mixed" plan by pre-caching a sorted index for R in
        # the order the planner will choose: cached-index availability
        # then pins R to "sorted" while the others stay on the trie, and
        # warm must reproduce exactly those (order, kind) triples.
        db = catalog()
        builder = generic_builder(db)
        first = builder.plan()
        rank = {a: i for i, a in enumerate(first.attribute_order)}
        r_order = tuple(sorted(db["R"].attributes, key=rank.__getitem__))
        db.index("R", r_order, "sorted")
        plan = builder.plan()
        assert plan.backend == "mixed"
        report = db.warm([builder])
        before = db.cache_info()
        list(builder.stream())
        after = db.cache_info()
        assert after.misses == before.misses, (
            "warm missed a mixed-plan requirement: "
            f"{report.describe()}"
        )

    def test_no_index_algorithms_warm_nothing(self):
        db = catalog()
        report = db.warm([Q(db["R"], db["S"], db["T"]).using(algorithm="lw")])
        assert report.warmed == ()
        assert report.index_builds == 0

    def test_describe_renders(self):
        db = catalog()
        text = db.warm([generic_builder(db)]).describe()
        assert "warmed 3 index(es)" in text
        assert "+ R [" in text


class TestWarmBudgets:
    def test_explicit_budget_caps_builds(self):
        db = catalog()
        report = db.warm([generic_builder(db)], budget=1)
        assert report.index_builds == 1
        assert sum(
            1
            for *_t, reason in report.skipped
            if reason == "warm budget exhausted"
        ) == 2

    def test_budget_zero_builds_nothing(self):
        db = catalog()
        report = db.warm([generic_builder(db)], budget=0)
        assert report.index_builds == 0
        assert db.cached_index_count() == 0

    def test_invalid_budget_rejected(self):
        db = catalog()
        with pytest.raises(DatabaseError):
            db.warm([], budget=-1)
        with pytest.raises(DatabaseError):
            db.warm([], budget="lots")

    def test_cache_budget_respected_without_eviction(self):
        # A tiny index cache: warming stops instead of evicting what it
        # just built (GreedyDual budget awareness).
        query = generators.random_instance(
            queries.triangle(), 40, 6, seed=33
        )
        db = Database(query.relations.values(), index_cache_budget=2)
        report = db.warm([generic_builder(db)])
        assert report.index_builds == 2
        assert db.cache_info().evictions == 0
        assert any(
            "index cache at budget" in reason
            for *_t, reason in report.skipped
        )


class TestWarmSkips:
    def test_ad_hoc_relations_skipped(self):
        db = catalog()
        stranger = Relation("X", ("A", "B"), [(1, 2)])
        report = db.warm(
            [Q(stranger, db["S"]).using(algorithm="generic").on(db)]
        )
        assert any(
            name == "X" and "not catalogued" in reason
            for name, _o, _k, reason in report.skipped
        )

    def test_sectioned_relations_skipped_untouched_warmed(self):
        # Equality pushdown sections R and T (they contain A): their
        # indexes cannot be cached under catalog names.  S does not
        # contain A, stays catalogued, and is worth warming — a later
        # bound run serves S straight from the cache.
        db = catalog()
        builder = generic_builder(db).where(A=1)
        report = db.warm([builder])
        assert [name for name, _o, _k in report.warmed] == ["S"]
        assert sorted(
            name
            for name, _o, _k, reason in report.skipped
            if "not catalogued" in reason
        ) == ["R", "T"]
        before = db.cache_info()
        list(builder.stream())
        after = db.cache_info()
        assert after.misses == before.misses
        assert after.hits == before.hits + 1

    def test_ad_hoc_namesake_does_not_poison_catalogued_warming(self):
        # An ad-hoc relation named like a catalogued one, earlier in the
        # workload, must not swallow the catalogued relation's warmup.
        db = catalog()
        stranger = Relation("R", ("A", "B"), [(1, 2)])
        report = db.warm(
            [
                Q(stranger, db["S"], db["T"]).using(algorithm="generic"),
                generic_builder(db),
            ]
        )
        assert ("R" in {name for name, _o, _k in report.warmed})
        builder = generic_builder(db)
        before = db.cache_info()
        list(builder.stream())
        after = db.cache_info()
        assert after.misses == before.misses  # fully warmed

    def test_accepts_plain_join_queries_and_sequences(self):
        db = catalog()
        query = generators.random_instance(
            queries.triangle(), 60, 8, seed=31
        )
        report = db.warm([[db["R"], db["S"]]])
        assert isinstance(report, WarmReport)
        del query
