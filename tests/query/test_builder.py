"""The fluent builder: immutability, validation, and basic semantics."""

import pytest

from repro.engine.planner import JoinPlan
from repro.errors import PlanError, QueryError
from repro.query.builder import Q, QueryBuilder
from repro.query.context import ExecutionContext
from repro.relations.relation import Relation

from tests.helpers import triangle_query


def triangle_relations():
    return (
        Relation("R", ("A", "B"), [(0, 1), (1, 2), (2, 0), (0, 2)]),
        Relation("S", ("B", "C"), [(1, 5), (2, 6), (0, 7), (2, 7)]),
        Relation("T", ("A", "C"), [(0, 5), (1, 6), (2, 7), (0, 7)]),
    )


class TestConstruction:
    def test_varargs_list_and_query_spellings_agree(self):
        r, s, t = triangle_relations()
        varargs = sorted(Q(r, s, t).stream())
        as_list = sorted(Q([r, s, t]).stream())
        from repro.core.query import JoinQuery

        as_query = sorted(Q(JoinQuery([r, s, t])).stream())
        assert varargs == as_list == as_query

    def test_join_query_passes_through_identically(self):
        query = triangle_query()
        assert Q(query).query is query

    def test_empty_query_rejected(self):
        with pytest.raises(QueryError):
            Q()

    def test_builder_is_immutable(self):
        builder = Q(*triangle_relations())
        with pytest.raises(AttributeError):
            builder.selected = ("A",)

    def test_fluent_methods_return_new_builders(self):
        base = Q(*triangle_relations())
        bound = base.where(A=0)
        assert base is not bound
        assert base.bindings == ()
        assert bound.bindings == (("A", 0),)
        # The base builder still runs the unrestricted join.
        assert len(list(base.stream())) > len(list(bound.stream()))


class TestWhere:
    def test_unknown_attribute_rejected(self):
        with pytest.raises(QueryError, match="unknown attribute"):
            Q(*triangle_relations()).where(Z=1)

    def test_conflicting_rebinding_rejected(self):
        builder = Q(*triangle_relations()).where(A=0)
        with pytest.raises(QueryError, match="already bound"):
            builder.where(A=1)

    def test_same_value_rebinding_is_noop(self):
        builder = Q(*triangle_relations()).where(A=0).where(A=0)
        assert builder.bindings == (("A", 0),)

    def test_binding_missing_value_yields_empty(self):
        assert list(Q(*triangle_relations()).where(A=99).stream()) == []

    def test_bindings_eliminate_attribute_from_plan(self):
        plan = Q(*triangle_relations()).where(A=0).plan()
        assert plan.bound == (("A", 0),)
        assert "A" not in plan.attribute_order
        assert "A" not in plan.query.attributes
        assert "bound attributes: A=0" in plan.describe()

    def test_all_attributes_bound_hit(self):
        rows = list(Q(*triangle_relations()).where(A=0, B=1, C=5).stream())
        assert rows == [(0, 1, 5)]

    def test_all_attributes_bound_miss(self):
        assert (
            list(Q(*triangle_relations()).where(A=0, B=1, C=6).stream()) == []
        )

    def test_all_bound_plan_is_guard_plan(self):
        plan = Q(*triangle_relations()).where(A=0, B=1, C=5).plan()
        assert plan.algorithm == "none"
        assert plan.attribute_order == ()
        assert "membership guards" in plan.describe()


class TestWhereInAndFilter:
    def test_where_in(self):
        rows = sorted(Q(*triangle_relations()).where_in("C", {6, 7}).stream())
        assert rows == [(0, 2, 7), (1, 2, 6), (2, 0, 7)]

    def test_where_in_empty_set_is_empty(self):
        assert list(Q(*triangle_relations()).where_in("C", ()).stream()) == []

    def test_filter_predicate(self):
        rows = sorted(
            Q(*triangle_relations())
            .filter("C", lambda value: value % 2 == 0, label="even")
            .stream()
        )
        assert rows == [(1, 2, 6)]

    def test_filter_on_bound_attribute_evaluated_eagerly(self):
        builder = (
            Q(*triangle_relations())
            .where(C=5)
            .filter("C", lambda value: value > 100)
        )
        assert list(builder.stream()) == []

    def test_filters_render_in_describe(self):
        text = (
            Q(*triangle_relations())
            .where_in("B", {2, 1})
            .describe()
        )
        assert "residual filters: B in {1, 2}" in text

    def test_unknown_filter_attribute_rejected(self):
        with pytest.raises(QueryError, match="unknown attribute"):
            Q(*triangle_relations()).where_in("Z", {1})


class TestSelect:
    def test_projection_streams_deduplicated(self):
        rows = list(Q(*triangle_relations()).select("B").stream())
        assert sorted(rows) == [(0,), (1,), (2,)]
        assert len(rows) == len(set(rows))

    def test_projection_order_respected(self):
        rows = sorted(Q(*triangle_relations()).select("C", "A").stream())
        full = sorted(Q(*triangle_relations()).stream())
        assert rows == sorted({(c, a) for a, _b, c in full})

    def test_empty_selection_is_boolean_query(self):
        assert list(Q(*triangle_relations()).select().stream()) == [()]
        assert (
            list(Q(*triangle_relations()).where(A=99).select().stream()) == []
        )

    def test_duplicate_selection_rejected(self):
        with pytest.raises(QueryError, match="twice"):
            Q(*triangle_relations()).select("A", "A")

    def test_run_uses_selected_schema(self):
        result = Q(*triangle_relations()).select("C", "B").run("P")
        assert result.name == "P"
        assert result.attributes == ("C", "B")

    def test_output_attributes(self):
        builder = Q(*triangle_relations())
        assert builder.output_attributes == ("A", "B", "C")
        assert builder.select("C").output_attributes == ("C",)


class TestContextPlumbing:
    def test_using_kwargs_updates_context(self):
        builder = Q(*triangle_relations()).using(
            algorithm="generic", backend="sorted"
        )
        assert builder.context.algorithm == "generic"
        assert builder.context.backend == "sorted"

    def test_using_context_replaces_wholesale(self):
        context = ExecutionContext(algorithm="leapfrog")
        builder = Q(*triangle_relations()).using(context)
        assert builder.context is context

    def test_using_both_rejected(self):
        with pytest.raises(QueryError):
            Q(*triangle_relations()).using(
                ExecutionContext(), algorithm="generic"
            )

    def test_context_attribute_order_strips_bound_attributes(self):
        builder = (
            Q(*triangle_relations())
            .using(algorithm="generic", attribute_order=("C", "A", "B"))
            .where(A=0)
        )
        plan = builder.plan()
        assert plan.attribute_order == ("C", "B")
        assert sorted(builder.stream()) == [(0, 1, 5), (0, 2, 7)]

    def test_invalid_mode_rejected_eagerly(self):
        with pytest.raises(PlanError, match="shard mode"):
            ExecutionContext(mode="bogus")

    def test_plan_is_a_join_plan(self):
        assert isinstance(Q(*triangle_relations()).plan(), JoinPlan)

    def test_count(self):
        assert Q(*triangle_relations()).count() == 4


class TestBatchesAndAsync:
    def test_batches(self):
        batches = list(Q(*triangle_relations()).batches(3))
        assert [len(b) for b in batches] == [3, 1]

    def test_batch_size_from_context(self):
        builder = Q(*triangle_relations()).using(batch_size=2)
        assert [len(b) for b in builder.batches()] == [2, 2]

    def test_invalid_context_batch_size_raises_eagerly(self):
        builder = Q(*triangle_relations()).using(batch_size=0)
        with pytest.raises(PlanError):
            builder.batches()

    def test_astream_parity(self):
        import asyncio

        async def collect():
            return [
                row
                async for row in Q(*triangle_relations())
                .where_in("C", {5, 6})
                .astream(batch_size=2)
            ]

        rows = asyncio.run(collect())
        assert sorted(rows) == [(0, 1, 5), (1, 2, 6)]


class TestRepr:
    def test_repr_mentions_clauses(self):
        text = repr(
            Q(*triangle_relations())
            .where(A=0)
            .where_in("B", {1})
            .select("C")
        )
        assert "where A=0" in text
        assert "B in {1}" in text
        assert "select C" in text
