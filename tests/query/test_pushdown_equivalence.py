"""Pushdown equivalence: the optimized path equals naive sigma/pi.

The acceptance property of the query layer: for any combination of
``where`` / ``where_in`` / ``select`` clauses,

    Q(...).where(...).select(...)  ==  pi(sigma(join(...)))

where the right side materializes the full join and applies
:meth:`Relation.select_equals` / :meth:`Relation.select` /
:meth:`Relation.project` afterwards.  Checked across all five
algorithms, serial / sharded / batched / async delivery, and both index
backends.

Equality pushdown changes the residual query's *shape* (an attribute
disappears), so the shape-restricted specialists are exercised where
the residual stays in their class: ``lw`` only sees shape-preserving
clauses (``where_in`` / ``filter``), while ``nprr`` / ``generic`` /
``leapfrog`` / ``arity2`` / ``auto`` also take equality bindings (a
bound triangle's residual is an arity-2 query, which every one of them
accepts).
"""

import pytest

from hypothesis import given, settings, strategies as st

from repro.api import join
from repro.query.builder import Q
from repro.relations.relation import Relation
from repro.workloads import generators, queries

ALL_ALGORITHMS = ("nprr", "lw", "generic", "leapfrog", "arity2", "auto")
#: Algorithms whose executors accept any residual shape (so equality
#: bindings, which shrink the hypergraph, are fair game).
SHAPE_FREE = ("nprr", "generic", "leapfrog", "auto")


def triangle_instance(seed=11, skew=None):
    kwargs = {"seed": seed}
    if skew is not None:
        kwargs["skew"] = skew
    return generators.random_instance(queries.triangle(), 60, 8, **kwargs)


def lw4_instance(seed=13):
    return generators.random_instance(queries.lw_query(4), 40, 3, seed=seed)


def naive(query, equalities=None, members=None, selected=None):
    """Reference semantics: full join, then sigma, then pi."""
    result = join(query)
    for attribute, value in (equalities or {}).items():
        result = result.select_equals(attribute, value)
    for attribute, values in (members or {}).items():
        result = result.select(
            lambda row, a=attribute, vs=values: row[a] in vs
        )
    if selected is not None:
        result = result.project(selected)
    return sorted(result.tuples)


def pick_value(query, attribute, seed=0):
    """A value the attribute actually takes (deterministic choice)."""
    for relation in query.relations.values():
        if attribute in relation.attribute_set:
            position = relation.position(attribute)
            values = sorted(
                {row[position] for row in relation.tuples}, key=repr
            )
            return values[seed % len(values)]
    raise AssertionError(f"no relation contains {attribute}")


class TestAcrossAlgorithms:
    @pytest.mark.parametrize("algorithm", SHAPE_FREE + ("arity2",))
    def test_equality_pushdown(self, algorithm):
        query = triangle_instance()
        value = pick_value(query, "A")
        rows = sorted(
            Q(query).using(algorithm=algorithm).where(A=value).stream()
        )
        assert rows == naive(query, equalities={"A": value})

    @pytest.mark.parametrize("algorithm", ALL_ALGORITHMS)
    def test_membership_pushdown(self, algorithm):
        query = triangle_instance()
        values = {pick_value(query, "C", 0), pick_value(query, "C", 1)}
        rows = sorted(
            Q(query)
            .using(algorithm=algorithm)
            .where_in("C", values)
            .stream()
        )
        assert rows == naive(query, members={"C": values})

    @pytest.mark.parametrize("algorithm", ALL_ALGORITHMS)
    def test_membership_and_projection(self, algorithm):
        query = triangle_instance(skew=1.2)
        values = {pick_value(query, "B", 0), pick_value(query, "B", 2)}
        rows = sorted(
            Q(query)
            .using(algorithm=algorithm)
            .where_in("B", values)
            .select("A", "C")
            .stream()
        )
        assert rows == naive(query, members={"B": values}, selected=("A", "C"))

    @pytest.mark.parametrize("algorithm", SHAPE_FREE)
    def test_equality_membership_projection_compose(self, algorithm):
        query = triangle_instance(skew=1.1)
        bound = pick_value(query, "A")
        values = {pick_value(query, "C", 0), pick_value(query, "C", 3)}
        rows = sorted(
            Q(query)
            .using(algorithm=algorithm)
            .where(A=bound)
            .where_in("C", values)
            .select("C")
            .stream()
        )
        assert rows == naive(
            query,
            equalities={"A": bound},
            members={"C": values},
            selected=("C",),
        )

    @pytest.mark.parametrize("algorithm", ("nprr", "lw", "generic", "leapfrog"))
    def test_lw_shape_with_membership(self, algorithm):
        query = lw4_instance()
        attribute = query.attributes[0]
        values = {pick_value(query, attribute, 0)}
        rows = sorted(
            Q(query)
            .using(algorithm=algorithm)
            .where_in(attribute, values)
            .stream()
        )
        assert rows == naive(query, members={attribute: values})

    @pytest.mark.parametrize("algorithm", ("nprr", "generic", "leapfrog"))
    def test_equality_on_lw_shape(self, algorithm):
        query = lw4_instance()
        attribute = query.attributes[1]
        value = pick_value(query, attribute)
        rows = sorted(
            Q(query)
            .using(algorithm=algorithm)
            .where(**{attribute: value})
            .stream()
        )
        assert rows == naive(query, equalities={attribute: value})


class TestAcrossBackends:
    @pytest.mark.parametrize("backend", ("trie", "sorted"))
    def test_generic_backends(self, backend):
        query = triangle_instance(skew=1.3)
        value = pick_value(query, "A")
        members = {pick_value(query, "C", 0), pick_value(query, "C", 1)}
        rows = sorted(
            Q(query)
            .using(algorithm="generic", backend=backend)
            .where(A=value)
            .where_in("C", members)
            .select("B", "C")
            .stream()
        )
        assert rows == naive(
            query,
            equalities={"A": value},
            members={"C": members},
            selected=("B", "C"),
        )

    def test_leapfrog_sorted_backend(self):
        query = triangle_instance()
        value = pick_value(query, "B")
        rows = sorted(
            Q(query)
            .using(algorithm="leapfrog", backend="sorted")
            .where(B=value)
            .stream()
        )
        assert rows == naive(query, equalities={"B": value})


class TestAcrossModes:
    def reference(self, query):
        self.value = pick_value(query, "A", 1)
        self.members = {pick_value(query, "C", 0), pick_value(query, "C", 2)}
        return naive(
            query,
            equalities={"A": self.value},
            members={"C": self.members},
            selected=("B", "C"),
        )

    def builder(self, query):
        return (
            Q(query)
            .where(A=self.value)
            .where_in("C", self.members)
            .select("B", "C")
        )

    def test_serial_vs_sharded_serial_mode(self):
        query = triangle_instance(skew=1.2)
        expected = self.reference(query)
        rows = sorted(
            self.builder(query)
            .using(shards=3, mode="serial")
            .stream()
        )
        assert rows == expected

    def test_sharded_thread_mode(self):
        query = triangle_instance(skew=1.2)
        expected = self.reference(query)
        rows = sorted(
            self.builder(query).using(shards=2, mode="thread").stream()
        )
        assert rows == expected

    def test_sharded_process_mode(self):
        query = triangle_instance()
        expected = self.reference(query)
        rows = sorted(
            self.builder(query)
            .using(shards=2, mode="process", workers=2)
            .stream()
        )
        assert rows == expected

    def test_sharded_auto_falls_back_for_lambda_filters(self):
        # A lambda predicate does not pickle; auto mode must quietly use
        # threads and still agree with the reference.
        query = triangle_instance()
        expected = naive(
            query, members={"C": set(q for q in range(10))}
        )
        rows = sorted(
            Q(query)
            .filter("C", lambda value: value in set(range(10)))
            .using(shards=2, mode="auto")
            .stream()
        )
        assert rows == expected

    def test_batched_delivery(self):
        query = triangle_instance(skew=1.2)
        expected = self.reference(query)
        rows = sorted(
            row
            for batch in self.builder(query).batches(7)
            for row in batch
        )
        assert rows == expected

    def test_async_delivery(self):
        import asyncio

        query = triangle_instance(skew=1.2)
        expected = self.reference(query)

        async def collect():
            return [
                row async for row in self.builder(query).astream(batch_size=5)
            ]

        assert sorted(asyncio.run(collect())) == expected

    def test_async_sharded_delivery(self):
        import asyncio

        query = triangle_instance()
        expected = self.reference(query)
        builder = self.builder(query).using(shards=2, mode="thread")

        async def collect():
            return [row async for row in builder.astream(batch_size=3)]

        assert sorted(asyncio.run(collect())) == expected


class TestEdgeCases:
    def test_empty_selection_nonempty_join(self):
        query = triangle_instance()
        assert list(Q(query).select().stream()) == [()]
        assert naive(query, selected=()) == [()]

    def test_empty_selection_empty_join(self):
        r = Relation("R", ("A", "B"), [(0, 1)])
        s = Relation("S", ("B", "C"), [(9, 9)])
        assert list(Q(r, s).select().stream()) == []
        assert naive(Q(r, s).query, selected=()) == []

    def test_all_attributes_bound_equals_naive(self):
        query = triangle_instance()
        full = join(query)
        hit = sorted(full.tuples)[0]
        binding = dict(zip(("A", "B", "C"), hit))
        assert sorted(Q(query).where(**binding).stream()) == naive(
            query, equalities=binding
        )
        miss = {"A": hit[0], "B": hit[1], "C": "@absent@"}
        assert sorted(Q(query).where(**miss).stream()) == naive(
            query, equalities=miss
        )

    def test_all_bound_with_projection(self):
        query = triangle_instance()
        hit = sorted(join(query).tuples)[0]
        binding = dict(zip(("A", "B", "C"), hit))
        rows = list(Q(query).where(**binding).select("B").stream())
        assert rows == naive(query, equalities=binding, selected=("B",))

    def test_binding_every_relation_of_two_path(self):
        r = Relation("R", ("A", "B"), [(1, 10), (2, 20)])
        s = Relation("S", ("B", "C"), [(10, 7), (20, 8)])
        rows = sorted(Q(r, s).where(B=10).stream())
        assert rows == naive(Q(r, s).query, equalities={"B": 10})

    def test_single_relation_query_pushdown(self):
        r = Relation("R", ("A", "B"), [(1, 10), (2, 20), (1, 30)])
        assert sorted(Q(r).where(A=1).select("B").stream()) == naive(
            Q(r).query, equalities={"A": 1}, selected=("B",)
        )


@settings(max_examples=40, deadline=None)
@given(
    r_rows=st.frozensets(
        st.tuples(st.integers(0, 4), st.integers(0, 4)), max_size=14
    ),
    s_rows=st.frozensets(
        st.tuples(st.integers(0, 4), st.integers(0, 4)), max_size=14
    ),
    t_rows=st.frozensets(
        st.tuples(st.integers(0, 4), st.integers(0, 4)), max_size=14
    ),
    bound=st.integers(0, 4),
    members=st.frozensets(st.integers(0, 4), max_size=3),
    project=st.booleans(),
)
def test_random_triangles_equal_naive(
    r_rows, s_rows, t_rows, bound, members, project
):
    """Hypothesis sweep: random triangles, random clauses, vs naive."""
    query_relations = [
        Relation("R", ("A", "B"), r_rows),
        Relation("S", ("B", "C"), s_rows),
        Relation("T", ("A", "C"), t_rows),
    ]
    from repro.core.query import JoinQuery

    query = JoinQuery(query_relations)
    builder = Q(query).where(A=bound).where_in("C", members)
    selected = ("B",) if project else None
    if selected:
        builder = builder.select(*selected)
    assert sorted(builder.stream()) == naive(
        query,
        equalities={"A": bound},
        members={"C": members},
        selected=selected,
    )
