#!/usr/bin/env python3
"""Assert the BENCH_distributed.json schema (CI smoke gate).

Usage: python tools/check_bench_distributed.py [benchmarks/BENCH_distributed.json]

Validates the structure ``benchmarks/bench_distributed.py`` promises —
the three fleet configurations (no-steal, steal, predictive), their
board summaries, the critical-path and work ratios, and the parity
flags — so downstream consumers (the regression gate, dashboards, the
README numbers) can rely on it.  Exits non-zero with a message naming
the first violation.
"""

from __future__ import annotations

import json
import pathlib
import sys

FLEET_KEYS = {
    "wall_seconds": (int, float),
    "rows": int,
    "parity": bool,
    "shards_run": int,
    "steals": int,
    "retries": int,
    "presplits": int,
    "shard_seconds": (int, float),
    "max_shard_seconds": (int, float),
}

STEAL_KEYS = dict(
    FLEET_KEYS,
    steal_triggered=bool,
    critical_path_ratio=(int, float),
    work_ratio=(int, float),
)

PREDICTIVE_KEYS = dict(
    FLEET_KEYS,
    presplit_triggered=bool,
    critical_path_ratio=(int, float),
)

LOCAL_KEYS = {
    "wall_seconds": (int, float),
    "parity": bool,
    "fleet_wall_ratio": (int, float),
}


def fail(message: str) -> "NoReturn":  # noqa: F821 - py3.10 compat
    print(
        f"BENCH_distributed.json schema violation: {message}",
        file=sys.stderr,
    )
    raise SystemExit(1)


def check_keys(path: str, entry: object, keys: dict) -> None:
    if not isinstance(entry, dict):
        fail(f"{path} is not an object")
    for key, expected in keys.items():
        if key not in entry:
            fail(f"{path} missing {key!r}")
        if not isinstance(entry[key], expected):
            fail(f"{path}.{key} has type {type(entry[key]).__name__}")


def check(data: object) -> None:
    if not isinstance(data, dict):
        fail("top level is not an object")
    for key in (
        "host",
        "definitions",
        "scale",
        "shards",
        "fleet_slots",
        "workloads",
    ):
        if key not in data:
            fail(f"missing top-level key {key!r}")
    if "cpus" not in data["host"]:
        fail("host.cpus missing")
    if "hub_triangle" not in data["workloads"]:
        fail("missing workload 'hub_triangle'")

    hub = data["workloads"]["hub_triangle"]
    for key in ("sizes", "serial_seconds", "serial_rows"):
        if key not in hub:
            fail(f"hub_triangle missing {key!r}")
    check_keys("hub_triangle.no_steal", hub.get("no_steal"), FLEET_KEYS)
    check_keys("hub_triangle.steal", hub.get("steal"), STEAL_KEYS)
    check_keys(
        "hub_triangle.predictive", hub.get("predictive"), PREDICTIVE_KEYS
    )
    check_keys("hub_triangle.local_pool", hub.get("local_pool"), LOCAL_KEYS)

    steal = hub["steal"]
    predictive = hub["predictive"]
    for name in ("no_steal", "steal", "predictive", "local_pool"):
        if hub[name]["parity"] is not True:
            fail(f"hub_triangle.{name}.parity is not true")
    if steal["steal_triggered"] is not True:
        fail("hub_triangle.steal.steal_triggered is not true")
    if steal["steals"] < 1:
        fail("hub_triangle.steal.steals < 1: no shard was stolen")
    if steal["shards_run"] <= hub["no_steal"]["shards_run"]:
        fail(
            "hub_triangle.steal.shards_run did not grow: stealing "
            "should split shards"
        )
    if predictive["presplit_triggered"] is not True:
        fail("hub_triangle.predictive.presplit_triggered is not true")
    if predictive["presplits"] < 1:
        fail("hub_triangle.predictive.presplits < 1: hub never pre-split")
    if steal["critical_path_ratio"] <= 1.0:
        fail(
            f"hub_triangle.steal.critical_path_ratio "
            f"{steal['critical_path_ratio']} <= 1.0: stealing did not "
            f"shorten the hub shard's pole"
        )


def main(argv: list[str]) -> int:
    path = pathlib.Path(
        argv[1] if len(argv) > 1 else "benchmarks/BENCH_distributed.json"
    )
    if not path.exists():
        fail(f"{path} does not exist")
    check(json.loads(path.read_text()))
    print(f"{path}: schema ok")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
