#!/usr/bin/env python3
"""Assert the BENCH_query_api.json schema (CI smoke gate).

Usage: python tools/check_bench_query_api.py [benchmarks/BENCH_query_api.json]

Validates the structure ``benchmarks/bench_query_api.py`` promises —
the pushdown heavy/light records, the prepared-execution record, parity
flags, and the zero-index-builds contract of prepared runs — so
downstream consumers (dashboards, the README numbers) can rely on it.
Exits non-zero with a message naming the first violation.
"""

from __future__ import annotations

import json
import pathlib
import sys

PUSHDOWN_KEYS = {
    "value": object,
    "rows": int,
    "pushdown_seconds": (int, float),
    "postfilter_seconds": (int, float),
    "speedup": (int, float),
    "parity": bool,
}

PREPARED_KEYS = {
    "repeats": int,
    "cold_seconds_total": (int, float),
    "cold_seconds_per_run": (int, float),
    "prepare_seconds": (int, float),
    "warm_seconds_total": (int, float),
    "warm_seconds_per_run": (int, float),
    "amortized_speedup": (int, float),
    "index_builds_during_runs": int,
    "cache_hits_during_runs": int,
    "parity": bool,
}


def fail(message: str) -> "NoReturn":  # noqa: F821 - py3.10 compat
    print(
        f"BENCH_query_api.json schema violation: {message}", file=sys.stderr
    )
    raise SystemExit(1)


def check_record(path: str, record: object, keys: dict) -> None:
    if not isinstance(record, dict):
        fail(f"{path} is not an object")
    for key, expected in keys.items():
        if key not in record:
            fail(f"{path} missing {key!r}")
        if expected is not object and not isinstance(record[key], expected):
            fail(f"{path}.{key} has type {type(record[key]).__name__}")


def check(data: object) -> None:
    if not isinstance(data, dict):
        fail("top level is not an object")
    for key in ("host", "definitions", "scale", "sizes", "pushdown",
                "prepared"):
        if key not in data:
            fail(f"missing top-level key {key!r}")
    if "cpus" not in data["host"]:
        fail("host.cpus missing")
    for kind in ("heavy", "light"):
        if kind not in data["pushdown"]:
            fail(f"pushdown missing {kind!r}")
        check_record(f"pushdown.{kind}", data["pushdown"][kind], PUSHDOWN_KEYS)
        if data["pushdown"][kind]["parity"] is not True:
            fail(f"pushdown.{kind}.parity is not true")
    check_record("prepared", data["prepared"], PREPARED_KEYS)
    if data["prepared"]["parity"] is not True:
        fail("prepared.parity is not true")
    if data["prepared"]["index_builds_during_runs"] != 0:
        fail(
            "prepared.index_builds_during_runs is "
            f"{data['prepared']['index_builds_during_runs']}, expected 0 "
            "(prepared runs must never build indexes)"
        )


def main(argv: list[str]) -> int:
    path = pathlib.Path(
        argv[1] if len(argv) > 1 else "benchmarks/BENCH_query_api.json"
    )
    if not path.exists():
        fail(f"{path} does not exist")
    check(json.loads(path.read_text()))
    print(f"{path}: schema ok")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
