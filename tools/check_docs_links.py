"""Markdown link checker for the docs suite (no network, no deps).

Scans the given markdown files (default: README.md and docs/*.md) for
inline links and images, and verifies that every *relative* target
exists on disk, resolved against the containing file's directory.
External (``http(s)://``) and pure-anchor (``#...``) targets are
skipped — CI must not depend on third-party uptime.  Exits non-zero
listing every broken link, so documentation cannot rot silently.

Usage::

    python tools/check_docs_links.py [file.md ...]
"""

from __future__ import annotations

import pathlib
import re
import sys

ROOT = pathlib.Path(__file__).resolve().parent.parent

#: Inline markdown link or image: ``[text](target)`` / ``![alt](target)``.
LINK = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")


def default_files() -> list[pathlib.Path]:
    files = [ROOT / "README.md"]
    files.extend(sorted((ROOT / "docs").glob("*.md")))
    return [path for path in files if path.exists()]


def broken_links(path: pathlib.Path) -> list[tuple[int, str]]:
    """(line number, target) pairs whose relative targets do not exist."""
    problems = []
    for number, line in enumerate(
        path.read_text(encoding="utf-8").splitlines(), start=1
    ):
        for match in LINK.finditer(line):
            target = match.group(1)
            if target.startswith(("http://", "https://", "mailto:", "#")):
                continue
            relative = target.split("#", 1)[0]
            if not relative:
                continue
            if not (path.parent / relative).exists():
                problems.append((number, target))
    return problems


def main(argv: list[str] | None = None) -> int:
    names = (argv if argv is not None else sys.argv[1:]) or None
    files = (
        [pathlib.Path(name) for name in names]
        if names
        else default_files()
    )
    failures = 0
    for path in files:
        for number, target in broken_links(path):
            print(f"{path}:{number}: broken link -> {target}")
            failures += 1
    def display(path: pathlib.Path) -> str:
        try:
            return str(path.relative_to(ROOT))
        except ValueError:  # outside the repo root: show as given
            return str(path)

    checked = ", ".join(display(path) for path in files)
    if failures:
        print(f"{failures} broken link(s) across {checked}")
        return 1
    print(f"links OK: {checked}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
