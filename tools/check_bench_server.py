#!/usr/bin/env python3
"""Assert the BENCH_server.json schema (CI smoke gate).

Usage: python tools/check_bench_server.py [benchmarks/BENCH_server.json]

Validates the structure ``benchmarks/bench_server.py`` promises — the
prepared-cache cold/warm measurement, the admission rejection-cost
measurement, the concurrent-throughput measurement, and every parity
flag — so downstream consumers (the regression gate, the CI artifact
upload, the README numbers) can rely on it.  Exits non-zero with a
message naming the first violation.
"""

from __future__ import annotations

import json
import pathlib
import sys

CACHE_KEYS = {
    "requests": int,
    "cold_seconds_per_request": (int, float),
    "warm_seconds_per_request": (int, float),
    "hit_speedup": (int, float),
    "zero_index_builds_on_hit": bool,
    "one_answer": bool,
    "cache_hits": int,
}

ADMISSION_KEYS = {
    "requests": int,
    "rows": int,
    "bound": (int, float),
    "execute_seconds": (int, float),
    "reject_seconds_per_request": (int, float),
    "rejection_speedup": (int, float),
    "all_rejected": bool,
    "rejected_without_index_builds": bool,
}

THROUGHPUT_KEYS = {
    "clients": int,
    "requests_per_client": int,
    "rows_per_request": int,
    "serial_qps": (int, float),
    "concurrent_qps": (int, float),
    "concurrent_vs_serial": (int, float),
    "parity": bool,
}


def fail(message: str) -> "NoReturn":  # noqa: F821 - py3.10 compat
    print(
        f"BENCH_server.json schema violation: {message}", file=sys.stderr
    )
    raise SystemExit(1)


def check_keys(path: str, entry: object, keys: dict) -> None:
    if not isinstance(entry, dict):
        fail(f"{path} is not an object")
    for key, expected in keys.items():
        if key not in entry:
            fail(f"{path} missing {key!r}")
        if not isinstance(entry[key], expected):
            fail(f"{path}.{key} has type {type(entry[key]).__name__}")


def check(data: object) -> None:
    if not isinstance(data, dict):
        fail("top level is not an object")
    for key in ("host", "version", "definitions", "scale", "workloads"):
        if key not in data:
            fail(f"missing top-level key {key!r}")
    if "cpus" not in data["host"]:
        fail("host.cpus missing")
    for metric in (
        "hit_speedup", "rejection_speedup", "concurrent_vs_serial"
    ):
        if metric not in data["definitions"]:
            fail(f"definitions missing {metric!r}")
    workloads = data["workloads"]
    if not isinstance(workloads, dict):
        fail("workloads is not an object")
    for name in ("cache", "admission", "throughput"):
        if name not in workloads:
            fail(f"workloads missing {name!r}")
    check_keys("workloads.cache", workloads["cache"], CACHE_KEYS)
    check_keys(
        "workloads.admission", workloads["admission"], ADMISSION_KEYS
    )
    check_keys(
        "workloads.throughput", workloads["throughput"], THROUGHPUT_KEYS
    )

    cache = workloads["cache"]
    if cache["hit_speedup"] < 1.0:
        fail(
            f"cache.hit_speedup {cache['hit_speedup']} < 1.0 — the "
            "prepared cache lost to cold planning"
        )
    for flag in ("zero_index_builds_on_hit", "one_answer"):
        if cache[flag] is not True:
            fail(f"cache.{flag} is not true")

    admission = workloads["admission"]
    if admission["rejection_speedup"] < 1.0:
        fail(
            f"admission.rejection_speedup "
            f"{admission['rejection_speedup']} < 1.0 — refusing cost "
            "more than executing"
        )
    for flag in ("all_rejected", "rejected_without_index_builds"):
        if admission[flag] is not True:
            fail(f"admission.{flag} is not true")

    if workloads["throughput"]["parity"] is not True:
        fail("throughput.parity is not true")


def main(argv: list[str]) -> int:
    path = pathlib.Path(
        argv[0] if argv else "benchmarks/BENCH_server.json"
    )
    if not path.exists():
        fail(f"{path} does not exist — run benchmarks/bench_server.py")
    check(json.loads(path.read_text()))
    print(f"{path}: schema OK")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
