#!/usr/bin/env python3
"""Benchmark-regression gate: compare smoke runs against baselines.

Usage::

    python tools/check_bench_regression.py                 # gate all
    python tools/check_bench_regression.py BENCH_stats.json
    python tools/check_bench_regression.py --tolerance 0.3
    python tools/check_bench_regression.py --update        # re-baseline

Each smoke ``benchmarks/BENCH_*.json`` is compared against the
committed baseline of the same name under ``benchmarks/baselines/``.
Only **ratio metrics** (speedups, work ratios — dimensionless, largely
host-independent) and exact determinism flags are gated, never raw wall
times: CI hosts differ in clock speed, but "the stats plan is 3x faster
than the heuristic plan" should survive a host change.

A ``ratio`` metric passes when ``current >= tolerance * baseline`` —
the tolerance (default ``--tolerance``, overridable per metric in
:data:`METRICS`) absorbs host-to-host variance; regressions blowing
through it fail the gate with a message naming metric, values, and
floor.  An ``exact`` metric must equal its baseline verbatim (parity
flags, build counts, self-correction booleans).

``--update`` copies the current files over the baselines — the
intentional-change workflow, mirroring ``check_api_surface.py``: the
baseline diff then shows up in code review.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import shutil
import sys

BENCH_DIR = pathlib.Path(__file__).parent.parent / "benchmarks"
BASELINE_DIR = BENCH_DIR / "baselines"

#: file -> tuple of (dotted metric path, kind, tolerance or None).
#: ``kind`` is ``"ratio"`` (current >= tolerance * baseline) or
#: ``"exact"`` (current == baseline).  A ``None`` tolerance uses the
#: command-line default; metrics sensitive to host CPU count get looser
#: explicit tolerances, deterministic count-based metrics tighter ones.
METRICS: dict[str, tuple[tuple[str, str, float | None], ...]] = {
    "BENCH_engine.json": (
        ("workloads.triangle.cache.generic.speedup", "ratio", 0.25),
        ("workloads.lw4.cache.generic.speedup", "ratio", 0.25),
    ),
    "BENCH_parallel.json": (
        (
            "workloads.skewed.sharding.by_shard_count.4.speedup",
            "ratio",
            0.25,
        ),
        (
            "workloads.clique.sharding.by_shard_count.4.speedup",
            "ratio",
            0.25,
        ),
    ),
    "BENCH_stats.json": (
        ("workloads.zipf_triangle.speedup", "ratio", 0.25),
        ("workloads.trap_triangle.speedup", "ratio", 0.25),
        ("workloads.clique.speedup", "ratio", 0.25),
        ("workloads.zipf_triangle.parity", "exact", None),
        ("workloads.trap_triangle.parity", "exact", None),
        ("workloads.clique.parity", "exact", None),
    ),
    "BENCH_query_api.json": (
        ("pushdown.heavy.speedup", "ratio", 0.4),
        ("pushdown.light.speedup", "ratio", 0.4),
        ("prepared.index_builds_during_runs", "exact", None),
    ),
    "BENCH_feedback.json": (
        # Candidate counts are deterministic for fixed seeds: tight.
        ("workloads.trap_selfcorrect.work_ratio", "ratio", 0.6),
        ("workloads.trap_selfcorrect.order_changed", "exact", None),
        ("workloads.trap_selfcorrect.parity", "exact", None),
        # Split counts and per-shard times vary with host speed: loose.
        ("workloads.zipf_hotshard.splits", "ratio", 0.5),
        ("workloads.zipf_hotshard.critical_path_ratio", "ratio", 0.4),
        ("workloads.zipf_hotshard.parity", "exact", None),
    ),
    "BENCH_aggregate.json": (
        # The headline wall speedup is a same-host ratio but still
        # timing-derived: loose.  Probe/add counts are deterministic for
        # fixed seeds: tight.
        ("count_speedup", "ratio", 0.25),
        ("chain_work_ratio", "ratio", 0.9),
        ("workloads.zipf.probes.generic.work_ratio", "ratio", 0.9),
        ("workloads.chain.probes.generic.work_ratio", "ratio", 0.9),
        ("workloads.chain.probes.leapfrog.work_ratio", "ratio", 0.9),
        ("workloads.zipf.wall.generic.count_speedup", "ratio", 0.25),
        ("workloads.zipf.probes.generic.rows_match", "exact", None),
        ("workloads.chain.probes.generic.rows_match", "exact", None),
        ("workloads.zipf.parity.sharded", "exact", None),
        ("workloads.zipf.parity.grouped", "exact", None),
        ("workloads.chain.parity.nprr", "exact", None),
    ),
    "BENCH_compact.json": (
        # Probe counts are deterministic for fixed seeds and memory is
        # measured from the arrays themselves: tight tolerances.  Wall
        # seconds are deliberately absent.
        ("dense_probe_ratio", "ratio", 0.9),
        ("workloads.dense.probes.generic.ratio", "ratio", 0.9),
        ("workloads.zipf.probes.generic.ratio", "ratio", 0.9),
        ("workloads.trap.probes.generic.ratio", "ratio", 0.9),
        ("workloads.hub.probes.generic.ratio", "ratio", 0.9),
        ("workloads.dense.probes.leapfrog.ratio", "ratio", 0.9),
        ("workloads.dense.memory.compact_vs_trie", "ratio", 0.7),
        ("workloads.dense.memory.compact_vs_sorted", "ratio", 0.7),
        ("workloads.dense.probes.generic.rows_match", "exact", None),
        ("workloads.dense.probes.leapfrog.rows_match", "exact", None),
        ("workloads.dense.parity.generic_compact", "exact", None),
        ("workloads.dense.parity.leapfrog_compact", "exact", None),
        ("workloads.dense.parity.sharded_compact", "exact", None),
        ("workloads.hub.parity.generic_compact", "exact", None),
    ),
    "BENCH_observe.json": (
        # efficiency = untraced / traced wall: falling efficiency means
        # rising tracing overhead.  Loose — both sides are wall times on
        # a tiny smoke instance (the bench's own 5% budget is the hard
        # gate; this floor catches order-of-magnitude drift).
        ("workloads.overhead.efficiency", "ratio", 0.7),
        ("workloads.overhead.parity", "exact", None),
        ("workloads.worker_spans.worker_spans_nested", "exact", None),
        ("workloads.worker_spans.worker_rows_reported", "exact", None),
        ("workloads.explain_analyze.all_levels_observed", "exact", None),
        (
            "workloads.explain_analyze.final_level_matches_rows",
            "exact",
            None,
        ),
    ),
    "BENCH_server.json": (
        # All three headline numbers are wall-time ratios over loopback
        # sockets on a tiny smoke instance: loose floors (the bench's
        # own >= 1.0 sanity checks are the hard gates).  The boolean
        # flags are the deterministic contract: exact.
        ("workloads.cache.hit_speedup", "ratio", 0.25),
        ("workloads.admission.rejection_speedup", "ratio", 0.25),
        ("workloads.throughput.concurrent_vs_serial", "ratio", 0.4),
        ("workloads.cache.zero_index_builds_on_hit", "exact", None),
        ("workloads.cache.one_answer", "exact", None),
        ("workloads.admission.all_rejected", "exact", None),
        (
            "workloads.admission.rejected_without_index_builds",
            "exact",
            None,
        ),
        ("workloads.throughput.parity", "exact", None),
    ),
    "BENCH_distributed.json": (
        # Critical-path and work ratios divide worker-reported shard
        # times on a tiny smoke hub: loose floors (the bench's own
        # parity / steal-triggered checks are the hard gates).  The
        # boolean flags are the deterministic contract: exact.
        ("workloads.hub_triangle.steal.critical_path_ratio", "ratio", 0.25),
        ("workloads.hub_triangle.steal.work_ratio", "ratio", 0.4),
        ("workloads.hub_triangle.no_steal.parity", "exact", None),
        ("workloads.hub_triangle.steal.parity", "exact", None),
        ("workloads.hub_triangle.predictive.parity", "exact", None),
        ("workloads.hub_triangle.local_pool.parity", "exact", None),
        ("workloads.hub_triangle.steal.steal_triggered", "exact", None),
        (
            "workloads.hub_triangle.predictive.presplit_triggered",
            "exact",
            None,
        ),
    ),
}


def lookup(data: object, path: str):
    node = data
    for part in path.split("."):
        if not isinstance(node, dict) or part not in node:
            raise KeyError(path)
        node = node[part]
    return node


def check_file(
    name: str,
    current_dir: pathlib.Path,
    baseline_dir: pathlib.Path,
    default_tolerance: float,
) -> list[str]:
    problems: list[str] = []
    current_path = current_dir / name
    baseline_path = baseline_dir / name
    if not current_path.exists():
        return [f"{name}: current result missing ({current_path})"]
    if not baseline_path.exists():
        return [f"{name}: committed baseline missing ({baseline_path})"]
    current = json.loads(current_path.read_text())
    baseline = json.loads(baseline_path.read_text())
    for path, kind, tolerance in METRICS[name]:
        try:
            observed = lookup(current, path)
        except KeyError:
            problems.append(f"{name}: {path} missing from current run")
            continue
        try:
            expected = lookup(baseline, path)
        except KeyError:
            problems.append(f"{name}: {path} missing from baseline")
            continue
        if kind == "exact":
            if observed != expected:
                problems.append(
                    f"{name}: {path} = {observed!r}, baseline "
                    f"{expected!r} (exact match required)"
                )
            continue
        factor = tolerance if tolerance is not None else default_tolerance
        floor = factor * float(expected)
        if float(observed) < floor:
            problems.append(
                f"{name}: {path} = {float(observed):.3f} below floor "
                f"{floor:.3f} ({factor} x baseline {float(expected):.3f})"
            )
    return problems


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "files",
        nargs="*",
        help="benchmark JSON names to gate (default: every file in the "
        "metric manifest)",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.5,
        help="default fraction of the baseline a ratio metric must "
        "retain (per-metric overrides in the manifest win)",
    )
    parser.add_argument(
        "--current",
        default=str(BENCH_DIR),
        help="directory holding the freshly generated results",
    )
    parser.add_argument(
        "--baselines",
        default=str(BASELINE_DIR),
        help="directory holding the committed baselines",
    )
    parser.add_argument(
        "--update",
        action="store_true",
        help="copy current results over the baselines instead of gating",
    )
    args = parser.parse_args(argv)
    names = args.files or sorted(METRICS)
    unknown = [name for name in names if name not in METRICS]
    if unknown:
        print(
            f"no gated metrics defined for {unknown}; "
            f"choose from {sorted(METRICS)}",
            file=sys.stderr,
        )
        return 2
    current_dir = pathlib.Path(args.current)
    baseline_dir = pathlib.Path(args.baselines)

    if args.update:
        baseline_dir.mkdir(parents=True, exist_ok=True)
        for name in names:
            source = current_dir / name
            if not source.exists():
                print(f"cannot re-baseline {name}: {source} missing",
                      file=sys.stderr)
                return 2
            shutil.copyfile(source, baseline_dir / name)
            print(f"baseline updated: {baseline_dir / name}")
        return 0

    problems: list[str] = []
    for name in names:
        problems.extend(
            check_file(name, current_dir, baseline_dir, args.tolerance)
        )
    if problems:
        print("benchmark regression gate FAILED:", file=sys.stderr)
        for problem in problems:
            print(f"  - {problem}", file=sys.stderr)
        return 1
    gated = sum(len(METRICS[name]) for name in names)
    print(
        f"benchmark regression gate ok: {gated} metric(s) across "
        f"{len(names)} file(s)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
