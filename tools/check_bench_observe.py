#!/usr/bin/env python3
"""Assert the BENCH_observe.json schema (CI smoke gate).

Usage: python tools/check_bench_observe.py [benchmarks/BENCH_observe.json]

Validates the structure ``benchmarks/bench_observe.py`` promises — the
overhead measurement with its budget, the worker-span nesting flags,
the EXPLAIN ANALYZE coverage flags — so downstream consumers (the
regression gate, the CI artifact upload, the README numbers) can rely
on it.  Exits non-zero with a message naming the first violation.
"""

from __future__ import annotations

import json
import pathlib
import sys

OVERHEAD_KEYS = {
    "sizes": dict,
    "rows": int,
    "repeats": int,
    "untraced_wall": (int, float),
    "traced_wall": (int, float),
    "overhead": (int, float),
    "efficiency": (int, float),
    "max_overhead": (int, float),
    "spans_per_run": int,
    "parity": bool,
}

WORKER_KEYS = {
    "rows": int,
    "mode": str,
    "shards": int,
    "shard_spans": int,
    "worker_spans_nested": bool,
    "worker_rows_reported": bool,
}

ANALYZE_KEYS = {
    "rows": int,
    "attribute_order": list,
    "levels": int,
    "observed_levels": int,
    "estimated_levels": int,
    "all_levels_observed": bool,
    "final_level_matches_rows": bool,
    "miss_factors": list,
}


def fail(message: str) -> "NoReturn":  # noqa: F821 - py3.10 compat
    print(
        f"BENCH_observe.json schema violation: {message}", file=sys.stderr
    )
    raise SystemExit(1)


def check_keys(path: str, entry: object, keys: dict) -> None:
    if not isinstance(entry, dict):
        fail(f"{path} is not an object")
    for key, expected in keys.items():
        if key not in entry:
            fail(f"{path} missing {key!r}")
        if not isinstance(entry[key], expected):
            fail(f"{path}.{key} has type {type(entry[key]).__name__}")


def check(data: object) -> None:
    if not isinstance(data, dict):
        fail("top level is not an object")
    for key in ("host", "version", "definitions", "scale", "workloads"):
        if key not in data:
            fail(f"missing top-level key {key!r}")
    if "cpus" not in data["host"]:
        fail("host.cpus missing")
    workloads = data["workloads"]
    for name in ("overhead", "worker_spans", "explain_analyze"):
        if name not in workloads:
            fail(f"missing workload {name!r}")

    overhead = workloads["overhead"]
    check_keys("overhead", overhead, OVERHEAD_KEYS)
    if overhead["parity"] is not True:
        fail("overhead.parity is not true")
    if overhead["overhead"] > overhead["max_overhead"]:
        fail(
            f"overhead.overhead {overhead['overhead']} exceeds the "
            f"{overhead['max_overhead']} budget"
        )
    if overhead["efficiency"] <= 0:
        fail("overhead.efficiency is not positive")
    if overhead["spans_per_run"] < 2:
        fail("overhead.spans_per_run < 2: the traced run recorded "
             "no phase spans")

    workers = workloads["worker_spans"]
    check_keys("worker_spans", workers, WORKER_KEYS)
    if workers["worker_spans_nested"] is not True:
        fail("worker_spans.worker_spans_nested is not true")
    if workers["worker_rows_reported"] is not True:
        fail("worker_spans.worker_rows_reported is not true")
    if workers["shard_spans"] != workers["shards"]:
        fail(
            f"worker_spans.shard_spans {workers['shard_spans']} != "
            f"shards {workers['shards']}"
        )

    analyze = workloads["explain_analyze"]
    check_keys("explain_analyze", analyze, ANALYZE_KEYS)
    if analyze["all_levels_observed"] is not True:
        fail("explain_analyze.all_levels_observed is not true")
    if analyze["final_level_matches_rows"] is not True:
        fail("explain_analyze.final_level_matches_rows is not true")
    if analyze["levels"] != len(analyze["attribute_order"]):
        fail(
            "explain_analyze.levels does not match the attribute order "
            "length"
        )


def main(argv: list[str]) -> int:
    path = pathlib.Path(
        argv[1] if len(argv) > 1 else "benchmarks/BENCH_observe.json"
    )
    if not path.exists():
        fail(f"{path} does not exist")
    check(json.loads(path.read_text()))
    print(f"{path}: schema ok")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
