#!/usr/bin/env python3
"""Assert the BENCH_aggregate.json schema (CI smoke gate).

Usage: python tools/check_bench_aggregate.py [benchmarks/BENCH_aggregate.json]

Validates the structure ``benchmarks/bench_aggregate.py`` promises —
per-workload probe/work counts, wall speedups, sample cost, parity
flags — and re-checks the acceptance floors: the zipf triangle's
``count()`` wall speedup must be at least the recorded
``count_speedup_floor`` and the chain's deterministic work ratio at
least ``chain_work_floor``.  Raw wall seconds are type-checked, never
compared.  Exits non-zero with a message naming the first violation.
"""

from __future__ import annotations

import json
import pathlib
import sys

REQUIRED_WORKLOADS = ("zipf", "chain")

PARITY_FLAGS = (
    "generic_trie",
    "generic_compact",
    "leapfrog_sorted",
    "nprr",
    "sharded",
    "grouped",
)


def fail(message: str) -> "NoReturn":  # noqa: F821 - py3.10 compat
    print(
        f"BENCH_aggregate.json schema violation: {message}", file=sys.stderr
    )
    raise SystemExit(1)


def check_probes(workload: str, probes: object) -> None:
    if not isinstance(probes, dict):
        fail(f"workloads.{workload}.probes is not an object")
    for algorithm in ("generic", "leapfrog"):
        entry = probes.get(algorithm)
        if not isinstance(entry, dict):
            fail(f"workloads.{workload}.probes.{algorithm} missing")
        for key in ("rows", "enumerate", "fold", "fold_adds"):
            if not isinstance(entry.get(key), int) or entry[key] <= 0:
                fail(
                    f"workloads.{workload}.probes.{algorithm}.{key} "
                    "is not a positive count"
                )
        if entry["fold_adds"] >= entry["rows"]:
            fail(
                f"workloads.{workload}.probes.{algorithm}: the fold made "
                f"{entry['fold_adds']} state updates for {entry['rows']} "
                "rows — leaf counting/pruning never fired"
            )
        if not isinstance(entry.get("work_ratio"), (int, float)):
            fail(
                f"workloads.{workload}.probes.{algorithm}.work_ratio missing"
            )
        if entry.get("rows_match") is not True:
            fail(
                f"workloads.{workload}.probes.{algorithm}: "
                "fold count diverged from enumeration"
            )


def check_wall(workload: str, wall: object) -> None:
    if not isinstance(wall, dict):
        fail(f"workloads.{workload}.wall is not an object")
    for algorithm in ("generic", "leapfrog"):
        entry = wall.get(algorithm)
        if not isinstance(entry, dict):
            fail(f"workloads.{workload}.wall.{algorithm} missing")
        for key in ("enumerate_seconds", "count_seconds"):
            seconds = entry.get(key)
            if not isinstance(seconds, (int, float)) or seconds < 0:
                fail(f"workloads.{workload}.wall.{algorithm}.{key} invalid")
        if not isinstance(entry.get("count_speedup"), (int, float)):
            fail(
                f"workloads.{workload}.wall.{algorithm}.count_speedup "
                "missing"
            )


def check_sample(workload: str, sample: object) -> None:
    if not isinstance(sample, dict):
        fail(f"workloads.{workload}.sample is not an object")
    if not isinstance(sample.get("k"), int) or sample["k"] <= 0:
        fail(f"workloads.{workload}.sample.k invalid")
    for key in ("sample_seconds", "enumerate_seconds", "speedup"):
        if not isinstance(sample.get(key), (int, float)):
            fail(f"workloads.{workload}.sample.{key} missing")
    if sample.get("valid") is not True:
        fail(
            f"workloads.{workload}.sample: drawn rows were not distinct "
            "members of the result"
        )


def check(data: object) -> None:
    if not isinstance(data, dict):
        fail("top level is not an object")
    for key in (
        "scale",
        "count_speedup_floor",
        "chain_work_floor",
        "count_speedup",
        "chain_work_ratio",
        "workloads",
    ):
        if key not in data:
            fail(f"missing top-level key {key!r}")
    for name in REQUIRED_WORKLOADS:
        if name not in data["workloads"]:
            fail(f"missing workload {name!r}")
        entry = data["workloads"][name]
        for key in ("sizes", "probes", "wall", "sample", "parity"):
            if key not in entry:
                fail(f"workloads.{name} missing {key!r}")
        check_probes(name, entry["probes"])
        check_wall(name, entry["wall"])
        check_sample(name, entry["sample"])
        parity = entry["parity"]
        if not isinstance(parity, dict):
            fail(f"workloads.{name}.parity is not an object")
        for flag in PARITY_FLAGS:
            if parity.get(flag) is not True:
                fail(f"workloads.{name}.parity.{flag} is not true")
        if not isinstance(parity.get("rows"), int):
            fail(f"workloads.{name}.parity.rows missing")
    speedup = data["count_speedup"]
    floor = data["count_speedup_floor"]
    if not isinstance(speedup, (int, float)) or speedup < floor:
        fail(
            f"zipf count speedup {speedup!r} is below the acceptance "
            f"floor {floor!r}"
        )
    ratio = data["chain_work_ratio"]
    floor = data["chain_work_floor"]
    if not isinstance(ratio, (int, float)) or ratio < floor:
        fail(
            f"chain work ratio {ratio!r} is below the acceptance floor "
            f"{floor!r}"
        )


def main(argv: list[str]) -> int:
    default = (
        pathlib.Path(__file__).parent.parent
        / "benchmarks"
        / "BENCH_aggregate.json"
    )
    path = pathlib.Path(argv[1]) if len(argv) > 1 else default
    if not path.exists():
        fail(f"{path} does not exist (run benchmarks/bench_aggregate.py)")
    check(json.loads(path.read_text()))
    print(f"BENCH_aggregate.json schema ok ({path})")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
