#!/usr/bin/env python3
"""Assert the BENCH_compact.json schema (CI smoke gate).

Usage: python tools/check_bench_compact.py [benchmarks/BENCH_compact.json]

Validates the structure ``benchmarks/bench_compact.py`` promises —
per-workload probe counts, memory ratios, wall seconds, parity flags —
and re-checks the acceptance floor: the dense workload's Generic Join
probe ratio (sorted probes / compact probes) must be at least the
recorded ``dense_probe_floor``.  Only deterministic counts and ratios
are asserted, never wall times.  Exits non-zero with a message naming
the first violation.
"""

from __future__ import annotations

import json
import pathlib
import sys

REQUIRED_WORKLOADS = ("dense", "zipf", "trap", "hub")

PARITY_FLAGS = (
    "generic_compact",
    "leapfrog_compact",
    "leapfrog_sorted",
    "nprr",
    "lw",
    "arity2",
    "sharded_compact",
    "batched_compact",
    "async_compact",
)


def fail(message: str) -> "NoReturn":  # noqa: F821 - py3.10 compat
    print(
        f"BENCH_compact.json schema violation: {message}", file=sys.stderr
    )
    raise SystemExit(1)


def check_probes(workload: str, probes: object) -> None:
    if not isinstance(probes, dict):
        fail(f"workloads.{workload}.probes is not an object")
    for algorithm in ("generic", "leapfrog"):
        entry = probes.get(algorithm)
        if not isinstance(entry, dict):
            fail(f"workloads.{workload}.probes.{algorithm} missing")
        for key in ("sorted", "compact"):
            if not isinstance(entry.get(key), int) or entry[key] <= 0:
                fail(
                    f"workloads.{workload}.probes.{algorithm}.{key} "
                    "is not a positive count"
                )
        if not isinstance(entry.get("ratio"), (int, float)):
            fail(f"workloads.{workload}.probes.{algorithm}.ratio missing")
        if entry.get("rows_match") is not True:
            fail(
                f"workloads.{workload}.probes.{algorithm}: "
                "sorted and compact rows diverged"
            )


def check_memory(workload: str, memory: object) -> None:
    if not isinstance(memory, dict):
        fail(f"workloads.{workload}.memory is not an object")
    nbytes = memory.get("nbytes")
    if not isinstance(nbytes, dict):
        fail(f"workloads.{workload}.memory.nbytes missing")
    for kind in ("trie", "sorted", "compact"):
        if not isinstance(nbytes.get(kind), int) or nbytes[kind] <= 0:
            fail(f"workloads.{workload}.memory.nbytes.{kind} invalid")
    for key in ("compact_vs_trie", "compact_vs_sorted"):
        if not isinstance(memory.get(key), (int, float)):
            fail(f"workloads.{workload}.memory.{key} missing")
    if memory["compact_vs_trie"] <= 1.0:
        fail(
            f"workloads.{workload}: compact is not smaller than the trie "
            f"(ratio {memory['compact_vs_trie']})"
        )
    pickled = memory.get("pickle_bytes")
    if not isinstance(pickled, dict):
        fail(f"workloads.{workload}.memory.pickle_bytes missing")
    for kind in ("sorted", "compact"):
        if not isinstance(pickled.get(kind), int) or pickled[kind] <= 0:
            fail(f"workloads.{workload}.memory.pickle_bytes.{kind} invalid")


def check_wall(workload: str, wall: object) -> None:
    # Presence and type only: wall seconds are never compared.
    if not isinstance(wall, dict):
        fail(f"workloads.{workload}.wall is not an object")
    for algorithm, kinds in (
        ("generic", ("trie", "sorted", "compact")),
        ("leapfrog", ("sorted", "compact")),
    ):
        entry = wall.get(algorithm)
        if not isinstance(entry, dict):
            fail(f"workloads.{workload}.wall.{algorithm} missing")
        for kind in kinds:
            seconds = entry.get(f"{kind}_seconds")
            if not isinstance(seconds, (int, float)) or seconds < 0:
                fail(
                    f"workloads.{workload}.wall.{algorithm}."
                    f"{kind}_seconds invalid"
                )


def check(data: object) -> None:
    if not isinstance(data, dict):
        fail("top level is not an object")
    for key in (
        "scale",
        "dense_probe_floor",
        "dense_probe_ratio",
        "workloads",
    ):
        if key not in data:
            fail(f"missing top-level key {key!r}")
    for name in REQUIRED_WORKLOADS:
        if name not in data["workloads"]:
            fail(f"missing workload {name!r}")
        entry = data["workloads"][name]
        for key in ("sizes", "probes", "memory", "wall", "parity"):
            if key not in entry:
                fail(f"workloads.{name} missing {key!r}")
        check_probes(name, entry["probes"])
        check_memory(name, entry["memory"])
        check_wall(name, entry["wall"])
        parity = entry["parity"]
        if not isinstance(parity, dict):
            fail(f"workloads.{name}.parity is not an object")
        for flag in PARITY_FLAGS:
            if parity.get(flag) is not True:
                fail(f"workloads.{name}.parity.{flag} is not true")
        if not isinstance(parity.get("rows"), int):
            fail(f"workloads.{name}.parity.rows missing")
    ratio = data["dense_probe_ratio"]
    floor = data["dense_probe_floor"]
    if not isinstance(ratio, (int, float)) or ratio < floor:
        fail(
            f"dense probe ratio {ratio!r} is below the acceptance floor "
            f"{floor!r}"
        )


def main(argv: list[str]) -> int:
    default = (
        pathlib.Path(__file__).parent.parent
        / "benchmarks"
        / "BENCH_compact.json"
    )
    path = pathlib.Path(argv[1]) if len(argv) > 1 else default
    if not path.exists():
        fail(f"{path} does not exist (run benchmarks/bench_compact.py)")
    check(json.loads(path.read_text()))
    print(f"BENCH_compact.json schema ok ({path})")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
