#!/usr/bin/env python3
"""Assert the BENCH_stats.json schema (CI smoke gate).

Usage: python tools/check_bench_stats.py [benchmarks/BENCH_stats.json]

Validates the structure ``benchmarks/bench_stats.py`` promises —
top-level keys, per-workload heuristic/stats records, parity flags —
so downstream consumers (dashboards, the README numbers) can rely on
it.  Exits non-zero with a message naming the first violation.
"""

from __future__ import annotations

import json
import pathlib
import sys

REQUIRED_WORKLOADS = ("zipf_triangle", "trap_triangle", "clique")

PLAN_KEYS = {
    "order": list,
    "shards": int,
    "shards_planned": int,
    "serial_seconds": (int, float),
    "shard_seconds": list,
    "critical_path_seconds": (int, float),
    "rows": int,
    "parity_with_serial": bool,
    "reasons": list,
}


def fail(message: str) -> "NoReturn":  # noqa: F821 - py3.10 compat
    print(f"BENCH_stats.json schema violation: {message}", file=sys.stderr)
    raise SystemExit(1)


def check_plan(workload: str, kind: str, plan: object) -> None:
    if not isinstance(plan, dict):
        fail(f"workloads.{workload}.{kind} is not an object")
    for key, expected in PLAN_KEYS.items():
        if key not in plan:
            fail(f"workloads.{workload}.{kind} missing {key!r}")
        if not isinstance(plan[key], expected):
            fail(
                f"workloads.{workload}.{kind}.{key} has type "
                f"{type(plan[key]).__name__}"
            )
    if len(plan["shard_seconds"]) != plan["shards_planned"] and plan[
        "shards_planned"
    ] != 0:
        fail(
            f"workloads.{workload}.{kind}: shard_seconds length "
            f"{len(plan['shard_seconds'])} != shards_planned "
            f"{plan['shards_planned']}"
        )


def check(data: object) -> None:
    if not isinstance(data, dict):
        fail("top level is not an object")
    for key in ("host", "definitions", "scale", "workloads"):
        if key not in data:
            fail(f"missing top-level key {key!r}")
    if "cpus" not in data["host"]:
        fail("host.cpus missing")
    for name in REQUIRED_WORKLOADS:
        if name not in data["workloads"]:
            fail(f"missing workload {name!r}")
        entry = data["workloads"][name]
        for key in ("sizes", "heuristic", "stats", "speedup", "parity"):
            if key not in entry:
                fail(f"workloads.{name} missing {key!r}")
        check_plan(name, "heuristic", entry["heuristic"])
        check_plan(name, "stats", entry["stats"])
        stats_extra = entry["stats"].get("statistics")
        if not isinstance(stats_extra, dict):
            fail(f"workloads.{name}.stats.statistics missing")
        for key in ("source", "heavy_hitters", "order_estimates"):
            if key not in stats_extra:
                fail(f"workloads.{name}.stats.statistics missing {key!r}")
        if entry["parity"] is not True:
            fail(f"workloads.{name}.parity is not true")


def main(argv: list[str]) -> int:
    path = pathlib.Path(
        argv[1] if len(argv) > 1 else "benchmarks/BENCH_stats.json"
    )
    if not path.exists():
        fail(f"{path} does not exist")
    check(json.loads(path.read_text()))
    print(f"{path}: schema ok")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
