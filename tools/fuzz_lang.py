#!/usr/bin/env python3
"""Randomized cross-check of the query language against the Q builder.

Generates random catalogs and random *valid* statement texts (seeded,
so every failure is replayable), then checks for each instance that

* the text round-trips: ``parse(normalize(text))`` equals
  ``parse(text)`` node-for-node, and normalization is idempotent,
* randomly re-spelled variants (case, whitespace, comments) normalize
  to the same canonical text,
* executing the compiled statement returns exactly what the equivalent
  hand-built ``Q(...)`` chain returns — rows, aggregates, group-by
  tables, and samples alike, and
* random *mutations* of valid text (dropped, duplicated, swapped, or
  garbage tokens) either parse or raise a positioned
  :class:`~repro.errors.LangError` whose caret diagnostic renders —
  never any other exception.

Usage::

    python tools/fuzz_lang.py --seconds 60          # CI smoke budget
    python tools/fuzz_lang.py --iterations 2000     # fixed-count run
    python tools/fuzz_lang.py --replay 2964779349   # one failing instance

Every iteration draws its own 32-bit seed from the master stream and
runs entirely off a fresh RNG for that seed, so each instance replays
*alone*.  On any disagreement the harness prints the failing iteration
seed, the statement text, the catalog, the error, and the minimal
one-instance repro command ``python tools/fuzz_lang.py --replay SEED``,
then exits 1.
"""

from __future__ import annotations

import argparse
import os
import random
import re
import sys
import time
import traceback

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
)

from repro.errors import LangError  # noqa: E402
from repro.lang import compile_query, normalize, parse  # noqa: E402
from repro.lang.lexer import KEYWORDS  # noqa: E402
from repro.query.builder import Q  # noqa: E402
from repro.relations.database import Database  # noqa: E402
from repro.relations.relation import Relation  # noqa: E402

ATTRIBUTE_POOL = ("A", "B", "C", "D")
AGGREGATES = ("count", "sum", "min", "max", "avg", "count_distinct")


def random_catalog(rng: random.Random) -> Database:
    """2-3 connected relations with tiny domains (ties and empty joins
    both happen)."""
    count = rng.randint(2, 3)
    domain = rng.randint(2, 4)
    relations = []
    used: list[str] = []
    for index in range(count):
        arity = rng.randint(1, 3)
        if used and rng.random() < 0.9:
            first = rng.choice(used)
            rest = [a for a in ATTRIBUTE_POOL if a != first]
            attrs = (first, *rng.sample(rest, arity - 1))
        else:
            attrs = tuple(rng.sample(ATTRIBUTE_POOL, arity))
        used.extend(a for a in attrs if a not in used)
        rows = sorted(
            {
                tuple(rng.randrange(domain) for _ in attrs)
                for _ in range(rng.randint(0, 12))
            }
        )
        relations.append(Relation(f"R{index}", attrs, rows))
    return Database(relations)


def random_statement(
    rng: random.Random, database: Database
) -> tuple[str, dict]:
    """One random valid statement plus the *plan* for the equivalent
    builder chain (so the checker can rebuild it without re-parsing)."""
    names = list(database.names())
    attributes = sorted(
        {a for name in names for a in database[name].attributes}
    )
    spec: dict = {"relations": names, "eq": {}, "in": {}}

    shape = rng.random()
    if shape < 0.40:
        kind = "rows"
        if rng.random() < 0.5:
            select = "*"
        else:
            chosen = rng.sample(attributes, rng.randint(1, len(attributes)))
            select = ", ".join(chosen)
            spec["select"] = tuple(chosen)
    elif shape < 0.65:
        kind = "aggregate"
        count = rng.randint(1, 3)
        parts, aggs = [], []
        for _ in range(count):
            func = rng.choice(AGGREGATES)
            if func == "count":
                parts.append("count(*)")
                aggs.append(("count", None))
            else:
                attr = rng.choice(attributes)
                if func == "count_distinct" and rng.random() < 0.5:
                    parts.append(f"count(distinct {attr})")
                else:
                    parts.append(f"{func}({attr})")
                aggs.append((func, attr))
        select = ", ".join(parts)
        spec["aggregates"] = aggs
    elif shape < 0.85:
        kind = "group"
        keys = rng.sample(attributes, rng.randint(1, min(2, len(attributes))))
        func = rng.choice(AGGREGATES)
        if func == "count":
            agg_text, agg = "count(*)", ("count", None)
        else:
            attr = rng.choice(attributes)
            agg_text, agg = f"{func}({attr})", (func, attr)
        select = ", ".join([*keys, agg_text])
        spec["group_keys"] = tuple(keys)
        spec["aggregates"] = [agg]
    else:
        kind = "sample"
        select = "*"
        spec["sample"] = (rng.randint(1, 5), rng.randrange(1 << 12))

    text = f"select {select} from {', '.join(names)}"

    if kind in ("rows", "sample") or rng.random() < 0.4:
        conditions = []
        for _ in range(rng.randint(0, 2)):
            attr = rng.choice(attributes)
            if attr in spec["eq"] or attr in spec["in"]:
                continue
            if rng.random() < 0.6:
                value = rng.randrange(4)
                conditions.append(f"{attr} = {value}")
                spec["eq"][attr] = value
            else:
                values = sorted(rng.sample(range(4), rng.randint(1, 3)))
                listed = ", ".join(str(v) for v in values)
                conditions.append(f"{attr} in ({listed})")
                spec["in"][attr] = tuple(values)
        if conditions:
            text += " where " + " and ".join(conditions)

    if kind == "group":
        text += " group by " + ", ".join(spec["group_keys"])
    if kind == "sample":
        k, seed = spec["sample"]
        text += f" sample {k} seed {seed}"
    spec["kind"] = kind
    return text + ";", spec


def respell(rng: random.Random, text: str) -> str:
    """A differently-spelled equivalent: random *keyword* case (never
    identifiers — those are case-sensitive), extra whitespace and
    newlines, a trailing comment."""

    def reword(match: re.Match) -> str:
        word = match.group(0)
        if word.lower() in KEYWORDS and rng.random() < 0.6:
            return (
                word.upper() if rng.random() < 0.5 else word.capitalize()
            )
        return word

    respelled = re.sub(r"[A-Za-z_][A-Za-z_0-9]*", reword, text)
    out = []
    for ch in respelled:
        out.append(ch)
        if ch in ",()" and rng.random() < 0.4:
            out.append(" " * rng.randint(1, 3))
        elif ch == " " and rng.random() < 0.2:
            out.append("\n " if rng.random() < 0.5 else "  ")
    if rng.random() < 0.5:
        out.append(" -- a trailing comment")
    return "".join(out)


def equivalent_builder(spec: dict, database: Database):
    """The Q chain the statement should compile to."""
    builder = Q(*(database[name] for name in spec["relations"]))
    if spec["eq"]:
        builder = builder.where(**spec["eq"])
    for attr, values in spec["in"].items():
        builder = builder.where_in(attr, values)
    if "select" in spec:
        builder = builder.select(*spec["select"])
    return builder.on(database)


def run_aggregate(builder, func: str, attr):
    if func == "count":
        return builder.count()
    return getattr(builder, func)(attr)


def check_instance(rng: random.Random, database: Database) -> None:
    """One fuzz iteration; raises AssertionError on any disagreement."""
    text, spec = random_statement(rng, database)

    # Round-trip invariants.
    canonical = normalize(text)
    assert normalize(canonical) == canonical, "normalize not idempotent"
    assert parse(canonical) == parse(text), "normalize changed the AST"
    variant = respell(rng, text)
    try:
        assert normalize(variant) == canonical, (
            f"respelled variant normalized differently:\n  {variant!r}"
        )
    except LangError:
        # swapcase may uppercase a keyword *letter* inside an
        # identifier; identifiers are case-sensitive so that variant is
        # a different (possibly invalid) statement — skip it.
        pass

    # Execution parity against the hand-built chain.
    compiled = compile_query(text, database)
    builder = equivalent_builder(spec, database)
    kind = spec["kind"]
    result = compiled.run()
    if kind in ("rows",):
        assert sorted(result.rows) == sorted(builder.stream()), (
            "row mismatch"
        )
    elif kind == "sample":
        k, seed = spec["sample"]
        assert result.rows == builder.sample(k, seed=seed), (
            "sample mismatch"
        )
    elif kind == "aggregate":
        expected = tuple(
            run_aggregate(builder, func, attr)
            for func, attr in spec["aggregates"]
        )
        assert result.rows == [expected], (
            f"aggregate mismatch: {result.rows} != {[expected]}"
        )
    elif kind == "group":
        (func, attr), keys = spec["aggregates"][0], spec["group_keys"]
        grouped = builder.group_by(*keys)
        table = (
            grouped.count() if func == "count" else grouped.agg(
                value=(func, attr)
            )
        )
        expected = set()
        for key, value in table.items():
            key = key if isinstance(key, tuple) else (key,)
            value = value if func == "count" else value["value"]
            expected.add((*key, value))
        assert set(result.rows) == expected, (
            f"group mismatch: {sorted(result.rows)} != {sorted(expected)}"
        )

    # Mutation fuzzing: damaged text must parse or fail *cleanly*.
    for _ in range(3):
        mutated = mutate(rng, text)
        try:
            compile_query(mutated, database).run()
        except LangError as error:
            diagnostic = error.caret_diagnostic()
            assert "^" in diagnostic, "diagnostic lost its caret"
        # Any other exception propagates and is reported as a finding.


def mutate(rng: random.Random, text: str) -> str:
    """Damage the text: drop/duplicate/swap a span or splice garbage."""
    choice = rng.random()
    if choice < 0.25 and len(text) > 2:
        i = rng.randrange(len(text) - 1)
        return text[:i] + text[i + rng.randint(1, 3):]
    if choice < 0.5:
        i = rng.randrange(len(text))
        return text[:i] + text[i:i + rng.randint(1, 4)] + text[i:]
    if choice < 0.75:
        words = text.split()
        if len(words) > 2:
            i, j = rng.sample(range(len(words)), 2)
            words[i], words[j] = words[j], words[i]
            return " ".join(words)
        return text
    garbage = rng.choice(
        ("@", "select", "(", ")", "''", "group by", "1e9", "%", "'oops")
    )
    i = rng.randrange(len(text))
    return f"{text[:i]} {garbage} {text[i:]}"


def run_one(iter_seed: int) -> None:
    """One fuzz instance, fully determined by its own seed."""
    rng = random.Random(iter_seed)
    database = random_catalog(rng)
    statement = "<generation failed>"
    try:
        preview_rng = random.Random(iter_seed)
        random_catalog(preview_rng)
        statement, _ = random_statement(preview_rng, database)
        check_instance(rng, database)
    except Exception as error:
        print(f"FUZZ FAILURE (iteration seed {iter_seed})", file=sys.stderr)
        print(f"  statement: {statement!r}", file=sys.stderr)
        for name in database.names():
            relation = database[name]
            print(
                f"  {relation.name}{relation.attributes}: "
                f"{sorted(relation.tuples)}",
                file=sys.stderr,
            )
        if isinstance(error, AssertionError):
            print(f"  {error}", file=sys.stderr)
        else:
            traceback.print_exc()
        print(
            f"reproduce: python tools/fuzz_lang.py --replay {iter_seed}",
            file=sys.stderr,
        )
        raise


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--seconds",
        type=float,
        default=60.0,
        help="time budget (default 60, the CI smoke budget)",
    )
    parser.add_argument(
        "--iterations",
        type=int,
        default=None,
        help="run exactly N iterations instead of a time budget",
    )
    parser.add_argument(
        "--seed", type=int, default=0, help="master seed (default 0)"
    )
    parser.add_argument(
        "--replay",
        type=int,
        default=None,
        metavar="SEED",
        help="replay exactly one instance by its iteration seed "
        "(printed on failure) and exit",
    )
    args = parser.parse_args(argv)

    if args.replay is not None:
        try:
            run_one(args.replay)
        except Exception:
            return 1
        print(f"fuzz_lang: seed {args.replay} passes")
        return 0

    master = random.Random(args.seed)
    started = time.monotonic()
    iteration = 0
    while True:
        if args.iterations is not None:
            if iteration >= args.iterations:
                break
        elif time.monotonic() - started >= args.seconds:
            break
        iter_seed = master.randrange(1 << 32)
        try:
            run_one(iter_seed)
        except Exception:
            print(
                f"  found at iteration {iteration} of master seed "
                f"{args.seed}",
                file=sys.stderr,
            )
            return 1
        iteration += 1
    elapsed = time.monotonic() - started
    print(
        f"fuzz_lang: {iteration} instances checked in {elapsed:.1f}s "
        f"(seed {args.seed}), no disagreements"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
