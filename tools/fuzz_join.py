#!/usr/bin/env python3
"""Randomized cross-check of the join engine against a brute-force oracle.

Generates random small schemas and relations (seeded, so every failure
is replayable), then checks for each instance that

* ``iter_join`` under a randomly chosen algorithm/backend/shard config
  yields exactly the oracle's row set,
* ``count()`` equals the oracle's row count (the fold must agree with
  enumeration even though it never enumerates), and
* ``sample(k, seed=...)`` returns ``min(k, |J|)`` distinct oracle rows
  and is deterministic for the seed,

occasionally through a ``where``-binding and a ``where_in`` filter so
the sectioned/filtered paths get fuzzed too.  The oracle is a
backtracking nested-loop join over the raw tuples — no indexes, no
planner, nothing shared with the engine under test.

Usage::

    python tools/fuzz_join.py --seconds 60          # CI smoke budget
    python tools/fuzz_join.py --iterations 5000     # fixed-count run
    python tools/fuzz_join.py --seconds 3600 --seed 1   # long local soak
    python tools/fuzz_join.py --replay 2964779349   # one failing instance

Every iteration draws its own 32-bit seed from the master stream and
runs entirely off a fresh RNG for that seed, so each instance replays
*alone* — no need to re-run the thousands of iterations before it.  On
any disagreement (or an engine crash: every exception is caught, not
just assertion failures) the harness prints the failing iteration seed,
the full instance, the error, and the minimal one-instance repro
command ``python tools/fuzz_join.py --replay SEED``, then exits 1.
"""

from __future__ import annotations

import argparse
import os
import random
import sys
import time
import traceback

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
)

from repro.core.query import JoinQuery  # noqa: E402
from repro.query.builder import Q  # noqa: E402
from repro.relations.relation import Relation  # noqa: E402

ATTRIBUTE_POOL = ("A", "B", "C", "D", "E")
#: (algorithm, allowed backends) — only planner-valid combinations are
#: fuzzed; invalid ones are rejected eagerly and tested elsewhere.
CONFIGS = (
    ("auto", (None, "trie", "sorted", "compact")),
    ("generic", (None, "trie", "sorted", "compact")),
    ("leapfrog", (None, "sorted", "compact")),
    ("nprr", (None, "trie")),
)


def random_instance(rng: random.Random) -> list[Relation]:
    """A random connected join query: 2-4 relations, arity 1-3, tiny
    domains (so results stay small and duplicates/empty joins happen)."""
    count = rng.randint(2, 4)
    domain = rng.randint(2, 5)
    relations = []
    used: list[str] = []
    for index in range(count):
        arity = rng.randint(1, 3)
        if used and rng.random() < 0.9:
            # Overlap with an already-used attribute to stay connected.
            first = rng.choice(used)
            rest = [a for a in ATTRIBUTE_POOL if a != first]
            attrs = (first, *rng.sample(rest, arity - 1))
        else:
            attrs = tuple(rng.sample(ATTRIBUTE_POOL, arity))
        used.extend(a for a in attrs if a not in used)
        rows = sorted(
            {
                tuple(rng.randrange(domain) for _ in attrs)
                for _ in range(rng.randint(0, 15))
            }
        )
        relations.append(Relation(f"R{index}", attrs, rows))
    return relations


def oracle_join(relations: list[Relation]) -> set[tuple]:
    """Backtracking nested-loop join; rows in JoinQuery attribute order."""
    attributes = JoinQuery(relations).attributes
    assignments: list[dict] = [{}]
    for relation in relations:
        extended = []
        for partial in assignments:
            for row in relation.tuples:
                candidate = dict(partial)
                ok = True
                for attribute, value in zip(relation.attributes, row):
                    if candidate.get(attribute, value) != value:
                        ok = False
                        break
                    candidate[attribute] = value
                if ok:
                    extended.append(candidate)
        assignments = extended
        if not assignments:
            return set()
    return {
        tuple(assignment[a] for a in attributes)
        for assignment in assignments
    }


def check_instance(rng: random.Random, relations: list[Relation]) -> None:
    """One fuzz iteration; raises AssertionError on any disagreement."""
    builder = Q(*relations)
    expected = oracle_join(relations)
    attributes = builder.output_attributes

    # Optional clauses stress sectioning and the filtered sampler.
    if expected and rng.random() < 0.3:
        attribute = rng.choice(attributes)
        position = attributes.index(attribute)
        value = rng.choice(sorted({row[position] for row in expected}))
        builder = builder.where(**{attribute: value})
        expected = {row for row in expected if row[position] == value}
    if rng.random() < 0.3:
        attribute = rng.choice(attributes)
        position = attributes.index(attribute)
        keep = tuple(range(0, 5, 2))
        builder = builder.where_in(attribute, keep)
        expected = {row for row in expected if row[position] in keep}

    algorithm, backends = rng.choice(CONFIGS)
    options = {"algorithm": algorithm}
    backend = rng.choice(backends)
    if backend is not None:
        options["backend"] = backend
    if rng.random() < 0.2:
        options.update(shards=rng.randint(2, 3), mode="serial")
    builder = builder.using(**options)

    streamed = list(builder.stream())
    assert len(streamed) == len(set(streamed)), "duplicate streamed rows"
    assert set(streamed) == expected, (
        f"iter_join mismatch: {len(streamed)} streamed vs "
        f"{len(expected)} expected under {options}"
    )

    counted = builder.count()
    assert counted == len(expected), (
        f"count() {counted} != oracle {len(expected)} under {options}"
    )

    k = rng.randint(0, 6)
    seed = rng.randrange(1 << 16)
    sample = builder.sample(k, seed=seed)
    assert len(sample) == min(k, len(expected)), (
        f"sample size {len(sample)} != min({k}, {len(expected)})"
    )
    assert len(sample) == len(set(sample)), "sample has duplicates"
    assert set(sample) <= expected, "sample drew a non-result row"
    assert builder.sample(k, seed=seed) == sample, "sample not seed-stable"


def run_one(iter_seed: int) -> None:
    """One fuzz instance, fully determined by its own seed.

    Instance generation and the check's random choices both come from a
    fresh RNG seeded with ``iter_seed``, so a failure replays alone —
    independent of where in a long run it was found.
    """
    rng = random.Random(iter_seed)
    relations = random_instance(rng)
    try:
        check_instance(rng, relations)
    except Exception as error:
        # Any exception — an oracle mismatch (AssertionError) or an
        # engine crash — is a finding; report it the same way.
        print(f"FUZZ FAILURE (iteration seed {iter_seed})", file=sys.stderr)
        for relation in relations:
            print(
                f"  {relation.name}{relation.attributes}: "
                f"{sorted(relation.tuples)}",
                file=sys.stderr,
            )
        if isinstance(error, AssertionError):
            print(f"  {error}", file=sys.stderr)
        else:
            traceback.print_exc()
        print(
            f"reproduce: python tools/fuzz_join.py --replay {iter_seed}",
            file=sys.stderr,
        )
        raise


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--seconds",
        type=float,
        default=60.0,
        help="time budget (default 60, the CI smoke budget)",
    )
    parser.add_argument(
        "--iterations",
        type=int,
        default=None,
        help="run exactly N iterations instead of a time budget",
    )
    parser.add_argument(
        "--seed", type=int, default=0, help="master seed (default 0)"
    )
    parser.add_argument(
        "--replay",
        type=int,
        default=None,
        metavar="SEED",
        help="replay exactly one instance by its iteration seed "
        "(printed on failure) and exit",
    )
    args = parser.parse_args(argv)

    if args.replay is not None:
        try:
            run_one(args.replay)
        except Exception:
            return 1
        print(f"fuzz_join: seed {args.replay} passes")
        return 0

    master = random.Random(args.seed)
    started = time.monotonic()
    iteration = 0
    while True:
        if args.iterations is not None:
            if iteration >= args.iterations:
                break
        elif time.monotonic() - started >= args.seconds:
            break
        iter_seed = master.randrange(1 << 32)
        try:
            run_one(iter_seed)
        except Exception:
            print(
                f"  found at iteration {iteration} of master seed "
                f"{args.seed}",
                file=sys.stderr,
            )
            return 1
        iteration += 1
    elapsed = time.monotonic() - started
    print(
        f"fuzz_join: {iteration} instances checked in {elapsed:.1f}s "
        f"(seed {args.seed}), no disagreements"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
