#!/usr/bin/env python3
"""Guard the public API surface against silent signature drift.

Usage::

    PYTHONPATH=src python tools/check_api_surface.py            # check
    PYTHONPATH=src python tools/check_api_surface.py --update   # re-snapshot

The root cause of the "kwargs drift" bug class this repo kept hitting:
six parallel entry points whose keyword lists (``algorithm``, ``cover``,
``attribute_order``, ``backend``, ``database``, ...) were edited by hand
and quietly diverged PR after PR.  This tool snapshots the *signature*
of every export in ``repro.__all__`` — functions and methods via
``inspect.signature``, classes as their constructor plus every public
method — into ``tools/api_surface.json``, and fails (exit 1) when the
live package no longer matches, printing exactly what was added,
removed, or changed.

Intentional API changes are a one-command re-snapshot (``--update``)
whose diff then shows up in code review — which is the point: signature
changes become *visible*, never silent.

Run by CI (the docs job, pinned to one Python version so signature
rendering is stable).
"""

from __future__ import annotations

import argparse
import inspect
import json
import pathlib
import re
import sys

SNAPSHOT_PATH = pathlib.Path(__file__).parent / "api_surface.json"

#: The deprecated mode-specific entry points (superseded by
#: ``repro.execute``) are signature-FROZEN: they exist only so old
#: call sites keep working, so *any* change to their shape is a bug.
#: Unlike the snapshot, this table is deliberately NOT touched by
#: ``--update`` — re-snapshotting cannot absorb shim drift.
FROZEN_SHIMS = {
    "join": "(relations: 'Sequence[Relation] | JoinQuery', algorithm: 'str' = 'auto', cover: 'FractionalCover | None' = None, name: 'str' = 'J', attribute_order: 'Sequence[str] | None' = None, backend: 'str | None' = None, database: 'Database | None' = None, feedback: 'FeedbackConfig | None' = None) -> 'Relation'",
    "join_batched": "(relations: 'Sequence[Relation] | JoinQuery', batch_size: 'int | str' = 1024, algorithm: 'str' = 'auto', cover: 'FractionalCover | None' = None, attribute_order: 'Sequence[str] | None' = None, backend: 'str | None' = None, database: 'Database | None' = None, feedback: 'FeedbackConfig | None' = None) -> 'Iterator[list[Row]]'",
    "shard_join": "(relations: 'Sequence[Relation] | JoinQuery', shards: 'int | str | None' = None, algorithm: 'str' = 'auto', cover: 'FractionalCover | None' = None, attribute_order: 'Sequence[str] | None' = None, backend: 'str | None' = None, mode: 'str' = 'auto', workers: 'int | None' = None, database: 'Database | None' = None, feedback: 'FeedbackConfig | None' = None) -> 'Iterator[Row]'",
    "aiter_join": "(relations: 'Sequence[Relation] | JoinQuery', algorithm: 'str' = 'auto', cover: 'FractionalCover | None' = None, attribute_order: 'Sequence[str] | None' = None, backend: 'str | None' = None, shards: 'int | str | None' = None, batch_size: 'int' = 1024, database: 'Database | None' = None, feedback: 'FeedbackConfig | None' = None) -> 'AsyncIterator[Row]'",
}

#: Memory addresses in default-value reprs would make snapshots flap.
_ADDRESS = re.compile(r" at 0x[0-9a-fA-F]+")


def _signature(obj) -> str:
    try:
        text = str(inspect.signature(obj))
    except (TypeError, ValueError):
        return "<no signature>"
    return _ADDRESS.sub("", text)


def _class_surface(cls) -> dict:
    """Constructor plus public methods/properties of an exported class."""
    surface = {"__init__": _signature(cls)}
    for name, member in sorted(vars(cls).items()):
        if name.startswith("_"):
            continue
        if inspect.isfunction(member):
            surface[name] = _signature(member)
        elif isinstance(member, (classmethod, staticmethod)):
            surface[name] = _signature(member.__func__)
        elif isinstance(member, property):
            surface[name] = "<property>"
    # Dataclasses keep their public fields in __annotations__; record
    # the names so adding/removing a field is drift too.
    fields = getattr(cls, "__dataclass_fields__", None)
    if fields:
        surface["<fields>"] = ", ".join(
            name for name in fields if not name.startswith("_")
        )
    return surface


def current_surface() -> dict:
    import repro

    surface: dict[str, object] = {}
    for name in sorted(repro.__all__):
        obj = getattr(repro, name)
        if inspect.isclass(obj):
            surface[name] = _class_surface(obj)
        elif callable(obj):
            surface[name] = _signature(obj)
        else:
            surface[name] = f"<data> {obj!r}"
    return surface


def _flatten(surface: dict) -> dict[str, str]:
    flat: dict[str, str] = {}
    for name, value in surface.items():
        if isinstance(value, dict):
            for member, sig in value.items():
                flat[f"{name}.{member}"] = sig
        else:
            flat[name] = value
    return flat


def diff(snapshot: dict, live: dict) -> list[str]:
    old, new = _flatten(snapshot), _flatten(live)
    problems = []
    for key in sorted(set(old) - set(new)):
        problems.append(f"removed: {key} {old[key]}")
    for key in sorted(set(new) - set(old)):
        problems.append(f"added: {key} {new[key]}")
    for key in sorted(set(old) & set(new)):
        if old[key] != new[key]:
            problems.append(
                f"changed: {key}\n  snapshot: {old[key]}\n  live:     {new[key]}"
            )
    return problems


def check_frozen_shims() -> list[str]:
    """The deprecated shims must match :data:`FROZEN_SHIMS` verbatim."""
    from repro import api

    problems = []
    for name, expected in FROZEN_SHIMS.items():
        found = _signature(getattr(api, name))
        if found != expected:
            problems.append(
                f"frozen shim changed: repro.{name}\n"
                f"  frozen: {expected}\n  live:   {found}"
            )
    return problems


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--update",
        action="store_true",
        help="re-snapshot the live surface into tools/api_surface.json",
    )
    args = parser.parse_args(argv)
    frozen_problems = check_frozen_shims()
    if frozen_problems:
        # Checked before --update so a re-snapshot can never launder a
        # shim change: the frozen table has no update path by design.
        print(
            "deprecated shims are signature-frozen and have drifted:",
            file=sys.stderr,
        )
        for problem in frozen_problems:
            print(f"  {problem}", file=sys.stderr)
        return 1
    live = current_surface()
    if args.update:
        SNAPSHOT_PATH.write_text(
            json.dumps(live, indent=2, sort_keys=True) + "\n"
        )
        print(f"{SNAPSHOT_PATH}: snapshot updated ({len(live)} exports)")
        return 0
    if not SNAPSHOT_PATH.exists():
        print(
            f"{SNAPSHOT_PATH} missing; run with --update to create it",
            file=sys.stderr,
        )
        return 1
    snapshot = json.loads(SNAPSHOT_PATH.read_text())
    problems = diff(snapshot, live)
    if problems:
        print(
            "public API surface drifted from tools/api_surface.json "
            "(intentional? re-run with --update and commit the diff):",
            file=sys.stderr,
        )
        for problem in problems:
            print(f"  {problem}", file=sys.stderr)
        return 1
    print(f"api surface ok ({len(live)} exports match the snapshot)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
