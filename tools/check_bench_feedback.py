#!/usr/bin/env python3
"""Assert the BENCH_feedback.json schema (CI smoke gate).

Usage: python tools/check_bench_feedback.py [benchmarks/BENCH_feedback.json]

Validates the structure ``benchmarks/bench_feedback.py`` promises —
both workloads, the run records, the ratio metrics, the parity and
self-correction flags — so downstream consumers (the regression gate,
dashboards, the README numbers) can rely on it.  Exits non-zero with a
message naming the first violation.
"""

from __future__ import annotations

import json
import pathlib
import sys

RUN_KEYS = {
    "order": list,
    "source": str,
    "candidates": int,
    "seconds": (int, float),
}

TRAP_KEYS = {
    "sizes": dict,
    "rows": int,
    "first": dict,
    "second": dict,
    "order_changed": bool,
    "work_ratio": (int, float),
    "sampled_reference_order": list,
    "parity": bool,
}

HOTSHARD_KEYS = {
    "sizes": dict,
    "rows": int,
    "shards_first": int,
    "shard_seconds_first": list,
    "critical_path_first": (int, float),
    "splits": int,
    "shard_seconds_second": list,
    "critical_path_second": (int, float),
    "critical_path_ratio": (int, float),
    "wall_seconds": list,
    "parity": bool,
}


def fail(message: str) -> "NoReturn":  # noqa: F821 - py3.10 compat
    print(
        f"BENCH_feedback.json schema violation: {message}", file=sys.stderr
    )
    raise SystemExit(1)


def check_keys(path: str, entry: object, keys: dict) -> None:
    if not isinstance(entry, dict):
        fail(f"{path} is not an object")
    for key, expected in keys.items():
        if key not in entry:
            fail(f"{path} missing {key!r}")
        if not isinstance(entry[key], expected):
            fail(f"{path}.{key} has type {type(entry[key]).__name__}")


def check(data: object) -> None:
    if not isinstance(data, dict):
        fail("top level is not an object")
    for key in ("host", "definitions", "scale", "workloads"):
        if key not in data:
            fail(f"missing top-level key {key!r}")
    if "cpus" not in data["host"]:
        fail("host.cpus missing")
    workloads = data["workloads"]
    if "trap_selfcorrect" not in workloads:
        fail("missing workload 'trap_selfcorrect'")
    if "zipf_hotshard" not in workloads:
        fail("missing workload 'zipf_hotshard'")

    trap = workloads["trap_selfcorrect"]
    check_keys("trap_selfcorrect", trap, TRAP_KEYS)
    check_keys("trap_selfcorrect.first", trap["first"], RUN_KEYS)
    check_keys("trap_selfcorrect.second", trap["second"], RUN_KEYS)
    if trap["parity"] is not True:
        fail("trap_selfcorrect.parity is not true")
    if trap["order_changed"] is not True:
        fail("trap_selfcorrect.order_changed is not true")
    if trap["second"]["source"] != "feedback":
        fail("trap_selfcorrect.second.source is not 'feedback'")
    if trap["work_ratio"] <= 1.0:
        fail(f"trap_selfcorrect.work_ratio {trap['work_ratio']} <= 1.0")

    hot = workloads["zipf_hotshard"]
    check_keys("zipf_hotshard", hot, HOTSHARD_KEYS)
    if hot["parity"] is not True:
        fail("zipf_hotshard.parity is not true")
    if hot["splits"] < 1:
        fail("zipf_hotshard.splits < 1: no hot shard was split")
    if hot["critical_path_ratio"] <= 1.0:
        fail(
            f"zipf_hotshard.critical_path_ratio "
            f"{hot['critical_path_ratio']} <= 1.0"
        )
    if len(hot["shard_seconds_first"]) != hot["shards_first"]:
        fail(
            "zipf_hotshard.shard_seconds_first length does not match "
            "shards_first"
        )


def main(argv: list[str]) -> int:
    path = pathlib.Path(
        argv[1] if len(argv) > 1 else "benchmarks/BENCH_feedback.json"
    )
    if not path.exists():
        fail(f"{path} does not exist")
    check(json.loads(path.read_text()))
    print(f"{path}: schema ok")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
