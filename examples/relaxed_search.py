#!/usr/bin/env python
"""Approximate matching with relaxed joins (Section 7.2).

A natural join is an AND across every relation; a *relaxed* join q_r keeps
tuples that satisfy all but r of the constraints — the paper's relaxation
of joins (Definition 7.4), useful when strict matching is too brittle
(the Koudas et al. scenario the conclusion cites).

The demo models apartment hunting: candidate (city, budget-band, size)
combinations constrained by three preference relations.  With r = 0 the
requirements are unsatisfiable together; r = 1 surfaces near-misses, and
Theorem 7.6's bound tells us in advance how many near-misses are possible.

Run:  python examples/relaxed_search.py
"""

from repro import JoinQuery, Relation, RelaxedJoin
from repro.core.relaxed import minimal_candidate_sets


def main() -> None:
    # Preferences as relations over (City, Price, Rooms):
    commute = Relation(  # cities with acceptable commute per price band
        "Commute",
        ("City", "Price"),
        [
            ("downtown", "high"),
            ("midtown", "mid"),
            ("suburb", "low"),
        ],
    )
    space = Relation(  # how many rooms each price band buys
        "Space",
        ("Price", "Rooms"),
        [
            ("low", 3),
            ("mid", 2),
            ("high", 1),
        ],
    )
    schools = Relation(  # school quality constraint on city+rooms
        "Schools",
        ("City", "Rooms"),
        [
            ("suburb", 2),
            ("midtown", 1),
            ("downtown", 3),
        ],
    )

    query = JoinQuery([commute, space, schools])
    print("preference relations:")
    for rel in query.relations.values():
        print(f"  {rel.name}: {sorted(rel.tuples)}")

    for r in (0, 1, 2):
        relaxed = RelaxedJoin(query, r)
        result = relaxed.execute()
        print(
            f"\nq_{r} — satisfy at least {len(query) - r} of "
            f"{len(query)} constraints "
            f"(Theorem 7.6 bound: {relaxed.bound():.0f} tuples):"
        )
        if result.is_empty():
            print("  no matches")
        for row in sorted(result.tuples, key=repr):
            assignment = dict(zip(result.attributes, row))
            satisfied = [
                rel.name
                for rel in query.relations.values()
                if tuple(assignment[a] for a in rel.attributes) in rel.tuples
            ]
            print(
                f"  {assignment}  satisfies {len(satisfied)}: "
                f"{', '.join(satisfied)}"
            )

    print("\nminimal candidate relation-sets for r = 1 (the paper's C-hat):")
    for subset in minimal_candidate_sets(query, 1):
        print(f"  {{{', '.join(sorted(subset))}}}")


if __name__ == "__main__":
    main()
