#!/usr/bin/env python
"""SAT solving with a join algorithm (Section 7.1's reduction, run forward).

The paper proves joins cannot be *instance* optimal by reducing
3-UniqueSAT to join evaluation: clause -> relation of its 7 satisfying
assignments, formula satisfiable iff the join is non-empty.  Here we run
the reduction constructively: Algorithm 2 enumerates all models of a CNF,
worst-case optimally with respect to the clause relations' AGM bound.

The demo solves the pigeonhole-style and graph-coloring formulas and
cross-checks against brute force.

Run:  python examples/sat_solving.py
"""

import itertools
import time

from repro.core.sat import (
    count_models,
    formula_to_query,
    formula_variables,
    satisfying_assignments,
)
from repro import output_bound


def graph_coloring_cnf(edges, colors=2):
    """2-coloring of a graph as CNF over one boolean per vertex."""
    clauses = []
    for u, v in edges:
        # not (x_u == x_v):  (x_u or x_v) and (not x_u or not x_v)
        clauses.append((u, v))
        clauses.append((-u, -v))
    return clauses


def brute_force(clauses):
    variables = formula_variables(clauses)
    models = 0
    for bits in itertools.product((0, 1), repeat=len(variables)):
        assignment = dict(zip(variables, bits))
        if all(
            any((assignment[abs(l)] == 1) == (l > 0) for l in clause)
            for clause in clauses
        ):
            models += 1
    return models


def main() -> None:
    # An even cycle is 2-colorable (2 ways); an odd cycle is not.
    even_cycle = [(i, i % 6 + 1) for i in range(1, 7)]
    odd_cycle = [(i, i % 5 + 1) for i in range(1, 6)]

    for name, edges in (("C6 (even)", even_cycle), ("C5 (odd)", odd_cycle)):
        clauses = graph_coloring_cnf(edges)
        start = time.perf_counter()
        models = count_models(clauses)
        elapsed = time.perf_counter() - start
        expected = brute_force(clauses)
        assert models == expected
        verdict = "2-colorable" if models else "NOT 2-colorable"
        print(
            f"{name}: {models} colorings ({verdict})  "
            f"[join: {elapsed*1e3:.1f} ms, brute force agrees]"
        )

    # A random-ish 3-CNF: enumerate every model through the join and show
    # the AGM bound on the clause relations.
    clauses = [
        (1, 2, -3),
        (-1, 3, 4),
        (2, -4, 5),
        (-2, -5, 6),
        (3, -6, -1),
        (4, 5, -6),
    ]
    query = formula_to_query(clauses)
    bound = output_bound(query)
    start = time.perf_counter()
    sat = satisfying_assignments(clauses)
    elapsed = time.perf_counter() - start
    assert len(sat) == brute_force(clauses)
    print(
        f"\n3-CNF with {len(clauses)} clauses over "
        f"{len(formula_variables(clauses))} variables:"
        f"\n  AGM bound on models : {bound:.1f}"
        f"\n  models found        : {len(sat)}  ({elapsed*1e3:.1f} ms)"
    )
    print("  first few models:")
    for row in sorted(sat.tuples)[:4]:
        print(
            "   ",
            ", ".join(f"{a}={v}" for a, v in zip(sat.attributes, row)),
        )
    print(
        "\n(Section 7.1 uses exactly this reduction to show no join "
        "algorithm can be poly(|q|, |q(I)|, |I|) unless NP = RP.)"
    )


if __name__ == "__main__":
    main()
