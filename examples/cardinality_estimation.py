#!/usr/bin/env python
"""Cardinality estimation with guaranteed bounds (the paper's motivation).

Classical optimizers estimate join sizes under independence assumptions
and can be wrong by orders of magnitude in either direction [Ioannidis &
Christodoulakis].  AGM bounds are different: they are *certified upper
bounds* — never exceeded, tight in the worst case — and the paper's
introduction pitches them as "previously unknown, nontrivial methods to
estimate the cardinality of a query result".

This example sizes a triangle query three ways (cross product, integral
cover, fractional cover), shows the per-sub-query bound table an optimizer
would consume, and demonstrates the dual *packing certificate* that proves
the fractional bound cannot be improved.

Run:  python examples/cardinality_estimation.py
"""

from repro import JoinQuery, nprr_join
from repro.core.estimates import (
    agm_estimate,
    estimate_report,
    subquery_estimates,
)
from repro.hypergraph.duality import (
    optimal_vertex_packing,
    packing_lower_bound,
    tight_instance,
)
from repro.workloads import instances


def main() -> None:
    n = 100
    query = instances.triangle_hard_instance(n)
    print("Example 2.2 instance, N =", n)
    print()
    print(estimate_report(query))

    true_size = len(nprr_join(query))
    print(f"\ntrue output size: {true_size} (the bound is worst-case, and")
    print("this instance's pairwise joins are the worst case — see below)")

    print("\nper-sub-query AGM bounds (what a cost-based optimizer sees):")
    for subset, estimate in sorted(
        subquery_estimates(query).items(), key=lambda kv: sorted(kv[0])
    ):
        sub = JoinQuery([query.relation(eid) for eid in sorted(subset)])
        actual = len(nprr_join(sub))
        print(
            f"  {{{', '.join(sorted(subset))}}}:"
            f" bound {estimate.bound:10.1f}   actual {actual}"
        )
    print(
        "\nNote the shape: every *pairwise* bound is N^2 and nearly met"
        f" (actual {n*n//4 + n//2}), while the full-query bound drops to"
        f" N^1.5 = {n**1.5:.0f} — join order cannot avoid the quadratic"
        " wedge, but a worst-case optimal join never builds it."
    )

    # The dual certificate: a fractional vertex packing whose value equals
    # the AGM bound, plus the product instance that realizes it.
    sizes = query.sizes()
    packing = optimal_vertex_packing(query.hypergraph, sizes)
    print(
        f"\ndual packing certificate: y = "
        f"{{{', '.join(f'{v}={w}' for v, w in packing.items())}}}"
        f"\ncertified worst case: {packing_lower_bound(packing):.1f} tuples"
    )
    witness = tight_instance(query.hypergraph, sizes)
    realized = len(nprr_join(witness))
    print(
        f"witness instance (same relation sizes): join has {realized} "
        f"tuples — the bound {agm_estimate(query).bound:.1f} is not "
        "pessimism, it is achievable."
    )


if __name__ == "__main__":
    main()
