#!/usr/bin/env python
"""Quickstart: worst-case optimal joins in five minutes.

Walks through the library's core workflow on the paper's motivating
triangle query R(A,B) * S(B,C) * T(A,C):

1. build relations and a join query;
2. compute the AGM output-size bound;
3. run the worst-case optimal join (and the specialists);
4. stream rows with iter_join and inspect the engine's plan with explain;
5. see why this matters: the Example 2.2 instance where every classical
   binary plan does quadratic work while NPRR stays linear.

Run:  python examples/quickstart.py
"""

import itertools
import time

from repro import (
    FractionalCover,
    JoinQuery,
    NPRRJoin,
    Relation,
    explain,
    iter_join,
    join,
    output_bound,
)
from repro.baselines.hash_join import chain_hash_join
from repro.workloads import instances


def main() -> None:
    # ------------------------------------------------------------------
    # 1. Relations are named tuple sets over ordered attribute schemas.
    # ------------------------------------------------------------------
    follows = Relation(
        "R", ("A", "B"), [(0, 1), (0, 2), (1, 2), (2, 3), (3, 0)]
    )
    mentions = Relation(
        "S", ("B", "C"), [(1, 9), (2, 9), (2, 7), (3, 7), (0, 9)]
    )
    likes = Relation(
        "T", ("A", "C"), [(0, 9), (0, 7), (1, 7), (3, 9), (2, 7)]
    )
    print("Input relations:")
    for rel in (follows, mentions, likes):
        print(f"  {rel}")

    # ------------------------------------------------------------------
    # 2. The AGM bound: how large *can* the output be?
    #    For the triangle with |R|=|S|=|T|=5 the optimal fractional cover
    #    is (1/2, 1/2, 1/2), giving 5^{3/2} ~ 11.18.
    # ------------------------------------------------------------------
    bound = output_bound([follows, mentions, likes])
    print(f"\nAGM bound: {bound:.2f} tuples  (5^(3/2) = 11.18)")

    # ------------------------------------------------------------------
    # 3. Join! `join` picks a worst-case optimal algorithm automatically;
    #    every named algorithm returns the same tuples.
    # ------------------------------------------------------------------
    result = join([follows, mentions, likes])
    print(f"\nTriangles found ({len(result)}):")
    for row in sorted(result.tuples):
        print(f"  A={row[0]}  B={row[1]}  C={row[2]}")

    for algorithm in ("nprr", "lw", "generic", "leapfrog", "arity2"):
        alt = join([follows, mentions, likes], algorithm=algorithm)
        assert alt.equivalent(result)
    print("\nnprr / lw / generic / leapfrog / arity2 all agree.")

    # Explicit control: run Algorithm 2 with a cover of your choosing and
    # inspect its work counters.
    query = JoinQuery([follows, mentions, likes])
    from fractions import Fraction

    executor = NPRRJoin(
        query, cover=FractionalCover.uniform(query.hypergraph, Fraction(1, 2))
    )
    executor.execute()
    print(f"NPRR statistics: {executor.stats.as_dict()}")

    # ------------------------------------------------------------------
    # 4. The streaming engine: iter_join yields rows as the search finds
    #    them (take two and stop — nothing else is computed; generic and
    #    leapfrog are fully lazy, the shape specialists wrap execute()),
    #    and explain shows the plan the engine chose without running it.
    # ------------------------------------------------------------------
    first_two = list(
        itertools.islice(
            iter_join([follows, mentions, likes], algorithm="generic"), 2
        )
    )
    print(f"\nFirst two streamed rows: {first_two}")
    plan = explain([follows, mentions, likes], algorithm="leapfrog")
    print("\nEngine plan for --algorithm leapfrog:")
    print(plan.describe())

    # ------------------------------------------------------------------
    # 5. Why worst-case optimal?  Example 2.2's instance: all pairwise
    #    joins have ~N^2/4 tuples, the triangle join is empty.
    # ------------------------------------------------------------------
    n = 2000
    hard = instances.triangle_hard_instance(n)
    start = time.perf_counter()
    wcoj_out = join(hard, algorithm="nprr")
    wcoj_time = time.perf_counter() - start

    start = time.perf_counter()
    binary_out, stats = chain_hash_join(hard)
    binary_time = time.perf_counter() - start

    assert wcoj_out.is_empty() and binary_out.is_empty()
    print(
        f"\nExample 2.2 at N={n}: output is empty, but getting there cost"
        f"\n  binary hash plan : {binary_time:.3f}s "
        f"(materialized {stats.max_intermediate} intermediate tuples)"
        f"\n  NPRR (Algorithm 2): {wcoj_time:.3f}s "
        f"(worst-case optimal, no intermediate blowup)"
        f"\n  speedup: {binary_time / wcoj_time:.0f}x"
    )


if __name__ == "__main__":
    main()
