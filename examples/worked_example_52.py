#!/usr/bin/env python
"""Section 5.2, step by step: the paper's complete worked example.

The paper devotes Section 5.2 to a 6-attribute, 5-relation query whose
incidence matrix is

        a b c d e
    1   1 1 1 0 0
    2   1 0 1 1 0
    3   0 1 1 0 1
    4   1 1 0 1 0
    5   1 0 0 0 1
    6   0 1 0 1 1

This script re-enacts every step on a concrete random instance:

* Step 0 — build the QP tree and the total order 1, 4, 2, 5, 3, 6;
* Step 1 — the join T_1 = pi_1(R_a) * pi_1(R_b) * pi_1(R_c);
* Step 2 — extend to T_{1,2,4} (the join over everything outside e);
* Step 3 — the full join, with the AGM bound checked along the way;

and verifies each intermediate against its definition.

Run:  python examples/worked_example_52.py
"""

from fractions import Fraction

from repro import FractionalCover, JoinQuery, NPRRJoin, output_bound
from repro.baselines.naive import naive_join
from repro.core.qptree import QPTree
from repro.workloads import generators, queries


def main() -> None:
    hypergraph = queries.paper_example_52()
    query = generators.random_instance(hypergraph, 120, 4, seed=7)
    print("query: join of", ", ".join(
        f"R_{eid}({','.join(sorted(edge))})"
        for eid, edge in hypergraph.edges.items()
    ))
    print("sizes:", query.sizes())

    # ------------------------------------------------------------------
    # Step 0: QP tree and total order (Algorithms 3 and 4).
    # ------------------------------------------------------------------
    tree = QPTree(hypergraph)
    print("\nStep 0 - query plan tree (edge order a,b,c,d,e, root anchor e):")
    print(tree.render())
    assert tree.total_order == ("1", "4", "2", "5", "3", "6")
    print("total order matches the paper: 1, 4, 2, 5, 3, 6")

    # A fractional cover (Mx >= 1): the all-1/2 vector works for this M
    # except attribute 5 (covered by a and e only): use x_a = x_e = 1/2,
    # and 1/2 everywhere keeps every row >= 1.  Check it:
    cover = FractionalCover.uniform(hypergraph, Fraction(1, 2))
    cover.validate(hypergraph)
    print("\ncover x =", dict(cover.items()))

    # ------------------------------------------------------------------
    # Step 1: T_1 = pi_1(R_a) * pi_1(R_b) * pi_1(R_c)  (the left-most
    # leaf joins the three relations containing attribute 1).
    # ------------------------------------------------------------------
    t1 = (
        query.relation("a").project(["1"])
        .natural_join(query.relation("b").project(["1"]))
        .natural_join(query.relation("c").project(["1"]))
    )
    smallest = min(
        len(query.relation(eid).project(["1"])) for eid in ("a", "b", "c")
    )
    print(f"\nStep 1 - |T_1| = {len(t1)} <= min projection size {smallest}")
    assert len(t1) <= smallest

    # ------------------------------------------------------------------
    # Step 2: T_{1,2,4} — the join over the attributes outside e,
    # written with sections exactly as in the paper.
    # ------------------------------------------------------------------
    t124 = (
        query.relation("a").project(["1", "2", "4"])
        .natural_join(query.relation("b").project(["1", "4"]))
        .natural_join(query.relation("c").project(["1", "2"]))
        .natural_join(query.relation("d").project(["2", "4"]))
    )
    by_sections = set()
    for (v1,) in t1.tuples:
        section = (
            query.relation("a").section({"1": v1}).project(["2", "4"])
            .natural_join(query.relation("b").section({"1": v1}).project(["4"]))
            .natural_join(query.relation("c").section({"1": v1}).project(["2"]))
            .natural_join(query.relation("d").project(["2", "4"]))
        )
        for (v2, v4) in section.reorder(("2", "4")).tuples:
            by_sections.add((v1, v2, v4))
    assert by_sections == set(t124.reorder(("1", "2", "4")).tuples)
    print(
        f"Step 2 - |T_124| = {len(t124)} "
        "(section-by-section union matches the direct join)"
    )

    # ------------------------------------------------------------------
    # Step 3: the full join via Algorithm 2, with bound and oracle checks.
    # ------------------------------------------------------------------
    executor = NPRRJoin(query, cover=cover)
    result = executor.execute()
    bound = output_bound(query)
    oracle = naive_join(query)
    assert result.equivalent(oracle)
    print(
        f"\nStep 3 - |T_123456| = {len(result)}  "
        f"(AGM bound {bound:.1f}; naive oracle agrees)"
    )
    print("executor statistics:", executor.stats.as_dict())


if __name__ == "__main__":
    main()
