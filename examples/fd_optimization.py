#!/usr/bin/env python
"""Functional dependencies as a query optimizer (Section 7.3).

A star-schema-style query joins a user table against k attribute tables
and a shared fact table.  Because the user id *functionally determines*
each attribute, the FD-aware algorithm collapses the bound from N^k to
N^2 and avoids the catastrophic ordering that materializes N^k tuples.

Run:  python examples/fd_optimization.py
"""

import time

from repro import FunctionalDependency, fd_aware_bound, fd_aware_join
from repro.core.fd import closure, expand_query
from repro.workloads import instances


def main() -> None:
    k, n = 4, 40
    query, fds = instances.fd_fanout_instance(k, n)
    print(
        f"query: join_i R_i(A, B_i) * join_i S_i(B_i, C)   (k={k}, N={n})"
    )
    print("declared FDs:", ", ".join(str(fd) for fd in fds))

    # The closure of R_1's attributes pulls in every B_i.
    print(
        "\nclosure of {A} under the FDs:",
        sorted(closure({"A"}, fds)),
    )

    unaware, aware = fd_aware_bound(query, fds)
    print(
        f"\nAGM bound without FDs : {unaware:,.0f}   (= N^{k})"
        f"\nAGM bound with FDs    : {aware:,.0f}   (= N^2)"
        f"\nimprovement           : {unaware / aware:,.0f}x"
    )

    expanded = expand_query(query, fds)
    print("\nexpanded relation schemas:")
    for eid in expanded.edge_ids:
        print(f"  {eid}: {expanded.relation(eid).attributes}")

    start = time.perf_counter()
    result = fd_aware_join(query, fds)
    aware_time = time.perf_counter() - start

    start = time.perf_counter()
    # The trap the paper warns about: joining the S side first
    # materializes the N^k half-join.
    half = query.relation("S1")
    for i in range(2, k + 1):
        half = half.natural_join(query.relation(f"S{i}"))
    trap_time = time.perf_counter() - start

    print(
        f"\nFD-aware join : {aware_time:.3f}s for {len(result)} tuples"
        f"\nwrong ordering: {trap_time:.3f}s just to build the "
        f"{len(half):,}-tuple half-join (= N^{k}) before any pruning"
    )


if __name__ == "__main__":
    main()
