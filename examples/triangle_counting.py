#!/usr/bin/env python
"""Triangle listing in social graphs: the paper's flagship application.

The introduction's query (1) is exactly triangle enumeration, and Section 8
notes the equivalence with listing triangles of a tripartite graph in
O(N^{3/2}) [Alon-Yuster-Zwick].  This example builds a scale-free-ish
"who-follows-whom" graph with a celebrity hub — the skew that wrecks
binary join plans — and compares:

* the best classical binary plan (materializes a quadratic wedge set),
* Example 4.2's heavy/light triangle join,
* Algorithm 2 / Generic Join / Leapfrog Triejoin.

Run:  python examples/triangle_counting.py
"""

import random
import time

from repro import JoinQuery, Relation, generic_join, leapfrog_join, nprr_join, triangle_join
from repro.baselines.plans import best_binary_plan


def build_social_graph(users: int, follows_per_user: int, seed: int = 42):
    """A directed follower graph with one celebrity everyone follows."""
    rng = random.Random(seed)
    edges = set()
    celebrity = 0
    for user in range(1, users):
        edges.add((user, celebrity))          # everyone follows user 0
        for _ in range(follows_per_user):
            other = rng.randrange(users)
            if other != user:
                edges.add((user, other))
    # The celebrity follows a few people back.
    for _ in range(follows_per_user):
        edges.add((celebrity, rng.randrange(1, users)))
    return edges


def main() -> None:
    users = 1500
    edges = build_social_graph(users, follows_per_user=4)
    print(f"social graph: {users} users, {len(edges)} follow edges")

    # A triangle of mutual follow-chains: A follows B follows C follows A.
    # Encode the single edge set three times with rotated attribute names.
    query = JoinQuery(
        [
            Relation("R", ("A", "B"), edges),
            Relation("S", ("B", "C"), edges),
            Relation("T", ("C", "A"), edges),
        ]
    )

    algorithms = {
        "NPRR (Algorithm 2)": lambda: nprr_join(query),
        "Generic Join": lambda: generic_join(query),
        "Leapfrog Triejoin": lambda: leapfrog_join(query),
        "Example 4.2 heavy/light": lambda: triangle_join(
            query.relation("R"), query.relation("S"), query.relation("T")
        ),
    }
    outputs = {}
    print("\nworst-case optimal algorithms:")
    for name, runner in algorithms.items():
        start = time.perf_counter()
        out = runner()
        elapsed = time.perf_counter() - start
        outputs[name] = out
        print(f"  {name:26s} {elapsed:7.3f}s   {len(out)} directed triangles")

    first = next(iter(outputs.values()))
    assert all(out.equivalent(first) for out in outputs.values())

    print("\nbest binary join plan (tries all 3 plan shapes):")
    start = time.perf_counter()
    plan, result, stats = best_binary_plan(query)
    elapsed = time.perf_counter() - start
    assert result.equivalent(first)
    print(
        f"  plan {plan}: {elapsed:.3f}s, peak intermediate "
        f"{stats.max_intermediate} tuples"
        f"\n  (the celebrity hub forces a quadratic wedge materialization;"
        f"\n   the WCOJ algorithms never build it)"
    )


if __name__ == "__main__":
    main()
