"""Work stealing: split hot shards before and during a run.

Two layers, both reusing the feedback loop's split mechanics
(:mod:`repro.feedback.resharding`): a shard's key grows one
``(attribute, value group)`` link per split, sub-shards partition the
parent's output slice exactly, and observations recorded for sub-keys
feed the same store the across-run expansion reads.

**Predictive pre-splitting** (:func:`predictive_presplit`) runs at
first-plan time.  The across-run loop needs one slow run before it
carves up a hub shard; prediction closes that gap using statistics that
exist *before* any run: a top-level shard whose value group contains a
heavy-hitter value (frequency at or above the profile's
``heavy_threshold`` — the "Skew Strikes Back" sqrt(N) cut) in any
participant relation is split on the next attribute of the plan's
order immediately.  A planned-weight outlier (a shard LPT could not
balance because one value dominates) is split by the same rule even
when the heavy value hides below the profile's ``top`` table.

**Within-run stealing** (:class:`RateModel`, used by the dispatcher)
handles what prediction misses.  The model fits seconds-per-unit-weight
over the shards *this run* has completed; when idle capacity exists and
a pending shard's predicted time stands ``hot_factor`` above the median
completed time, the claiming driver splits it at claim time — the
parent never runs, the sub-shards enter the queue, idle workers steal
them.  Claim order is lightest-first when stealing is on, so the model
warms on cheap shards while the likely stragglers wait where they can
still be split.
"""

from __future__ import annotations

from statistics import median

from repro.feedback.resharding import ShardPlanEntry

__all__ = ["RateModel", "predictive_presplit"]

#: Sub-shards per predictive split (matches the feedback loop's
#: default ``split_factor``).
PRESPLIT_FACTOR = 4

#: A shard is a planned-weight outlier when its LPT weight exceeds
#: this multiple of the median planned weight.
WEIGHT_OUTLIER = 4.0


class RateModel:
    """Seconds-per-weight over this run's completed shards.

    Deliberately tiny: one pooled rate (total seconds / total planned
    weight), plus the completed-time distribution for the hotness
    threshold.  Per-shard noise washes out quickly, and the model only
    has to rank *pending* shards against *completed* ones — not
    forecast absolute times.  Not thread-safe; the dispatcher mutates
    it under its board lock.
    """

    def __init__(self) -> None:
        self.seconds = 0.0
        self.weight = 0
        self.completed: list[float] = []

    def observe(self, seconds: float, weight: int) -> None:
        self.seconds += seconds
        self.weight += max(weight, 1)
        self.completed.append(seconds)

    @property
    def count(self) -> int:
        return len(self.completed)

    def predict(self, weight: int) -> float:
        """Predicted wall seconds for a shard of planned ``weight``."""
        if not self.weight:
            return 0.0
        return (self.seconds / self.weight) * max(weight, 1)

    def hot(self, weight: int, policy) -> bool:
        """Is a pending shard of ``weight`` predicted to straggle?

        ``policy`` is a :class:`~repro.query.shards.StealPolicy`
        (duck-typed).  Requires ``min_completed`` observations — with
        fewer, the rate is one shard's noise — and compares the
        prediction against the median completed time, mirroring the
        across-run hot test in :mod:`repro.feedback.resharding`.
        """
        if self.count < policy.min_completed:
            return False
        return self.predict(weight) > policy.hot_factor * median(
            self.completed
        )


def split_entry(
    entry: ShardPlanEntry, order, factor: int
) -> list[ShardPlanEntry]:
    """Split one entry on the next attribute of the plan's order.

    Returns the sub-entries (keys extended by one link), or ``[entry]``
    unchanged when the entry is at maximum depth for the order or the
    next attribute has too few candidate values to partition — the same
    give-up conditions as the across-run expansion.
    """
    # Deferred: parallel.py lazily imports this module from inside
    # shard_join, so at module-import time the engine may not be ready.
    from repro.engine.parallel import _shard_queries, plan_shards

    depth = len(entry.key)
    if depth >= len(order):
        return [entry]
    attribute = order[depth]
    sub_specs = plan_shards(entry.query, factor, attribute)
    if len(sub_specs) < 2:
        return [entry]
    sub_queries = _shard_queries(entry.query, sub_specs)
    return [
        ShardPlanEntry(
            key=entry.key + ((attribute, spec.values),),
            query=sub_query,
            weight=spec.weight,
        )
        for spec, sub_query in zip(sub_specs, sub_queries)
    ]


def predictive_presplit(
    entries, order, provider, factor: int = PRESPLIT_FACTOR
) -> tuple[list[ShardPlanEntry], int]:
    """Pre-split hub-heavy shards at first-plan time.

    ``entries`` are the planned shards (after any feedback expansion),
    ``order`` the plan's attribute order, ``provider`` a
    :class:`~repro.stats.provider.StatsProvider` whose cached relation
    profiles supply the heavy values.  Returns ``(new entries, number
    of parents split)``; with no heavy values and no weight outliers
    the entries pass through untouched, so switching ``predictive=True``
    on is free for balanced data.

    Only top-level (depth-1) entries are candidates: deeper keys came
    from feedback or an earlier split and already isolate a hot region.
    """
    weights = [entry.weight for entry in entries]
    weight_cut = WEIGHT_OUTLIER * median(weights) if weights else 0.0
    result: list[ShardPlanEntry] = []
    splits = 0
    for entry in entries:
        if len(entry.key) != 1:
            result.append(entry)
            continue
        attribute, values = entry.key[0]
        if entry.weight > weight_cut or _holds_heavy_value(
            entry, attribute, values, provider
        ):
            sub_entries = split_entry(entry, order, factor)
            if len(sub_entries) > 1:
                splits += 1
            result.extend(sub_entries)
        else:
            result.append(entry)
    return result, splits


def _holds_heavy_value(
    entry: ShardPlanEntry, attribute: str, values, provider
) -> bool:
    """Does any participant relation show a heavy value in this group?

    Profiles are taken over the entry's *restricted* relations (what
    the provider caches per relation identity): a hub value dominates
    its own shard's slice even harder than the full relation, so
    restriction never hides a heavy hitter from this test.  The
    ``top`` table bounds how many heavy values are visible; the weight
    cut in :func:`predictive_presplit` backstops anything below it.
    """
    for rel in entry.query.relations.values():
        if attribute not in rel.attribute_set or len(rel) == 0:
            continue
        try:
            profile = provider.profile(rel).attribute(attribute)
        except KeyError:  # pragma: no cover - schema and query agree
            continue
        for value, count in profile.top:
            if count >= profile.heavy_threshold and value in values:
                return True
    return False
