"""Schedulers: where a sharded execution's work actually runs.

The engine's drivers (:func:`repro.engine.parallel.shard_join` /
``shard_fold``) plan and partition a query, package the result as a
:class:`~repro.engine.parallel.ShardJob`, and hand it to whatever the
:class:`~repro.query.context.ExecutionContext` carries as its
``scheduler``:

* ``None`` — the engine's own local pools, unchanged behavior;
* :class:`LocalPoolScheduler` — the same local pools behind the
  protocol, for callers who want to pin mode/width per scheduler
  rather than per context;
* :class:`DispatchScheduler` — a remote worker fleet with per-shard
  retry, exactly-once accounting, and within-run work stealing.

Exactly-once, in one paragraph: every shard lives on a *board* in one
of three states — pending, running (owned by exactly one driver
thread), or finished.  A driver buffers the rows of its current
attempt privately and commits them in a single critical section when
the worker's ``done`` frame arrives; commit moves the shard to
finished and releases the rows to the consumer.  A worker death
(connection drop or timeout) before ``done`` discards the buffered
rows and returns the shard to pending with a backoff stamp — the rows
never reached the consumer, so the retry cannot duplicate them; a
death *after* commit loses nothing because the shard is no longer on
the board.  Frames from an abandoned attempt are skipped by request
id.  A typed ``error`` frame is a permanent failure (the same bytes
would fail the same way everywhere) and aborts the run; exhausted
retries and a fully dead fleet abort likewise, with
:class:`~repro.errors.DistributedError` raised in the consumer.

Stealing happens at *claim* time, under the board lock, while the
parent shard is still pending — it never ran, so splitting it cannot
double rows: the claimer replaces it with sub-shards (split exactly
like the feedback loop's across-run expansion, one attribute deeper),
takes the first, and leaves the rest for idle workers.  See
:mod:`repro.distributed.stealing` for when a shard counts as hot.
"""

from __future__ import annotations

import itertools
import pickle
import queue as queue_module
import threading
import time
from collections.abc import Iterator
from typing import Protocol, runtime_checkable

from repro.distributed.stealing import RateModel, split_entry
from repro.distributed.wire import ConnectionClosed
from repro.engine.parallel import (
    ShardJob,
    _dispatch_local_fold,
    _dispatch_local_join,
)
from repro.errors import DistributedError, require_positive_int
from repro.feedback.resharding import ShardPlanEntry

__all__ = ["DispatchScheduler", "LocalPoolScheduler", "Scheduler"]


@runtime_checkable
class Scheduler(Protocol):
    """What ``ExecutionContext.scheduler`` must implement."""

    def run_join(self, job: ShardJob) -> Iterator:
        """Run a join job; yield its rows (any order across shards)."""

    def run_fold(self, job: ShardJob, spec) -> list:
        """Run a fold job; return the per-shard partial states."""


class LocalPoolScheduler:
    """The engine's local pools, behind the :class:`Scheduler` protocol.

    ``context.scheduler = LocalPoolScheduler()`` is byte-for-byte the
    default path; ``mode`` / ``workers`` here override the job's (so a
    scheduler instance can pin, say, thread mode for every query that
    routes through it, without touching each context).
    """

    def __init__(
        self, mode: str | None = None, workers: int | None = None
    ) -> None:
        if workers is not None:
            require_positive_int(workers, "workers")
        self.mode = mode
        self.workers = workers

    def _tune(self, job: ShardJob) -> ShardJob:
        if self.mode is not None:
            job.mode = self.mode
        if self.workers is not None:
            job.workers = self.workers
        return job

    def run_join(self, job: ShardJob) -> Iterator:
        return _dispatch_local_join(self._tune(job))

    def run_fold(self, job: ShardJob, spec) -> list:
        return _dispatch_local_fold(self._tune(job), spec)


class _Item:
    """One shard's board entry (identity-keyed; mutable attempt state)."""

    __slots__ = ("entry", "attempts", "not_before")

    def __init__(self, entry: ShardPlanEntry) -> None:
        self.entry = entry
        self.attempts = 0
        self.not_before = 0.0


class _Run:
    """The shared board for one job: shard states, rate model, sink."""

    def __init__(self, job: ShardJob, policy, max_retries, backoff) -> None:
        self.job = job
        self.policy = policy
        self.max_retries = max_retries
        self.backoff = backoff
        self.lock = threading.Lock()
        self.cond = threading.Condition(self.lock)
        self.pending: list[_Item] = [_Item(e) for e in job.entries]
        self.running: dict[int, _Item] = {}
        #: (entry, seconds, rows) per committed shard, completion order.
        self.finished: list[tuple[ShardPlanEntry, float, int]] = []
        self.sink: queue_module.Queue = queue_module.Queue()
        self.failure: Exception | None = None
        self.stopped = False
        self.model = RateModel()
        self.alive = 0
        self.steals = 0
        self.retries = 0
        self._rid = itertools.count(1)

    def next_rid(self) -> int:
        return next(self._rid)

    # -- driver lifecycle ---------------------------------------------------

    def driver_started(self) -> None:
        with self.cond:
            self.alive += 1

    def driver_retired(self) -> None:
        with self.cond:
            self.alive -= 1
            if (
                self.alive == 0
                and (self.pending or self.running)
                and self.failure is None
                and not self.stopped
            ):
                self._abort(
                    DistributedError(
                        f"all workers died with "
                        f"{len(self.pending) + len(self.running)} "
                        f"shard(s) still pending"
                    )
                )

    # -- claiming (and stealing) --------------------------------------------

    def claim(self) -> _Item | None:
        """Take ownership of one pending shard; ``None`` means retire.

        Claim order is lightest-first under a steal policy (warm the
        rate model on cheap shards; likely stragglers wait where they
        can still be split) and heaviest-first otherwise (classic LPT:
        start the long poles early).
        """
        with self.cond:
            while True:
                if self.failure is not None or self.stopped:
                    return None
                if not self.pending and not self.running:
                    return None
                now = time.monotonic()
                ready = [i for i in self.pending if i.not_before <= now]
                if not ready:
                    # Only backed-off (or running) work remains; sleep
                    # until the nearest retry unlocks or state changes.
                    horizon = 0.05
                    if self.pending:
                        horizon = max(
                            min(i.not_before for i in self.pending) - now,
                            0.005,
                        )
                    self.cond.wait(timeout=horizon)
                    continue
                if self.policy is not None:
                    item = min(ready, key=lambda i: i.entry.weight)
                else:
                    item = max(ready, key=lambda i: i.entry.weight)
                if (
                    self.policy is not None
                    and item.attempts == 0
                    and len(item.entry.key) <= self.policy.max_split_depth
                    and len(ready) < self.alive
                    and self.model.hot(item.entry.weight, self.policy)
                ):
                    subs = split_entry(
                        item.entry, self.job.order, self.policy.split_factor
                    )
                    if len(subs) > 1:
                        # The parent never ran: replacing it with its
                        # exact partition preserves the output multiset.
                        self.steals += 1
                        self.pending.remove(item)
                        sub_items = [_Item(e) for e in subs]
                        self.pending.extend(sub_items[1:])
                        self.cond.notify_all()
                        item = sub_items[0]
                        self.running[id(item)] = item
                        return item
                self.pending.remove(item)
                self.running[id(item)] = item
                return item

    # -- state transitions --------------------------------------------------

    def commit(self, item: _Item, rows, seconds: float, span=None) -> None:
        """One shard done: release its rows, exactly once."""
        with self.cond:
            if self.failure is not None or self.stopped:
                return
            self.running.pop(id(item), None)
            self.finished.append(
                (item.entry, seconds, len(rows) if rows is not None else 0)
            )
            self.model.observe(seconds, item.entry.weight)
            if span is not None and self.job.tracer is not None:
                self.job.tracer.attach(span)
            self.sink.put(("rows", rows))
            if not self.pending and not self.running:
                self._complete()
            self.cond.notify_all()

    def commit_state(self, item: _Item, state, seconds: float) -> None:
        """Fold flavor of :meth:`commit`: release one partial state."""
        with self.cond:
            if self.failure is not None or self.stopped:
                return
            self.running.pop(id(item), None)
            self.finished.append((item.entry, seconds, 0))
            self.model.observe(seconds, item.entry.weight)
            self.sink.put(("state", state))
            if not self.pending and not self.running:
                self._complete()
            self.cond.notify_all()

    def requeue(self, item: _Item, error: Exception) -> None:
        """Transient failure: back the shard off and retry elsewhere."""
        with self.cond:
            if self.failure is not None or self.stopped:
                return
            self.running.pop(id(item), None)
            item.attempts += 1
            if item.attempts > self.max_retries:
                self._abort(
                    DistributedError(
                        f"shard {item.entry.key!r} failed "
                        f"{item.attempts} time(s), retry budget "
                        f"exhausted: {error}"
                    )
                )
                return
            self.retries += 1
            item.not_before = time.monotonic() + self.backoff * (
                2 ** (item.attempts - 1)
            )
            self.pending.append(item)
            self.cond.notify_all()

    def abort(self, error: Exception) -> None:
        with self.cond:
            self._abort(error)

    def _abort(self, error: Exception) -> None:  # caller holds the lock
        if self.failure is None and not self.stopped:
            self.failure = error
            self.sink.put(("error", error))
        self.cond.notify_all()

    def stop(self) -> None:
        """Consumer gone (early termination): retire every driver."""
        with self.cond:
            self.stopped = True
            self.cond.notify_all()

    def _complete(self) -> None:  # caller holds the lock
        # Write what actually ran back into the job, in completion
        # order, so the engine's feedback/metrics wrappers observe the
        # post-steal reality: entry[i] and times[i] describe the same
        # shard, and len(times) == len(entries) marks the run complete.
        self.job.entries[:] = [entry for entry, _s, _r in self.finished]
        if self.job.times is not None:
            self.job.times.clear()
            self.job.times.update(
                {
                    index: (seconds, rows)
                    for index, (_e, seconds, rows) in enumerate(
                        self.finished
                    )
                }
            )
        self.job.stats.update(self.summary())
        self.sink.put(("done", None))

    def summary(self) -> dict:  # caller holds the lock (or run is over)
        seconds = [s for _e, s, _r in self.finished]
        return {
            "shards": len(self.finished),
            "steals": self.steals,
            "retries": self.retries,
            "presplits": self.job.stats.get("presplits", 0),
            "shard_seconds": sum(seconds),
            "max_shard_seconds": max(seconds, default=0.0),
        }


class DispatchScheduler:
    """Run shard jobs on a worker fleet, one driver thread per slot.

    ``transports`` is a sequence of
    :class:`~repro.distributed.transport.SocketTransport` /
    ``LoopbackTransport`` (or anything with ``connect()``) — one per
    worker slot.  Each driver connects, probes with a ping, then loops:
    claim a shard from the board, ship its pickled task, buffer the row
    frames, commit on ``done``.  A connection failure anywhere in that
    loop requeues the claimed shard (backoff, bounded by
    ``max_retries`` per shard) and reconnects through the same
    transport — a transport is the durable name of a slot, so a
    restarted worker resumes service transparently.

    ``steal=`` overrides the job's
    :class:`~repro.query.shards.StealPolicy` (contexts usually carry it
    on their :class:`~repro.query.shards.ShardSpec` instead).
    ``stats`` accumulates across runs; ``last_run`` holds the final
    board summary of the most recent one.
    """

    def __init__(
        self,
        transports,
        *,
        max_retries: int = 2,
        retry_backoff: float = 0.05,
        task_timeout: float = 60.0,
        steal=None,
    ) -> None:
        self.transports = list(transports)
        if not self.transports:
            raise DistributedError(
                "DispatchScheduler needs at least one transport"
            )
        if max_retries < 0:
            raise DistributedError(
                f"max_retries must be >= 0, got {max_retries!r}"
            )
        self.max_retries = max_retries
        self.retry_backoff = retry_backoff
        self.task_timeout = task_timeout
        self.steal = steal
        self.stats = {
            "runs": 0,
            "shards": 0,
            "steals": 0,
            "retries": 0,
            "presplits": 0,
        }
        self.last_run: dict = {}

    # -- Scheduler protocol -------------------------------------------------

    def run_join(self, job: ShardJob) -> Iterator:
        run, threads = self._start(job)
        return self._consume_rows(run, threads)

    def run_fold(self, job: ShardJob, spec) -> list:
        run, threads = self._start(job, spec=spec, fold=True)
        states = []
        try:
            while True:
                kind, payload = run.sink.get()
                if kind == "state":
                    states.append(payload)
                elif kind == "done":
                    return states
                else:
                    raise payload
        finally:
            self._wind_down(run, threads)

    # -- machinery ----------------------------------------------------------

    def _start(self, job: ShardJob, spec=None, fold: bool = False):
        policy = self.steal if self.steal is not None else job.steal
        run = _Run(job, policy, self.max_retries, self.retry_backoff)
        if not job.entries:
            with run.cond:
                run._complete()
            return run, []
        width = min(len(self.transports), len(job.entries))
        threads = [
            threading.Thread(
                target=self._drive,
                args=(run, transport, spec, fold),
                daemon=True,
            )
            for transport in self.transports[:width]
        ]
        for thread in threads:
            run.driver_started()
        for thread in threads:
            thread.start()
        return run, threads

    def _consume_rows(self, run: _Run, threads) -> Iterator:
        try:
            while True:
                kind, payload = run.sink.get()
                if kind == "rows":
                    yield from payload
                elif kind == "done":
                    return
                else:
                    raise payload
        finally:
            self._wind_down(run, threads)

    def _wind_down(self, run: _Run, threads) -> None:
        run.stop()
        for thread in threads:
            thread.join(timeout=2.0)
        self.last_run = run.summary()
        self.stats["runs"] += 1
        for key in ("shards", "steals", "retries", "presplits"):
            self.stats[key] += self.last_run.get(key, 0)

    def _connect(self, transport):
        """One connection attempt with a liveness probe; None on failure."""
        try:
            channel = transport.connect()
        except (OSError, DistributedError):
            return None
        try:
            channel.settimeout(self.task_timeout)
            channel.send({"op": "ping", "id": 0})
            header, _payload = channel.recv()
            if header.get("op") != "pong":
                raise ConnectionClosed(
                    f"expected pong, got {header.get('op')!r}"
                )
        except (OSError, DistributedError):
            channel.close()
            return None
        return channel

    def _drive(self, run: _Run, transport, spec, fold: bool) -> None:
        channel = None
        try:
            channel = self._connect(transport)
            if channel is None:
                return
            while True:
                item = run.claim()
                if item is None:
                    return
                try:
                    if fold:
                        self._execute_fold(run, channel, item, spec)
                    else:
                        self._execute_join(run, channel, item)
                except (ConnectionClosed, OSError) as error:
                    # Transient: this worker (or its link) died mid-
                    # shard.  The buffered rows of the attempt die with
                    # this frame of the stack — nothing reached the
                    # consumer — so the retry starts from zero rows.
                    run.requeue(item, error)
                    channel.close()
                    channel = self._connect(transport)
                    if channel is None:
                        return
        finally:
            if channel is not None:
                channel.close()
            run.driver_retired()

    def _execute_join(self, run: _Run, channel, item: _Item) -> None:
        rid = run.next_rid()
        payload = pickle.dumps(
            run.job.task_for(item.entry), protocol=pickle.HIGHEST_PROTOCOL
        )
        channel.send(
            {"op": "task", "id": rid, "trace": run.job.tracer is not None},
            payload,
        )
        buffered: list = []
        while True:
            header, data = channel.recv()
            if header.get("id") != rid:
                # A stale or duplicated frame from an earlier request on
                # this channel (e.g. a worker that re-sent its ack).
                # Skipping by id is what makes duplicate acks harmless.
                continue
            op = header.get("op")
            if op == "rows":
                buffered.extend(pickle.loads(data))
            elif op == "done":
                span = (
                    pickle.loads(data) if header.get("span") and data else None
                )
                run.commit(
                    item, buffered, float(header.get("seconds", 0.0)), span
                )
                return
            elif op == "error":
                run.abort(_worker_error(item, header))
                return
            else:
                raise ConnectionClosed(f"unexpected frame op {op!r}")

    def _execute_fold(self, run: _Run, channel, item: _Item, spec) -> None:
        rid = run.next_rid()
        payload = pickle.dumps(
            (run.job.task_for(item.entry), spec),
            protocol=pickle.HIGHEST_PROTOCOL,
        )
        channel.send({"op": "fold", "id": rid}, payload)
        while True:
            header, data = channel.recv()
            if header.get("id") != rid:
                continue
            op = header.get("op")
            if op == "state":
                run.commit_state(
                    item,
                    pickle.loads(data),
                    float(header.get("seconds", 0.0)),
                )
                return
            if op == "error":
                run.abort(_worker_error(item, header))
                return
            raise ConnectionClosed(f"unexpected frame op {op!r}")

    # -- fleet management ---------------------------------------------------

    def close(self, shutdown_workers: bool = False) -> None:
        """Drain the fleet.

        With ``shutdown_workers`` the scheduler connects to each slot
        once more and sends the ``shutdown`` frame — the graceful stop
        for fleets this process started (the CLI's ``--workers`` path
        leaves foreign workers running by default).
        """
        if not shutdown_workers:
            return
        for transport in self.transports:
            try:
                channel = transport.connect()
            except (OSError, DistributedError):
                continue
            try:
                channel.settimeout(5.0)
                channel.send({"op": "shutdown"})
                channel.recv()  # the "bye", best effort
            except (OSError, DistributedError):
                pass
            finally:
                channel.close()


def _worker_error(item: _Item, header: dict) -> DistributedError:
    error = header.get("error") or {}
    return DistributedError(
        f"worker failed shard {item.entry.key!r} permanently "
        f"[{error.get('type', 'internal')}]: "
        f"{error.get('message', 'no detail')}"
    )
