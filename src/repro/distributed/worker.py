"""The worker side of the shard fabric.

A worker is deliberately dumb: it holds no job state, makes no
scheduling decisions, and keeps nothing between tasks.  It receives a
pickled :class:`~repro.engine.parallel._ShardTask` (the same payload
the local process pool ships), plans and runs the shard with the
ordinary engine, and streams the result back in row chunks followed by
a ``done`` frame carrying its own wall-clock measurement — the number
the dispatcher's steal-rate model and the feedback store both consume.
All smarts (retry, exactly-once accounting, stealing) live in the
dispatcher, which is what makes worker death survivable: anything a
dead worker knew can be recomputed from the task bytes.

Frames handled (see :mod:`repro.distributed.wire` for the framing):

``{"op": "ping", "id": n}``
    -> ``{"op": "pong", "id": n}`` — liveness probe.
``{"op": "task", "id": n, "trace": bool}`` + pickled task
    -> zero or more ``{"op": "rows", "id": n}`` + pickled row list,
    then ``{"op": "done", "id": n, "seconds": s, "count": c}`` (with a
    pickled finished :class:`~repro.observe.tracing.Span` as payload
    when tracing was requested).
``{"op": "fold", "id": n}`` + pickled ``(task, spec)``
    -> ``{"op": "state", "id": n, "seconds": s}`` + pickled raw state.
``{"op": "shutdown"}``
    -> ``{"op": "bye"}`` and the connection (and, for a
    :class:`WorkerServer`, the accept loop) winds down.

Failures inside a task become a single ``{"op": "error", "id": n,
"error": {...}}`` frame with the same typed payload the query server
uses (:func:`repro.server.protocol.error_payload`) — the dispatcher
treats a typed error as *permanent* (re-running the same bytes would
fail the same way) and aborts the run, while a dead connection is
*transient* and retried.
"""

from __future__ import annotations

import pickle
import socket
import threading
import time

from repro.distributed.transport import Channel
from repro.distributed.wire import ConnectionClosed
from repro.engine.parallel import _shard_fold_state, _shard_rows
from repro.errors import DistributedError
from repro.observe.tracing import Tracer
from repro.server.protocol import error_payload

__all__ = ["ShardWorker", "WorkerServer"]

#: Rows per ``rows`` frame (amortizes framing without hoarding memory).
CHUNK_ROWS = 512


class ShardWorker:
    """Serves shard tasks over one channel at a time."""

    def __init__(self) -> None:
        self.stopped = threading.Event()
        #: Tasks completed over this worker's lifetime (observability).
        self.completed = 0

    def serve_connection(self, channel: Channel) -> None:
        """Handle frames until the peer disconnects or says shutdown."""
        while not self.stopped.is_set():
            try:
                header, payload = channel.recv()
            except (ConnectionClosed, OSError):
                return  # dispatcher went away; nothing to clean up
            op = header.get("op")
            try:
                if op == "ping":
                    channel.send({"op": "pong", "id": header.get("id")})
                elif op == "shutdown":
                    channel.send({"op": "bye"})
                    self.stopped.set()
                    return
                elif op == "task":
                    self._run_task(channel, header, payload)
                elif op == "fold":
                    self._run_fold(channel, header, payload)
                else:
                    channel.send(
                        {
                            "op": "error",
                            "id": header.get("id"),
                            "error": {
                                "type": "protocol",
                                "message": f"unknown op {op!r}",
                            },
                        }
                    )
            except (ConnectionClosed, OSError):
                return  # peer died while we streamed; drop the work

    def _run_task(
        self, channel: Channel, header: dict, payload: bytes
    ) -> None:
        rid = header.get("id")
        try:
            task = pickle.loads(payload)
            started = time.perf_counter()
            count = 0
            span_bytes = b""
            if header.get("trace"):
                # Like the process pool's traced entry point: a local
                # tracer so the shard's plan/index spans nest, the
                # finished root shipped home as plain data.
                local = Tracer(name=f"worker-shard-{rid}")
                with local.activate(), local.span(
                    "shard", shard=rid, remote=True
                ) as span:
                    count = self._stream_rows(channel, rid, task)
                    span.meta["rows"] = count
                span_bytes = pickle.dumps(local.roots[0])
            else:
                count = self._stream_rows(channel, rid, task)
            seconds = time.perf_counter() - started
            self.completed += 1
            done = {
                "op": "done",
                "id": rid,
                "seconds": seconds,
                "count": count,
            }
            if span_bytes:
                done["span"] = True
            channel.send(done, span_bytes)
        except (ConnectionClosed, OSError):
            raise
        except Exception as error:  # typed, permanent: never retried
            channel.send(
                {"op": "error", "id": rid, "error": error_payload(error)}
            )

    def _stream_rows(self, channel: Channel, rid, task) -> int:
        count = 0
        chunk = []
        for row in _shard_rows(task):
            chunk.append(row)
            count += 1
            if len(chunk) >= CHUNK_ROWS:
                channel.send(
                    {"op": "rows", "id": rid, "n": len(chunk)},
                    pickle.dumps(chunk),
                )
                chunk = []
        if chunk:
            channel.send(
                {"op": "rows", "id": rid, "n": len(chunk)},
                pickle.dumps(chunk),
            )
        return count

    def _run_fold(
        self, channel: Channel, header: dict, payload: bytes
    ) -> None:
        rid = header.get("id")
        try:
            task, spec = pickle.loads(payload)
            started = time.perf_counter()
            state = _shard_fold_state(task, spec)
            self.completed += 1
            channel.send(
                {
                    "op": "state",
                    "id": rid,
                    "seconds": time.perf_counter() - started,
                },
                pickle.dumps(state),
            )
        except (ConnectionClosed, OSError):
            raise
        except Exception as error:
            channel.send(
                {"op": "error", "id": rid, "error": error_payload(error)}
            )


class WorkerServer:
    """A listening worker: ``python -m repro worker`` runs one of these.

    Accepts any number of dispatcher connections, each served on its
    own thread by a shared :class:`ShardWorker`.  ``port=0`` binds an
    ephemeral port (read it back from :attr:`address`) — what the tests
    use to run real TCP fleets without port coordination.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0) -> None:
        self.worker = ShardWorker()
        self._sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        try:
            self._sock.bind((host, port))
        except OSError as error:
            self._sock.close()
            raise DistributedError(
                f"cannot bind worker to {host}:{port}: {error}"
            ) from error
        self._sock.listen()
        # Short accept timeout so stop() is honored promptly.
        self._sock.settimeout(0.2)
        self._threads: list[threading.Thread] = []

    @property
    def address(self) -> tuple[str, int]:
        """The bound ``(host, port)`` (resolves ``port=0``)."""
        return self._sock.getsockname()[:2]

    def serve_forever(self) -> None:
        """Accept and serve until :meth:`stop` (or a shutdown frame)."""
        try:
            while not self.worker.stopped.is_set():
                try:
                    conn, _addr = self._sock.accept()
                except socket.timeout:
                    continue
                except OSError:
                    break  # listening socket closed under us: stopping
                thread = threading.Thread(
                    target=self._serve_one, args=(conn,), daemon=True
                )
                thread.start()
                self._threads.append(thread)
        finally:
            self._sock.close()

    def _serve_one(self, conn: socket.socket) -> None:
        channel = Channel(conn)
        try:
            self.worker.serve_connection(channel)
        finally:
            channel.close()

    def stop(self) -> None:
        self.worker.stopped.set()
        self._sock.close()
