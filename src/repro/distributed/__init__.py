"""Distributed shard fabric: the local sharded engine, fleet-scaled.

PR 1 put every algorithm behind one streaming seam; the parallel
driver scaled it to local pools; this package scales the *same shards*
to a worker fleet without changing a single caller-visible signature:

* :mod:`~repro.distributed.wire` / :mod:`~repro.distributed.transport`
  — length-prefixed frames (JSON header + pickled payload) over TCP
  (:class:`SocketTransport`) or an in-process ``socketpair``
  (:class:`LoopbackTransport`, the test and benchmark fleet);
* :mod:`~repro.distributed.worker` — the stateless shard worker and
  the ``python -m repro worker`` server;
* :mod:`~repro.distributed.scheduler` — the :class:`Scheduler`
  protocol (``ExecutionContext.scheduler``), the local-pool
  implementation, and :class:`DispatchScheduler`: per-shard retry with
  backoff, exactly-once shard accounting, graceful drain;
* :mod:`~repro.distributed.stealing` — predictive pre-splitting of
  hub-heavy shards and the within-run steal-rate model.

Typical use::

    from repro import DispatchScheduler, ExecutionContext, ShardSpec
    from repro.distributed import SocketTransport

    fleet = DispatchScheduler(
        [SocketTransport("10.0.0.5", 7102),
         SocketTransport("10.0.0.6", 7102)]
    )
    ctx = ExecutionContext(
        shards=ShardSpec("auto", predictive=True, steal=True),
        scheduler=fleet,
    )
"""

from repro.distributed.scheduler import (
    DispatchScheduler,
    LocalPoolScheduler,
    Scheduler,
)
from repro.distributed.stealing import RateModel, predictive_presplit
from repro.distributed.transport import (
    Channel,
    LoopbackTransport,
    SocketTransport,
)
from repro.distributed.wire import ConnectionClosed, recv_frame, send_frame
from repro.distributed.worker import ShardWorker, WorkerServer
from repro.query.shards import ShardSpec, StealPolicy

__all__ = [
    "Channel",
    "ConnectionClosed",
    "DispatchScheduler",
    "LocalPoolScheduler",
    "LoopbackTransport",
    "RateModel",
    "Scheduler",
    "ShardSpec",
    "ShardWorker",
    "SocketTransport",
    "StealPolicy",
    "WorkerServer",
    "predictive_presplit",
    "recv_frame",
    "send_frame",
]
