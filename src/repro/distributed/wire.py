"""Length-prefixed framing for the shard fabric.

One frame = one header line + an optional binary payload:

* the header is a compact JSON object terminated by ``"\\n"`` — the
  same newline-delimited-JSON convention as the query server's
  :mod:`repro.server.protocol`, so the two wires read alike in a packet
  capture;
* when the frame carries a payload (pickled shard tasks, row chunks,
  fold states, finished trace spans), the header's ``"len"`` field
  gives its exact byte length and the payload follows the newline
  verbatim.

Headers stay JSON (debuggable, versionable); payloads stay pickle
(rows and tasks round-trip exactly, and the driver pickles each task
once — workers receive those same bytes).  Frames in this direction of
trust only ever travel between a driver and workers *it* started; the
worker CLI binds to localhost by default for exactly that reason.

Ops over this framing (see :mod:`repro.distributed.worker`):
``ping``/``pong``, ``task`` -> ``rows``* -> ``done``, ``fold`` ->
``state``, ``shutdown`` -> ``bye``, and ``error`` with the same typed
payloads as :func:`repro.server.protocol.error_payload`.
"""

from __future__ import annotations

import json

from repro.errors import DistributedError

__all__ = ["ConnectionClosed", "recv_frame", "send_frame"]


class ConnectionClosed(DistributedError):
    """The peer went away mid-conversation (EOF or a short read).

    The dispatcher treats this as a *transient* worker death: the shard
    the connection was carrying is re-dispatched elsewhere (up to the
    retry budget); only the connection, never the run, is lost here.
    """


def send_frame(sock, header: dict, payload: bytes = b"") -> None:
    """Write one frame: compact-JSON header line, then the payload.

    ``header`` is augmented with ``len`` when a payload rides along;
    the two are concatenated into a single ``sendall`` so a frame is
    never interleaved with another thread's (each channel is owned by
    one driver thread, but cheap atomicity costs nothing).
    """
    if payload:
        header = dict(header, len=len(payload))
    line = (json.dumps(header, separators=(",", ":")) + "\n").encode("utf-8")
    sock.sendall(line + payload)


def recv_frame(reader) -> tuple[dict, bytes]:
    """Read one frame from a buffered binary reader.

    Returns ``(header, payload)``; the payload is ``b""`` for
    payload-free frames.  Raises :class:`ConnectionClosed` on EOF
    between frames or a short read inside one — both mean the peer
    died, and the caller's retry machinery takes over.
    """
    line = reader.readline()
    if not line:
        raise ConnectionClosed("peer closed the connection")
    try:
        header = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise DistributedError(
            f"malformed frame header: {error}"
        ) from error
    if not isinstance(header, dict):
        raise DistributedError(
            f"frame header must be a JSON object, "
            f"got {type(header).__name__}"
        )
    length = header.get("len", 0)
    if not isinstance(length, int) or length < 0:
        raise DistributedError(f"bad frame length {length!r}")
    payload = reader.read(length) if length else b""
    if length and len(payload) != length:
        raise ConnectionClosed(
            f"peer closed mid-frame ({len(payload)}/{length} payload bytes)"
        )
    return header, payload
