"""Transports: how the dispatcher reaches a worker.

A transport is a connection *factory* — ``connect()`` yields a fresh
:class:`Channel` (framed, bidirectional, owned by one driver thread).
Two implementations ship:

* :class:`SocketTransport` — TCP to a ``python -m repro worker``
  process, possibly on another machine;
* :class:`LoopbackTransport` — an in-process worker on the other end
  of a ``socketpair``, byte-for-byte the same protocol with zero
  network.  The tests and the distributed benchmark run real fleets
  this way, and a failure-injection double only has to wrap the
  channel it returns.

``connect()`` may be called repeatedly: the dispatcher reconnects
through the same transport after a worker death, so a transport is the
durable name of a worker *slot*, not of one connection.
"""

from __future__ import annotations

import socket
import threading

from repro.distributed.wire import recv_frame, send_frame

__all__ = ["Channel", "LoopbackTransport", "SocketTransport"]


class Channel:
    """One framed connection (a socket plus its buffered reader)."""

    def __init__(self, sock: socket.socket) -> None:
        self._sock = sock
        self._reader = sock.makefile("rb")

    def send(self, header: dict, payload: bytes = b"") -> None:
        send_frame(self._sock, header, payload)

    def recv(self) -> tuple[dict, bytes]:
        return recv_frame(self._reader)

    def settimeout(self, seconds: float | None) -> None:
        """Bound every subsequent send/recv (``socket.timeout`` on
        expiry — the dispatcher maps it to a transient worker death)."""
        self._sock.settimeout(seconds)

    def close(self) -> None:
        """Best-effort teardown; safe to call twice.  The shutdown
        wakes a peer blocked in ``recv`` immediately instead of leaving
        it to notice on its next write."""
        try:
            self._sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            self._reader.close()
        except OSError:
            pass
        self._sock.close()


class SocketTransport:
    """TCP transport to one remote worker (``host:port``)."""

    def __init__(
        self, host: str, port: int, timeout: float = 30.0
    ) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout

    def connect(self) -> Channel:
        sock = socket.create_connection(
            (self.host, self.port), timeout=self.timeout
        )
        try:
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        except OSError:
            pass  # non-TCP address families (rare) just skip the hint
        return Channel(sock)

    def __repr__(self) -> str:
        return f"SocketTransport({self.host!r}, {self.port})"


class LoopbackTransport:
    """An in-process worker fleet slot for tests and benchmarks.

    Every ``connect()`` builds a ``socketpair`` and serves the far end
    on a fresh daemon thread running a real
    :class:`~repro.distributed.worker.ShardWorker` — the full wire
    protocol with no network and no extra processes.  Reconnection
    after an (injected) worker death therefore works exactly like TCP:
    the next ``connect()`` is a new worker on the same slot.
    """

    def __init__(self, worker=None) -> None:
        # Deferred import: worker.py imports the engine; keeping this
        # module import-light lets transports load before the engine.
        if worker is None:
            from repro.distributed.worker import ShardWorker

            worker = ShardWorker()
        self.worker = worker

    def connect(self) -> Channel:
        parent, child = socket.socketpair()
        serve = threading.Thread(
            target=self._serve, args=(child,), daemon=True
        )
        serve.start()
        return Channel(parent)

    def _serve(self, sock: socket.socket) -> None:
        channel = Channel(sock)
        try:
            self.worker.serve_connection(channel)
        finally:
            channel.close()

    def __repr__(self) -> str:
        return "LoopbackTransport()"
