"""Sort-merge binary join.

The paper's footnote 3 notes that replacing hashing by sorting turns the
amortized join model into a true worst case at the price of a log factor.
This module provides that variant: a classic sort-merge natural join and a
left-deep chain built from it.  Semantically identical to the hash
baseline; benchmarks use it as a second independent binary-join
implementation.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.core.query import JoinQuery
from repro.errors import QueryError
from repro.relations.relation import Relation

#: Sort key wrapper making heterogeneous values orderable deterministically.
def _orderable(value):
    return (type(value).__name__, repr(value))


def sort_merge_join(left: Relation, right: Relation) -> Relation:
    """Natural join by sorting both sides on the shared attributes.

    With no shared attributes this degenerates to the cross product, like
    the hash version.
    """
    shared = [a for a in left.attributes if a in right.attribute_set]
    if not shared:
        return left.natural_join(right)
    left_idx = left.positions(shared)
    right_idx = right.positions(shared)
    left_rows = sorted(
        left.tuples,
        key=lambda row: tuple(_orderable(row[i]) for i in left_idx),
    )
    right_rows = sorted(
        right.tuples,
        key=lambda row: tuple(_orderable(row[i]) for i in right_idx),
    )
    extra_idx = right.positions(
        [a for a in right.attributes if a not in left.attribute_set]
    )
    out_attrs = left.attributes + tuple(
        a for a in right.attributes if a not in left.attribute_set
    )

    def key_of(row, idx):
        return tuple(_orderable(row[i]) for i in idx)

    rows = []
    i = j = 0
    while i < len(left_rows) and j < len(right_rows):
        lk = key_of(left_rows[i], left_idx)
        rk = key_of(right_rows[j], right_idx)
        if lk < rk:
            i += 1
        elif lk > rk:
            j += 1
        else:
            # Expand the matching run on both sides.
            i_end = i
            while i_end < len(left_rows) and key_of(left_rows[i_end], left_idx) == lk:
                i_end += 1
            j_end = j
            while j_end < len(right_rows) and key_of(right_rows[j_end], right_idx) == rk:
                j_end += 1
            for li in range(i, i_end):
                lrow = left_rows[li]
                for rj in range(j, j_end):
                    rrow = right_rows[rj]
                    rows.append(
                        lrow + tuple(rrow[x] for x in extra_idx)
                    )
            i, j = i_end, j_end
    return Relation(f"({left.name}*{right.name})", out_attrs, rows)


def chain_sort_merge(
    query: JoinQuery,
    order: Sequence[str] | None = None,
    name: str = "J",
) -> Relation:
    """Left-deep sort-merge join in the given relation order."""
    edge_ids = tuple(order) if order is not None else query.edge_ids
    if set(edge_ids) != set(query.edge_ids) or len(edge_ids) != len(query):
        raise QueryError(
            f"order {edge_ids!r} is not a permutation of {query.edge_ids!r}"
        )
    result = query.relation(edge_ids[0])
    for eid in edge_ids[1:]:
        result = sort_merge_join(result, query.relation(eid))
    return result.reorder(query.attributes).with_name(name)
