"""Binary join plans: trees of pairwise joins, enumerated and measured.

Section 6's lower bounds quantify over *every* join-only (and join-project)
plan, so the benchmarks must compare against the best plan available, not a
strawman.  This module provides:

* :class:`PlanNode` — bushy binary plan trees over the query's relations;
* :func:`enumerate_plans` — every binary plan (all tree shapes times all
  leaf assignments) for small ``m``;
* :func:`execute_plan` — materialize a plan with hash joins, recording
  every intermediate size;
* :func:`best_binary_plan` — execute all plans and return the one with the
  smallest total intermediate work (the fairest possible baseline);
* :func:`greedy_plan` — the classical smallest-result-first heuristic for
  larger ``m``.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence

from repro.baselines.hash_join import ChainStatistics
from repro.core.query import JoinQuery
from repro.errors import QueryError
from repro.relations.relation import Relation

#: Hard cap for exhaustive plan enumeration (numbers explode factorially).
MAX_EXHAUSTIVE_RELATIONS = 6


@dataclass(frozen=True)
class PlanNode:
    """A bushy binary plan: a leaf (relation) or an inner join of two."""

    edge_id: str | None = None
    left: "PlanNode | None" = None
    right: "PlanNode | None" = None

    @property
    def is_leaf(self) -> bool:
        return self.edge_id is not None

    def leaves(self) -> list[str]:
        if self.is_leaf:
            return [self.edge_id]  # type: ignore[list-item]
        assert self.left is not None and self.right is not None
        return self.left.leaves() + self.right.leaves()

    def __str__(self) -> str:
        if self.is_leaf:
            return str(self.edge_id)
        return f"({self.left} ⋈ {self.right})"


def leaf(edge_id: str) -> PlanNode:
    """A leaf plan scanning one relation."""
    return PlanNode(edge_id=edge_id)


def join_plan(left: PlanNode, right: PlanNode) -> PlanNode:
    """An inner plan joining two subplans."""
    return PlanNode(left=left, right=right)


def left_deep_plan(order: Sequence[str]) -> PlanNode:
    """The left-deep plan joining relations in the given order."""
    plan = leaf(order[0])
    for eid in order[1:]:
        plan = join_plan(plan, leaf(eid))
    return plan


def enumerate_plans(edge_ids: Sequence[str]) -> list[PlanNode]:
    """Every bushy binary plan over the given relations.

    Counts grow as ``(2m-3)!!`` — guarded by
    :data:`MAX_EXHAUSTIVE_RELATIONS`.
    """
    ids = list(edge_ids)
    if len(ids) > MAX_EXHAUSTIVE_RELATIONS:
        raise QueryError(
            f"refusing to enumerate plans over {len(ids)} relations "
            f"(cap {MAX_EXHAUSTIVE_RELATIONS}); use greedy_plan instead"
        )

    def build(subset: tuple[str, ...]) -> list[PlanNode]:
        if len(subset) == 1:
            return [leaf(subset[0])]
        plans = []
        # Split into non-empty (left, right); avoid mirrored duplicates by
        # keeping the first element on the left.
        rest = subset[1:]
        for mask in range(1 << len(rest)):
            left_ids = (subset[0],) + tuple(
                rest[i] for i in range(len(rest)) if mask >> i & 1
            )
            right_ids = tuple(
                rest[i] for i in range(len(rest)) if not (mask >> i & 1)
            )
            if not right_ids:
                continue
            for lp in build(left_ids):
                for rp in build(right_ids):
                    plans.append(join_plan(lp, rp))
        return plans

    return build(tuple(ids))


def execute_plan(
    query: JoinQuery, plan: PlanNode, name: str = "J"
) -> tuple[Relation, ChainStatistics]:
    """Materialize a plan bottom-up with hash joins, recording every
    intermediate result size."""
    if sorted(plan.leaves()) != sorted(query.edge_ids):
        raise QueryError(
            f"plan leaves {sorted(plan.leaves())} do not match the query's "
            f"relations {sorted(query.edge_ids)}"
        )
    stats = ChainStatistics()

    def run(node: PlanNode) -> Relation:
        if node.is_leaf:
            return query.relation(node.edge_id)  # type: ignore[arg-type]
        assert node.left is not None and node.right is not None
        result = run(node.left).natural_join(run(node.right))
        stats.intermediate_sizes.append(len(result))
        return result

    result = run(plan)
    return result.reorder(query.attributes).with_name(name), stats


def best_binary_plan(
    query: JoinQuery,
) -> tuple[PlanNode, Relation, ChainStatistics]:
    """Execute *every* binary plan; return the cheapest by total
    intermediate tuples.  This is the strongest possible join-only
    adversary for the Section 6 benchmarks."""
    best: tuple[PlanNode, Relation, ChainStatistics] | None = None
    for plan in enumerate_plans(query.edge_ids):
        result, stats = execute_plan(query, plan)
        if best is None or stats.total_intermediate < best[2].total_intermediate:
            best = (plan, result, stats)
    assert best is not None
    return best


def greedy_plan(query: JoinQuery) -> PlanNode:
    """Smallest-actual-result-first greedy plan (classical optimizer
    heuristic, using true sizes rather than estimates)."""
    pieces: list[tuple[PlanNode, Relation]] = [
        (leaf(eid), query.relation(eid)) for eid in query.edge_ids
    ]
    while len(pieces) > 1:
        best_pair: tuple[int, int] | None = None
        best_size = None
        best_result = None
        for i in range(len(pieces)):
            for j in range(i + 1, len(pieces)):
                candidate = pieces[i][1].natural_join(pieces[j][1])
                if best_size is None or len(candidate) < best_size:
                    best_size = len(candidate)
                    best_pair = (i, j)
                    best_result = candidate
        assert best_pair is not None and best_result is not None
        i, j = best_pair
        merged = (join_plan(pieces[i][0], pieces[j][0]), best_result)
        pieces = [
            piece for k, piece in enumerate(pieces) if k not in (i, j)
        ]
        pieces.append(merged)
    return pieces[0][0]
