"""Pairwise hash joins: the classical binary-join baseline.

This is the "standard RDBMS" strategy the paper's Section 1 and Section 6
compare against: materialize one pairwise natural join at a time, in some
order.  On Example 2.2's instances *every* such order takes ``Omega(N^2)``
while the worst-case optimal algorithms take ``O(N)`` — benchmark E1.

The underlying pairwise operator is
:meth:`repro.relations.Relation.natural_join` (hash based, expected
``O(|R| + |S| + |R join S|)``), matching the cost model of the paper's
footnote 3.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Sequence

from repro.core.query import JoinQuery
from repro.errors import QueryError
from repro.relations.relation import Relation


@dataclass
class ChainStatistics:
    """Work counters for one chain execution."""

    intermediate_sizes: list[int] = field(default_factory=list)

    @property
    def max_intermediate(self) -> int:
        return max(self.intermediate_sizes, default=0)

    @property
    def total_intermediate(self) -> int:
        return sum(self.intermediate_sizes)


def chain_hash_join(
    query: JoinQuery,
    order: Sequence[str] | None = None,
    name: str = "J",
) -> tuple[Relation, ChainStatistics]:
    """Left-deep hash join in the given relation order.

    Returns the result and the intermediate-size statistics the benchmarks
    report (the paper's lower bounds are statements about these).
    """
    edge_ids = tuple(order) if order is not None else query.edge_ids
    if set(edge_ids) != set(query.edge_ids) or len(edge_ids) != len(query):
        raise QueryError(
            f"order {edge_ids!r} is not a permutation of {query.edge_ids!r}"
        )
    stats = ChainStatistics()
    result = query.relation(edge_ids[0])
    for eid in edge_ids[1:]:
        result = result.natural_join(query.relation(eid))
        stats.intermediate_sizes.append(len(result))
    return result.reorder(query.attributes).with_name(name), stats


def hash_join(query: JoinQuery, name: str = "J") -> Relation:
    """Left-deep hash join in the query's relation order (result only)."""
    result, _stats = chain_hash_join(query, name=name)
    return result
