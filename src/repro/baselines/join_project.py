"""AGM's join-project algorithm: the ``O(|q|^2 N^{1+sum x_e})`` baseline.

Atserias, Grohe, and Marx accompany their bound with an algorithm built
from joins *and projections*: fix an attribute order ``v_1 .. v_n`` and
maintain ``L_i = join_e pi_{e cap V_i}(R_e)`` for the growing prefixes
``V_i = {v_1..v_i}``, computing ``L_i`` from ``L_{i-1}`` by joining the
projections of the relations containing ``v_i``.  Every ``L_i`` is bounded
by the AGM bound ``U`` of the projected instance, but one join step can
cost up to ``U * N_max`` — which is exactly the paper's point in Section 6:
on Example 2.2 and the Lemma 6.1 instances this algorithm runs in
``Omega(N^2)`` while Algorithms 1 and 2 run in ``O(N)``.

Join-project plans subsume join-only plans, so this implementation doubles
as the generic "any join-project plan" adversary of Lemma 6.1 (whose lower
bound applies to all of them).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Sequence

from repro.core.query import JoinQuery
from repro.errors import QueryError
from repro.relations.relation import Relation


@dataclass
class JoinProjectStatistics:
    """Work counters: sizes of every materialized intermediate."""

    intermediate_sizes: list[int] = field(default_factory=list)

    @property
    def max_intermediate(self) -> int:
        return max(self.intermediate_sizes, default=0)

    @property
    def total_intermediate(self) -> int:
        return sum(self.intermediate_sizes)


def agm_join_project(
    query: JoinQuery,
    attribute_order: Sequence[str] | None = None,
    name: str = "J",
) -> tuple[Relation, JoinProjectStatistics]:
    """Run AGM's join-project plan; returns (result, statistics)."""
    order = (
        tuple(attribute_order)
        if attribute_order is not None
        else query.attributes
    )
    if set(order) != set(query.attributes) or len(order) != len(
        query.attributes
    ):
        raise QueryError(
            f"attribute order {order!r} is not a permutation of "
            f"{query.attributes!r}"
        )
    stats = JoinProjectStatistics()
    # L_0 holds the single empty tuple.
    level = Relation("L0", (), [()])
    for i, attribute in enumerate(order, start=1):
        prefix = set(order[:i])
        for eid in query.edge_ids:
            relation = query.relation(eid)
            if attribute not in relation.attribute_set:
                continue
            visible = [a for a in relation.attributes if a in prefix]
            level = level.natural_join(relation.project(visible))
            stats.intermediate_sizes.append(len(level))
    return level.reorder(query.attributes).with_name(name), stats
