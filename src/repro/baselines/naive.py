"""The definitional join: the test oracle every algorithm is checked against.

Section 2 defines the output as

    q(I) = { t in D^{A(q)} : t_{A_i} in R_i for each i }.

:func:`naive_join` evaluates that definition literally, enumerating the
product of per-attribute candidate domains and filtering by membership in
every relation.  (The candidate domain of an attribute is the intersection
of its projections across the relations containing it — a tuple outside
that set fails the membership test anyway, so this is still the
definition, just without provably-dead candidates.)

Exponential in the number of attributes; use only on small oracle inputs.
"""

from __future__ import annotations

import itertools

from repro.core.query import JoinQuery
from repro.relations.relation import Relation


def naive_join(query: JoinQuery, name: str = "J") -> Relation:
    """Evaluate the join by definition (exponential; test oracle only)."""
    attributes = query.attributes
    domains: list[set] = []
    for attribute in attributes:
        domain: set | None = None
        for relation in query.relations.values():
            if attribute not in relation.attribute_set:
                continue
            values = {
                row[relation.position(attribute)] for row in relation.tuples
            }
            domain = values if domain is None else domain & values
        assert domain is not None  # every attribute is in some relation
        domains.append(domain)

    checks = []
    for relation in query.relations.values():
        cols = tuple(attributes.index(a) for a in relation.attributes)
        checks.append((cols, relation.tuples))

    rows = []
    for candidate in itertools.product(*[sorted(d, key=repr) for d in domains]):
        if all(
            tuple(candidate[i] for i in cols) in members
            for cols, members in checks
        ):
            rows.append(candidate)
    return Relation(name, attributes, rows)
