"""Baselines: the algorithms the paper's lower bounds quantify over."""

from repro.baselines.hash_join import ChainStatistics, chain_hash_join, hash_join
from repro.baselines.join_project import (
    JoinProjectStatistics,
    agm_join_project,
)
from repro.baselines.naive import naive_join
from repro.baselines.plans import (
    PlanNode,
    best_binary_plan,
    enumerate_plans,
    execute_plan,
    greedy_plan,
    join_plan,
    leaf,
    left_deep_plan,
)
from repro.baselines.sort_merge import chain_sort_merge, sort_merge_join
from repro.baselines.yannakakis import (
    JoinTree,
    gyo_reduction,
    is_acyclic,
    yannakakis_join,
)

__all__ = [
    "JoinTree",
    "gyo_reduction",
    "is_acyclic",
    "yannakakis_join",
    "ChainStatistics",
    "JoinProjectStatistics",
    "PlanNode",
    "agm_join_project",
    "best_binary_plan",
    "chain_hash_join",
    "chain_sort_merge",
    "enumerate_plans",
    "execute_plan",
    "greedy_plan",
    "hash_join",
    "join_plan",
    "leaf",
    "left_deep_plan",
    "naive_join",
    "sort_merge_join",
]
