"""Acyclic queries: GYO reduction and Yannakakis' algorithm.

The paper's related work notes that "in the special case when the join
graph is acyclic, there are several known results which achieve (near)
optimal run time with respect to the output size" [29, 35].  The classic
such result is Yannakakis' algorithm: for an *alpha-acyclic* full query,
a full-reducer semijoin program followed by joins along a join tree runs
in ``O(input + output)``.

This module provides that comparison point:

* :func:`gyo_reduction` — the Graham/Yu-Ozsoyoglu ear-removal test, which
  both decides alpha-acyclicity and produces a join tree;
* :func:`is_acyclic` — the boolean shortcut;
* :func:`yannakakis_join` — the full algorithm (semijoin sweeps + joins).

Cyclic queries (the triangle, LW instances, cycles — everything the
worst-case optimal algorithms exist for) are rejected: that boundary is
exactly the paper's motivation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.query import JoinQuery
from repro.errors import QueryError
from repro.hypergraph.hypergraph import Hypergraph
from repro.relations.relation import Relation


@dataclass
class JoinTree:
    """A join tree over edge ids: ``parent[e]`` is e's neighbor toward the
    root (absent for the root itself).

    The defining property (guaranteed by GYO): for every edge, its shared
    attributes with the rest of its subtree all occur in its parent.
    """

    root: str
    parent: dict[str, str] = field(default_factory=dict)

    def children(self) -> dict[str, list[str]]:
        """Child lists per node (derived from the parent map)."""
        out: dict[str, list[str]] = {self.root: []}
        for child in self.parent:
            out.setdefault(child, [])
        for child, parent in self.parent.items():
            out.setdefault(parent, []).append(child)
        return out

    def bottom_up(self) -> list[str]:
        """Edge ids ordered leaves-first (every node after its children)."""
        children = self.children()
        order: list[str] = []
        stack = [(self.root, False)]
        while stack:
            node, done = stack.pop()
            if done:
                order.append(node)
                continue
            stack.append((node, True))
            for child in children.get(node, ()):
                stack.append((child, False))
        return order


def gyo_reduction(hypergraph: Hypergraph) -> JoinTree | None:
    """GYO ear removal; returns a join tree, or ``None`` when cyclic.

    An edge ``e`` is an *ear* when some other edge ``w`` contains every
    attribute ``e`` shares with the rest of the hypergraph; removing ears
    until one edge remains succeeds exactly for alpha-acyclic hypergraphs.
    """
    remaining: dict[str, frozenset[str]] = dict(hypergraph.edges)
    if not remaining:
        return None
    parent: dict[str, str] = {}
    while len(remaining) > 1:
        ear = None
        witness = None
        for eid, members in remaining.items():
            exclusive = members
            shared: set[str] = set()
            for other_id, other in remaining.items():
                if other_id != eid:
                    shared |= members & other
            for other_id, other in remaining.items():
                if other_id == eid:
                    continue
                if shared <= other:
                    ear, witness = eid, other_id
                    break
            if ear is not None:
                break
        if ear is None:
            return None  # no ear: cyclic
        parent[ear] = witness  # type: ignore[assignment]
        del remaining[ear]
    (root,) = remaining
    return JoinTree(root=root, parent=parent)


def is_acyclic(hypergraph: Hypergraph) -> bool:
    """True when the query hypergraph is alpha-acyclic."""
    return gyo_reduction(hypergraph) is not None


def yannakakis_join(query: JoinQuery, name: str = "J") -> Relation:
    """Yannakakis' algorithm for full acyclic queries.

    Three passes over the join tree:

    1. bottom-up semijoin: each relation filters its parent
       (``parent := parent semijoin child`` after the child is reduced);
    2. top-down semijoin: each relation is filtered by its (now reduced)
       parent — after this the instance is *globally consistent*;
    3. bottom-up join: materialize, guaranteed output-monotone (every
       intermediate projects into the final output).

    Raises :class:`~repro.errors.QueryError` on cyclic queries.
    """
    tree = gyo_reduction(query.hypergraph)
    if tree is None:
        raise QueryError(
            "Yannakakis' algorithm requires an alpha-acyclic query; this "
            "one is cyclic (use a worst-case optimal algorithm instead)"
        )
    reduced: dict[str, Relation] = {
        eid: query.relation(eid) for eid in query.edge_ids
    }
    order = tree.bottom_up()
    # Pass 1: leaves-to-root semijoins.
    for eid in order:
        parent = tree.parent.get(eid)
        if parent is not None:
            reduced[parent] = reduced[parent].semijoin(reduced[eid])
    # Pass 2: root-to-leaves semijoins.
    for eid in reversed(order):
        parent = tree.parent.get(eid)
        if parent is not None:
            reduced[eid] = reduced[eid].semijoin(reduced[parent])
    # Pass 3: join bottom-up along the tree.
    results: dict[str, Relation] = {}
    children = tree.children()
    for eid in order:
        current = reduced[eid]
        for child in children.get(eid, ()):
            current = current.natural_join(results[child])
        results[eid] = current
    return (
        results[tree.root].reorder(query.attributes).with_name(name)
    )
