"""`StatsProvider`: compute, cache, and serve planner statistics.

One object sits between the planner and the statistics machinery:

* :class:`StatsConfig` — the knobs (sample size, seed, top-k, the
  heavy-mass threshold adaptive decisions trigger on).  Frozen and
  hashable, so a :class:`~repro.relations.database.Database` can keep
  one provider per distinct configuration.
* :class:`StatsProvider` — serves :class:`~repro.stats.profiles.
  RelationProfile` objects, process-stable samples, projection sets, and
  sampled conditional selectivities, caching each behind **relation
  identity**:

  - For relations catalogued in a ``Database`` (the provider checks
    ``database[name] is relation``), payloads live in the database's
    stats cache and are invalidated together with the index cache when
    the relation is replaced or dropped — repeated ``plan_join`` calls
    over the same catalog never rescan.
  - Ad-hoc relations cache locally, keyed by ``id`` with a strong
    reference held, which is sound because relations are immutable.

* :class:`PlanStatistics` — the frozen record a
  :class:`~repro.engine.planner.JoinPlan` carries so ``explain`` can
  show *which numbers justified each decision*, not just the decisions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.relations.relation import Relation, Row
from repro.stats.profiles import (
    DEFAULT_TOP_K,
    RelationProfile,
    profile_relation,
)
from repro.stats.sampling import (
    conditional_selectivity,
    projection_values,
    sample_rows,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.core.query import JoinQuery
    from repro.relations.database import Database

__all__ = [
    "PlanStatistics",
    "StatsConfig",
    "StatsProvider",
    "default_provider",
]

#: Entry cap for a provider's ad-hoc (non-database) cache.  Payloads
#: include O(N) projection sets and hold strong relation references, so
#: the cache must not grow with process lifetime; eviction is FIFO —
#: recomputation is always safe.
LOCAL_CACHE_BUDGET = 512


@dataclass(frozen=True)
class StatsConfig:
    """Configuration for a :class:`StatsProvider` (frozen, hashable)."""

    #: Rows probed per sampled-selectivity estimate.  ``0`` disables
    #: sampling entirely: the planner falls back to the min-distinct
    #: heuristic and no projection sets are built.
    sample_size: int = 128
    #: Seed for the process-stable sampler.  Identical seeds (and data)
    #: give identical samples — and identical plans — across processes.
    seed: int = 0
    #: Length of each attribute's most-frequent-values table.
    top_k: int = DEFAULT_TOP_K
    #: Heavy-hitter mass at or above which adaptive decisions trigger
    #: (per-relation trie backends, extra heavy-value shards).
    heavy_mass_threshold: float = 0.25

    @property
    def sampling(self) -> bool:
        """True when sampled selectivities are enabled."""
        return self.sample_size > 0


@dataclass(frozen=True)
class PlanStatistics:
    """The statistics that justified a plan's decisions.

    Attached to :class:`~repro.engine.planner.JoinPlan` by the planner
    and rendered by ``describe(show_stats=True)`` / the CLI's
    ``explain --stats``.  Every field is plain data, so plans pickle and
    compare across process boundaries.
    """

    #: ``"sampled"`` when sampled selectivities drove the order,
    #: ``"heuristic"`` when the min-distinct fallback ran.
    source: str
    #: Sampler seed (meaningful only for ``"sampled"``).
    seed: int
    #: Rows probed per selectivity estimate (0 = sampling disabled).
    sample_size: int
    #: ``(attribute, min distinct count)`` — the smallest-domain scores.
    distinct_counts: tuple[tuple[str, int], ...] = ()
    #: ``(source relation, target relation, P(match))`` for every
    #: sampled selectivity the order descent consulted.
    selectivities: tuple[tuple[str, str, float], ...] = ()
    #: ``(relation, attribute, heavy value count, heavy mass)`` for every
    #: attribute whose profile crossed the heavy threshold.
    heavy_hitters: tuple[tuple[str, str, int, float], ...] = ()
    #: ``(attribute, estimated partial-result size)`` per order position
    #: (the greedy descent's objective, AGM-clamped).
    order_estimates: tuple[tuple[str, float], ...] = ()
    #: Attribute the shard planner inspected (``None`` when sharding was
    #: not requested).
    shard_attribute: str | None = None
    #: Heavy mass observed on the shard attribute.
    shard_heavy_mass: float | None = None
    #: CPUs visible when the shard count was chosen.
    shard_cpus: int | None = None

    def describe(self) -> str:
        """Human-readable rendering (the ``explain --stats`` block)."""
        lines = [
            "statistics:",
            f"  source: {self.source}"
            + (
                f" (seed {self.seed}, sample {self.sample_size})"
                if self.source == "sampled"
                else ""
            ),
        ]
        if self.distinct_counts:
            lines.append(
                "  distinct counts: "
                + ", ".join(
                    f"{attr}={count}" for attr, count in self.distinct_counts
                )
            )
        if self.order_estimates:
            lines.append(
                "  order estimates: "
                + ", ".join(
                    f"{attr}~{est:.3g}" for attr, est in self.order_estimates
                )
            )
        for src, dst, sel in self.selectivities:
            lines.append(
                f"  selectivity: P(match in {dst} | tuple of {src}) = "
                f"{sel:.3f}"
            )
        for rel, attr, count, mass in self.heavy_hitters:
            lines.append(
                f"  heavy hitters: {rel}.{attr} has {count} heavy "
                f"value(s) carrying {mass:.0%} of tuples"
            )
        if self.shard_attribute is not None:
            lines.append(
                f"  sharding: attribute {self.shard_attribute}, heavy "
                f"mass {self.shard_heavy_mass:.0%} "
                f"across {self.shard_cpus} CPU(s)"
            )
        return "\n".join(lines)


class StatsProvider:
    """Compute-once statistics for the planner.

    Parameters
    ----------
    database:
        Optional catalog.  Statistics for relations catalogued there (by
        identity — ``database[name] is relation``) are cached *in the
        database* and invalidated alongside its index cache on
        ``add(replace=True)`` / ``remove``.
    config:
        Sampling and skew knobs; defaults to :class:`StatsConfig()`.
    """

    def __init__(
        self,
        database: "Database | None" = None,
        config: StatsConfig | None = None,
    ) -> None:
        self.database = database
        self.config = config if config is not None else StatsConfig()
        # Ad-hoc (non-catalogued) relation cache: payload key -> (ref,
        # payload).  The strong relation reference keeps id() valid and
        # the payload honest — relations are immutable, so entries never
        # go stale.  Bounded by LOCAL_CACHE_BUDGET (FIFO eviction) so a
        # long-lived provider cannot accumulate relations forever.
        self._local: dict[tuple, tuple[object, object]] = {}

    def _local_put(self, key: tuple, ref: object, payload: object) -> None:
        while len(self._local) >= LOCAL_CACHE_BUDGET:
            self._local.pop(next(iter(self._local)))
        self._local[key] = (ref, payload)

    # -- cache plumbing -----------------------------------------------------

    def _cached(self, relation: Relation, key: tuple, compute):
        """Fetch-or-compute ``key`` for ``relation`` (identity-checked)."""
        db = self.database
        if db is not None and db.is_catalogued(relation):
            payload = db.stats_cache_get(relation.name, key)
            if payload is None:
                payload = compute()
                db.stats_cache_put(relation.name, key, payload)
            return payload
        local_key = (id(relation),) + key
        entry = self._local.get(local_key)
        if entry is not None and entry[0] is relation:
            return entry[1]
        payload = compute()
        self._local_put(local_key, relation, payload)
        return payload

    # -- statistics ---------------------------------------------------------

    def profile(self, relation: Relation) -> RelationProfile:
        """The relation's :class:`RelationProfile` (cached)."""
        return self._cached(
            relation,
            ("profile", self.config.top_k),
            lambda: profile_relation(relation, self.config.top_k),
        )

    def sample(self, relation: Relation) -> tuple[Row, ...]:
        """A process-stable row sample of the relation (cached)."""
        return self._cached(
            relation,
            ("sample", self.config.sample_size, self.config.seed),
            lambda: sample_rows(
                relation, self.config.sample_size, self.config.seed
            ),
        )

    def projection(
        self, relation: Relation, attributes: tuple[str, ...]
    ) -> frozenset[Row]:
        """The relation's projection onto ``attributes`` (cached)."""
        return self._cached(
            relation,
            ("projection", attributes),
            lambda: projection_values(relation, attributes),
        )

    def selectivity(self, source: Relation, target: Relation) -> float:
        """Sampled ``P(match in target | tuple of source)``.

        The shared attributes are taken from the two schemas (in
        ``source``'s order); schemas must overlap.  Each call probes the
        cached sample of ``source`` against the cached projection of
        ``target``, so repeated queries pay O(sample) only once.
        """
        shared = tuple(
            a for a in source.attributes if a in target.attribute_set
        )
        if not shared:
            raise ValueError(
                f"relations {source.name!r} and {target.name!r} share no "
                "attributes"
            )
        key = ("selectivity", target.name, shared,
               self.config.sample_size, self.config.seed)

        def compute() -> float:
            return conditional_selectivity(
                source,
                shared,
                self.sample(source),
                self.projection(target, shared),
            )

        # The database cache is only sound when BOTH relations are the
        # catalogued objects: the key names the target, and the database
        # invalidates any entry whose key mentions a replaced/dropped
        # relation, so neither side can go stale.
        db = self.database
        if (
            db is not None
            and db.is_catalogued(source)
            and db.is_catalogued(target)
        ):
            payload = db.stats_cache_get(source.name, key)
            if payload is None:
                payload = compute()
                db.stats_cache_put(source.name, key, payload)
            return payload
        local_key = (id(source), id(target)) + key
        entry = self._local.get(local_key)
        if (
            entry is not None
            and entry[0][0] is source
            and entry[0][1] is target
        ):
            return entry[1]
        payload = compute()
        self._local_put(local_key, (source, target), payload)
        return payload

    def attribute_scores(self, query: "JoinQuery") -> dict[str, int]:
        """Per-attribute min-distinct scores (the classical heuristic).

        The score of attribute ``A`` is ``min_e |pi_A(R_e)|`` over the
        relations containing ``A`` — served from cached profiles, so
        repeated plans over a catalog never rescan the data.
        """
        scores: dict[str, int] = {}
        for relation in query.relations.values():
            profile = self.profile(relation)
            for attr_profile in profile.attributes:
                name = attr_profile.attribute
                count = attr_profile.distinct
                if name not in scores or count < scores[name]:
                    scores[name] = count
        return scores

    def heavy_hitters(
        self, query: "JoinQuery"
    ) -> tuple[tuple[str, str, int, float], ...]:
        """Every ``(relation, attribute, heavy count, heavy mass)`` in
        the query whose heavy mass crosses the configured threshold,
        heaviest mass first (deterministic order)."""
        found = []
        for eid, relation in query.relations.items():
            for attr_profile in self.profile(relation).attributes:
                if attr_profile.heavy_mass >= self.config.heavy_mass_threshold:
                    found.append(
                        (
                            eid,
                            attr_profile.attribute,
                            attr_profile.heavy_count,
                            attr_profile.heavy_mass,
                        )
                    )
        found.sort(key=lambda item: (-item[3], item[0], item[1]))
        return tuple(found)


#: The provider ``plan_join`` falls back to when the caller supplies
#: neither a ``database`` nor a ``stats`` provider.  Shared on purpose:
#: relations are immutable and the cache is identity-keyed, so repeated
#: ad-hoc plans over the same relation objects (``join([r, s, t])`` in a
#: loop) reuse profiles, samples, and selectivities instead of
#: recomputing them per call; the FIFO-bounded local cache caps memory.
_DEFAULT_PROVIDER = StatsProvider()


def default_provider() -> StatsProvider:
    """The process-wide default :class:`StatsProvider` (default config)."""
    return _DEFAULT_PROVIDER
