"""`StatsProvider`: compute, cache, and serve planner statistics.

One object sits between the planner and the statistics machinery:

* :class:`StatsConfig` — the knobs (sample size, seed, top-k, the
  heavy-mass threshold adaptive decisions trigger on).  Frozen and
  hashable, so a :class:`~repro.relations.database.Database` can keep
  one provider per distinct configuration.
* :class:`StatsProvider` — serves :class:`~repro.stats.profiles.
  RelationProfile` objects, process-stable samples, projection sets, and
  sampled conditional selectivities, caching each behind **relation
  identity**:

  - For relations catalogued in a ``Database`` (the provider checks
    ``database[name] is relation``), payloads live in the database's
    stats cache and are invalidated together with the index cache when
    the relation is replaced or dropped — repeated ``plan_join`` calls
    over the same catalog never rescan.
  - Ad-hoc relations cache locally, keyed by ``id`` with a strong
    reference held, which is sound because relations are immutable.

* :class:`PlanStatistics` — the frozen record a
  :class:`~repro.engine.planner.JoinPlan` carries so ``explain`` can
  show *which numbers justified each decision*, not just the decisions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.relations.relation import Relation, Row
from repro.stats.profiles import (
    DEFAULT_TOP_K,
    RelationProfile,
    profile_relation,
)
from repro.stats.sampling import (
    conditional_selectivity,
    projection_values,
    sample_rows,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.core.query import JoinQuery
    from repro.relations.database import Database

__all__ = [
    "PlanStatistics",
    "StatsConfig",
    "StatsProvider",
    "default_provider",
    "resolve_provider",
]

#: Entry cap for a provider's ad-hoc (non-database) cache.  Payloads
#: include O(N) projection sets and hold strong relation references, so
#: the cache must not grow with process lifetime; eviction is FIFO —
#: recomputation is always safe.
LOCAL_CACHE_BUDGET = 512


@dataclass(frozen=True)
class StatsConfig:
    """Configuration for a :class:`StatsProvider` (frozen, hashable)."""

    #: Rows probed per sampled-selectivity estimate.  ``0`` disables
    #: sampling entirely: the planner falls back to the min-distinct
    #: heuristic and no projection sets are built.
    sample_size: int = 128
    #: Seed for the process-stable sampler.  Identical seeds (and data)
    #: give identical samples — and identical plans — across processes.
    seed: int = 0
    #: Length of each attribute's most-frequent-values table.
    top_k: int = DEFAULT_TOP_K
    #: Heavy-hitter mass at or above which adaptive decisions trigger
    #: (per-relation trie backends, extra heavy-value shards).
    heavy_mass_threshold: float = 0.25

    @property
    def sampling(self) -> bool:
        """True when sampled selectivities are enabled."""
        return self.sample_size > 0


@dataclass(frozen=True)
class PlanStatistics:
    """The statistics that justified a plan's decisions.

    Attached to :class:`~repro.engine.planner.JoinPlan` by the planner
    and rendered by ``describe(show_stats=True)`` / the CLI's
    ``explain --stats``.  Every field is plain data, so plans pickle and
    compare across process boundaries.
    """

    #: ``"sampled"`` when sampled selectivities drove the order,
    #: ``"heuristic"`` when the min-distinct fallback ran.
    source: str
    #: Sampler seed (meaningful only for ``"sampled"``).
    seed: int
    #: Rows probed per selectivity estimate (0 = sampling disabled).
    sample_size: int
    #: ``(attribute, min distinct count)`` — the smallest-domain scores.
    distinct_counts: tuple[tuple[str, int], ...] = ()
    #: ``(source relation, target relation, P(match))`` for every
    #: sampled selectivity the order descent consulted.
    selectivities: tuple[tuple[str, str, float], ...] = ()
    #: ``(relation, attribute, heavy value count, heavy mass)`` for every
    #: attribute whose profile crossed the heavy threshold.
    heavy_hitters: tuple[tuple[str, str, int, float], ...] = ()
    #: ``(attribute, estimated partial-result size)`` per order position
    #: (the greedy descent's objective, AGM-clamped).
    order_estimates: tuple[tuple[str, float], ...] = ()
    #: For ``"feedback"`` plans: what the non-feedback (sampled or
    #: heuristic) formula would have estimated per chosen attribute —
    #: the "sampled" column of the observed-vs-sampled comparison.
    baseline_estimates: tuple[tuple[str, float], ...] = ()
    #: For ``"feedback"`` plans: the recorded execution's per-level
    #: counters as ``(attribute, position, partials, candidates,
    #: matches)``, in recorded order.
    observed_levels: tuple[tuple[str, int, int, int, int], ...] = ()
    #: Attribute the shard planner inspected (``None`` when sharding was
    #: not requested).
    shard_attribute: str | None = None
    #: Heavy mass observed on the shard attribute.
    shard_heavy_mass: float | None = None
    #: CPUs visible when the shard count was chosen.
    shard_cpus: int | None = None

    def describe(self) -> str:
        """Human-readable rendering (the ``explain --stats`` block)."""
        lines = [
            "statistics:",
            f"  source: {self.source}"
            + (
                f" (seed {self.seed}, sample {self.sample_size})"
                if self.source == "sampled"
                else ""
            ),
        ]
        if self.distinct_counts:
            lines.append(
                "  distinct counts: "
                + ", ".join(
                    f"{attr}={count}" for attr, count in self.distinct_counts
                )
            )
        if self.order_estimates:
            lines.append(
                "  order estimates: "
                + ", ".join(
                    f"{attr}~{est:.3g}" for attr, est in self.order_estimates
                )
            )
        if self.observed_levels:
            baseline = dict(self.baseline_estimates)
            if baseline:
                lines.append("  observed vs sampled (per chosen attribute):")
                for attr, estimate in self.order_estimates:
                    if attr not in baseline:
                        continue
                    lines.append(
                        f"    {attr}: estimate without feedback "
                        f"~{baseline[attr]:.3g}, "
                        f"with feedback ~{estimate:.3g}"
                    )
            lines.append("  observed levels (last recorded run):")
            for attr, position, partials, candidates, matches in (
                self.observed_levels
            ):
                selectivity = matches / candidates if candidates else 1.0
                fanout = matches / partials if partials else 0.0
                lines.append(
                    f"    {attr} @ level {position}: partials={partials} "
                    f"candidates={candidates} matches={matches} "
                    f"selectivity={selectivity:.3f} fan-out={fanout:.3g}"
                )
        for src, dst, sel in self.selectivities:
            lines.append(
                f"  selectivity: P(match in {dst} | tuple of {src}) = "
                f"{sel:.3f}"
            )
        for rel, attr, count, mass in self.heavy_hitters:
            lines.append(
                f"  heavy hitters: {rel}.{attr} has {count} heavy "
                f"value(s) carrying {mass:.0%} of tuples"
            )
        if self.shard_attribute is not None:
            lines.append(
                f"  sharding: attribute {self.shard_attribute}, heavy "
                f"mass {self.shard_heavy_mass:.0%} "
                f"across {self.shard_cpus} CPU(s)"
            )
        return "\n".join(lines)


class StatsProvider:
    """Compute-once statistics for the planner.

    Parameters
    ----------
    database:
        Optional catalog.  Statistics for relations catalogued there (by
        identity — ``database[name] is relation``) are cached *in the
        database* and invalidated alongside its index cache on
        ``add(replace=True)`` / ``remove``.
    config:
        Sampling and skew knobs; defaults to :class:`StatsConfig()`.
    """

    def __init__(
        self,
        database: "Database | None" = None,
        config: StatsConfig | None = None,
    ) -> None:
        self.database = database
        self.config = config if config is not None else StatsConfig()
        # Ad-hoc (non-catalogued) relation cache: payload key -> (ref,
        # payload).  The strong relation reference keeps id() valid and
        # the payload honest — relations are immutable, so entries never
        # go stale.  Bounded by LOCAL_CACHE_BUDGET (FIFO eviction) so a
        # long-lived provider cannot accumulate relations forever.
        self._local: dict[tuple, tuple[object, object]] = {}

    def _local_put(self, key: tuple, ref: object, payload: object) -> None:
        while len(self._local) >= LOCAL_CACHE_BUDGET:
            self._local.pop(next(iter(self._local)))
        self._local[key] = (ref, payload)

    # -- cache plumbing -----------------------------------------------------

    def _cached(self, relation: Relation, key: tuple, compute):
        """Fetch-or-compute ``key`` for ``relation`` (identity-checked)."""
        db = self.database
        if db is not None and db.is_catalogued(relation):
            payload = db.stats_cache_get(relation.name, key)
            if payload is None:
                payload = compute()
                db.stats_cache_put(relation.name, key, payload)
            return payload
        local_key = (id(relation),) + key
        entry = self._local.get(local_key)
        if entry is not None and entry[0] is relation:
            return entry[1]
        payload = compute()
        self._local_put(local_key, relation, payload)
        return payload

    # -- statistics ---------------------------------------------------------

    def profile(self, relation: Relation) -> RelationProfile:
        """The relation's :class:`RelationProfile` (cached)."""
        return self._cached(
            relation,
            ("profile", self.config.top_k),
            lambda: profile_relation(relation, self.config.top_k),
        )

    def sample(self, relation: Relation) -> tuple[Row, ...]:
        """A process-stable row sample of the relation (cached)."""
        return self._cached(
            relation,
            ("sample", self.config.sample_size, self.config.seed),
            lambda: sample_rows(
                relation, self.config.sample_size, self.config.seed
            ),
        )

    def projection(
        self, relation: Relation, attributes: tuple[str, ...]
    ) -> frozenset[Row]:
        """The relation's projection onto ``attributes`` (cached)."""
        return self._cached(
            relation,
            ("projection", attributes),
            lambda: projection_values(relation, attributes),
        )

    def selectivity(self, source: Relation, target: Relation) -> float:
        """Sampled ``P(match in target | tuple of source)``.

        The shared attributes are taken from the two schemas (in
        ``source``'s order); schemas must overlap.  Each call probes the
        cached sample of ``source`` against the cached projection of
        ``target``, so repeated queries pay O(sample) only once.
        """
        shared = tuple(
            a for a in source.attributes if a in target.attribute_set
        )
        if not shared:
            raise ValueError(
                f"relations {source.name!r} and {target.name!r} share no "
                "attributes"
            )
        key = ("selectivity", target.name, shared,
               self.config.sample_size, self.config.seed)

        def compute() -> float:
            return conditional_selectivity(
                source,
                shared,
                self.sample(source),
                self.projection(target, shared),
            )

        # The database cache is only sound when BOTH relations are the
        # catalogued objects: the key names the target, and the database
        # invalidates any entry whose key mentions a replaced/dropped
        # relation, so neither side can go stale.
        db = self.database
        if (
            db is not None
            and db.is_catalogued(source)
            and db.is_catalogued(target)
        ):
            payload = db.stats_cache_get(source.name, key)
            if payload is None:
                payload = compute()
                db.stats_cache_put(source.name, key, payload)
            return payload
        local_key = (id(source), id(target)) + key
        entry = self._local.get(local_key)
        if (
            entry is not None
            and entry[0][0] is source
            and entry[0][1] is target
        ):
            return entry[1]
        payload = compute()
        self._local_put(local_key, (source, target), payload)
        return payload

    def attribute_scores(self, query: "JoinQuery") -> dict[str, int]:
        """Per-attribute min-distinct scores (the classical heuristic).

        The score of attribute ``A`` is ``min_e |pi_A(R_e)|`` over the
        relations containing ``A`` — served from cached profiles, so
        repeated plans over a catalog never rescan the data.
        """
        scores: dict[str, int] = {}
        for relation in query.relations.values():
            profile = self.profile(relation)
            for attr_profile in profile.attributes:
                name = attr_profile.attribute
                count = attr_profile.distinct
                if name not in scores or count < scores[name]:
                    scores[name] = count
        return scores

    # -- runtime feedback ---------------------------------------------------

    # Observations recorded during execution (per-level telemetry,
    # per-shard wall times) are cached under the same two regimes as
    # computed statistics — the database stats cache when every relation
    # of the query is the catalogued object (so replacing or dropping
    # ANY of them invalidates the observation: each relation's name is a
    # direct element of the payload key, which is exactly what
    # ``Database._drop_cached`` matches on), the provider-local cache
    # otherwise.  The local entries are keyed by relation *value*
    # (name, schema, size — verified by full equality on lookup, with an
    # identity fast path) rather than ``id``: feedback's whole point is
    # that a later, separately-loaded run of the same query benefits
    # from an earlier run's observations, and reloaded relations are
    # equal-but-not-identical objects.

    def _feedback_relations(self, query: "JoinQuery") -> tuple:
        return tuple(
            query.relations[name] for name in sorted(query.relations)
        )

    def _feedback_get(self, query: "JoinQuery", kind: str, scope: tuple):
        relations = self._feedback_relations(query)
        names = tuple(rel.name for rel in relations)
        db = self.database
        if db is not None and all(db.is_catalogued(rel) for rel in relations):
            # The names sit as direct key elements (what the database's
            # invalidation matches on); the scope tuple rides along so
            # e.g. a where_in-filtered run and the unfiltered run of
            # the same relations never share observations.
            return db.stats_cache_get(names[0], (kind,) + names + (scope,))
        entry = self._local.get(
            (kind,) + self._feedback_signature(relations) + (scope,)
        )
        if entry is None:
            return None
        stored, payload = entry
        if all(a is b for a, b in zip(stored, relations)) or all(
            a == b for a, b in zip(stored, relations)
        ):
            return payload
        return None

    def _feedback_put(
        self, query: "JoinQuery", kind: str, scope: tuple, payload: object
    ) -> None:
        relations = self._feedback_relations(query)
        names = tuple(rel.name for rel in relations)
        db = self.database
        if db is not None and all(db.is_catalogued(rel) for rel in relations):
            db.stats_cache_put(
                names[0], (kind,) + names + (scope,), payload
            )
            return
        self._local_put(
            (kind,) + self._feedback_signature(relations) + (scope,),
            relations,
            payload,
        )

    @staticmethod
    def _feedback_signature(relations: tuple) -> tuple:
        return tuple(
            (rel.name, rel.attributes, len(rel)) for rel in relations
        )

    def record_levels(
        self, query: "JoinQuery", telemetry, scope: tuple = ()
    ) -> None:
        """Ingest one execution's per-level telemetry for ``query``.

        Incomplete runs (the consumer abandoned the stream) and runs
        without level counters are ignored — partial counts would feed
        the planner undercounted cardinalities.  Observations are kept
        *per executed attribute order* (the latest run of each order
        wins), so the planner can compare the measured work of every
        order it has tried instead of trusting one run's extrapolation.

        ``scope`` distinguishes executions of the same relations whose
        cardinalities differ anyway — the query layer passes the
        residual-filter signature, so a ``where_in``-filtered run never
        feeds the unfiltered query's plans (or vice versa).
        """
        if not telemetry.complete or not telemetry.levels:
            return
        history = dict(
            self._feedback_get(query, "feedback_levels", scope) or {}
        )
        history[telemetry.attribute_order] = telemetry
        self._feedback_put(query, "feedback_levels", scope, history)

    def observed_history(
        self, query: "JoinQuery", scope: tuple = ()
    ) -> dict:
        """``{attribute order: ExecutionTelemetry}`` — the latest
        recorded run of every order this query has executed under (for
        this filter ``scope``), or ``{}``."""
        return dict(
            self._feedback_get(query, "feedback_levels", scope) or {}
        )

    def observed_telemetry(self, query: "JoinQuery", scope: tuple = ()):
        """The *best* recorded run of ``query`` — the one with the
        least measured search work (total candidate enumerations; ties
        break on the order tuple, deterministically) — or ``None``."""
        history = self.observed_history(query, scope)
        if not history:
            return None
        return min(
            history.values(),
            key=lambda t: (t.total_candidates, t.attribute_order),
        )

    def observed_levels(
        self, query: "JoinQuery", scope: tuple = ()
    ) -> dict:
        """``{attribute: ObservedLevel}`` from the best recorded run of
        ``query``, or ``{}`` when nothing (relevant) was recorded."""
        telemetry = self.observed_telemetry(query, scope)
        if telemetry is None:
            return {}
        return {level.attribute: level for level in telemetry.levels}

    def record_shards(
        self, query: "JoinQuery", observations, scope: tuple = ()
    ) -> None:
        """Merge per-shard wall-time observations for ``query``.

        Merged (not overwritten) by shard key: after a hot shard is
        split, later runs record its *sub*-shards while the parent's
        recorded heat keeps the split decision stable across runs.
        ``scope`` separates filtered from unfiltered executions, as in
        :meth:`record_levels`.
        """
        observations = tuple(observations)
        if not observations:
            return
        merged = dict(
            self._feedback_get(query, "feedback_shards", scope) or {}
        )
        for observation in observations:
            merged[observation.key] = observation
        self._feedback_put(query, "feedback_shards", scope, merged)

    def observed_shards(
        self, query: "JoinQuery", scope: tuple = ()
    ) -> dict:
        """``{ShardKey: ShardObservation}`` recorded for ``query`` (may
        span several runs and split depths), or ``{}``."""
        return dict(
            self._feedback_get(query, "feedback_shards", scope) or {}
        )

    def heavy_hitters(
        self, query: "JoinQuery"
    ) -> tuple[tuple[str, str, int, float], ...]:
        """Every ``(relation, attribute, heavy count, heavy mass)`` in
        the query whose heavy mass crosses the configured threshold,
        heaviest mass first (deterministic order)."""
        found = []
        for eid, relation in query.relations.items():
            for attr_profile in self.profile(relation).attributes:
                if attr_profile.heavy_mass >= self.config.heavy_mass_threshold:
                    found.append(
                        (
                            eid,
                            attr_profile.attribute,
                            attr_profile.heavy_count,
                            attr_profile.heavy_mass,
                        )
                    )
        found.sort(key=lambda item: (-item[3], item[0], item[1]))
        return tuple(found)


#: The provider ``plan_join`` falls back to when the caller supplies
#: neither a ``database`` nor a ``stats`` provider.  Shared on purpose:
#: relations are immutable and the cache is identity-keyed, so repeated
#: ad-hoc plans over the same relation objects (``join([r, s, t])`` in a
#: loop) reuse profiles, samples, and selectivities instead of
#: recomputing them per call; the FIFO-bounded local cache caps memory.
_DEFAULT_PROVIDER = StatsProvider()


def default_provider() -> StatsProvider:
    """The process-wide default :class:`StatsProvider` (default config)."""
    return _DEFAULT_PROVIDER


def resolve_provider(
    database: "Database | None" = None, stats: object | None = None
) -> StatsProvider:
    """The provider a ``(database, stats)`` pair denotes.

    The one resolution rule shared by the planner, the query layer's
    feedback recording, and the sharded driver — all three must agree,
    or observations recorded through one would be invisible to the
    others.  ``stats`` may be a provider (used as-is) or a bare
    :class:`StatsConfig` (wrapped — through the database's provider
    cache when one is given); otherwise the database's default provider,
    and finally the process-wide default.
    """
    if isinstance(stats, StatsConfig):
        if database is not None:
            return database.stats(stats)
        # One shared provider per config (like the database's provider
        # cache): a per-call provider would silently drop any feedback
        # observations recorded through it between runs.
        provider = _CONFIG_PROVIDERS.get(stats)
        if provider is None:
            if len(_CONFIG_PROVIDERS) >= 64:
                _CONFIG_PROVIDERS.pop(next(iter(_CONFIG_PROVIDERS)))
            provider = StatsProvider(config=stats)
            _CONFIG_PROVIDERS[stats] = provider
        return provider
    if stats is not None:
        return stats
    if database is not None:
        return database.stats()
    return _DEFAULT_PROVIDER


#: Process-wide providers for bare configs handed to
#: :func:`resolve_provider` without a database (FIFO-bounded).
_CONFIG_PROVIDERS: dict[StatsConfig, StatsProvider] = {}
