"""Statistics subsystem: profiles, sampling, and the planner's provider.

The planner's data-awareness lives here, behind one object:

>>> from repro import Database, Relation
>>> from repro.stats import StatsProvider
>>> db = Database([Relation("R", ("A", "B"), [(1, 1), (1, 2), (2, 1)])])
>>> provider = db.stats()
>>> provider.profile(db["R"]).attribute("A").distinct
2

See :mod:`repro.stats.profiles` (distinct counts, heavy/light skew
profiles), :mod:`repro.stats.sampling` (process-stable samples and
conditional selectivities), and :mod:`repro.stats.provider` (the caching
:class:`StatsProvider` and the :class:`PlanStatistics` record plans
carry).
"""

from repro.stats.profiles import (
    AttributeProfile,
    RelationProfile,
    heavy_threshold,
    profile_relation,
)
from repro.stats.provider import (
    PlanStatistics,
    StatsConfig,
    StatsProvider,
)
from repro.stats.sampling import (
    conditional_selectivity,
    projection_values,
    sample_rows,
    stable_rank,
)

__all__ = [
    "AttributeProfile",
    "PlanStatistics",
    "RelationProfile",
    "StatsConfig",
    "StatsProvider",
    "conditional_selectivity",
    "heavy_threshold",
    "profile_relation",
    "projection_values",
    "sample_rows",
    "stable_rank",
]
