"""Seeded, process-stable sampling and sampled conditional selectivities.

The planner's key question — *given a tuple of relation ``R``, how likely
is it to find a partner in relation ``S``?* — is answered here by
probing a small sample of ``R``'s tuples against the projection of ``S``
onto their shared attributes.  The estimate ``P(match | tuple of R)`` is
the **conditional selectivity** the greedy order descent multiplies into
its partial-result estimates; unlike the AGM bound it is data-dependent
(two relations with disjoint value ranges report ~0 even though their
sizes alone predict a huge join).

Determinism is load-bearing: identical seeds must give identical samples
— and therefore identical plans — across *processes*, not just runs.
Python's ``frozenset`` iteration order depends on value hashes, and
string hashing is randomized per process (``PYTHONHASHSEED``), so
neither ``random.sample`` over a set nor hash-order truncation is
reproducible.  Instead each row is ranked by a keyed BLAKE2b digest of
its ``repr`` (stable for the built-in value types relations hold), and
the sample is the ``k`` lowest-ranked rows: effectively a uniform random
sample, yet a pure function of ``(rows, seed)``.
"""

from __future__ import annotations

import hashlib
import heapq
from collections.abc import Iterable, Sequence

from repro.relations.relation import Relation, Row

__all__ = [
    "conditional_selectivity",
    "projection_values",
    "sample_rows",
    "stable_rank",
]


def stable_rank(row: Row, seed: int) -> int:
    """A process-stable pseudo-random rank for one row.

    Keyed BLAKE2b over ``repr(row)`` — deterministic for the built-in
    value types (ints, strings, floats, tuples) whatever
    ``PYTHONHASHSEED`` says, and effectively uniform over rows, so
    "the k lowest-ranked rows" is an unbiased sample.
    """
    digest = hashlib.blake2b(
        repr(row).encode("utf-8", "backslashreplace"),
        digest_size=8,
        key=seed.to_bytes(8, "big", signed=True),
    ).digest()
    return int.from_bytes(digest, "big")


def sample_rows(relation: Relation, k: int, seed: int) -> tuple[Row, ...]:
    """Up to ``k`` rows of ``relation``, a pure function of the seed.

    Rows are ranked by :func:`stable_rank` and the ``k`` smallest are
    returned in rank order (``O(N log k)`` via a bounded heap).  With
    ``k >= len(relation)`` every row is returned, still in rank order,
    so downstream consumers never depend on set iteration order.
    """
    if k <= 0:
        return ()
    ranked = heapq.nsmallest(
        k, relation.tuples, key=lambda row: stable_rank(row, seed)
    )
    return tuple(ranked)


def projection_values(
    relation: Relation, attributes: Sequence[str]
) -> frozenset[Row]:
    """``pi_attributes(relation)`` as a frozenset of value tuples."""
    idx = relation.positions(attributes)
    return frozenset(
        tuple(row[i] for i in idx) for row in relation.tuples
    )


def conditional_selectivity(
    source: Relation,
    shared: Sequence[str],
    sample: Iterable[Row],
    target_projection: frozenset[Row],
) -> float:
    """``P(match in target | tuple of source)``, estimated on a sample.

    ``sample`` holds rows of ``source`` (see :func:`sample_rows`);
    ``target_projection`` is the target relation's projection onto the
    ``shared`` attributes (see :func:`projection_values`).  Returns the
    fraction of sampled source rows whose shared-attribute values appear
    in the target — 1.0 means the target never prunes, values near 0
    mean binding the target's attributes first would eliminate almost
    every source tuple.

    An empty sample (empty source relation) reports 0.0: a tuple drawn
    from an empty relation matches nothing because there is no tuple.
    """
    idx = source.positions(shared)
    total = 0
    matches = 0
    for row in sample:
        total += 1
        if tuple(row[i] for i in idx) in target_projection:
            matches += 1
    if total == 0:
        return 0.0
    return matches / total
