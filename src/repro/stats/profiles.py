"""Per-relation and per-attribute statistics: distinct counts and skew.

The AGM machinery consumes only relation *sizes* (the ``N_e`` vector);
everything the planner wants beyond that — how many distinct values an
attribute takes, whether its frequency distribution is skewed, which
values are the heavy hitters — lives here.  "Skew Strikes Back" (Ngo,
Ré, Rudra 2013) makes the case that the single most useful statistic for
a practical WCOJ system is the **heavy/light split**: a value is *heavy*
when its frequency reaches the square root of the relation's size, the
threshold at which per-value work can dominate a shard or an
intersection.  :class:`AttributeProfile` records exactly that split
(heavy value count, the output mass they carry, the top-k frequency
table) alongside the distinct count the classical smallest-domain
heuristic uses.

Profiles are computed in **one linear scan** per relation
(:func:`profile_relation`) and are deterministic: top-k tables sort by
``(-count, repr(value))`` so ties never depend on hash-set iteration
order, which varies across processes for string values.
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass

from repro.relations.relation import Relation, Value

__all__ = [
    "AttributeProfile",
    "RelationProfile",
    "heavy_threshold",
    "profile_relation",
]

#: Default length of each attribute's most-frequent-values table.
DEFAULT_TOP_K = 8


def heavy_threshold(total: int) -> int:
    """The heavy/light frequency cut for a relation of ``total`` tuples.

    A value is *heavy* when its frequency is at least ``sqrt(total)`` —
    the "Skew Strikes Back" split: below it, a value's residual query is
    cheap; at or above it, the value deserves dedicated treatment (its
    own shard, an O(1)-probe index).  Clamped to at least 2 so singleton
    values in tiny relations are never "heavy".
    """
    return max(2, math.isqrt(max(total, 0)))


@dataclass(frozen=True)
class AttributeProfile:
    """Frequency statistics for one attribute of one relation."""

    #: Attribute name.
    attribute: str
    #: Number of distinct values.
    distinct: int
    #: Number of tuples in the relation (shared by all its attributes).
    total: int
    #: Most frequent values, ``(value, count)``, highest count first;
    #: ties break on ``repr(value)`` so the table is deterministic.
    top: tuple[tuple[Value, int], ...]
    #: Frequency at or above which a value counts as heavy.
    heavy_threshold: int
    #: Number of heavy values.
    heavy_count: int
    #: Fraction of tuples carrying a heavy value (0.0 when none).
    heavy_mass: float
    #: Smallest / largest value when **every** value is a plain integer
    #: (bools count as their 0/1 selves); ``None`` for non-integer or
    #: empty columns.  Together with ``distinct`` these give the value
    #: span — what the planner's density rule and the compact backend's
    #: radix fast path both reason about.
    int_min: int | None = None
    int_max: int | None = None

    @property
    def int_span(self) -> int:
        """``max - min + 1`` for all-integer columns, else 0."""
        if self.int_min is None or self.int_max is None:
            return 0
        return self.int_max - self.int_min + 1

    @property
    def density(self) -> float:
        """``distinct / span`` for all-integer columns (0.0 otherwise).

        1.0 means the distinct values are exactly a consecutive integer
        interval — the compact backend's radix lookups apply everywhere;
        values near 1.0 mean most runs are dense or near-dense.
        """
        span = self.int_span
        if span <= 0:
            return 0.0
        return self.distinct / span

    @property
    def max_frequency(self) -> int:
        """Frequency of the most common value (0 for an empty relation)."""
        return self.top[0][1] if self.top else 0

    @property
    def skew(self) -> float:
        """``max_frequency / mean_frequency`` — 1.0 means uniform.

        The mean frequency is ``total / distinct``; a Zipf-distributed
        attribute reports a skew that grows with its domain.
        """
        if self.distinct == 0 or self.total == 0:
            return 1.0
        return self.max_frequency * self.distinct / self.total

    @property
    def is_skewed(self) -> bool:
        """True when any value crossed the heavy threshold."""
        return self.heavy_count > 0

    def describe(self) -> str:
        """One line: ``B: 40 distinct, 2 heavy >= 7 (61% of tuples)``."""
        text = f"{self.attribute}: {self.distinct} distinct"
        if self.heavy_count:
            text += (
                f", {self.heavy_count} heavy >= {self.heavy_threshold}"
                f" ({self.heavy_mass:.0%} of tuples)"
            )
        return text


@dataclass(frozen=True)
class RelationProfile:
    """Per-attribute profiles for one relation, in schema order."""

    #: Relation name (its edge id in a query).
    name: str
    #: Number of tuples.
    size: int
    #: One :class:`AttributeProfile` per attribute, in schema order.
    attributes: tuple[AttributeProfile, ...]

    def attribute(self, name: str) -> AttributeProfile:
        """The profile of one attribute (raises ``KeyError`` if absent)."""
        for profile in self.attributes:
            if profile.attribute == name:
                return profile
        raise KeyError(
            f"relation {self.name!r} has no attribute {name!r}"
        )

    def __contains__(self, name: str) -> bool:
        return any(p.attribute == name for p in self.attributes)

    @property
    def max_heavy_mass(self) -> float:
        """The largest heavy-hitter mass over all attributes."""
        return max((p.heavy_mass for p in self.attributes), default=0.0)


def profile_relation(
    relation: Relation, top_k: int = DEFAULT_TOP_K
) -> RelationProfile:
    """Profile every attribute of ``relation`` in one linear scan."""
    total = len(relation)
    counters: list[Counter] = [Counter() for _ in relation.attributes]
    for row in relation.tuples:
        for counter, value in zip(counters, row):
            counter[value] += 1
    threshold = heavy_threshold(total)
    profiles = []
    for attribute, counter in zip(relation.attributes, counters):
        ranked = sorted(
            counter.items(), key=lambda item: (-item[1], repr(item[0]))
        )
        heavy = [count for _value, count in ranked if count >= threshold]
        int_min = int_max = None
        if counter and all(
            isinstance(value, int) for value in counter
        ):
            int_min = int(min(counter))
            int_max = int(max(counter))
        profiles.append(
            AttributeProfile(
                attribute=attribute,
                distinct=len(counter),
                total=total,
                top=tuple(ranked[:top_k]),
                heavy_threshold=threshold,
                heavy_count=len(heavy),
                heavy_mass=(sum(heavy) / total) if total else 0.0,
                int_min=int_min,
                int_max=int_max,
            )
        )
    return RelationProfile(
        name=relation.name, size=total, attributes=tuple(profiles)
    )
