"""A small synchronous client for the NDJSON server.

For tests, scripts, and docs — anything that wants to talk to
``python -m repro serve`` without writing asyncio.  One socket, one
request in flight at a time (the *server* multiplexes across
connections; a client wanting concurrency opens more connections or
more :class:`ServerClient` instances).

>>> # doctest-style sketch (the server must be running):
>>> # with ServerClient(host, port) as client:
>>> #     outcome = client.query("select * from R, S;")
>>> #     outcome.columns, outcome.rows
"""

from __future__ import annotations

import json
import socket
import time
from dataclasses import dataclass, field

from repro.errors import ReproError

__all__ = ["QueryOutcome", "ServerClient", "ServerError"]


class ServerError(ReproError):
    """The server answered a typed error payload.

    ``payload`` is the full error object (``type``, ``message``, and
    type-specific fields: ``line``/``column``/``caret`` for language
    errors, ``bound``/``budget`` for admission rejections).
    """

    def __init__(self, payload: dict) -> None:
        kind = payload.get("type", "unknown")
        message = payload.get("message", "")
        super().__init__(f"[{kind}] {message}")
        self.payload = payload
        self.kind = kind


@dataclass
class QueryOutcome:
    """Everything one statement returned."""

    columns: tuple[str, ...]
    rows: list[tuple]
    final: dict = field(default_factory=dict)

    @property
    def cached(self) -> bool:
        return bool(self.final.get("cached"))

    @property
    def bound(self) -> float | None:
        return self.final.get("bound")

    @property
    def text(self) -> str | None:
        return self.final.get("text")


class ServerClient:
    """A blocking NDJSON client; usable as a context manager.

    The connection is reused across requests (opened lazily on the
    first one) instead of dialed fresh every time.  ``idle_timeout``
    bounds reuse: a connection that has sat idle longer is closed and
    redialed before the next request rather than trusted — servers and
    middleboxes drop quiet connections, and a half-dead socket would
    otherwise surface as a mid-response hangup.  A send on a connection
    the server closed while it was idle is retried once on a fresh one.
    """

    def __init__(
        self,
        host: str,
        port: int,
        timeout: float | None = 30.0,
        idle_timeout: float | None = 60.0,
    ) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        self.idle_timeout = idle_timeout
        self._socket: socket.socket | None = None
        self._reader = None
        self._last_used = 0.0
        self._next_id = 0

    @property
    def connected(self) -> bool:
        """Is a (believed-live) connection currently held open?"""
        return self._socket is not None

    def _connect(self) -> None:
        self._socket = socket.create_connection(
            (self.host, self.port), self.timeout
        )
        self._reader = self._socket.makefile("rb")
        self._last_used = time.monotonic()

    def _ensure_connection(self) -> None:
        if self._socket is not None and self.idle_timeout is not None:
            if time.monotonic() - self._last_used > self.idle_timeout:
                self.close()
        if self._socket is None:
            self._connect()

    def close(self) -> None:
        if self._socket is None:
            return
        try:
            self._reader.close()
        finally:
            sock, self._socket, self._reader = self._socket, None, None
            sock.close()

    def __enter__(self) -> "ServerClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- the wire ------------------------------------------------------------

    def request(self, op: str, **fields) -> tuple[list[dict], dict]:
        """Send one request; returns ``(batch_messages, final)``.

        Raises :class:`ServerError` when the final line carries
        ``ok: false``, and :class:`ConnectionError` when the server
        hangs up mid-response.
        """
        self._next_id += 1
        request_id = self._next_id
        line = (
            json.dumps({"id": request_id, "op": op, **fields}) + "\n"
        ).encode("utf-8")
        self._ensure_connection()
        try:
            self._socket.sendall(line)
            return self._read_response(request_id)
        except TimeoutError:
            # A slow server is not a dead connection; re-sending would
            # double-execute against a live one.  Drop the socket (a
            # late response would desynchronize the stream) and report.
            self.close()
            raise
        except (ConnectionError, OSError):
            # The server (or an idle-connection reaper) closed the
            # socket under us.  Nothing was committed server-side for
            # this request id, so one retry on a fresh connection is
            # safe; a failure there is a real outage and propagates.
            self.close()
            self._connect()
            self._socket.sendall(line)
            return self._read_response(request_id)

    def _read_response(self, request_id: int) -> tuple[list[dict], dict]:
        batches: list[dict] = []
        while True:
            line = self._reader.readline()
            if not line:
                raise ConnectionError(
                    "server closed the connection mid-response"
                )
            response = json.loads(line.decode("utf-8"))
            if response.get("id") not in (request_id, None):
                continue  # a stale line from an aborted request
            if response.get("final"):
                self._last_used = time.monotonic()
                if not response.get("ok"):
                    raise ServerError(response.get("error", {}))
                return batches, response
            batches.append(response)

    # -- sugar ---------------------------------------------------------------

    def query(
        self,
        text: str,
        batch: int | None = None,
        trace: bool = False,
    ) -> QueryOutcome:
        """Execute one statement and collect every row."""
        fields: dict = {"q": text}
        if batch is not None:
            fields["batch"] = batch
        if trace:
            fields["trace"] = True
        batches, final = self.request("query", **fields)
        rows = [
            tuple(row)
            for message in batches
            for row in message.get("rows", ())
        ]
        rows.extend(tuple(row) for row in final.get("rows", ()))
        return QueryOutcome(
            columns=tuple(final.get("columns", ())),
            rows=rows,
            final=final,
        )

    def explain(self, text: str) -> str:
        """The plan description for a statement."""
        _batches, final = self.request("explain", q=text)
        return final.get("text", "")

    def ping(self) -> dict:
        _batches, final = self.request("ping")
        return final

    def stats(self) -> dict:
        _batches, final = self.request("stats")
        return final

    def metrics(self) -> str:
        """The server's metrics in Prometheus text format."""
        _batches, final = self.request("metrics")
        return final.get("text", "")
