"""A small synchronous client for the NDJSON server.

For tests, scripts, and docs — anything that wants to talk to
``python -m repro serve`` without writing asyncio.  One socket, one
request in flight at a time (the *server* multiplexes across
connections; a client wanting concurrency opens more connections or
more :class:`ServerClient` instances).

>>> # doctest-style sketch (the server must be running):
>>> # with ServerClient(host, port) as client:
>>> #     outcome = client.query("select * from R, S;")
>>> #     outcome.columns, outcome.rows
"""

from __future__ import annotations

import json
import socket
from dataclasses import dataclass, field

from repro.errors import ReproError

__all__ = ["QueryOutcome", "ServerClient", "ServerError"]


class ServerError(ReproError):
    """The server answered a typed error payload.

    ``payload`` is the full error object (``type``, ``message``, and
    type-specific fields: ``line``/``column``/``caret`` for language
    errors, ``bound``/``budget`` for admission rejections).
    """

    def __init__(self, payload: dict) -> None:
        kind = payload.get("type", "unknown")
        message = payload.get("message", "")
        super().__init__(f"[{kind}] {message}")
        self.payload = payload
        self.kind = kind


@dataclass
class QueryOutcome:
    """Everything one statement returned."""

    columns: tuple[str, ...]
    rows: list[tuple]
    final: dict = field(default_factory=dict)

    @property
    def cached(self) -> bool:
        return bool(self.final.get("cached"))

    @property
    def bound(self) -> float | None:
        return self.final.get("bound")

    @property
    def text(self) -> str | None:
        return self.final.get("text")


class ServerClient:
    """A blocking NDJSON client; usable as a context manager."""

    def __init__(
        self, host: str, port: int, timeout: float | None = 30.0
    ) -> None:
        self.host = host
        self.port = port
        self._socket = socket.create_connection((host, port), timeout)
        self._reader = self._socket.makefile("rb")
        self._next_id = 0

    def close(self) -> None:
        try:
            self._reader.close()
        finally:
            self._socket.close()

    def __enter__(self) -> "ServerClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- the wire ------------------------------------------------------------

    def request(self, op: str, **fields) -> tuple[list[dict], dict]:
        """Send one request; returns ``(batch_messages, final)``.

        Raises :class:`ServerError` when the final line carries
        ``ok: false``, and :class:`ConnectionError` when the server
        hangs up mid-response.
        """
        self._next_id += 1
        request_id = self._next_id
        message = {"id": request_id, "op": op, **fields}
        self._socket.sendall(
            (json.dumps(message) + "\n").encode("utf-8")
        )
        batches: list[dict] = []
        while True:
            line = self._reader.readline()
            if not line:
                raise ConnectionError(
                    "server closed the connection mid-response"
                )
            response = json.loads(line.decode("utf-8"))
            if response.get("id") not in (request_id, None):
                continue  # a stale line from an aborted request
            if response.get("final"):
                if not response.get("ok"):
                    raise ServerError(response.get("error", {}))
                return batches, response
            batches.append(response)

    # -- sugar ---------------------------------------------------------------

    def query(
        self,
        text: str,
        batch: int | None = None,
        trace: bool = False,
    ) -> QueryOutcome:
        """Execute one statement and collect every row."""
        fields: dict = {"q": text}
        if batch is not None:
            fields["batch"] = batch
        if trace:
            fields["trace"] = True
        batches, final = self.request("query", **fields)
        rows = [
            tuple(row)
            for message in batches
            for row in message.get("rows", ())
        ]
        rows.extend(tuple(row) for row in final.get("rows", ()))
        return QueryOutcome(
            columns=tuple(final.get("columns", ())),
            rows=rows,
            final=final,
        )

    def explain(self, text: str) -> str:
        """The plan description for a statement."""
        _batches, final = self.request("explain", q=text)
        return final.get("text", "")

    def ping(self) -> dict:
        _batches, final = self.request("ping")
        return final

    def stats(self) -> dict:
        _batches, final = self.request("stats")
        return final

    def metrics(self) -> str:
        """The server's metrics in Prometheus text format."""
        _batches, final = self.request("metrics")
        return final.get("text", "")
