"""The always-on asyncio join server.

One process, one catalog, many concurrent clients: ``python -m repro
serve R.csv S.csv ...`` (or :class:`JoinServer` embedded).  The event
loop owns connections and scheduling; query execution — which is
CPU-bound, synchronous engine code — runs on worker threads via
``asyncio.to_thread``, delivering rows to the loop one batch at a time
(the existing ``batch_size`` machinery), so a slow client applies TCP
backpressure to its own query without stalling anyone else's.

Life of a request line:

1. **decode** (:mod:`repro.server.protocol`) — malformed JSON or an
   unknown op answers a typed ``protocol`` error.
2. **parse + compile** — the same front-end the REPL uses; errors
   answer typed ``parse`` / ``compile`` payloads with caret text.
3. **admission** (:mod:`repro.server.admission`) — the plan's AGM
   bound against the row budget: reject (typed ``admission`` error
   naming bound and budget), queue (heavy queries serialize), or
   admit.  Rejection happens *before* any index is built.
4. **prepared cache** (:mod:`repro.server.cache`) — repeated
   normalized text reuses the frozen plan: zero replanning, zero index
   builds on hits.
5. **execute** — row queries stream batch lines then a final line;
   aggregates/groups/explains answer one final line.  Every phase runs
   under a per-request :class:`~repro.observe.tracing.Tracer` span
   (returned to the client when the request sets ``"trace": true``),
   and the shared :class:`~repro.observe.metrics.MetricsRegistry`
   counts requests, errors, admissions, rows, and latency — the
   ``metrics`` op serves it as Prometheus text.

``stop(drain=True)`` closes the listener, lets in-flight queries
finish and flush, then tears down connections — the graceful shutdown
integration tests drive.
"""

from __future__ import annotations

import asyncio
from contextlib import suppress

from repro.errors import LangError, ReproError
from repro.lang.compiler import compile_query
from repro.lang.parser import parse
from repro.observe.metrics import MetricsRegistry
from repro.observe.tracing import Tracer
from repro.query.context import ExecutionContext
from repro.relations.database import Database
from repro.server.admission import AdmissionController
from repro.server.cache import CacheEntry, PreparedCache
from repro.server.protocol import (
    ProtocolError,
    decode_line,
    encode,
    error_payload,
)
from repro.version import __version__

__all__ = ["JoinServer", "DEFAULT_BATCH_ROWS"]

#: Rows per streamed response line unless the request asks otherwise.
DEFAULT_BATCH_ROWS = 256

#: Ceiling on a request's ``batch`` field (a huge batch defeats
#: backpressure by buffering the whole result in one message).
MAX_BATCH_ROWS = 65536


class JoinServer:
    """A TCP NDJSON query server over one :class:`Database`."""

    def __init__(
        self,
        database: Database,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        admission: AdmissionController | None = None,
        cache: PreparedCache | None = None,
        context: ExecutionContext | None = None,
        batch_rows: int = DEFAULT_BATCH_ROWS,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        self.database = database
        self.host = host
        self.port = port
        self.admission = (
            admission if admission is not None else AdmissionController()
        )
        self.cache = cache if cache is not None else PreparedCache()
        self.context = (
            context if context is not None else ExecutionContext()
        )
        self.batch_rows = batch_rows
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._server: asyncio.AbstractServer | None = None
        self._conn_tasks: set[asyncio.Task] = set()
        self._request_tasks: set[asyncio.Task] = set()
        self._draining = False

    # -- lifecycle -----------------------------------------------------------

    @property
    def address(self) -> tuple[str, int]:
        """The bound ``(host, port)`` (real port after ``port=0``)."""
        if self._server is None:
            raise RuntimeError("server is not started")
        return self._server.sockets[0].getsockname()[:2]

    async def start(self) -> tuple[str, int]:
        """Bind and start accepting connections; returns the address."""
        self._server = await asyncio.start_server(
            self._on_connection, self.host, self.port
        )
        return self.address

    async def stop(self, drain: bool = True) -> None:
        """Shut down: stop accepting, optionally drain, tear down.

        With ``drain`` (the default), every request already in flight
        runs to completion and flushes its final line before
        connections close — clients never see a query vanish.  Without
        it, in-flight work is cancelled.
        """
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        requests = list(self._request_tasks)
        if drain:
            if requests:
                await asyncio.gather(*requests, return_exceptions=True)
        else:
            for task in requests:
                task.cancel()
            if requests:
                await asyncio.gather(*requests, return_exceptions=True)
        for task in list(self._conn_tasks):
            task.cancel()
        if self._conn_tasks:
            await asyncio.gather(
                *self._conn_tasks, return_exceptions=True
            )

    async def serve_forever(self) -> None:
        """``start()`` then block until cancelled (the CLI's path)."""
        if self._server is None:
            await self.start()
        assert self._server is not None
        try:
            await self._server.serve_forever()
        except asyncio.CancelledError:
            await self.stop(drain=True)
            raise

    # -- connections ---------------------------------------------------------

    async def _on_connection(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        task = asyncio.current_task()
        # start_server wraps this coroutine in a task; track it so
        # stop() can tear the connection down.
        if task is not None:
            self._conn_tasks.add(task)
            task.add_done_callback(self._conn_tasks.discard)
        self.metrics.counter(
            "repro_server_connections_total",
            "connections accepted",
        ).inc()
        await self._connection_loop(reader, writer)

    async def _connection_loop(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        # One writer lock per connection: response lines from
        # concurrently multiplexed requests must not interleave bytes.
        write_lock = asyncio.Lock()
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                if not line.strip():
                    continue
                if self._draining:
                    await self._send(
                        writer,
                        write_lock,
                        {
                            "id": None,
                            "ok": False,
                            "final": True,
                            "error": {
                                "type": "shutdown",
                                "message": "server is shutting down",
                            },
                        },
                    )
                    continue
                task = asyncio.create_task(
                    self._handle_line(line, writer, write_lock)
                )
                self._request_tasks.add(task)
                task.add_done_callback(self._request_tasks.discard)
        except (
            asyncio.CancelledError,
            ConnectionResetError,
            BrokenPipeError,
        ):
            pass
        finally:
            with suppress(Exception):
                writer.close()
                await writer.wait_closed()

    async def _send(
        self,
        writer: asyncio.StreamWriter,
        write_lock: asyncio.Lock,
        message: dict,
    ) -> None:
        async with write_lock:
            writer.write(encode(message))
            # drain() inside the lock: TCP backpressure from a slow
            # client pauses exactly the tasks writing to that client.
            await writer.drain()

    # -- requests ------------------------------------------------------------

    async def _handle_line(
        self,
        line: bytes,
        writer: asyncio.StreamWriter,
        write_lock: asyncio.Lock,
    ) -> None:
        request_id = None
        started = asyncio.get_running_loop().time()
        tracer = Tracer(name="request")
        try:
            with tracer.span("request"):
                message = decode_line(line)
                request_id = message.get("id")
                op = message["op"]
                self.metrics.counter(
                    "repro_server_requests_total", "requests by op"
                ).inc(op=op)
                final = await self._dispatch(
                    message, writer, write_lock, tracer
                )
        except (ReproError, asyncio.CancelledError) as error:
            if isinstance(error, asyncio.CancelledError):
                raise
            payload = error_payload(error)
            self.metrics.counter(
                "repro_server_errors_total", "typed errors by kind"
            ).inc(type=payload["type"])
            final = {"ok": False, "error": payload}
        except Exception as error:  # internal: never kill the connection
            payload = error_payload(error)
            self.metrics.counter(
                "repro_server_errors_total", "typed errors by kind"
            ).inc(type="internal")
            final = {"ok": False, "error": payload}
        final["id"] = request_id
        final["final"] = True
        elapsed = asyncio.get_running_loop().time() - started
        self.metrics.histogram(
            "repro_server_request_seconds", "request wall time"
        ).observe(elapsed)
        if tracer.spans:
            tracer.spans[0].meta["ok"] = final.get("ok", False)
        with suppress(ConnectionResetError, BrokenPipeError):
            await self._send(writer, write_lock, final)

    async def _dispatch(
        self,
        message: dict,
        writer: asyncio.StreamWriter,
        write_lock: asyncio.Lock,
        tracer: Tracer,
    ) -> dict:
        op = message["op"]
        if op == "ping":
            return {"ok": True, "pong": True, "version": __version__}
        if op == "metrics":
            return {"ok": True, "text": self.metrics.to_prometheus()}
        if op == "stats":
            return {"ok": True, **self._stats_payload()}
        text = message.get("q")
        if not isinstance(text, str) or not text.strip():
            raise ProtocolError(
                f"op {op!r} needs a statement in the 'q' field"
            )
        if op == "explain" and not text.lstrip().lower().startswith(
            "explain"
        ):
            text = "explain " + text
        return await self._run_query(message, text, writer, write_lock, tracer)

    def _stats_payload(self) -> dict:
        info = self.database.cache_info()
        cache = self.cache.cache_info()
        return {
            "relations": self.database.sizes(),
            "prepared_cache": {
                "entries": cache.entries,
                "capacity": cache.capacity,
                "hits": cache.hits,
                "misses": cache.misses,
                "evictions": cache.evictions,
            },
            "index_cache": {
                "entries": info.entries,
                "hits": info.hits,
                "misses": info.misses,
                "evictions": info.evictions,
            },
            "admission": {
                "admitted": self.admission.admitted,
                "rejected": self.admission.rejected,
                "queued": self.admission.queued,
                "row_budget": self.admission.row_budget,
                "queue_budget": self.admission.queue_budget,
            },
        }

    def _batch_rows_for(self, message: dict) -> int:
        batch = message.get("batch")
        if batch is None:
            return self.batch_rows
        if not isinstance(batch, int) or isinstance(batch, bool) or (
            batch < 1
        ):
            raise ProtocolError(
                f"'batch' must be a positive integer, got {batch!r}"
            )
        return min(batch, MAX_BATCH_ROWS)

    async def _run_query(
        self,
        message: dict,
        text: str,
        writer: asyncio.StreamWriter,
        write_lock: asyncio.Lock,
        tracer: Tracer,
    ) -> dict:
        request_id = message.get("id")
        batch_rows = self._batch_rows_for(message)
        with tracer.span("parse"):
            statement = parse(text)
        normalized = statement.normalized
        entry = self.cache.get(normalized)
        cached = entry is not None
        if entry is None:
            with tracer.span("compile"):
                compiled = compile_query(
                    statement, self.database, self.context
                )
            with tracer.span("plan"):
                # The AGM bound comes from the plan alone — admission
                # can reject *before* any index is built.
                bound = float(
                    await asyncio.to_thread(
                        lambda: compiled.builder.plan().estimated_bound
                    )
                )
            self.admission.decide(compiled.kind, bound)
            with tracer.span("prepare"):
                entry = await asyncio.to_thread(CacheEntry, compiled)
            self.cache.put(normalized, entry)
        self.metrics.counter(
            "repro_server_prepared_cache_total", "prepared cache lookups"
        ).inc(outcome="hit" if cached else "miss")
        compiled = entry.compiled
        kind = compiled.kind
        async with self.admission.admit(kind, entry.bound) as decision:
            self.metrics.counter(
                "repro_server_admission_total", "admission outcomes"
            ).inc(outcome=decision.reason)
            base = {
                "ok": True,
                "kind": kind,
                "columns": list(compiled.columns),
                "cached": cached,
                "bound": entry.bound,
                "queued": decision.queued,
                "normalized": normalized,
            }
            # The per-entry lock serializes runs of one frozen executor
            # (index seek hints are mutable); distinct statements still
            # run fully concurrently.
            async with entry.lock:
                with tracer.span("execute", kind=kind):
                    if kind == "rows":
                        total = await self._stream_rows(
                            request_id,
                            entry,
                            batch_rows,
                            writer,
                            write_lock,
                        )
                        base["rows_total"] = total
                    else:
                        result = await asyncio.to_thread(
                            compiled.run, entry.prepared
                        )
                        if result.text is not None:
                            base["text"] = result.text
                        base["rows"] = [list(row) for row in result.rows]
                        base["rows_total"] = len(result.rows)
        self.metrics.counter(
            "repro_server_rows_sent_total", "result rows sent"
        ).inc(base["rows_total"])
        if message.get("trace"):
            base["trace"] = tracer.to_dict()
        return base

    async def _stream_rows(
        self,
        request_id,
        entry: CacheEntry,
        batch_rows: int,
        writer: asyncio.StreamWriter,
        write_lock: asyncio.Lock,
    ) -> int:
        batched = entry.prepared.batches(batch_rows)
        total = 0
        try:
            while True:
                batch = await asyncio.to_thread(next, batched, None)
                if batch is None:
                    break
                total += len(batch)
                await self._send(
                    writer,
                    write_lock,
                    {
                        "id": request_id,
                        "rows": [list(row) for row in batch],
                    },
                )
        finally:
            with suppress(Exception):
                batched.close()
        return total
