"""Wire protocol: newline-delimited JSON messages and error payloads.

One request per line, one or more response lines per request, every
line a complete JSON object.  Requests carry a client-chosen ``id``
echoed on every response line, so clients can pipeline: many requests
may be in flight on one connection and responses interleave by ``id``.

Request shape::

    {"id": 1, "op": "query", "q": "select * from R, S;",
     "batch": 256, "trace": false}

Ops: ``query`` (execute a statement), ``explain`` (plan only, sugar
for prefixing EXPLAIN), ``ping``, ``stats`` (catalog and cache
counters), ``metrics`` (Prometheus text).

Responses for a row-streaming query: zero or more ``{"id": 1, "rows":
[[...], ...]}`` batch lines, then a final line ``{"id": 1, "ok": true,
"final": true, "columns": [...], "rows_total": N, ...}``.  Non-row
results (aggregates, groups, explains) return a single final line
carrying ``columns`` and ``rows`` inline.

Failures are a single final line with a **typed** error payload::

    {"id": 1, "ok": false, "final": true,
     "error": {"type": "admission", "message": "...",
               "bound": 1024.0, "budget": 100.0}}

``type`` is one of ``parse`` / ``compile`` (with ``line`` / ``column``
/ ``caret``), ``plan``, ``query``, ``admission`` (with ``bound`` /
``budget``), ``protocol`` (malformed request), or ``internal`` — the
mapping from the library's exception hierarchy lives in
:func:`error_payload`, so the REPL's caret diagnostics and the
server's JSON errors always agree.
"""

from __future__ import annotations

import json

from repro.errors import (
    LangError,
    PlanError,
    QueryError,
    ReproError,
)

__all__ = [
    "AdmissionRejected",
    "ProtocolError",
    "decode_line",
    "encode",
    "error_payload",
]

#: Ops the server accepts (checked before dispatch).
OPS = ("query", "explain", "ping", "stats", "metrics")


class ProtocolError(ReproError):
    """The request line itself is malformed (bad JSON, missing op)."""


class AdmissionRejected(ReproError):
    """Admission control refused the query: its AGM output bound
    exceeds the server's row budget.  Carries both numbers so the
    typed payload (and the client's exception message) can name them.
    """

    def __init__(self, message: str, bound: float, budget: float) -> None:
        super().__init__(message)
        self.bound = bound
        self.budget = budget


def encode(message: dict) -> bytes:
    """One response line: compact JSON plus the newline delimiter."""
    return (
        json.dumps(message, separators=(",", ":"), default=str) + "\n"
    ).encode("utf-8")


def decode_line(line: bytes) -> dict:
    """Parse one request line; :class:`ProtocolError` on bad input."""
    try:
        message = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise ProtocolError(f"request is not valid JSON: {error}") from error
    if not isinstance(message, dict):
        raise ProtocolError(
            f"request must be a JSON object, got {type(message).__name__}"
        )
    op = message.get("op")
    if op not in OPS:
        raise ProtocolError(
            f"unknown op {op!r}; expected one of {', '.join(OPS)}"
        )
    return message


def error_payload(error: Exception) -> dict:
    """The typed payload for an exception, per the module docstring."""
    if isinstance(error, AdmissionRejected):
        return {
            "type": "admission",
            "message": str(error),
            "bound": error.bound,
            "budget": error.budget,
        }
    if isinstance(error, LangError):
        return {
            "type": error.kind,  # "parse" or "compile"
            "message": error.message,
            "line": error.line,
            "column": error.column,
            "caret": error.caret_diagnostic(),
        }
    if isinstance(error, ProtocolError):
        return {"type": "protocol", "message": str(error)}
    if isinstance(error, PlanError):
        return {"type": "plan", "message": str(error)}
    if isinstance(error, QueryError):
        return {"type": "query", "message": str(error)}
    if isinstance(error, ReproError):
        return {"type": type(error).__name__, "message": str(error)}
    return {"type": "internal", "message": f"{type(error).__name__}: {error}"}
