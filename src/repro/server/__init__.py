"""The always-on query service: asyncio TCP server + AGM admission.

The subsystem that turns the library into something serving traffic:
:class:`~repro.server.service.JoinServer` speaks newline-delimited
JSON over TCP (:mod:`repro.server.protocol`), multiplexes concurrent
clients over worker-thread execution with batch backpressure, caches
prepared queries by normalized statement text
(:mod:`repro.server.cache`), and — the paper's gift — refuses or
queues queries whose AGM output bound exceeds a configured row budget
*before* running them (:mod:`repro.server.admission`).
:class:`~repro.server.client.ServerClient` is the blocking client for
tests, scripts, and docs.
"""

from repro.server.admission import AdmissionController, AdmissionDecision
from repro.server.cache import CacheEntry, PreparedCache, PreparedCacheInfo
from repro.server.client import QueryOutcome, ServerClient, ServerError
from repro.server.protocol import (
    AdmissionRejected,
    ProtocolError,
    error_payload,
)
from repro.server.service import DEFAULT_BATCH_ROWS, JoinServer

__all__ = [
    "AdmissionController",
    "AdmissionDecision",
    "AdmissionRejected",
    "CacheEntry",
    "DEFAULT_BATCH_ROWS",
    "JoinServer",
    "PreparedCache",
    "PreparedCacheInfo",
    "ProtocolError",
    "QueryOutcome",
    "ServerClient",
    "ServerError",
    "error_payload",
]
