"""The prepared-query cache: normalized text to frozen plan.

The server's whole latency story: the first submission of a statement
pays parse + compile + plan + index builds; every later submission of
the *same normalized text* (case of keywords, spacing, comments, and a
trailing ``;`` all normalize away) reuses the frozen
:class:`~repro.query.prepared.PreparedQuery` — zero planning, zero
index builds, assertable from the outside via the database's
``cache_info()`` (the miss counter stays flat across hits).

Entries are LRU-evicted above ``capacity``.  Index reuse *across*
distinct statements is the catalog's job, not this cache's: evicting
an entry only drops the frozen plan, and a re-prepared statement finds
its indexes still resident in the database's GreedyDual cache (its
budget — ``Database.warm`` semantics — stays the authority on which
indexes live).

Each entry carries an ``asyncio.Lock``: index backends keep mutable
seek hints, so two concurrent streams over one frozen executor must
serialize.  Different entries run fully concurrently — the lock is
per-plan, not per-server.
"""

from __future__ import annotations

import asyncio
from collections import OrderedDict
from dataclasses import dataclass

from repro.lang.compiler import CompiledQuery

__all__ = ["CacheEntry", "PreparedCache", "PreparedCacheInfo"]


@dataclass(frozen=True)
class PreparedCacheInfo:
    """Counters mirroring ``Database.cache_info()``'s shape."""

    entries: int
    capacity: int
    hits: int
    misses: int
    evictions: int


class CacheEntry:
    """One cached statement: the compiled form, its frozen prepared
    query, the plan's AGM bound, and the per-plan execution lock."""

    __slots__ = ("compiled", "prepared", "bound", "lock")

    def __init__(self, compiled: CompiledQuery) -> None:
        self.compiled = compiled
        self.prepared = compiled.builder.prepare()
        self.bound = float(compiled.builder.plan().estimated_bound)
        self.lock = asyncio.Lock()


class PreparedCache:
    """Bounded LRU over normalized statement text."""

    def __init__(self, capacity: int = 128) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._entries: "OrderedDict[str, CacheEntry]" = OrderedDict()
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    def get(self, normalized: str) -> CacheEntry | None:
        """The entry for ``normalized``, refreshing recency; None on
        miss (the *caller* compiles and inserts — preparation may fail,
        and a failed preparation must not poison the cache)."""
        entry = self._entries.get(normalized)
        if entry is None:
            self._misses += 1
            return None
        self._entries.move_to_end(normalized)
        self._hits += 1
        return entry

    def put(self, normalized: str, entry: CacheEntry) -> CacheEntry:
        """Insert (or refresh) an entry, evicting the LRU tail."""
        if normalized in self._entries:
            self._entries.move_to_end(normalized)
            self._entries[normalized] = entry
            return entry
        self._entries[normalized] = entry
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self._evictions += 1
        return entry

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, normalized: str) -> bool:
        return normalized in self._entries

    def cache_info(self) -> PreparedCacheInfo:
        return PreparedCacheInfo(
            entries=len(self._entries),
            capacity=self.capacity,
            hits=self._hits,
            misses=self._misses,
            evictions=self._evictions,
        )
