"""AGM admission control: bound the damage before running the query.

The fractional-cover (AGM) bound is computed at *plan* time, before a
single row is enumerated — the property the source paper proves and
the one thing most query engines wish they had at the front door.  The
controller uses it three ways:

* **Reject**: an enumeration query whose bound exceeds ``row_budget``
  is refused outright with a typed error naming the bound and the
  budget.  The client knows *why* and by how much — not a timeout half
  an hour in.
* **Queue**: a query whose bound exceeds ``queue_budget`` (but fits
  the row budget) is *serialized* — at most one such heavy query runs
  at a time, so a burst of large-but-legitimate queries degrades to a
  queue instead of a memory spike.
* **Exempt**: aggregates and samples never enumerate the result (the
  fold prunes subtrees; the sampler draws by rejection), so by default
  they bypass the row budget — the paper's cheap answers stay cheap
  even when the result itself would be over budget.  ``explain`` never
  executes and is always exempt; ``explain analyze`` executes but only
  counts rows, so it classifies with the aggregates.

The controller is asyncio-native: :meth:`AdmissionController.admit` is
an async context manager acquiring the concurrency semaphore (and the
heavy-query lock when applicable) and releasing both on exit.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass

from repro.server.protocol import AdmissionRejected

__all__ = ["AdmissionController", "AdmissionDecision"]

#: Query kinds that enumerate result rows (subject to the row budget).
ENUMERATING_KINDS = frozenset({"rows"})


@dataclass(frozen=True)
class AdmissionDecision:
    """What the controller decided for one query, for logging/metrics."""

    admitted: bool
    bound: float
    queued: bool
    reason: str


class AdmissionController:
    """Per-server admission state (budgets, locks, counters)."""

    def __init__(
        self,
        row_budget: float | None = None,
        queue_budget: float | None = None,
        max_concurrent: int = 32,
        exempt_aggregates: bool = True,
    ) -> None:
        if row_budget is not None and row_budget <= 0:
            raise ValueError(
                f"row_budget must be positive or None, got {row_budget}"
            )
        if queue_budget is not None and queue_budget <= 0:
            raise ValueError(
                f"queue_budget must be positive or None, got {queue_budget}"
            )
        if max_concurrent < 1:
            raise ValueError(
                f"max_concurrent must be >= 1, got {max_concurrent}"
            )
        self.row_budget = row_budget
        self.queue_budget = queue_budget
        self.exempt_aggregates = exempt_aggregates
        self._slots = asyncio.Semaphore(max_concurrent)
        self._heavy = asyncio.Lock()
        self.admitted = 0
        self.rejected = 0
        self.queued = 0

    def decide(self, kind: str, bound: float) -> AdmissionDecision:
        """Classify one query; raises :class:`AdmissionRejected` when it
        blows the row budget."""
        enumerates = kind in ENUMERATING_KINDS or not self.exempt_aggregates
        if (
            enumerates
            and self.row_budget is not None
            and bound > self.row_budget
        ):
            self.rejected += 1
            raise AdmissionRejected(
                f"query rejected: AGM output bound {bound:.1f} rows "
                f"exceeds the server's row budget {self.row_budget:.1f} "
                "(narrow the query with WHERE, or ask for an aggregate "
                "or SAMPLE — those never enumerate)",
                bound=bound,
                budget=self.row_budget,
            )
        queued = (
            self.queue_budget is not None and bound > self.queue_budget
        )
        return AdmissionDecision(
            admitted=True,
            bound=bound,
            queued=queued,
            reason="queued-heavy" if queued else "admitted",
        )

    def admit(self, kind: str, bound: float) -> "_Admission":
        """``async with controller.admit(kind, bound):`` — decide, then
        hold the concurrency slot (and the heavy lock when queued) for
        the duration of the block."""
        decision = self.decide(kind, bound)
        return _Admission(self, decision)


class _Admission:
    """The held admission: semaphore slot + optional heavy lock."""

    def __init__(
        self, controller: AdmissionController, decision: AdmissionDecision
    ) -> None:
        self.controller = controller
        self.decision = decision

    async def __aenter__(self) -> AdmissionDecision:
        await self.controller._slots.acquire()
        if self.decision.queued:
            try:
                await self.controller._heavy.acquire()
            except BaseException:
                self.controller._slots.release()
                raise
            self.controller.queued += 1
        self.controller.admitted += 1
        return self.decision

    async def __aexit__(self, *exc_info) -> None:
        if self.decision.queued:
            self.controller._heavy.release()
        self.controller._slots.release()
