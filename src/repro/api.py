"""The front door: one ``execute()`` for every consumption style.

>>> from repro import Relation, execute
>>> r = Relation("R", ("A", "B"), [(1, 2), (2, 3)])
>>> s = Relation("S", ("B", "C"), [(2, 9), (3, 7)])
>>> t = Relation("T", ("A", "C"), [(1, 9), (2, 7)])
>>> sorted(execute([r, s, t]))
[(1, 2, 9), (2, 3, 7)]

:func:`execute` takes the *what* (relations, a
:class:`~repro.core.query.JoinQuery`, or a fluent
:func:`~repro.query.builder.Q` builder) and the *how* (an
:class:`~repro.query.context.ExecutionContext`, or keyword updates to
one) and returns a :class:`~repro.query.result.ResultStream` whose
views cover every consumption style: iterate it, materialize it
(``.relation()``), batch it (``.batches()``), drive it from an event
loop (``.astream()``), or fold it without enumeration (``.count()``,
``.fold(spec)``).  Execution options — algorithm, backend, sharding
(:class:`~repro.query.shards.ShardSpec`), a distributed
:class:`~repro.distributed.DispatchScheduler` — live on the context,
declared once instead of re-spelled per entry point::

    from repro import ExecutionContext, ShardSpec, execute

    ctx = ExecutionContext(shards=ShardSpec("auto", steal=True))
    for row in execute([r, s, t], context=ctx):
        ...

The pre-``execute`` entry points (:func:`join`, :func:`join_batched`,
:func:`shard_join`, :func:`aiter_join`) remain as signature-frozen
shims — each is one ``execute`` call — and emit
:class:`DeprecationWarning`; :func:`iter_join` stays first-class (it
*is* the streaming seam the paper's algorithms share), as do
:func:`count_join`, :func:`sample_join`, :func:`explain`, and
:func:`output_bound`.

Every entry point validates its arguments when *called* — an
incompatible algorithm/backend/order combination raises
:class:`~repro.errors.PlanError` before any iterator is returned, never
at first ``next()``.
"""

from __future__ import annotations

import warnings
from collections.abc import AsyncIterator, Iterator, Sequence

from repro.core.query import JoinQuery
from repro.engine import parallel as _parallel
from repro.engine.executors import algorithm_names
from repro.engine.planner import JoinPlan
from repro.errors import QueryError
from repro.feedback.config import FeedbackConfig
from repro.hypergraph.agm import best_agm_bound
from repro.hypergraph.covers import FractionalCover
from repro.query.builder import Q, QueryBuilder
from repro.query.context import ExecutionContext
from repro.query.result import ResultStream
from repro.relations.database import Database
from repro.relations.relation import Relation, Row

#: Algorithms selectable by name in :func:`execute`.  Derived from the
#: engine's executor registry — the single source of truth shared with
#: the CLI's ``--algorithm`` choices.
ALGORITHMS = algorithm_names()


def _check_algorithm(algorithm: str) -> None:
    """Reject unknown algorithm names before any planning or index work."""
    if algorithm not in ALGORITHMS:
        raise QueryError(
            f"unknown algorithm {algorithm!r}; choose one of {ALGORITHMS}"
        )


def _deprecated(name: str, hint: str) -> None:
    warnings.warn(
        f"repro.{name}() is deprecated; use {hint}",
        DeprecationWarning,
        stacklevel=3,
    )


def execute(
    query: Sequence[Relation] | JoinQuery | QueryBuilder,
    context: ExecutionContext | None = None,
    **options,
) -> ResultStream:
    """Execute a join query; return a multi-view
    :class:`~repro.query.result.ResultStream`.

    Parameters
    ----------
    query:
        The relations to join, an existing :class:`JoinQuery`, or a
        fluent builder (whose selections/projections are kept — only
        the execution options are overlaid).
    context:
        An :class:`~repro.query.context.ExecutionContext` carrying
        every execution option: algorithm, cover, attribute order,
        backend, database, sharding (:class:`~repro.query.shards.
        ShardSpec`), scheduler, feedback, tracer, metrics.
    **options:
        Alternatively, keyword updates applied to the query's current
        context (``execute(q, shards=ShardSpec(4), mode="thread")``).
        Mutually exclusive with ``context``.

    Nothing runs until a view of the returned stream is consumed; each
    view starts a fresh execution.  Algorithm validation happens now.

    >>> from repro import Relation
    >>> r = Relation("R", ("A", "B"), [(i, i + 1) for i in range(4)])
    >>> s = Relation("S", ("B", "C"), [(i + 1, i) for i in range(4)])
    >>> execute([r, s]).count()
    4
    """
    # Validate the algorithm name before touching the query at all, so
    # ``execute(bad_query, algorithm="bogus")`` reports the bad name.
    if context is not None:
        if options:
            raise QueryError(
                "pass either a context or keyword options, not both"
            )
        _check_algorithm(context.algorithm)
    elif "algorithm" in options:
        _check_algorithm(options["algorithm"])
    if isinstance(query, QueryBuilder):
        builder = query
    else:
        builder = Q(query)
    if context is not None:
        builder = builder.using(context)
    elif options:
        builder = builder.using(**options)
    _check_algorithm(builder.context.algorithm)
    return ResultStream(builder)


def join(
    relations: Sequence[Relation] | JoinQuery,
    algorithm: str = "auto",
    cover: FractionalCover | None = None,
    name: str = "J",
    attribute_order: Sequence[str] | None = None,
    backend: str | None = None,
    database: Database | None = None,
    feedback: FeedbackConfig | None = None,
) -> Relation:
    """Compute the natural join of ``relations``, worst-case optimally.

    .. deprecated:: this release
        Use ``execute(relations, ...).relation(name)`` — same plan,
        same result, options declared once on the context.

    Parameters
    ----------
    relations:
        The relations to join (or an existing :class:`JoinQuery`).
    algorithm:
        * ``"nprr"`` — Algorithm 2 (works for every query);
        * ``"lw"`` — Algorithm 1 (Loomis-Whitney instances only);
        * ``"generic"`` / ``"leapfrog"`` — the extension WCOJ algorithms;
        * ``"arity2"`` — Theorem 7.3's algorithm (arity <= 2 only);
        * ``"auto"`` — let the planner pick a specialist when the query
          shape allows, with a cost-based attribute order otherwise.
    cover:
        Optional fractional edge cover (defaults to the LP optimum).  Only
        consulted by the cover-driven algorithms (``nprr``, ``arity2``).
    attribute_order:
        Optional global variable order for the order-sensitive algorithms;
        by default the planner chooses one from data statistics.
    backend:
        Optional index backend kind (``"trie"`` or ``"sorted"``).
    database:
        Optional catalog whose index cache should be used (Remark 5.2's
        ahead-of-time indexing) — repeated queries then skip index builds.
    feedback:
        Optional :class:`~repro.feedback.config.FeedbackConfig` enabling
        the runtime feedback loop: this run records per-level execution
        telemetry, and repeated runs of the same query re-plan from the
        observed statistics instead of the sampled estimates.
    """
    _deprecated("join", "execute(relations, ...).relation(name)")
    return execute(
        relations,
        algorithm=algorithm,
        cover=cover,
        attribute_order=attribute_order,
        backend=backend,
        database=database,
        feedback=feedback,
    ).relation(name)


def iter_join(
    relations: Sequence[Relation] | JoinQuery,
    algorithm: str = "auto",
    cover: FractionalCover | None = None,
    attribute_order: Sequence[str] | None = None,
    backend: str | None = None,
    database: Database | None = None,
    feedback: FeedbackConfig | None = None,
) -> Iterator[Row]:
    """Stream the natural join of ``relations`` row by row.

    Yields tuples aligned with the query's attribute order (the schema
    ``execute(...).relation()`` would carry) as soon as each is found.
    The attribute-at-a-time executors (``nprr``, ``generic``,
    ``leapfrog``) never materialize the output, so the first rows
    arrive while the search is still running and consumers may stop
    early; the blocking specialists (``lw``, ``arity2``) compute
    internally and then stream.  With ``feedback`` set, a fully
    consumed stream records its telemetry and later runs re-plan from
    it (abandoning the stream early records nothing).
    """
    return iter(
        execute(
            relations,
            algorithm=algorithm,
            cover=cover,
            attribute_order=attribute_order,
            backend=backend,
            database=database,
            feedback=feedback,
        )
    )


def join_batched(
    relations: Sequence[Relation] | JoinQuery,
    batch_size: int | str = _parallel.DEFAULT_BATCH_SIZE,
    algorithm: str = "auto",
    cover: FractionalCover | None = None,
    attribute_order: Sequence[str] | None = None,
    backend: str | None = None,
    database: Database | None = None,
    feedback: FeedbackConfig | None = None,
) -> Iterator[list[Row]]:
    """Stream the natural join in fixed-size row batches.

    .. deprecated:: this release
        Use ``execute(relations, ...).batches(size)``.

    Exactly :func:`iter_join`, delivered as lists of ``batch_size`` rows
    (the last batch may be shorter; no empty batch is yielded), so
    per-row overhead — function calls, syscalls, network frames — is
    paid once per batch.  ``batch_size`` may be ``"auto"`` to let the
    planner size batches from the AGM output estimate.

    >>> import warnings
    >>> from repro import Relation
    >>> r = Relation("R", ("A", "B"), [(i, i + 1) for i in range(5)])
    >>> s = Relation("S", ("B", "C"), [(i + 1, i) for i in range(5)])
    >>> with warnings.catch_warnings():
    ...     warnings.simplefilter("ignore", DeprecationWarning)
    ...     [len(batch) for batch in join_batched([r, s], batch_size=2)]
    [2, 2, 1]
    """
    _deprecated("join_batched", "execute(relations, ...).batches(size)")
    return execute(
        relations,
        algorithm=algorithm,
        cover=cover,
        attribute_order=attribute_order,
        backend=backend,
        batch_size=batch_size,
        database=database,
        feedback=feedback,
    ).batches()


def shard_join(
    relations: Sequence[Relation] | JoinQuery,
    shards: int | str | None = None,
    algorithm: str = "auto",
    cover: FractionalCover | None = None,
    attribute_order: Sequence[str] | None = None,
    backend: str | None = None,
    mode: str = "auto",
    workers: int | None = None,
    database: Database | None = None,
    feedback: FeedbackConfig | None = None,
) -> Iterator[Row]:
    """Stream the natural join, sharded on the planner's first attribute.

    .. deprecated:: this release
        Use ``execute(relations, shards=ShardSpec(n))`` (or a context
        carrying the spec — and, for a remote fleet, a
        ``DispatchScheduler``) and iterate the stream.

    The first attribute's candidate values are partitioned into
    ``shards`` work-balanced groups and the whole engine runs once per
    shard — on a process pool by default (``mode="auto"`` falls back to
    threads for unpicklable values; ``"serial"`` chains the shards
    in-process).  The yielded row *set* equals serial :func:`iter_join`;
    arrival order depends on shard completion.  ``shards`` may be an
    int, ``"auto"`` (sized from heavy-hitter mass and CPU count, so hot
    values land in their own shard), or ``None`` (same as ``"auto"``).
    ``database`` lets the parent plan reuse the catalog's cached
    statistics.  With ``feedback`` set, every shard's wall time is
    recorded and shards that ran hot are re-partitioned on the next
    attribute on the following run (the online "Skew Strikes Back"
    split).  See :mod:`repro.engine.parallel`.
    """
    _deprecated(
        "shard_join",
        "execute(relations, shards=ShardSpec(n)) and iterate the stream",
    )
    return iter(
        execute(
            relations,
            algorithm=algorithm,
            cover=cover,
            attribute_order=attribute_order,
            backend=backend,
            shards=shards if shards is not None else "auto",
            mode=mode,
            workers=workers,
            database=database,
            feedback=feedback,
        )
    )


def aiter_join(
    relations: Sequence[Relation] | JoinQuery,
    algorithm: str = "auto",
    cover: FractionalCover | None = None,
    attribute_order: Sequence[str] | None = None,
    backend: str | None = None,
    shards: int | str | None = None,
    batch_size: int = _parallel.DEFAULT_BATCH_SIZE,
    database: Database | None = None,
    feedback: FeedbackConfig | None = None,
) -> AsyncIterator[Row]:
    """Async variant of :func:`iter_join` for event-loop servers.

    .. deprecated:: this release
        Use ``execute(relations, ...).astream(batch_size)``.

    Returns an async iterator: the blocking join generator runs on
    worker threads (``asyncio.to_thread``) and rows reach the loop
    ``batch_size`` at a time, so the loop never blocks on the search for
    more than one batch.  With ``shards`` set, execution is sharded as
    in :func:`shard_join`.  ``database`` reuses the catalog's cached
    indexes and statistics across requests.  Planning and validation
    happen in this synchronous call, not at first ``anext()``::

        async for row in aiter_join([r, s, t]):
            await websocket.send(render(row))
    """
    _deprecated("aiter_join", "execute(relations, ...).astream(batch_size)")
    return execute(
        relations,
        algorithm=algorithm,
        cover=cover,
        attribute_order=attribute_order,
        backend=backend,
        shards=shards,
        database=database,
        feedback=feedback,
    ).astream(batch_size=batch_size)


def count_join(
    relations: Sequence[Relation] | JoinQuery,
    algorithm: str = "auto",
    cover: FractionalCover | None = None,
    attribute_order: Sequence[str] | None = None,
    backend: str | None = None,
    shards: int | str | None = None,
    mode: str = "auto",
    workers: int | None = None,
    database: Database | None = None,
    feedback: FeedbackConfig | None = None,
) -> int:
    """Count the join's rows *without enumerating them* when possible.

    Exactly ``sum(1 for _ in iter_join(...))``, but for the level-loop
    algorithms (``generic``, ``leapfrog``) the count is folded into the
    search itself: once the remaining levels factor into independent
    per-relation completions, the whole subtree contributes the product
    of its completion counts in O(1) instead of being walked (see
    :mod:`repro.aggregate.fold`).  With ``shards`` set, shard workers
    compute partial counts and only the integers travel back.  With
    ``feedback`` set, counting runs over the recorded row stream so the
    feedback store keeps learning from aggregate-only workloads.

    >>> from repro import Relation
    >>> r = Relation("R", ("A", "B"), [(i, j) for i in range(4) for j in range(4)])
    >>> s = Relation("S", ("B", "C"), [(i, j) for i in range(4) for j in range(4)])
    >>> count_join([r, s])
    64
    """
    return execute(
        relations,
        algorithm=algorithm,
        cover=cover,
        attribute_order=attribute_order,
        backend=backend,
        shards=shards,
        mode=mode,
        workers=workers,
        database=database,
        feedback=feedback,
    ).count()


def sample_join(
    relations: Sequence[Relation] | JoinQuery,
    k: int,
    seed: int | None = None,
    algorithm: str = "auto",
    cover: FractionalCover | None = None,
    attribute_order: Sequence[str] | None = None,
    backend: str | None = None,
    database: Database | None = None,
) -> list[Row]:
    """Draw ``min(k, |J|)`` distinct uniform join rows, never
    materializing the join.

    Rows are drawn by AGM-weighted rejection descent
    (:mod:`repro.aggregate.sampling`): each trial walks one root-to-leaf
    path of the same search tree the enumeration algorithms explore,
    accepting full rows with probability exactly ``1/AGM`` each — so
    accepted rows are uniform over the join, at an expected cost of
    ``AGM/|J|`` descents per row.  Deterministic for a fixed ``seed``.
    ``algorithm`` only participates in validation — the sampler owns its
    descent — and ``backend`` picks the index layout it walks.

    >>> from repro import Relation
    >>> r = Relation("R", ("A", "B"), [(i, i) for i in range(100)])
    >>> s = Relation("S", ("B", "C"), [(i, i) for i in range(100)])
    >>> sample_join([r, s], 3, seed=11)
    [(15, 15, 15), (57, 57, 57), (31, 31, 31)]
    """
    return execute(
        relations,
        algorithm=algorithm,
        cover=cover,
        attribute_order=attribute_order,
        backend=backend,
        database=database,
    ).sample(k, seed)


def explain(
    relations: Sequence[Relation] | JoinQuery,
    algorithm: str = "auto",
    cover: FractionalCover | None = None,
    attribute_order: Sequence[str] | None = None,
    backend: str | None = None,
    database: Database | None = None,
    stats=None,
    feedback: FeedbackConfig | None = None,
) -> JoinPlan:
    """Plan the join without running it.

    Returns the engine's :class:`~repro.engine.planner.JoinPlan` — chosen
    algorithm, attribute order, index backend, and the AGM output bound —
    for inspection (``plan.describe()``, and
    ``plan.describe(show_stats=True)`` for the statistics that justified
    each decision) or later execution (``plan.execute()`` /
    ``plan.iter_rows()``).  ``database`` supplies the statistics cache;
    ``stats`` pins a :class:`~repro.stats.provider.StatsProvider` (e.g.
    sampling disabled, or a fixed seed).
    """
    return execute(
        relations,
        algorithm=algorithm,
        cover=cover,
        attribute_order=attribute_order,
        backend=backend,
        database=database,
        stats=stats,
    ).plan()


def output_bound(
    relations: Sequence[Relation] | JoinQuery,
) -> float:
    """The tightest AGM bound for the query given its relation sizes."""
    query = (
        relations
        if isinstance(relations, JoinQuery)
        else JoinQuery(list(relations))
    )
    _cover, bound = best_agm_bound(query.hypergraph, query.sizes())
    return bound
