"""The front door: one function to join relations with any algorithm.

>>> from repro import Relation, join
>>> r = Relation("R", ("A", "B"), [(1, 2), (2, 3)])
>>> s = Relation("S", ("B", "C"), [(2, 9), (3, 7)])
>>> t = Relation("T", ("A", "C"), [(1, 9), (2, 7)])
>>> sorted(join([r, s, t]).tuples)
[(1, 2, 9), (2, 3, 7)]
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.core.arity_two import ArityTwoJoin
from repro.core.generic_join import GenericJoin
from repro.core.leapfrog import LeapfrogTriejoin
from repro.core.lw import LWJoin
from repro.core.nprr import NPRRJoin
from repro.core.query import JoinQuery
from repro.errors import QueryError
from repro.hypergraph.agm import best_agm_bound
from repro.hypergraph.covers import FractionalCover
from repro.relations.relation import Relation

#: Algorithms selectable by name in :func:`join`.
ALGORITHMS = ("nprr", "lw", "generic", "leapfrog", "arity2", "auto")


def join(
    relations: Sequence[Relation] | JoinQuery,
    algorithm: str = "auto",
    cover: FractionalCover | None = None,
    name: str = "J",
) -> Relation:
    """Compute the natural join of ``relations``, worst-case optimally.

    Parameters
    ----------
    relations:
        The relations to join (or an existing :class:`JoinQuery`).
    algorithm:
        * ``"nprr"`` — Algorithm 2 (works for every query);
        * ``"lw"`` — Algorithm 1 (Loomis-Whitney instances only);
        * ``"generic"`` / ``"leapfrog"`` — the extension WCOJ algorithms;
        * ``"arity2"`` — Theorem 7.3's algorithm (arity <= 2 only);
        * ``"auto"`` — pick a specialist when the query shape allows,
          otherwise Algorithm 2.
    cover:
        Optional fractional edge cover (defaults to the LP optimum).  Only
        consulted by the cover-driven algorithms (``nprr``, ``arity2``).
    """
    query = (
        relations
        if isinstance(relations, JoinQuery)
        else JoinQuery(list(relations))
    )
    if algorithm == "auto":
        if query.is_lw_instance() and cover is None:
            algorithm = "lw"
        elif query.hypergraph.is_graph() and cover is None:
            algorithm = "arity2"
        else:
            algorithm = "nprr"
    if algorithm == "nprr":
        return NPRRJoin(query, cover=cover).execute(name)
    if algorithm == "lw":
        return LWJoin(query).execute(name)
    if algorithm == "generic":
        return GenericJoin(query).execute(name)
    if algorithm == "leapfrog":
        return LeapfrogTriejoin(query).execute(name)
    if algorithm == "arity2":
        return ArityTwoJoin(query, cover=cover).execute(name)
    raise QueryError(
        f"unknown algorithm {algorithm!r}; choose one of {ALGORITHMS}"
    )


def output_bound(
    relations: Sequence[Relation] | JoinQuery,
) -> float:
    """The tightest AGM bound for the query given its relation sizes."""
    query = (
        relations
        if isinstance(relations, JoinQuery)
        else JoinQuery(list(relations))
    )
    _cover, bound = best_agm_bound(query.hypergraph, query.sizes())
    return bound
