"""ResultStream: every way to consume one executed query.

:func:`repro.execute` returns one of these instead of committing the
caller to a consumption style up front.  The legacy entry points each
hard-wired one view — ``join`` materialized, ``iter_join`` streamed,
``join_batched`` batched, ``aiter_join`` went async — and so each
needed its own copy of the execution keywords.  A
:class:`ResultStream` is all of those views over one underlying
builder::

    stream = execute([r, s, t], shards=ShardSpec(4))
    for row in stream: ...                   # iterate
    stream.relation("J")                     # materialize
    [b for b in stream.batches(256)]         # batch
    async for row in stream.astream(): ...   # event loop
    stream.count()                           # fold, no enumeration

Nothing executes until a view is consumed; each view call starts a
*fresh* execution (the builder underneath is immutable and reusable),
so ``stream.count()`` after a full iteration runs the query again —
materialize with :meth:`rows` or :meth:`relation` when the result is
needed more than once.
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.relations.relation import Relation, Row

__all__ = ["ResultStream"]


class ResultStream:
    """Lazy, multi-view handle on one query's result.

    Thin by design: every view delegates to the wrapped
    :class:`~repro.query.builder.QueryBuilder`, which owns compilation,
    planning, and execution — this class only names the consumption
    styles.  Immutable; safe to share.
    """

    __slots__ = ("_builder",)

    def __init__(self, builder) -> None:
        object.__setattr__(self, "_builder", builder)

    def __setattr__(self, key: str, value: object) -> None:
        raise AttributeError("ResultStream instances are immutable")

    @property
    def builder(self):
        """The underlying builder (for further fluent refinement)."""
        return self._builder

    @property
    def attributes(self) -> tuple[str, ...]:
        """The schema of the rows every view yields."""
        return self._builder.output_attributes

    # -- row views ----------------------------------------------------------

    def __iter__(self) -> Iterator[Row]:
        """Stream rows (plans now; validation errors raise here)."""
        return self._builder.stream()

    def rows(self) -> list[Row]:
        """Materialize the rows as a list."""
        return list(self._builder.stream())

    def relation(self, name: str = "J") -> Relation:
        """Materialize the result as a named :class:`Relation`."""
        return self._builder.run(name)

    def batches(self, size: int | None = None) -> Iterator[list[Row]]:
        """Stream fixed-size row batches (see
        :meth:`~repro.query.builder.QueryBuilder.batches` for how
        ``size`` defaults resolve, including ``"auto"``)."""
        return self._builder.batches(size)

    # -- async views --------------------------------------------------------

    def __aiter__(self):
        return self._builder.astream()

    def astream(self, batch_size: int | None = None):
        """Async row iterator for event-loop servers; the blocking
        stream runs on worker threads, rows arrive a batch at a time."""
        return self._builder.astream(batch_size)

    # -- aggregate views ----------------------------------------------------

    def fold(self, spec):
        """Fold an :class:`~repro.aggregate.specs.AggregateSpec` over
        the result without materializing it (pushed into the level
        loops, or per-shard partials under a sharded context)."""
        return self._builder._aggregate(spec, "fold")

    def count(self) -> int:
        """Row count without enumeration when the plan allows."""
        return self._builder.count()

    def sample(self, k: int, seed: int | None = None) -> list[Row]:
        """``min(k, count)`` distinct uniform rows by AGM-weighted
        rejection descent; deterministic for a fixed ``seed``."""
        return self._builder.sample(k, seed)

    # -- inspection ---------------------------------------------------------

    def plan(self):
        """The :class:`~repro.engine.planner.JoinPlan`, without running."""
        return self._builder.plan()

    def explain(self, analyze: bool = False):
        """The plan, or (``analyze=True``) a fully measured run."""
        return self._builder.explain(analyze)

    def __repr__(self) -> str:
        return f"ResultStream({self._builder!r})"
