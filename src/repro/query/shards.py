"""ShardSpec and StealPolicy: the typed home for parallel execution.

``ExecutionContext.shards`` historically took a bare int (or ``"auto"``)
— enough to say *how many* shards, but nowhere to hang the scheduler
policies the distributed fabric adds: predictive pre-splitting of
hub-heavy shards and within-run work stealing.  :class:`ShardSpec` is
that home.  Bare ints and ``"auto"`` still work everywhere — the context
auto-coerces them via :meth:`ShardSpec.coerce` — but they are the
deprecated spelling; new code writes::

    from repro import ExecutionContext, ShardSpec, StealPolicy

    ctx = ExecutionContext(
        shards=ShardSpec("auto", predictive=True, steal=StealPolicy())
    )

This module is import-light by design (only :mod:`repro.errors`): the
context imports it, the engine imports the context, and the distributed
package re-exports both classes — no cycles.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import PlanError

__all__ = ["ShardSpec", "StealPolicy"]


@dataclass(frozen=True)
class StealPolicy:
    """Within-run work stealing: when and how to sub-split hot shards.

    A rate model (seconds per unit of planned weight, fitted over the
    shards completed so far in *this* run) predicts each pending shard's
    wall time.  When a claimed shard's prediction crosses
    ``hot_factor`` times the median completed time — and idle capacity
    exists — the claiming worker splits it on the next attribute of the
    plan's order and takes only the first sub-shard; idle workers steal
    the rest.  This is the within-run generalization of the across-run
    ``expand_shards`` split (same keys, same sub-shard construction), so
    observations recorded for stolen sub-shards feed the same feedback
    store.
    """

    #: Sub-shards a hot shard is split into (like the feedback loop's
    #: ``split_factor``).
    split_factor: int = 4
    #: A pending shard is hot when its predicted seconds exceed this
    #: multiple of the median completed-shard seconds.
    hot_factor: float = 2.0
    #: Completed shards required before the rate model is trusted.
    min_completed: int = 2
    #: Split-chain depth bound (a sub-shard may split again, one
    #: attribute deeper, at most this many times total).
    max_split_depth: int = 2

    def __post_init__(self) -> None:
        if not isinstance(self.split_factor, int) or self.split_factor < 2:
            raise PlanError(
                f"steal split_factor must be an int >= 2, "
                f"got {self.split_factor!r}"
            )
        if self.hot_factor <= 0:
            raise PlanError(
                f"steal hot_factor must be positive, got {self.hot_factor!r}"
            )
        if not isinstance(self.min_completed, int) or self.min_completed < 1:
            raise PlanError(
                f"steal min_completed must be an int >= 1, "
                f"got {self.min_completed!r}"
            )


@dataclass(frozen=True)
class ShardSpec:
    """How a query is sharded: count plus scheduler policies.

    ``count`` is a positive int or ``"auto"`` (sized from heavy-hitter
    mass and CPU count, as before).  ``predictive`` pre-splits shards
    whose value group contains a heavy-hitter value *at first-plan time*
    — run one of a hub-heavy query behaves like run two used to.
    ``steal`` switches on within-run stealing (``True`` for the default
    :class:`StealPolicy`).  ``batch_size`` is the typed replacement for
    ``ExecutionContext.batch_size`` (consulted when the context leaves
    its own unset).

    ``ShardSpec.coerce`` accepts the legacy spellings — a bare int,
    ``"auto"``, ``None``, or an existing spec — so no caller breaks.
    """

    count: int | str = "auto"
    predictive: bool = False
    steal: StealPolicy | None = None
    batch_size: int | str | None = None

    def __post_init__(self) -> None:
        if self.count != "auto" and (
            not isinstance(self.count, int)
            or isinstance(self.count, bool)
            or self.count < 1
        ):
            raise PlanError(
                f"shard count must be a positive int or 'auto', "
                f"got {self.count!r}"
            )
        if self.steal is True:
            object.__setattr__(self, "steal", StealPolicy())
        if self.steal is not None and not isinstance(self.steal, StealPolicy):
            raise PlanError(
                f"steal must be a StealPolicy (or True/None), "
                f"got {self.steal!r}"
            )

    @classmethod
    def coerce(cls, value) -> "ShardSpec | None":
        """Normalize every accepted ``shards=`` spelling.

        ``None`` stays ``None`` (serial execution); a spec passes
        through; a positive int or ``"auto"`` becomes a plain spec.
        """
        if value is None or isinstance(value, cls):
            return value
        if value == "auto" or (
            isinstance(value, int) and not isinstance(value, bool)
        ):
            return cls(count=value)
        raise PlanError(
            f"shards must be a positive int, 'auto', a ShardSpec, or "
            f"None, got {value!r}"
        )

    def __repr__(self) -> str:
        parts = [repr(self.count)]
        if self.predictive:
            parts.append("predictive=True")
        if self.steal is not None:
            parts.append(f"steal={self.steal!r}")
        if self.batch_size is not None:
            parts.append(f"batch_size={self.batch_size!r}")
        return f"ShardSpec({', '.join(parts)})"
