"""The composable query layer: fluent builder, context, prepared queries.

The public face of the engine for anything richer than a bare natural
join.  Three objects:

* :func:`~repro.query.builder.Q` /
  :class:`~repro.query.builder.QueryBuilder` — an immutable fluent
  builder: ``Q(r, s, t).where(A=1).where_in("B", {2, 3}).select("A",
  "C")``.  Equality clauses are pushed into the plan (the bound
  attribute's level is eliminated by relation sectioning); membership
  and predicate clauses run as per-level filter hooks inside the
  executors; projections stream with dedup, never materializing the
  full join.
* :class:`~repro.query.context.ExecutionContext` — the single carrier
  of execution options (database, stats, algorithm, backend, shards,
  batch size, parallel mode) consumed by the planner, the executors,
  the parallel drivers, and the CLI alike.
* :class:`~repro.query.prepared.PreparedQuery` — a frozen plan with
  pre-built indexes for repeated execution and ``bind()`` parameter
  rebinding (the prepared-statement contract; pairs with
  ``Database.warm``).

The legacy ``repro.api`` entry points (``join``, ``iter_join``, ...)
are thin wrappers over this package.
"""

from repro.query.builder import GroupedQuery, Q, QueryBuilder
from repro.query.context import ExecutionContext
from repro.query.predicates import Callback, ResidualPredicate, ValueIn
from repro.query.prepared import PreparedQuery
from repro.query.result import ResultStream
from repro.query.shards import ShardSpec, StealPolicy

__all__ = [
    "Callback",
    "ExecutionContext",
    "GroupedQuery",
    "PreparedQuery",
    "Q",
    "QueryBuilder",
    "ResidualPredicate",
    "ResultStream",
    "ShardSpec",
    "StealPolicy",
    "ValueIn",
]
